#!/usr/bin/env bash
# Full local gate: formatting, lints (deny warnings), the test suite,
# the observability example (+ trace-JSON validity), and a fast-mode
# repro run diffed against the committed reference output.
# Run from anywhere; operates on the repo this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> profiling example + trace JSON validity"
cargo run --release --example profiling -- target/profile_trace.json > /dev/null
if command -v python3 > /dev/null; then
    python3 -m json.tool target/profile_trace.json > /dev/null
else
    # Poor man's sanity check when python3 is absent.
    head -c 16 target/profile_trace.json | grep -q '{"traceEvents":\[' \
        && tail -c 32 target/profile_trace.json | grep -q '"displayTimeUnit":"ns"}'
fi

echo "==> repro output is reproducible (observability stays zero-cost)"
cargo build --release -p bench -q
./target/release/repro all --scale 0.0625 > target/repro_output.txt
diff -u repro_output.txt target/repro_output.txt

echo "All checks passed."
