#!/usr/bin/env bash
# Full local gate: formatting, lints (deny warnings), the test suite
# (including the golden-artifact snapshots and the plan-,
# cache-equivalence, cluster-chaos, batched-GET and adaptive-planner
# differential suites), the observability example (+ trace-JSON
# validity), a fast-mode repro run
# diffed against the committed reference output, a fixed-seed loadgen
# smoke run (latency tail + parallel-PE sweep) diffed the same way, the
# DRAM block-cache sweep gate, the cluster clients x devices scaling
# matrix (which also emits the machine-readable BENCH_loadgen.json and
# the merged multi-device Chrome trace), the fleet profile
# (BENCH_profile.json), the perf-regression gate against the committed
# reference artifacts, the explain subcommand, and the repro CLI's
# error paths.
# Run from anywhere; operates on the repo this script lives in.
# CHECK_SLOW=1 additionally runs the #[ignore]d long campaigns
# (queue-engine determinism sweep) via --include-ignored.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${CHECK_SLOW:-0}" = "1" ]; then
    echo "==> cargo test (including #[ignore]d slow campaigns)"
    cargo test --workspace -q -- --include-ignored
else
    echo "==> cargo test"
    cargo test --workspace -q
fi

echo "==> golden artifact snapshots are in sync"
# Redundant with the workspace test run above, but kept as an explicit,
# named gate: a drifted generator fails here even if someone filters
# the main test invocation.
cargo test -q -p ndp-core --test golden

echo "==> plan equivalence: every backend and stream count returns identical results"
# Also explicit and named: the planner/engine refactor is only safe
# while software, hardware, hybrid and parallel-PE plans agree with the
# BTreeMap model byte for byte.
cargo test -q -p nkv --test plan_equivalence

echo "==> cache equivalence: the block cache never changes results, only timing"
# Named for the same reason: the device-DRAM cache must stay invisible
# to every backend's bytes across clean and fault-injected runs.
cargo test -q -p nkv --test cache_equivalence

echo "==> cluster chaos: sharded reads survive device-level fault campaigns"
# Named gate for the fleet layer: hash/range-sharded clusters must stay
# byte-identical to a single device at N=1, serve survivors under
# hang/power-cut/link-loss, and walk the health FSM monotonically.
cargo test -q --test cluster_chaos

echo "==> batched-GET equivalence: key-list batches match the unbatched bytes"
# Named gate for the batched PE invocation layer: every backend x batch
# size x fault weather (ECC storms, PE hangs mid-batch, power-cut
# shards) must return the unbatched bytes with per-key typed errors,
# and a batch of one must be the legacy path.
cargo test -q --test batched_get_equivalence

echo "==> adaptive planner equivalence: the cost-based tier choice never changes bytes"
# Named gate for the adaptive planner: whatever tier the cost model
# picks (cold or promoted, clean or under fault weather, single device
# or sharded cluster), the returned bytes must match every forced tier.
cargo test -q --test adaptive_equivalence

echo "==> nkv hot paths carry typed errors, not unwraps"
# The crate-level lint is the enforcement (the workspace clippy run
# above denies warnings, so any non-test unwrap/expect in nkv fails
# there); this named gate pins the attribute itself so it cannot be
# silently dropped.
grep -q 'cfg_attr(not(test), deny(clippy::unwrap_used))' crates/nkv/src/lib.rs
cargo clippy -q -p nkv --lib -- -D warnings

echo "==> profiling example + trace JSON validity"
cargo run --release --example profiling -- target/profile_trace.json > /dev/null
if command -v python3 > /dev/null; then
    python3 -m json.tool target/profile_trace.json > /dev/null
else
    # Poor man's sanity check when python3 is absent.
    head -c 16 target/profile_trace.json | grep -q '{"traceEvents":\[' \
        && tail -c 32 target/profile_trace.json | grep -q '"displayTimeUnit":"ns"}'
fi

echo "==> repro output is reproducible (observability and queues stay zero-cost)"
cargo build --release -p bench -q
./target/release/repro all --scale 0.0625 > target/repro_output.txt
diff -u repro_output.txt target/repro_output.txt

echo "==> loadgen smoke run matches the committed fixed-seed expectation"
./target/release/repro loadgen --clients 1,2,4 --depth 2 --ops 8 --seed 7 \
    --scale 0.00048828125 > target/loadgen_smoke.txt
diff -u loadgen_smoke.txt target/loadgen_smoke.txt
# The smoke output must carry the latency tail and the parallel-PE
# sweep (its in-process assertions prove serial/parallel equivalence).
grep -q 'p99.9=' target/loadgen_smoke.txt
grep -q 'parallel-PE sweep' target/loadgen_smoke.txt

echo "==> DRAM block-cache sweep warms past the acceptance hit rate"
# The smoke diff above runs without --cache-mb, so it is also the
# byte-identity proof that the cache is zero-cost when left off. This
# run turns it on; render appends the sweep with the full budget last.
./target/release/repro loadgen --clients 1 --depth 1 --ops 4 --seed 7 \
    --scale 0.00048828125 --cache-mb 8 > target/loadgen_cache.txt
grep -q 'DRAM cache sweep' target/loadgen_cache.txt
# Full-budget row: repeated scans must be served >= 50% from DRAM ...
tail -n 1 target/loadgen_cache.txt | awk '{
    if ($2 + 0 < 50) { print "error: cache hit rate below 50%: " $0; exit 1 }
}'
# ... and the warm median must beat the cache-off median.
off_p50=$(awk '$1 == "off" {print $3}' target/loadgen_cache.txt)
full_p50=$(tail -n 1 target/loadgen_cache.txt | awk '{print $3}')
awk -v off="$off_p50" -v warm="$full_p50" 'BEGIN {
    if (!(warm + 0 < off + 0)) {
        print "error: warm p50 " warm " ms not below cache-off p50 " off " ms"
        exit 1
    }
}'

echo "==> batched-GET sweep holds the queued-path speedup at the smoke seed"
# The queue engine folds adjacent GETs into key-list batches; at the
# fixed smoke seed the batch-16 row must keep >= 4x the batch-1 GET
# throughput (the serial >= 5x acceptance gate rides on
# batched_get_speedup in BENCH_profile.json below — the queued baseline
# already overlaps ops at depth 16, so its honest win is smaller).
./target/release/repro loadgen --clients 2 --depth 4 --ops 32 --seed 42 \
    --scale 0.00048828125 --batch 16 > target/loadgen_batched.txt
grep -q 'batched-GET sweep' target/loadgen_batched.txt
sed -n '/batched-GET sweep/,$p' target/loadgen_batched.txt | awk '
    $1 == 16 { spd = $6; sub(/x$/, "", spd) }
    END {
        if (spd + 0 < 4.0) {
            print "error: batch-16 queued speedup " spd "x below the 4x floor"
            exit 1
        }
    }'

echo "==> QoS sweep: priority dispatch beats FIFO on the high-priority GET tail"
# Mixed-priority sweep at the fixed smoke seed: the same bulk scan
# flood + GET workload runs FIFO (all-Normal) and prioritized; the
# sweep's in-process assertions prove the records are identical, and
# this gate holds the latency win — the priority GET p99 must come in
# below the FIFO GET p99 ($1 is the mode column, $5 is get-p99(ms)).
./target/release/repro loadgen --clients 1 --depth 1 --ops 4 --seed 42 \
    --scale 0.00048828125 --qos > target/loadgen_qos.txt
grep -q 'QoS sweep' target/loadgen_qos.txt
sed -n '/QoS sweep/,$p' target/loadgen_qos.txt | awk '
    $1 == "fifo" { fifo = $5 } $1 == "priority" { qos = $5 }
    END {
        if (fifo + 0 <= 0 || !(qos + 0 < fifo + 0)) {
            print "error: priority GET p99 " qos " ms not below FIFO GET p99 " fifo " ms"
            exit 1
        }
    }'

echo "==> cluster scaling matrix + machine-readable bench results + merged trace"
# Fixed-seed clients x devices matrix through the sharded cluster; the
# same run emits target/BENCH_loadgen.json (the machine-readable
# counterpart of the text figures; hand-rolled JSON, the workspace
# carries no serde) and the merged multi-device Chrome trace of the
# last (4-device) cell. Artifacts are emitted to target/ and
# regression-compared against the committed references below — the
# committed files are never written by this script.
rm -f target/BENCH_loadgen.json target/BENCH_profile.json target/cluster_trace.json
./target/release/repro loadgen --clients 2 --depth 4 --ops 32 --seed 42 \
    --scale 0.00048828125 --devices 1,2,4 \
    --json target/BENCH_loadgen.json \
    --trace target/cluster_trace.json > target/loadgen_cluster.txt
grep -q 'cluster matrix' target/loadgen_cluster.txt
# Device-parallel fan-out must pay off: 4 shards >= 2.5x one device at
# the fixed smoke seed ($2 is the devices column, $5 is ops/s).
sed -n '/cluster matrix/,$p' target/loadgen_cluster.txt | awk '
    $2 == 1 { one = $5 } $2 == 4 { four = $5 }
    END {
        if (one + 0 <= 0 || four + 0 < 2.5 * one) {
            print "error: 4-device ops/s " four " not >= 2.5x single-device " one
            exit 1
        }
    }'
# BENCH_loadgen.json: valid JSON when python3 is around, and every
# top-level key present either way.
if command -v python3 > /dev/null; then
    python3 - << 'EOF'
import json
with open("target/BENCH_loadgen.json") as f:
    doc = json.load(f)
keys = ("schema", "seed", "config", "points", "parallel_sweep", "cache_sweep",
        "cluster_matrix", "batched_sweep", "qos_sweep")
missing = [k for k in keys if k not in doc]
assert not missing, f"BENCH_loadgen.json missing keys: {missing}"
assert doc["schema"] == "nkv-bench-loadgen/4", doc["schema"]
assert doc["seed"] == 42, doc["seed"]
assert doc["cluster_matrix"], "cluster_matrix must not be empty with --devices"
assert doc["batched_sweep"] == [], "batched_sweep must be empty without --batch"
assert doc["qos_sweep"] == [], "qos_sweep must be empty without --qos"
EOF
else
    for key in schema seed config points parallel_sweep cache_sweep cluster_matrix \
        batched_sweep qos_sweep; do
        grep -q "\"$key\"" target/BENCH_loadgen.json
    done
fi

echo "==> merged multi-device trace is a valid Chrome export with router spans"
if command -v python3 > /dev/null; then
    python3 -m json.tool target/cluster_trace.json > /dev/null
fi
# Device pid namespaces: device 1 offsets its pids by 1000, device 2 by
# 2000 (flash channel 0 sits at +100), and the router narrates the
# fan-out on its own pid 900.
grep -q '"pid":1100' target/cluster_trace.json
grep -q '"pid":2100' target/cluster_trace.json
grep -q '"pid":900' target/cluster_trace.json
grep -q 'router_fanout' target/cluster_trace.json
grep -q 'router_merge' target/cluster_trace.json
grep -q '"dropped_spans"' target/cluster_trace.json

echo "==> fleet profile emits BENCH_profile.json (perf-journal snapshot)"
./target/release/repro profile --scale 0.00048828125 --devices 4 \
    --json target/BENCH_profile.json > target/profile_fleet.txt
grep -q 'fleet profile (4 hash-sharded devices)' target/profile_fleet.txt
grep -q 'cluster stats: 4 shards' target/profile_fleet.txt
# The batched-GET config-tax table (before/after) must render.
grep -q 'batched GET (key-list descriptors' target/profile_fleet.txt
grep -q 'key lists cut the config tax' target/profile_fleet.txt
if command -v python3 > /dev/null; then
    python3 - << 'EOF'
import json
with open("target/BENCH_profile.json") as f:
    doc = json.load(f)
keys = ("schema", "seed", "config", "config_tax_ratio", "config_tax_batched",
        "get_us_unbatched", "get_us_batched", "batched_get_speedup",
        "flash_occupancy", "cache_hit_rate", "cluster_scaling", "cluster")
missing = [k for k in keys if k not in doc]
assert not missing, f"BENCH_profile.json missing keys: {missing}"
assert doc["schema"] == "nkv-bench-profile/2", doc["schema"]
assert len(doc["cluster"]["shards"]) == 4, "fleet snapshot must carry 4 shard rows"
# Hard acceptance gates for the batched PE invocation (DESIGN.md §15):
# key lists must cut the per-key config tax at least 5x, and serial
# per-key device time must be >= 5x faster at batch 16.
tax, batched = doc["config_tax_ratio"], doc["config_tax_batched"]
assert batched <= tax / 5, (
    f"batched config tax {batched:.2f}x not <= 1/5 of unbatched {tax:.2f}x")
assert doc["batched_get_speedup"] >= 5.0, (
    f"batched GET speedup {doc['batched_get_speedup']:.2f}x below the 5x acceptance floor")
EOF
else
    for key in schema seed config_tax_ratio config_tax_batched get_us_unbatched \
        get_us_batched batched_get_speedup flash_occupancy cache_hit_rate \
        cluster_scaling cluster; do
        grep -q "\"$key\"" target/BENCH_profile.json
    done
fi

echo "==> perf-regression gate: fresh artifacts vs committed references (PERF.md)"
# The fixed-seed DES is deterministic, so the fresh artifacts normally
# match the committed ones exactly; the 15% tolerance exists so the
# gate measures performance, not bytes. Fails on a >15% throughput
# regression in any matrix cell or a cluster-scaling/occupancy drop.
# An intentional perf change regenerates the committed files (see
# PERF.md for the journal discipline).
if command -v python3 > /dev/null; then
    python3 - << 'EOF'
import json

def load(path):
    with open(path) as f:
        return json.load(f)

TOL = 0.15
ref, new = load("BENCH_loadgen.json"), load("target/BENCH_loadgen.json")
assert new["schema"] == ref["schema"], (new["schema"], ref["schema"])
ref_cells = {(r["clients"], r["devices"]): r for r in ref["cluster_matrix"]}
for row in new["cluster_matrix"]:
    base = ref_cells.get((row["clients"], row["devices"]))
    assert base, f"cell {row['clients']}x{row['devices']} missing from committed reference"
    floor = (1 - TOL) * base["ops_per_sec"]
    assert row["ops_per_sec"] >= floor, (
        f"throughput regression at {row['clients']} clients x {row['devices']} devices: "
        f"{row['ops_per_sec']:.0f} ops/s < {floor:.0f} (committed {base['ops_per_sec']:.0f})")
for row, base in zip(new["points"], ref["points"]):
    floor = (1 - TOL) * base["ops_per_sec"]
    assert row["ops_per_sec"] >= floor, (
        f"single-device throughput regression at {row['clients']} clients: "
        f"{row['ops_per_sec']:.0f} ops/s < {floor:.0f}")

refp, newp = load("BENCH_profile.json"), load("target/BENCH_profile.json")
for key in ("cluster_scaling", "flash_occupancy", "cache_hit_rate", "batched_get_speedup"):
    floor = (1 - TOL) * refp[key]
    assert newp[key] >= floor, (
        f"{key} dropped: {newp[key]:.4f} < {floor:.4f} (committed {refp[key]:.4f})")
# Lower is better for the batched config tax: regressing means creeping
# back toward the unbatched 45x.
ceil = (1 + TOL) * refp["config_tax_batched"]
assert newp["config_tax_batched"] <= ceil, (
    f"config_tax_batched rose: {newp['config_tax_batched']:.3f}x > {ceil:.3f}x "
    f"(committed {refp['config_tax_batched']:.3f}x)")
print("perf gate: all metrics within 15% of the committed baselines")
EOF
else
    # Without python3 the gate degrades to byte-identity, which the
    # deterministic DES satisfies whenever perf is unchanged.
    diff -u BENCH_loadgen.json target/BENCH_loadgen.json
    diff -u BENCH_profile.json target/BENCH_profile.json
fi

echo "==> repro CLI rejects bad --devices values"
if ./target/release/repro loadgen --devices zero > /dev/null 2>&1; then
    echo "error: non-numeric --devices must exit nonzero" >&2
    exit 1
fi
if ./target/release/repro loadgen --devices 0 > /dev/null 2>&1; then
    echo "error: --devices 0 must exit nonzero" >&2
    exit 1
fi

echo "==> repro CLI rejects bad --batch values, accepts oversized folds"
for bad in 0 banana; do
    if ./target/release/repro loadgen --batch "$bad" > /dev/null 2>&1; then
        echo "error: --batch $bad must exit nonzero" >&2
        exit 1
    fi
done
# Beyond one key-list DMA page (510 keys) is legal: the queue engine
# splits the fold into capacity-sized descriptors.
./target/release/repro loadgen --clients 1 --depth 1 --ops 2 --seed 9 \
    --scale 0.00048828125 --batch 511 > /dev/null

echo "==> repro CLI trace/json guard rails"
# --trace to an unwritable path fails up front (before simulation time).
if ./target/release/repro loadgen --devices 1,2 \
    --trace /nonexistent-dir/trace.json > /dev/null 2>&1; then
    echo "error: --trace to an unwritable path must exit nonzero" >&2
    exit 1
fi
# loadgen --trace without --devices has no cluster to trace.
if ./target/release/repro loadgen --trace target/never.json > /dev/null 2>&1; then
    echo "error: loadgen --trace without --devices must exit nonzero" >&2
    exit 1
fi
# A non-default configuration must refuse to clobber an existing --json
# artifact (this protects the committed references); --json-force is
# the explicit override, exercised by the emission runs above via
# fresh target/ paths and here against a scratch file.
echo '{"scratch": true}' > target/guard_scratch.json
if ./target/release/repro loadgen --clients 1 --depth 1 --ops 2 --seed 9 \
    --scale 0.00048828125 --json target/guard_scratch.json > /dev/null 2>&1; then
    echo "error: --json onto an existing file with non-default flags must exit nonzero" >&2
    exit 1
fi
grep -q '"scratch"' target/guard_scratch.json  # refused => untouched
./target/release/repro loadgen --clients 1 --depth 1 --ops 2 --seed 9 \
    --scale 0.00048828125 --json target/guard_scratch.json --json-force > /dev/null 2>&1
grep -q '"schema"' target/guard_scratch.json   # forced => replaced

echo "==> repro explain renders the lowered plan"
./target/release/repro explain refs 'year>=2010' --backend hybrid > target/explain.txt
grep -q 'PLAN SCAN ON refs (backend: hybrid)' target/explain.txt
grep -q 'parallel PE job stream' target/explain.txt
./target/release/repro explain refs 'year>=2010' --backend hw --cache-mb 8 \
    | grep -q 'cache=device-DRAM segmented-LRU, budget 8192 KiB'
if ./target/release/repro explain refs 'definitely_not_a_lane>=1' > /dev/null 2>&1; then
    echo "error: unknown explain lane must exit nonzero" >&2
    exit 1
fi

echo "==> repro CLI rejects unknown subcommands and flags"
if ./target/release/repro definitely-not-an-experiment > /dev/null 2>&1; then
    echo "error: unknown subcommand must exit nonzero" >&2
    exit 1
fi
if ./target/release/repro all --definitely-not-a-flag > /dev/null 2>&1; then
    echo "error: unknown flag must exit nonzero" >&2
    exit 1
fi

echo "All checks passed."
