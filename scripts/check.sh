#!/usr/bin/env bash
# Full local gate: formatting, lints (deny warnings), and the test suite.
# Run from anywhere; operates on the repo this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "All checks passed."
