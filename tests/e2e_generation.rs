//! End-to-end toolflow tests: specification → generated PE → execution,
//! checked against the software oracle (the framework's core promise is
//! that the generated hardware computes exactly the declared semantics).

use ndp_core::generate;
use ndp_pe::oracle::{BlockProcessor, FilterRule, OpTable};
use ndp_pe::regs::offsets;
use ndp_pe::{MemBus, Mmio, PeDevice, VecMem};
use ndp_workload::SplitMix64;

/// Run a generated PE over `input` with `rules`; return its output bytes.
fn run_pe(
    arts: &ndp_core::Artifacts,
    name: &str,
    input: &[u8],
    rules: &[FilterRule],
) -> (Vec<u8>, u32, u32) {
    let pe = arts.pe(name).unwrap();
    let mut sim = pe.simulator();
    let mut mem = VecMem::new(1 << 20);
    mem.write_bytes(0, input);
    sim.mmio_write(offsets::SRC_LEN, input.len() as u32);
    sim.mmio_write(offsets::DST_ADDR_LO, 0x8_0000);
    sim.mmio_write(offsets::DST_CAPACITY, 1 << 18);
    for (s, r) in rules.iter().enumerate() {
        let base = offsets::STAGE_BASE + s as u32 * offsets::STAGE_STRIDE;
        sim.mmio_write(base + offsets::STAGE_FIELD, r.lane);
        sim.mmio_write(base + offsets::STAGE_OP, r.op_code);
        sim.mmio_write(base + offsets::STAGE_VAL_LO, r.value as u32);
        sim.mmio_write(base + offsets::STAGE_VAL_HI, (r.value >> 32) as u32);
    }
    sim.mmio_write(offsets::START, 1);
    let res = sim.execute(&mut mem);
    let mut out = vec![0u8; res.result_bytes as usize];
    mem.read_bytes(0x8_0000, &mut out);
    (out, res.tuples_in, res.tuples_out)
}

#[test]
fn generated_pe_equals_oracle_on_random_blocks() {
    let src = "
        /* @autogen define parser Mix with input = In, output = Out, stages = 2,
           mapping = { output.score = input.m2 } */
        typedef struct {
            uint64_t id;
            uint16_t kind;
            uint32_t m1, m2;
            /* @string(prefix = 2) */ uint8_t tag[10];
        } In;
        typedef struct { uint64_t id; uint32_t score; } Out;
    ";
    let arts = generate(src).unwrap();
    let cfg = &arts.pe("Mix").unwrap().config;
    let bp = BlockProcessor::new(cfg);
    let ops = OpTable::from_config(cfg);

    let mut rng = SplitMix64::new(42);
    for trial in 0..8 {
        let n = 1 + rng.gen_usize(199);
        let mut input = vec![0u8; n * cfg.input.tuple_bytes() as usize];
        rng.fill_bytes(&mut input[..]);
        let rules = [
            FilterRule {
                lane: rng.gen_u32(cfg.input.lanes),
                op_code: rng.gen_u32(7),
                value: u64::from(rng.next_u32()),
            },
            FilterRule {
                lane: rng.gen_u32(cfg.input.lanes),
                op_code: rng.gen_u32(7),
                value: u64::from(rng.next_u32() as u16),
            },
        ];
        let (hw_out, tin, tout) = run_pe(&arts, "Mix", &input, &rules);
        let mut sw_out = Vec::new();
        let stats = bp.process_block(&input, &rules, &ops, &mut sw_out);
        assert_eq!(hw_out, sw_out, "trial {trial}");
        assert_eq!(tin, stats.tuples_in);
        assert_eq!(tout, stats.tuples_out);
    }
}

#[test]
fn all_standard_operators_behave_end_to_end() {
    let src = "
        /* @autogen define parser Ops with input = V, output = V */
        typedef struct { uint32_t v; } V;
    ";
    let arts = generate(src).unwrap();
    let cfg = &arts.pe("Ops").unwrap().config;
    let values: Vec<u32> = vec![0, 1, 5, 10, 11, u32::MAX];
    let mut input = Vec::new();
    for v in &values {
        input.extend_from_slice(&v.to_le_bytes());
    }
    let cases: &[(&str, u64, Vec<u32>)] = &[
        ("nop", 10, vec![0, 1, 5, 10, 11, u32::MAX]),
        ("eq", 10, vec![10]),
        ("ne", 10, vec![0, 1, 5, 11, u32::MAX]),
        ("gt", 10, vec![11, u32::MAX]),
        ("ge", 10, vec![10, 11, u32::MAX]),
        ("lt", 10, vec![0, 1, 5]),
        ("le", 10, vec![0, 1, 5, 10]),
    ];
    for (op, val, expect) in cases {
        let rules = [FilterRule { lane: 0, op_code: cfg.op_code(op).unwrap(), value: *val }];
        let (out, _, tout) = run_pe(&arts, "Ops", &input, &rules);
        let got: Vec<u32> =
            out.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(&got, expect, "operator {op}");
        assert_eq!(tout as usize, expect.len());
    }
}

#[test]
fn header_and_verilog_are_consistent_with_the_config() {
    let src = "
        /* @autogen define parser Consis with input = R, output = R, stages = 4 */
        typedef struct { uint64_t a; int32_t b; float c; } R;
    ";
    let arts = generate(src).unwrap();
    let pe = arts.pe("Consis").unwrap();
    // Header advertises every register of the map at the right offset.
    for reg in &pe.register_map.regs {
        assert!(
            pe.c_header.contains(&format!("CONSIS_{} {:#04x}", reg.name, reg.offset)),
            "register {} missing from header",
            reg.name
        );
    }
    // Verilog instantiates one filter unit per stage and a float-capable
    // comparator (the struct has a float lane).
    for s in 0..4 {
        assert!(pe.verilog.contains(&format!("filter_unit_{s}")));
    }
    assert!(pe.verilog.contains("compare_unit_w64_ops7"));
    // The regfile is sized exactly to the map.
    assert!(pe.verilog.contains(&format!("ctrl_regfile_n{}", pe.register_map.len())));
}

#[test]
fn regenerating_after_format_evolution_changes_only_what_it_should() {
    // The motivation scenario: the record format evolves; regeneration
    // must pick up the new layout without touching unrelated behavior.
    let v1 = "
        /* @autogen define parser Evo with input = R, output = R */
        typedef struct { uint64_t id; uint32_t a; } R;
    ";
    let v2 = "
        /* @autogen define parser Evo with input = R, output = R */
        typedef struct { uint64_t id; uint32_t a; uint32_t b; } R;
    ";
    let a1 = generate(v1).unwrap();
    let a2 = generate(v2).unwrap();
    let (p1, p2) = (a1.pe("Evo").unwrap(), a2.pe("Evo").unwrap());
    assert_eq!(p1.config.input.lanes + 1, p2.config.input.lanes);
    assert!(p2.report.slices_in_context > p1.report.slices_in_context);
    // Same register protocol: the firmware interface is stable.
    assert_eq!(p1.register_map.regs.len(), p2.register_map.regs.len());
    assert_eq!(p1.register_map.filter_counter_offset(), p2.register_map.filter_counter_offset());
}

#[test]
fn chunk_granularity_is_respected() {
    // chunksize = 1 KiB: a generated PE refuses larger transfers
    // (SRC_LEN is clamped to the chunk).
    let src = "
        /* @autogen define parser Small with chunksize = 1, input = R, output = R */
        typedef struct { uint64_t id; } R;
    ";
    let arts = generate(src).unwrap();
    let mut sim = arts.pe("Small").unwrap().simulator();
    let mut mem = VecMem::new(1 << 16);
    let input = vec![0xAAu8; 4096];
    mem.write_bytes(0, &input);
    sim.mmio_write(offsets::SRC_LEN, 4096);
    sim.mmio_write(offsets::DST_ADDR_LO, 0x8000);
    sim.mmio_write(offsets::DST_CAPACITY, 8192);
    sim.mmio_write(offsets::START, 1);
    let res = sim.execute(&mut mem);
    assert_eq!(res.bytes_read, 1024, "transfer clamps to the 1 KiB chunk");
    assert_eq!(res.tuples_in, 128);
}
