//! Fleet-observability suite: cross-shard metrics math and the merged
//! multi-device trace.
//!
//! The cluster's instrument panel ([`nkv::ClusterStats`] +
//! [`NkvCluster::take_cluster_trace`]) is only trustworthy if the fold
//! is *exact*:
//!
//! 1. **histogram concatenation**: merged fleet quantiles must equal
//!    the quantiles of one histogram holding every shard's samples —
//!    seeded property sweep over arbitrary shard splits;
//! 2. **busy-time conservation**: the merged breakdown must equal the
//!    sum of per-shard breakdowns at every snapshot, including across
//!    fault weather with quarantine probes (probes are admission-gate
//!    checks, not data ops — they must not double-count busy time);
//! 3. **merged trace**: one Chrome export with each device's spans in
//!    its own pid namespace plus the router's synthetic fan-out /
//!    wait / merge spans, drained exactly once.

use cosmos_sim::{
    chrome_trace_json_cluster, DeviceFaultKind, DeviceFaultPlan, DEVICE_PID_STRIDE, ROUTER_PID,
};
use ndp_ir::elaborate;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{Paper, PaperGen, PubGraphConfig, SplitMix64};
use nkv::{Backend, ClusterConfig, LatencyHistogram, NkvCluster, ShardState, TableConfig};

fn encode(p: &Paper) -> Vec<u8> {
    let mut v = Vec::with_capacity(80);
    p.encode_into(&mut v);
    v
}

fn table_cfg(n_pes: usize) -> TableConfig {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let mut cfg = TableConfig::new(elaborate(&m, PAPER_PE).unwrap());
    cfg.n_pes = n_pes;
    cfg
}

fn record_for(key: u64) -> Vec<u8> {
    let gen_cfg = PubGraphConfig { papers: 200, refs: 0, seed: 1 };
    let mut p = PaperGen::paper_at(&gen_cfg, key % 200);
    p.id = key;
    encode(&p)
}

fn all_rules() -> Vec<FilterRule> {
    vec![FilterRule { lane: paper_lanes::YEAR, op_code: 5, value: 3000 }]
}

/// A loaded cluster with observability on.
fn observed_cluster(devices: usize, n_keys: u64) -> NkvCluster {
    let mut cluster =
        NkvCluster::new(ClusterConfig { devices, ..ClusterConfig::default() }).unwrap();
    cluster.enable_observability(1 << 20);
    cluster.create_table("papers", table_cfg(2)).unwrap();
    cluster.bulk_load("papers", (1..=n_keys).map(record_for).collect()).unwrap();
    cluster
}

/// Property sweep: split arbitrary sample sets across N per-shard
/// histograms, fold them the way `cluster_stats` does, and the result
/// must be indistinguishable — buckets, counts and every quantile —
/// from one histogram that recorded the concatenation directly.
#[test]
fn prop_merged_quantiles_equal_concatenated_samples() {
    let qs = [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0];
    let mut rng = SplitMix64::new(0x0b5e_7a11);
    for case in 0..200 {
        let shards = 1 + rng.gen_u64(8) as usize;
        let samples = rng.gen_u64(256) as usize;
        let mut per_shard = vec![LatencyHistogram::new(); shards];
        let mut concat = LatencyHistogram::new();
        for _ in 0..samples {
            // Mixed magnitudes, bucket boundaries included.
            let ns = match rng.gen_u64(3) {
                0 => rng.gen_u64(64),
                1 => 1u64 << rng.gen_u64(40),
                _ => rng.next_u64() >> rng.gen_u64(50),
            };
            per_shard[rng.gen_u64(shards as u64) as usize].record(ns);
            concat.record(ns);
        }
        let mut merged = LatencyHistogram::new();
        for h in &per_shard {
            merged.merge(h);
        }
        assert_eq!(merged.buckets(), concat.buckets(), "case {case}: bucket-exact");
        assert_eq!(merged.count(), concat.count(), "case {case}");
        assert_eq!(merged.max(), concat.max(), "case {case}");
        for &q in &qs {
            assert_eq!(merged.quantile(q), concat.quantile(q), "case {case} q={q}");
        }
    }
}

/// The live-cluster version of the same fold: fleet quantiles from
/// `cluster_stats` equal the quantiles of the per-shard histograms
/// merged by hand, and the merged op/byte counters are exact sums.
#[test]
fn cluster_stats_merged_registry_is_the_exact_shard_fold() {
    let mut cluster = observed_cluster(3, 300);
    for key in 1..=60u64 {
        cluster.get("papers", key, Backend::Hardware).unwrap();
    }
    cluster.scan("papers", &all_rules(), Backend::Hardware).unwrap();

    let stats = cluster.cluster_stats();
    assert_eq!(stats.shards.len(), 3);

    let mut hand = LatencyHistogram::new();
    let mut ops = 0u64;
    for row in &stats.shards {
        hand.merge(&row.stats.metrics.op(nkv::OpKind::Get).hist);
        ops += row.stats.metrics.total_ops();
    }
    let merged_get = &stats.merged.op(nkv::OpKind::Get).hist;
    assert_eq!(merged_get.count(), 60, "every GET must land in exactly one shard");
    for &q in &[0.5, 0.95, 0.99, 1.0] {
        assert_eq!(merged_get.quantile(q), hand.quantile(q), "q={q}");
    }
    assert_eq!(stats.total_ops(), ops, "merged op count == sum of shard op counts");
    // Every shard scanned, so the fleet saw 3 SCAN completions.
    assert_eq!(stats.merged.op(nkv::OpKind::Scan).ops, 3);
    // A snapshot is a snapshot: taking it again changes nothing.
    assert_eq!(cluster.cluster_stats(), stats);
}

/// Busy-time conservation across snapshots and fault weather: at every
/// snapshot the merged breakdown equals the per-shard sum, per-shard
/// busy time is monotone, and quarantine probes (admission checks, not
/// data ops) add zero busy time to a rejected shard.
#[test]
fn busy_time_is_conserved_across_drains_and_quarantine_probes() {
    let mut cluster = observed_cluster(4, 400);
    let victim = 1usize;

    let check_conservation = |stats: &nkv::ClusterStats| {
        let sum: u64 = stats.shards.iter().map(|r| r.stats.metrics.total_breakdown().total()).sum();
        assert_eq!(stats.merged.total_breakdown().total(), sum, "merged == per-shard sum");
    };

    cluster.scan("papers", &all_rules(), Backend::Hardware).unwrap();
    let before = cluster.cluster_stats();
    check_conservation(&before);
    assert!(before.merged.total_breakdown().total() > 0, "traced scan must attribute busy time");

    // Hang one device and drive traffic until it is quarantined; the
    // probes that follow ride on foreground ops.
    cluster
        .install_device_fault(victim, DeviceFaultPlan { kind: DeviceFaultKind::Hang, after_ops: 0 })
        .unwrap();
    for _ in 0..30 {
        let _ = cluster.scan("papers", &all_rules(), Backend::Hardware);
    }
    assert!(
        cluster.shard_state(victim).unwrap().severity() >= ShardState::Quarantined.severity(),
        "sustained hang must at least quarantine the victim"
    );
    let after = cluster.cluster_stats();
    check_conservation(&after);
    for (b, a) in before.shards.iter().zip(after.shards.iter()) {
        assert!(
            a.stats.metrics.total_breakdown().total() >= b.stats.metrics.total_breakdown().total(),
            "shard {} busy time must be monotone across snapshots",
            b.shard
        );
    }
    // The hung shard served nothing after the fault: probes alone must
    // not have inflated its busy time.
    assert_eq!(
        after.shards[victim].stats.metrics.total_breakdown().total(),
        before.shards[victim].stats.metrics.total_breakdown().total(),
        "quarantine probes must not double-count busy time"
    );
    assert!(after.busy_skew >= 1.0, "3 busy shards vs 1 frozen one must show skew");
}

/// The merged Chrome export: per-device pid namespaces, router spans on
/// their own process, metadata totals, drain-once semantics.
#[test]
fn merged_trace_namespaces_devices_and_renders_router_spans() {
    let mut cluster = observed_cluster(3, 300);
    cluster.get("papers", 7, Backend::Hardware).unwrap();
    cluster.scan("papers", &all_rules(), Backend::Hardware).unwrap();

    let (devices, router) = cluster.take_cluster_trace();
    assert_eq!(devices.len(), 3);
    assert!(devices.iter().all(|d| !d.events.is_empty()), "every shard scanned");
    assert!(
        router.iter().any(|s| matches!(s.kind, cosmos_sim::RouterSpanKind::FanOut { shards: 3 })),
        "the scan must record a 3-way fan-out"
    );
    let json = chrome_trace_json_cluster(&devices, &router);
    // Device 1 and 2's flash channel 0 pids land in their own namespaces.
    assert!(json.contains(&format!("\"pid\":{}", DEVICE_PID_STRIDE + 100)), "{json}");
    assert!(json.contains(&format!("\"pid\":{}", 2 * DEVICE_PID_STRIDE + 100)), "{json}");
    assert!(json.contains(&format!("\"pid\":{ROUTER_PID}")), "{json}");
    assert!(json.contains("router_fanout"), "{json}");
    assert!(json.contains("router_shard_wait"), "{json}");
    assert!(json.contains("router_merge"), "{json}");

    // Drained exactly once.
    let (again, router_again) = cluster.take_cluster_trace();
    assert!(again.iter().all(|d| d.events.is_empty()));
    assert!(router_again.is_empty());
}

/// The stable `Display` rendering of a fleet snapshot.
#[test]
fn cluster_stats_display_is_stable_and_complete() {
    let mut cluster = observed_cluster(2, 200);
    for key in 1..=10u64 {
        cluster.get("papers", key, Backend::Software).unwrap();
    }
    let stats = cluster.cluster_stats();
    let text = format!("{stats}");
    assert!(text.starts_with("cluster stats: 2 shards, "), "{text}");
    assert!(text.contains("shard 0 [healthy]:"), "{text}");
    assert!(text.contains("shard 1 [healthy]:"), "{text}");
    assert!(text.contains("merged GET"), "{text}");
    assert!(text.contains("router: 0 retries"), "{text}");
    assert_eq!(text, format!("{}", cluster.cluster_stats()), "byte-stable");

    // An idle cluster has no meaningful skew.
    let idle = NkvCluster::new(ClusterConfig::default()).unwrap().cluster_stats();
    assert_eq!(idle.busy_skew, 0.0);
    assert_eq!(idle.total_ops(), 0);
}
