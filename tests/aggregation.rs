//! The aggregation extension end to end (the paper's outlook: using the
//! NDP architecture for "more compute-intensive tasks"): spec annotation
//! → generated hardware + header → driver protocol → device-level
//! aggregate SCAN pushdown.

use ndp_core::generate;
use ndp_ir::{elaborate, AggOp};
use ndp_pe::oracle::FilterRule;
use ndp_pe::MemBus;
use ndp_pe::{PeSim, VecMem};
use ndp_swgen::{DriverProfile, FilterJob, PeDriver};
use nkv::{ExecMode, NkvDb, NkvError, TableConfig};

const SENSOR_SPEC: &str = "
    /* @autogen define parser Agg with input = R, output = R,
       aggregate = { count, sum, min, max } */
    typedef struct { uint64_t id; int32_t temp; uint32_t n; } R;
";

fn record(id: u64, temp: i32, n: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&id.to_le_bytes());
    v.extend_from_slice(&temp.to_le_bytes());
    v.extend_from_slice(&n.to_le_bytes());
    v
}

fn driver_with_data() -> (PeDriver<PeSim>, VecMem, u32) {
    let arts = generate(SENSOR_SPEC).unwrap();
    let pe = arts.pe("Agg").unwrap();
    let sim = pe.simulator();
    let mut mem = VecMem::new(1 << 16);
    let mut bytes = Vec::new();
    for (id, temp, n) in [(1u64, -5i32, 10u32), (2, 3, 20), (3, -9, 30), (4, 7, 40), (5, 0, 50)] {
        bytes.extend_from_slice(&record(id, temp, n));
    }
    mem.write_bytes(0, &bytes);
    (PeDriver::new(sim, DriverProfile::Generated), mem, bytes.len() as u32)
}

fn run_agg(
    drv: &mut PeDriver<PeSim>,
    mem: &mut VecMem,
    len: u32,
    rules: Vec<FilterRule>,
    agg: (AggOp, u32),
) -> u64 {
    let job = FilterJob { src: 0, len, dst: 0x8000, capacity: 4096, rules, aggregate: Some(agg) };
    drv.filter_sync(mem, &job).aggregate.expect("aggregate requested")
}

#[test]
fn count_sum_min_max_through_the_generated_interface() {
    let (mut drv, mut mem, len) = driver_with_data();
    // COUNT over all records.
    assert_eq!(run_agg(&mut drv, &mut mem, len, vec![], (AggOp::Count, 0)), 5);
    // SUM of n.
    assert_eq!(run_agg(&mut drv, &mut mem, len, vec![], (AggOp::Sum, 2)), 150);
    // MIN/MAX of the *signed* temp lane: type-aware ordering.
    assert_eq!(run_agg(&mut drv, &mut mem, len, vec![], (AggOp::Min, 1)) as u32 as i32, -9);
    assert_eq!(run_agg(&mut drv, &mut mem, len, vec![], (AggOp::Max, 1)) as u32 as i32, 7);
}

#[test]
fn aggregation_composes_with_filtering() {
    let (mut drv, mut mem, len) = driver_with_data();
    // Only records with temp >= 0 (ids 2, 4, 5): sum of n = 110.
    let ge = 4u32;
    let rules = vec![FilterRule { lane: 1, op_code: ge, value: 0 }];
    assert_eq!(run_agg(&mut drv, &mut mem, len, rules.clone(), (AggOp::Sum, 2)), 110);
    assert_eq!(run_agg(&mut drv, &mut mem, len, rules, (AggOp::Count, 0)), 3);
}

#[test]
fn generated_header_exposes_aggregation_api() {
    let arts = generate(SENSOR_SPEC).unwrap();
    let h = &arts.pe("Agg").unwrap().c_header;
    for item in [
        "#define AGG_AGGOP_COUNT 1",
        "#define AGG_AGGOP_SUM 2",
        "#define AGG_AGGOP_MIN 3",
        "#define AGG_AGGOP_MAX 4",
        "AGG_AGG_FIELD",
        "AGG_AGG_RESULT_LO",
        "agg_set_aggregate",
        "agg_read_aggregate",
    ] {
        assert!(h.contains(item), "`{item}` missing from generated header");
    }
    // A PE without aggregates has none of this.
    let plain = generate(
        "/* @autogen define parser P with input = T, output = T */
         typedef struct { uint32_t x; } T;",
    )
    .unwrap();
    assert!(!plain.pes[0].c_header.contains("AGG_OP"));
}

#[test]
fn aggregation_unit_costs_a_small_slice_premium() {
    let with = generate(SENSOR_SPEC).unwrap();
    let without = generate(
        "/* @autogen define parser Agg with input = R, output = R */
         typedef struct { uint64_t id; int32_t temp; uint32_t n; } R;",
    )
    .unwrap();
    let (a, b) = (with.pes[0].report.slices_in_context, without.pes[0].report.slices_in_context);
    assert!(a > b, "aggregation hardware is not free");
    assert!(f64::from(a - b) / f64::from(b) < 0.15, "premium should be small: {a} vs {b}");
    // ... and the Verilog contains the unit.
    assert!(with.pes[0].verilog.contains("aggregate_unit_w64_ops4_l3"));
}

#[test]
fn db_level_aggregate_pushdown_matches_software() {
    let m = ndp_spec::parse(
        "/* @autogen define parser P with input = Rec, output = Rec,
            aggregate = { count, sum, min, max } */
         typedef struct { uint64_t key; uint32_t year; uint32_t cites; } Rec;",
    )
    .unwrap();
    let pe = elaborate(&m, "P").unwrap();
    let mut db = NkvDb::default_db();
    db.create_table("t", TableConfig::new(pe)).unwrap();
    let mut recs = Vec::new();
    for k in 1..=5000u64 {
        let mut r = k.to_le_bytes().to_vec();
        r.extend_from_slice(&(1950 + (k % 70) as u32).to_le_bytes());
        r.extend_from_slice(&((k * 3 % 997) as u32).to_le_bytes());
        recs.push(r);
    }
    db.bulk_load("t", recs.clone()).unwrap();

    let rules = [FilterRule { lane: 1, op_code: 4 /* ge */, value: 2000 }];
    let (hw_sum, hw_any, hw_rep) =
        db.scan_aggregate("t", &rules, AggOp::Sum, 2, ExecMode::Hardware).unwrap();
    let (sw_sum, sw_any, _) =
        db.scan_aggregate("t", &rules, AggOp::Sum, 2, ExecMode::Software).unwrap();
    assert!(hw_any && sw_any);
    assert_eq!(hw_sum, sw_sum);
    // Independent expectation from the raw records.
    let expected: u64 =
        (1..=5000u64).filter(|k| 1950 + (k % 70) >= 2000).map(|k| k * 3 % 997).sum();
    assert_eq!(hw_sum, expected);
    // The pushdown's point: only 8 result bytes leave the device.
    assert_eq!(hw_rep.result_bytes, 8);

    // The full filtering scan would have moved every matching record.
    let full = db.scan("t", &rules, ExecMode::Hardware).unwrap();
    assert!(full.report.result_bytes > 1000 * 16);
}

#[test]
fn hardware_aggregate_requires_generated_support() {
    let m = ndp_spec::parse(
        "/* @autogen define parser P with input = Rec, output = Rec,
            aggregate = { count } */
         typedef struct { uint64_t key; uint32_t v; } Rec;",
    )
    .unwrap();
    let pe = elaborate(&m, "P").unwrap();
    let mut db = NkvDb::default_db();
    db.create_table("t", TableConfig::new(pe)).unwrap();
    db.bulk_load("t", vec![record(1, 0, 0)[..12].to_vec()]).unwrap();
    // Sum was not generated: hardware mode refuses, software works.
    match db.scan_aggregate("t", &[], AggOp::Sum, 1, ExecMode::Hardware) {
        Err(NkvError::Config(msg)) => assert!(msg.contains("sum")),
        other => panic!("expected config error, got {other:?}"),
    }
    let (v, any, _) = db.scan_aggregate("t", &[], AggOp::Sum, 1, ExecMode::Software).unwrap();
    assert!(any);
    assert_eq!(v, 0);
}

#[test]
fn baseline_pes_reject_aggregation_configs() {
    let m = ndp_spec::parse(SENSOR_SPEC).unwrap();
    let pe = elaborate(&m, "Agg").unwrap();
    assert!(ndp_pe::BaselinePe::new(pe).is_err());
}

#[test]
fn unknown_aggregate_name_fails_elaboration() {
    let m = ndp_spec::parse(
        "/* @autogen define parser P with input = T, output = T,
            aggregate = { median } */
         typedef struct { uint32_t x; } T;",
    )
    .unwrap();
    assert!(elaborate(&m, "P").is_err());
}
