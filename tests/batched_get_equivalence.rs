//! Batched-GET differential suite: key-list batching must never change
//! *what* a GET returns, only how much configuration traffic it costs.
//!
//! Every test drives the same key schedule through batched key lists
//! and checks the per-key outcomes against a `BTreeMap` model (and,
//! where it matters, against the legacy per-key path on an identical
//! device):
//!
//! 1. **equivalence**: every backend x batch size {1, 2, 16, 64}
//!    returns byte-identical records for present keys and `Ok(None)`
//!    for absent ones;
//! 2. **batch-of-1 is the legacy path**: a singleton key list folds to
//!    the point-lookup plan and reproduces `get`'s record *and* its
//!    simulated nanoseconds exactly;
//! 3. **fault weather**: transient/correctable flash faults and PE
//!    hangs mid-batch degrade exactly like the per-key path — typed
//!    errors attributed to the right key, never a panic, never silent
//!    wrong data;
//! 4. **descriptor contract at the API**: empty, duplicate and
//!    over-capacity key lists are `NkvError::Config`, before any
//!    device work;
//! 5. **cluster split/merge**: a cluster batch splits per shard and
//!    re-merges to the same bytes as an unbatched per-key fan-out,
//!    and a shard-level hang/power-cut mid-batch names the hole
//!    (`Available`) or fails typed (`Strict`) without disturbing the
//!    other shards' keys.

use cosmos_sim::faults::FaultPlan;
use cosmos_sim::{DeviceFaultKind, DeviceFaultPlan};
use ndp_ir::elaborate;
use ndp_workload::spec::{PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{Paper, PaperGen, PubGraphConfig, SplitMix64};
use nkv::{Backend, ClusterConfig, ExecMode, NkvCluster, NkvDb, NkvError, ReadPolicy, TableConfig};
use std::collections::BTreeMap;

const BATCHES: [usize; 4] = [1, 2, 16, 64];

fn encode(p: &Paper) -> Vec<u8> {
    let mut v = Vec::with_capacity(80);
    p.encode_into(&mut v);
    v
}

/// Tiny LSM thresholds so a few hundred records produce the multi-SST
/// shape whose index walks batching actually shares.
fn table_cfg() -> TableConfig {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let mut cfg = TableConfig::new(elaborate(&m, PAPER_PE).unwrap());
    cfg.lsm.memtable_bytes = 8 * 1024;
    cfg.lsm.c1_sst_limit = 4;
    cfg
}

fn record_for(key: u64) -> Vec<u8> {
    let gen_cfg = PubGraphConfig { papers: 200, refs: 0, seed: 1 };
    let mut p = PaperGen::paper_at(&gen_cfg, key % 200);
    p.id = key;
    encode(&p)
}

/// A store with `n` records spread across the memtable and several
/// overlapping SSTs, plus its model.
fn build_db(n: u64) -> (NkvDb, BTreeMap<u64, Vec<u8>>) {
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    let mut model = BTreeMap::new();
    for key in 1..=n {
        let r = record_for(key);
        db.put("papers", r.clone()).unwrap();
        model.insert(key, r);
        if key % 64 == 0 {
            db.flush("papers").unwrap();
        }
    }
    (db, model)
}

/// The seeded key schedule: mostly present keys, a sprinkle of absent
/// ones, no duplicates within any `max_batch`-sized window (a key list
/// rejects duplicates by contract).
fn key_schedule(seed: u64, n_keys: u64, len: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut keys = Vec::with_capacity(len);
    while keys.len() < len {
        let k = if rng.gen_bool(0.85) {
            1 + rng.gen_u64(n_keys)
        } else {
            n_keys + 1_000 + rng.gen_u64(500)
        };
        let window = keys.len().saturating_sub(63);
        if !keys[window..].contains(&k) {
            keys.push(k);
        }
    }
    keys
}

#[test]
fn every_backend_and_batch_size_matches_the_model() {
    let schedule = key_schedule(0xBA7C, 400, 128);
    for mode in [ExecMode::Hardware, ExecMode::Software] {
        for batch in BATCHES {
            let (mut db, model) = build_db(400);
            for chunk in schedule.chunks(batch) {
                let (results, report) = db
                    .multi_get("papers", chunk, mode)
                    .unwrap_or_else(|e| panic!("mode={mode:?} batch={batch}: multi_get -> {e}"));
                assert_eq!(results.len(), chunk.len(), "mode={mode:?} batch={batch}");
                assert!(report.sim_ns > 0, "mode={mode:?} batch={batch}");
                for (key, res) in chunk.iter().zip(results) {
                    let got = res.unwrap_or_else(|e| {
                        panic!("mode={mode:?} batch={batch}: get({key}) -> {e}")
                    });
                    assert_eq!(
                        got,
                        model.get(key).cloned(),
                        "mode={mode:?} batch={batch}: get({key}) diverged from the model"
                    );
                }
            }
        }
    }
}

#[test]
fn batch_of_one_is_the_legacy_path_to_the_nanosecond() {
    let (mut legacy, _) = build_db(300);
    let (mut batched, _) = build_db(300);
    for mode in [ExecMode::Hardware, ExecMode::Software] {
        for key in [1u64, 77, 150, 299, 300, 9_999] {
            let (want, want_rep) = legacy.get("papers", key, mode).unwrap();
            let (results, got_rep) = batched.multi_get("papers", &[key], mode).unwrap();
            let [got] = <[_; 1]>::try_from(results).unwrap();
            assert_eq!(got.unwrap(), want, "mode={mode:?} key={key}");
            assert_eq!(
                got_rep.sim_ns, want_rep.sim_ns,
                "mode={mode:?} key={key}: a singleton batch must cost exactly the legacy path"
            );
        }
    }
}

#[test]
fn descriptor_shape_violations_are_typed_config_errors() {
    let (mut db, _) = build_db(64);
    let cases: [(&str, Vec<u64>); 3] =
        [("empty", vec![]), ("duplicate", vec![1, 2, 3, 2]), ("over-capacity", (0..600).collect())];
    for (name, keys) in cases {
        match db.multi_get("papers", &keys, ExecMode::Hardware) {
            Err(NkvError::Config(msg)) => {
                assert!(msg.contains("papers"), "{name}: Config error should name the table: {msg}")
            }
            other => panic!("{name} key list must be NkvError::Config, got {other:?}"),
        }
    }
    // Shape checks happen before any device work: a valid follow-up
    // batch still runs on the same handle.
    let (results, _) = db.multi_get("papers", &[1, 2, 3], ExecMode::Hardware).unwrap();
    assert_eq!(results.len(), 3);
}

/// Transient + correctable flash weather: the retry/read-repair layers
/// absorb it, so every batched result still matches the model; the only
/// permissible failures are the same typed errors the per-key path can
/// surface, attributed to the exact key that hit them.
#[test]
fn transient_ecc_weather_never_changes_bytes() {
    let mut injected = 0u64;
    for batch in [2usize, 16, 64] {
        let (mut db, model) = build_db(400);
        db.enable_observability(1 << 14);
        db.platform_mut().install_faults(&FaultPlan {
            seed: 0xECC0 + batch as u64,
            transient_read_p: 0.05,
            correctable_p: 0.10,
            ..FaultPlan::default()
        });
        let schedule = key_schedule(0x5EED + batch as u64, 400, 128);
        for chunk in schedule.chunks(batch) {
            match db.multi_get("papers", chunk, ExecMode::Hardware) {
                Ok((results, _)) => {
                    for (key, res) in chunk.iter().zip(results) {
                        match res {
                            Ok(got) => assert_eq!(
                                got,
                                model.get(key).cloned(),
                                "batch={batch}: get({key}) diverged under ECC weather"
                            ),
                            Err(NkvError::RetriesExhausted { .. } | NkvError::Flash(_)) => {}
                            Err(e) => panic!("batch={batch}: get({key}) -> unexpected {e}"),
                        }
                    }
                }
                // A whole-batch failure may only be the same typed
                // infra errors (e.g. the shared index walk failed).
                Err(NkvError::RetriesExhausted { .. } | NkvError::Flash(_)) => {}
                Err(e) => panic!("batch={batch}: multi_get -> unexpected {e}"),
            }
        }
        // Batch sharing legitimately shrinks the flash-read count (and
        // with it the fault-roll count), so injection is asserted over
        // the whole campaign, not per batch size.
        let health = db.health_report();
        injected += health.flash.transient_failures + health.flash.correctable_hits;
    }
    assert!(injected > 0, "the campaign never injected a fault");
}

/// PE hangs firing mid-batch: the watchdog retires the PE and the walk
/// falls back to software for the remaining keys — same bytes, typed
/// health counters, no panic.
#[test]
fn pe_hang_mid_batch_falls_back_without_corruption() {
    for batch in [2usize, 16, 64] {
        let (mut db, model) = build_db(400);
        db.enable_observability(1 << 14);
        db.platform_mut().install_faults(&FaultPlan {
            seed: 0x4A6 + batch as u64,
            pe_hang_p: 0.25,
            ..FaultPlan::default()
        });
        let schedule = key_schedule(0xF00D, 400, 96);
        for chunk in schedule.chunks(batch) {
            let (results, _) = db
                .multi_get("papers", chunk, ExecMode::Hardware)
                .unwrap_or_else(|e| panic!("batch={batch}: multi_get -> {e}"));
            for (key, res) in chunk.iter().zip(results) {
                let got = res.unwrap_or_else(|e| panic!("batch={batch}: get({key}) -> {e}"));
                assert_eq!(
                    got,
                    model.get(key).cloned(),
                    "batch={batch}: get({key}) diverged across a PE hang"
                );
            }
        }
        let health = db.health_report();
        assert!(health.pe_hangs_injected > 0, "batch={batch}: the campaign never hung a PE");
        assert!(
            health.watchdog_trips > 0 || health.sw_fallback_blocks > 0,
            "batch={batch}: a hang must surface in the health counters"
        );
    }
}

// ------------------------------------------------------------- cluster

fn build_cluster(
    devices: usize,
    policy: ReadPolicy,
    n: u64,
) -> (NkvCluster, BTreeMap<u64, Vec<u8>>) {
    let mut cluster =
        NkvCluster::new(ClusterConfig { devices, read_policy: policy, ..ClusterConfig::default() })
            .unwrap();
    cluster.create_table("papers", table_cfg()).unwrap();
    let records: Vec<Vec<u8>> = (1..=n).map(record_for).collect();
    let model: BTreeMap<u64, Vec<u8>> = (1..=n).map(|k| (k, record_for(k))).collect();
    cluster.bulk_load("papers", records).unwrap();
    cluster.persist().unwrap();
    (cluster, model)
}

#[test]
fn cluster_batches_split_per_shard_and_merge_like_unbatched_fanout() {
    let schedule = key_schedule(0xC1u64, 400, 128);
    for batch in BATCHES {
        let (mut batched, model) = build_cluster(4, ReadPolicy::Available, 400);
        let (mut fanout, _) = build_cluster(4, ReadPolicy::Available, 400);
        for chunk in schedule.chunks(batch) {
            let got = batched.multi_get("papers", chunk, Backend::Hardware).unwrap();
            assert!(got.missing_shards.is_empty(), "batch={batch}");
            assert_eq!(got.results.len(), chunk.len(), "batch={batch}");
            for (key, res) in chunk.iter().zip(got.results) {
                let rec = res.unwrap_or_else(|e| panic!("batch={batch}: get({key}) -> {e}"));
                // Model equivalence and per-key fan-out equivalence.
                assert_eq!(rec, model.get(key).cloned(), "batch={batch}: get({key})");
                let single = fanout.get("papers", *key, Backend::Hardware).unwrap();
                assert_eq!(
                    rec, single.record,
                    "batch={batch}: get({key}) diverged from the unbatched fan-out"
                );
            }
        }
    }
}

#[test]
fn shard_fault_mid_batch_names_the_hole_or_fails_typed() {
    for kind in [DeviceFaultKind::Hang, DeviceFaultKind::PowerCut] {
        // Available: victim keys read Ok(None) + missing_shards names
        // the victim; other shards' keys are untouched.
        let (mut cluster, model) = build_cluster(4, ReadPolicy::Available, 400);
        let victim = 2usize;
        cluster.install_device_fault(victim, DeviceFaultPlan { kind, after_ops: 0 }).unwrap();
        let keys: Vec<u64> = (1..=64).collect();
        let mut saw_missing = false;
        for _ in 0..6 {
            let got = cluster.multi_get("papers", &keys, Backend::Hardware).unwrap();
            for (key, res) in keys.iter().zip(&got.results) {
                let rec = res.as_ref().unwrap_or_else(|e| panic!("{kind:?}: get({key}) -> {e}"));
                if cluster.shard_for_key(*key) == victim && !got.missing_shards.is_empty() {
                    assert_eq!(*rec, None, "{kind:?}: victim key {key} must read as a hole");
                } else {
                    assert_eq!(
                        *rec,
                        model.get(key).cloned(),
                        "{kind:?}: surviving key {key} diverged"
                    );
                }
            }
            if !got.missing_shards.is_empty() {
                assert_eq!(got.missing_shards, vec![victim], "{kind:?}");
                saw_missing = true;
            }
        }
        assert!(saw_missing, "{kind:?}: the shard fault never surfaced on the batch");

        // Strict: the same batch is a typed error naming the victim.
        let (mut strict, _) = build_cluster(4, ReadPolicy::Strict, 400);
        strict.install_device_fault(victim, DeviceFaultPlan { kind, after_ops: 0 }).unwrap();
        let mut failed = false;
        for _ in 0..6 {
            match strict.multi_get("papers", &keys, Backend::Hardware) {
                Ok(_) => {}
                Err(NkvError::ShardUnavailable { shard, .. }) => {
                    assert_eq!(shard, victim, "{kind:?}");
                    failed = true;
                    break;
                }
                Err(e) => panic!("{kind:?}: strict multi_get -> unexpected {e}"),
            }
        }
        assert!(failed, "{kind:?}: strict policy must surface the dead shard");
    }
}
