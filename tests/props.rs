//! Property-based tests over the core invariants of the stack.
//!
//! Strategies generate *specification sources* (random struct shapes),
//! random tuple bytes, random filter chains and random KV workloads;
//! properties assert the invariants DESIGN.md calls out: layout
//! well-formedness, codec round-trips, filter/transform semantics against
//! naive models, LSM linearizability against a `BTreeMap`, and storage
//! integrity primitives.

use ndp_ir::{elaborate, CmpOp, PeConfig};
use ndp_pe::oracle::{BlockProcessor, FilterRule, OpTable};
use ndp_pe::tuple::{apply_transform, LayoutCodec, Tuple};
use ndp_spec::PrimTy;
use proptest::prelude::*;

// ---------------------------------------------------------------- helpers

/// A randomly shaped field for spec-source generation.
#[derive(Debug, Clone)]
enum FieldShape {
    Prim(&'static str),
    Array(&'static str, usize),
    Str { prefix: u32, total: usize },
}

fn prim_name() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t",
        "int64_t", "float", "double",
    ])
}

fn field_shape() -> impl Strategy<Value = FieldShape> {
    prop_oneof![
        4 => prim_name().prop_map(FieldShape::Prim),
        2 => (prim_name(), 1..5usize).prop_map(|(p, n)| FieldShape::Array(p, n)),
        1 => (prop::sample::select(vec![1u32, 2, 4, 8]), 0..24usize)
            .prop_map(|(prefix, extra)| FieldShape::Str {
                prefix,
                total: prefix as usize + extra,
            }),
    ]
}

/// Render a random struct spec with an identity parser.
fn spec_source(fields: &[FieldShape]) -> String {
    let mut body = String::new();
    for (i, f) in fields.iter().enumerate() {
        match f {
            FieldShape::Prim(p) => body.push_str(&format!("{p} f{i}; ")),
            FieldShape::Array(p, n) => body.push_str(&format!("{p} f{i}[{n}]; ")),
            FieldShape::Str { prefix, total } => body.push_str(&format!(
                "/* @string(prefix = {prefix}) */ uint8_t f{i}[{total}]; "
            )),
        }
    }
    format!(
        "/* @autogen define parser P with input = T, output = T */
         typedef struct {{ {body} }} T;"
    )
}

fn arb_config() -> impl Strategy<Value = PeConfig> {
    prop::collection::vec(field_shape(), 1..8).prop_map(|fields| {
        let src = spec_source(&fields);
        let m = ndp_spec::parse(&src).expect("generated source parses");
        elaborate(&m, "P").expect("generated source elaborates")
    })
}

// ---------------------------------------------------------- layout props

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Layout invariants: fields tile the tuple contiguously, every
    /// relevant field gets a unique lane, lane width is the max field
    /// width, padded size is lanes × lane width + postfix bits.
    #[test]
    fn layout_invariants(cfg in arb_config()) {
        let l = &cfg.input;
        let mut offset = 0u64;
        let mut lanes_seen = std::collections::HashSet::new();
        for f in &l.fields {
            prop_assert_eq!(f.offset_bits, offset, "field {} not contiguous", f.path);
            offset += u64::from(f.width_bits);
            if let Some(lane) = f.lane {
                prop_assert!(lanes_seen.insert(lane), "duplicate lane");
                prop_assert!(f.width_bits <= l.lane_bits);
            }
        }
        prop_assert_eq!(offset, l.tuple_bits);
        prop_assert_eq!(lanes_seen.len() as u32, l.lanes);
        prop_assert_eq!(
            l.padded_bits(),
            u64::from(l.lanes) * u64::from(l.lane_bits) + l.postfix_bits
        );
        let max_rel = l.relevant_fields().map(|f| f.width_bits).max().unwrap();
        prop_assert_eq!(l.lane_bits, max_rel);
    }

    /// Parser/printer round-trip: printing a parsed module and re-parsing
    /// it preserves semantics (the printer is the span-free normal form).
    #[test]
    fn spec_print_parse_round_trips(fields in prop::collection::vec(field_shape(), 1..8)) {
        let src = spec_source(&fields);
        let m1 = ndp_spec::parse(&src).expect("generated source parses");
        let printed = ndp_spec::print_module(&m1);
        let m2 = ndp_spec::parse(&printed).expect("printed source re-parses");
        prop_assert_eq!(ndp_spec::print_module(&m1), ndp_spec::print_module(&m2));
    }

    /// Codec round-trip: unpack→pack is the identity on arbitrary bytes.
    #[test]
    fn codec_round_trips(cfg in arb_config(), seed in any::<u64>()) {
        let codec = LayoutCodec::new(&cfg.input);
        let n = codec.tuple_bytes();
        let mut bytes = vec![0u8; n];
        let mut state = seed | 1;
        for b in &mut bytes {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 33) as u8;
        }
        let t = codec.unpack(&bytes);
        let mut out = Vec::new();
        codec.pack_into(&t, &mut out);
        prop_assert_eq!(out, bytes);
    }

    /// Identity transforms preserve tuples exactly.
    #[test]
    fn identity_transform_is_identity(cfg in arb_config(), seed in any::<u64>()) {
        let codec = LayoutCodec::new(&cfg.input);
        let mut bytes = vec![0u8; codec.tuple_bytes()];
        let mut state = seed | 1;
        for b in &mut bytes {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 29) as u8;
        }
        let input = codec.unpack(&bytes);
        let mut output = Tuple::default();
        apply_transform(&cfg.transform, &codec, &codec, &input, &mut output);
        prop_assert_eq!(output, input);
    }
}

// ---------------------------------------------------------- filter props

/// Naive reference model of one comparison, written independently of
/// `CmpOp::eval` (full-width integer semantics only; the strategy below
/// restricts lanes accordingly).
fn naive_cmp(op: u32, prim: PrimTy, a: u64, b: u64) -> Option<bool> {
    let (a, b) = match prim {
        PrimTy::U8 | PrimTy::U16 | PrimTy::U32 | PrimTy::U64 => (i128::from(a), i128::from(b)),
        PrimTy::I8 => (i128::from(a as u8 as i8), i128::from(b as u8 as i8)),
        PrimTy::I16 => (i128::from(a as u16 as i16), i128::from(b as u16 as i16)),
        PrimTy::I32 => (i128::from(a as u32 as i32), i128::from(b as u32 as i32)),
        PrimTy::I64 => (i128::from(a as i64), i128::from(b as i64)),
        PrimTy::F32 | PrimTy::F64 => return None,
    };
    Some(match op {
        0 => true,
        1 => a != b,
        2 => a == b,
        3 => a > b,
        4 => a >= b,
        5 => a < b,
        6 => a <= b,
        _ => false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The oracle's filter chain equals the conjunction of naive
    /// comparisons for every non-float lane.
    #[test]
    fn filter_chain_matches_naive_model(
        cfg in arb_config(),
        seed in any::<u64>(),
        rule_seeds in prop::collection::vec((any::<u32>(), 0..7u32, any::<u64>()), 1..4),
    ) {
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let codec = LayoutCodec::new(&cfg.input);
        let mut bytes = vec![0u8; codec.tuple_bytes()];
        let mut state = seed | 1;
        for b in &mut bytes {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 31) as u8;
        }
        let t = codec.unpack(&bytes);
        let rules: Vec<FilterRule> = rule_seeds
            .iter()
            .map(|&(lane_seed, op, value)| FilterRule {
                lane: lane_seed % cfg.input.lanes,
                op_code: op,
                value,
            })
            .collect();
        // Skip tuples whose selected lanes are float-typed (naive model
        // doesn't cover IEEE semantics; CmpOp's own unit tests do).
        let mut expected = true;
        for r in &rules {
            let prim = codec.lane_prim(r.lane).unwrap();
            match naive_cmp(r.op_code, prim, t.lanes[r.lane as usize], r.value) {
                Some(pass) => expected &= pass,
                None => return Ok(()),
            }
        }
        prop_assert_eq!(bp.tuple_passes(&bytes, &rules, &ops), expected);
    }

    /// CmpOp total-order consistency: exactly one of <, ==, > holds for
    /// non-NaN operands, and the derived operators agree.
    #[test]
    fn cmp_op_order_consistency(a in any::<u64>(), b in any::<u64>()) {
        for prim in [PrimTy::U32, PrimTy::I64, PrimTy::U8, PrimTy::I16] {
            let lt = CmpOp::Lt.eval(prim, a, b);
            let eq = CmpOp::Eq.eval(prim, a, b);
            let gt = CmpOp::Gt.eval(prim, a, b);
            prop_assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
            prop_assert_eq!(CmpOp::Ge.eval(prim, a, b), !lt);
            prop_assert_eq!(CmpOp::Le.eval(prim, a, b), !gt);
            prop_assert_eq!(CmpOp::Ne.eval(prim, a, b), !eq);
            prop_assert!(CmpOp::Nop.eval(prim, a, b));
        }
    }

    /// The cycle-level PE equals the byte oracle on arbitrary blocks and
    /// single rules (deep equivalence of the two execution models).
    #[test]
    fn cycle_model_equals_oracle(
        cfg in arb_config(),
        seed in any::<u64>(),
        lane_seed in any::<u32>(),
        op in 0..7u32,
        value in any::<u64>(),
        n_tuples in 1..40usize,
    ) {
        use ndp_pe::regs::offsets;
        use ndp_pe::{MemBus, Mmio, PeDevice, PeSim, VecMem};
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let ts = cfg.input.tuple_bytes() as usize;
        let mut input = vec![0u8; n_tuples * ts];
        let mut state = seed | 1;
        for byte in &mut input {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *byte = (state >> 30) as u8;
        }
        let rule = FilterRule { lane: lane_seed % cfg.input.lanes, op_code: op, value };

        let mut expected = Vec::new();
        let stats = bp.process_block(&input, std::slice::from_ref(&rule), &ops, &mut expected);

        let mut pe = PeSim::new(cfg.clone());
        let mut mem = VecMem::new(1 << 20);
        mem.write_bytes(0, &input);
        pe.mmio_write(offsets::SRC_LEN, input.len() as u32);
        pe.mmio_write(offsets::DST_ADDR_LO, 0x8_0000);
        pe.mmio_write(offsets::DST_CAPACITY, 1 << 18);
        pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_FIELD, rule.lane);
        pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_OP, rule.op_code);
        pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_VAL_LO, rule.value as u32);
        pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_VAL_HI, (rule.value >> 32) as u32);
        pe.mmio_write(offsets::START, 1);
        let res = pe.execute(&mut mem);
        prop_assert_eq!(res.tuples_in, stats.tuples_in);
        prop_assert_eq!(res.tuples_out, stats.tuples_out);
        let mut got = vec![0u8; expected.len()];
        mem.read_bytes(0x8_0000, &mut got);
        prop_assert_eq!(got, expected);
    }
}

// ------------------------------------------------------------- LSM props

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The LSM tree (through flush and compaction) is observationally
    /// equivalent to a `BTreeMap` under random put/delete sequences.
    #[test]
    fn lsm_matches_btreemap_model(
        ops_seq in prop::collection::vec((1u64..64, any::<bool>(), any::<u8>()), 1..300),
        flush_every in 10..50usize,
    ) {
        use nkv::lsm::{LsmConfig, LsmTree};
        use nkv::memtable::Entry;
        use nkv::placement::PageAllocator;
        use nkv::sst::{read_block, search_block};
        use cosmos_sim::{FlashArray, FlashConfig};

        let mut flash = FlashArray::new(FlashConfig::default());
        let mut alloc = PageAllocator::new(flash.config());
        let cfg = LsmConfig { memtable_bytes: 1 << 14, c1_sst_limit: 2, ..LsmConfig::default() };
        let mut lsm = LsmTree::new("t", 16, cfg, 5);
        let mut model = std::collections::BTreeMap::new();

        let rec = |key: u64, tag: u8| {
            let mut v = key.to_le_bytes().to_vec();
            v.resize(16, tag);
            v
        };

        for (i, &(key, is_put, tag)) in ops_seq.iter().enumerate() {
            if is_put {
                lsm.put(key, rec(key, tag));
                model.insert(key, rec(key, tag));
            } else {
                lsm.delete(key);
                model.remove(&key);
            }
            if i % flush_every == flush_every - 1 {
                lsm.flush(&mut flash, &mut alloc, 0).unwrap();
            }
            if lsm.should_compact(0) {
                lsm.compact(&mut flash, &mut alloc, 0, 0).unwrap();
            }
        }

        // Reference read path over the final state.
        for key in 1u64..64 {
            let got = match lsm.memtable_get(key) {
                Some(Entry::Value(v)) => Some(v.clone()),
                Some(Entry::Tombstone) => None,
                None => {
                    let mut found = None;
                    for sst in lsm.candidate_ssts(key) {
                        if sst.is_tombstoned(key) {
                            break;
                        }
                        if !sst.may_contain(key) {
                            continue;
                        }
                        if let Some(bi) = sst.block_for(key) {
                            let (_, data) = read_block(&mut flash, sst, bi, 0).unwrap();
                            if let Some(r) = search_block(&data, 16, key) {
                                found = Some(r.to_vec());
                                break;
                            }
                        }
                    }
                    found
                }
            };
            prop_assert_eq!(&got, &model.get(&key).cloned(), "key {}", key);
        }
    }

    /// SST index serialization round-trips for arbitrary record sizes
    /// and key sets.
    #[test]
    fn sst_index_round_trips(
        keys in prop::collection::btree_set(1u64..100_000, 1..200),
        record_bytes in prop::sample::select(vec![8usize, 12, 16, 20, 40, 80]),
    ) {
        use nkv::placement::PageAllocator;
        use nkv::sst::{deserialize_index, serialize_index, SstBuilder};
        use cosmos_sim::{FlashArray, FlashConfig};

        let mut flash = FlashArray::new(FlashConfig::default());
        let mut alloc = PageAllocator::new(flash.config());
        let mut b = SstBuilder::new(3, 1, record_bytes, 32 * 1024, "t");
        for &k in &keys {
            let mut rec = k.to_le_bytes().to_vec();
            rec.resize(record_bytes, 0x5A);
            b.add_record(k, &rec).unwrap();
        }
        let (meta, _) = b.finish(&mut flash, &mut alloc, 0).unwrap();
        let back = deserialize_index(&serialize_index(&meta)).unwrap();
        prop_assert_eq!(back.blocks, meta.blocks);
        prop_assert_eq!(back.n_records, meta.n_records);
        prop_assert_eq!((back.min_key, back.max_key), (meta.min_key, meta.max_key));
    }

    /// CRC-32C detects any single-byte corruption in a block.
    #[test]
    fn crc_detects_any_single_byte_change(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        pos_seed in any::<usize>(),
        delta in 1u8..=255,
    ) {
        let clean = nkv::util::crc32c(&data);
        let mut corrupted = data.clone();
        let pos = pos_seed % corrupted.len();
        corrupted[pos] ^= delta;
        prop_assert_ne!(nkv::util::crc32c(&corrupted), clean);
    }

    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_never_false_negative(
        keys in prop::collection::hash_set(any::<u64>(), 1..500),
        bits_per_key in 4u32..16,
    ) {
        let mut bloom = nkv::util::Bloom::new(keys.len(), bits_per_key);
        for &k in &keys {
            bloom.insert(k);
        }
        for &k in &keys {
            prop_assert!(bloom.may_contain(k));
        }
    }
}
