//! Property-based tests over the core invariants of the stack.
//!
//! Generators produce *specification sources* (random struct shapes),
//! random tuple bytes, random filter chains and random KV workloads from
//! a seeded [`SplitMix64`] stream (the workspace builds offline, so no
//! external proptest dependency); properties assert the invariants
//! DESIGN.md calls out: layout well-formedness, codec round-trips,
//! filter/transform semantics against naive models, LSM linearizability
//! against a `BTreeMap`, and storage integrity primitives. Every case is
//! deterministic in its loop index, so a failure message's case number
//! reproduces it exactly.

use ndp_ir::{elaborate, CmpOp, PeConfig};
use ndp_pe::oracle::{BlockProcessor, FilterRule, OpTable};
use ndp_pe::tuple::{apply_transform, LayoutCodec, Tuple};
use ndp_spec::PrimTy;
use ndp_workload::SplitMix64;

// ---------------------------------------------------------------- helpers

/// A randomly shaped field for spec-source generation.
#[derive(Debug, Clone)]
enum FieldShape {
    Prim(&'static str),
    Array(&'static str, usize),
    Str { prefix: u32, total: usize },
}

const PRIMS: &[&str] = &[
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t",
    "float", "double",
];

fn gen_field_shape(rng: &mut SplitMix64) -> FieldShape {
    // Weighted 4:2:1 like the original strategy.
    match rng.gen_u32(7) {
        0..=3 => FieldShape::Prim(PRIMS[rng.gen_usize(PRIMS.len())]),
        4 | 5 => FieldShape::Array(PRIMS[rng.gen_usize(PRIMS.len())], 1 + rng.gen_usize(4)),
        _ => {
            let prefix = [1u32, 2, 4, 8][rng.gen_usize(4)];
            FieldShape::Str { prefix, total: prefix as usize + rng.gen_usize(24) }
        }
    }
}

fn gen_fields(rng: &mut SplitMix64) -> Vec<FieldShape> {
    (0..1 + rng.gen_usize(7)).map(|_| gen_field_shape(rng)).collect()
}

/// Render a random struct spec with an identity parser.
fn spec_source(fields: &[FieldShape]) -> String {
    let mut body = String::new();
    for (i, f) in fields.iter().enumerate() {
        match f {
            FieldShape::Prim(p) => body.push_str(&format!("{p} f{i}; ")),
            FieldShape::Array(p, n) => body.push_str(&format!("{p} f{i}[{n}]; ")),
            FieldShape::Str { prefix, total } => {
                body.push_str(&format!("/* @string(prefix = {prefix}) */ uint8_t f{i}[{total}]; "))
            }
        }
    }
    format!(
        "/* @autogen define parser P with input = T, output = T */
         typedef struct {{ {body} }} T;"
    )
}

fn gen_config(rng: &mut SplitMix64) -> PeConfig {
    let src = spec_source(&gen_fields(rng));
    let m = ndp_spec::parse(&src).expect("generated source parses");
    elaborate(&m, "P").expect("generated source elaborates")
}

fn random_bytes(rng: &mut SplitMix64, n: usize) -> Vec<u8> {
    let mut v = vec![0u8; n];
    rng.fill_bytes(&mut v);
    v
}

// ---------------------------------------------------------- layout props

/// Layout invariants: fields tile the tuple contiguously, every relevant
/// field gets a unique lane, lane width is the max field width, padded
/// size is lanes × lane width + postfix bits.
#[test]
fn layout_invariants() {
    for case in 0..32u64 {
        let cfg = gen_config(&mut SplitMix64::new(0x1A10 + case));
        let l = &cfg.input;
        let mut offset = 0u64;
        let mut lanes_seen = std::collections::HashSet::new();
        for f in &l.fields {
            assert_eq!(f.offset_bits, offset, "case {case}: field {} not contiguous", f.path);
            offset += u64::from(f.width_bits);
            if let Some(lane) = f.lane {
                assert!(lanes_seen.insert(lane), "case {case}: duplicate lane");
                assert!(f.width_bits <= l.lane_bits, "case {case}");
            }
        }
        assert_eq!(offset, l.tuple_bits, "case {case}");
        assert_eq!(lanes_seen.len() as u32, l.lanes, "case {case}");
        assert_eq!(
            l.padded_bits(),
            u64::from(l.lanes) * u64::from(l.lane_bits) + l.postfix_bits,
            "case {case}"
        );
        let max_rel = l.relevant_fields().map(|f| f.width_bits).max().unwrap();
        assert_eq!(l.lane_bits, max_rel, "case {case}");
    }
}

/// Parser/printer round-trip: printing a parsed module and re-parsing it
/// preserves semantics (the printer is the span-free normal form).
#[test]
fn spec_print_parse_round_trips() {
    for case in 0..32u64 {
        let src = spec_source(&gen_fields(&mut SplitMix64::new(0x2B20 + case)));
        let m1 = ndp_spec::parse(&src).expect("generated source parses");
        let printed = ndp_spec::print_module(&m1);
        let m2 = ndp_spec::parse(&printed).expect("printed source re-parses");
        assert_eq!(ndp_spec::print_module(&m1), ndp_spec::print_module(&m2), "case {case}");
    }
}

/// Codec round-trip: unpack→pack is the identity on arbitrary bytes.
#[test]
fn codec_round_trips() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0x3C30 + case);
        let cfg = gen_config(&mut rng);
        let codec = LayoutCodec::new(&cfg.input);
        let bytes = random_bytes(&mut rng, codec.tuple_bytes());
        let t = codec.unpack(&bytes);
        let mut out = Vec::new();
        codec.pack_into(&t, &mut out);
        assert_eq!(out, bytes, "case {case}");
    }
}

/// Identity transforms preserve tuples exactly.
#[test]
fn identity_transform_is_identity() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0x4D40 + case);
        let cfg = gen_config(&mut rng);
        let codec = LayoutCodec::new(&cfg.input);
        let bytes = random_bytes(&mut rng, codec.tuple_bytes());
        let input = codec.unpack(&bytes);
        let mut output = Tuple::default();
        apply_transform(&cfg.transform, &codec, &codec, &input, &mut output);
        assert_eq!(output, input, "case {case}");
    }
}

// ---------------------------------------------------------- filter props

/// Naive reference model of one comparison, written independently of
/// `CmpOp::eval` (full-width integer semantics only; float-typed lanes
/// are skipped by the caller).
fn naive_cmp(op: u32, prim: PrimTy, a: u64, b: u64) -> Option<bool> {
    let (a, b) = match prim {
        PrimTy::U8 | PrimTy::U16 | PrimTy::U32 | PrimTy::U64 => (i128::from(a), i128::from(b)),
        PrimTy::I8 => (i128::from(a as u8 as i8), i128::from(b as u8 as i8)),
        PrimTy::I16 => (i128::from(a as u16 as i16), i128::from(b as u16 as i16)),
        PrimTy::I32 => (i128::from(a as u32 as i32), i128::from(b as u32 as i32)),
        PrimTy::I64 => (i128::from(a as i64), i128::from(b as i64)),
        PrimTy::F32 | PrimTy::F64 => return None,
    };
    Some(match op {
        0 => true,
        1 => a != b,
        2 => a == b,
        3 => a > b,
        4 => a >= b,
        5 => a < b,
        6 => a <= b,
        _ => false,
    })
}

/// The oracle's filter chain equals the conjunction of naive comparisons
/// for every non-float lane.
#[test]
fn filter_chain_matches_naive_model() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0x5E50 + case);
        let cfg = gen_config(&mut rng);
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let codec = LayoutCodec::new(&cfg.input);
        let bytes = random_bytes(&mut rng, codec.tuple_bytes());
        let t = codec.unpack(&bytes);
        let rules: Vec<FilterRule> = (0..1 + rng.gen_usize(3))
            .map(|_| FilterRule {
                lane: rng.gen_u32(cfg.input.lanes),
                op_code: rng.gen_u32(7),
                value: rng.next_u64(),
            })
            .collect();
        // Skip tuples whose selected lanes are float-typed (the naive
        // model doesn't cover IEEE semantics; CmpOp's unit tests do).
        let mut expected = true;
        let mut all_integer = true;
        for r in &rules {
            let prim = codec.lane_prim(r.lane).unwrap();
            match naive_cmp(r.op_code, prim, t.lanes[r.lane as usize], r.value) {
                Some(pass) => expected &= pass,
                None => {
                    all_integer = false;
                    break;
                }
            }
        }
        if all_integer {
            assert_eq!(bp.tuple_passes(&bytes, &rules, &ops), expected, "case {case}");
        }
    }
}

/// CmpOp total-order consistency: exactly one of <, ==, > holds for
/// non-NaN operands, and the derived operators agree.
#[test]
fn cmp_op_order_consistency() {
    let mut rng = SplitMix64::new(0x6F60);
    for case in 0..48u64 {
        let (a, b) = (rng.next_u64(), if case % 5 == 0 { 0 } else { rng.next_u64() });
        for prim in [PrimTy::U32, PrimTy::I64, PrimTy::U8, PrimTy::I16] {
            let lt = CmpOp::Lt.eval(prim, a, b);
            let eq = CmpOp::Eq.eval(prim, a, b);
            let gt = CmpOp::Gt.eval(prim, a, b);
            assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1, "case {case}");
            assert_eq!(CmpOp::Ge.eval(prim, a, b), !lt, "case {case}");
            assert_eq!(CmpOp::Le.eval(prim, a, b), !gt, "case {case}");
            assert_eq!(CmpOp::Ne.eval(prim, a, b), !eq, "case {case}");
            assert!(CmpOp::Nop.eval(prim, a, b), "case {case}");
        }
    }
}

/// The cycle-level PE equals the byte oracle on arbitrary blocks and
/// single rules (deep equivalence of the two execution models).
#[test]
fn cycle_model_equals_oracle() {
    use ndp_pe::regs::offsets;
    use ndp_pe::{MemBus, Mmio, PeDevice, PeSim, VecMem};
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0x7A70 + case);
        let cfg = gen_config(&mut rng);
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let ts = cfg.input.tuple_bytes() as usize;
        let n_tuples = 1 + rng.gen_usize(39);
        let input = random_bytes(&mut rng, n_tuples * ts);
        let rule = FilterRule {
            lane: rng.gen_u32(cfg.input.lanes),
            op_code: rng.gen_u32(7),
            value: rng.next_u64(),
        };

        let mut expected = Vec::new();
        let stats = bp.process_block(&input, std::slice::from_ref(&rule), &ops, &mut expected);

        let mut pe = PeSim::new(cfg.clone());
        let mut mem = VecMem::new(1 << 20);
        mem.write_bytes(0, &input);
        pe.mmio_write(offsets::SRC_LEN, input.len() as u32);
        pe.mmio_write(offsets::DST_ADDR_LO, 0x8_0000);
        pe.mmio_write(offsets::DST_CAPACITY, 1 << 18);
        pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_FIELD, rule.lane);
        pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_OP, rule.op_code);
        pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_VAL_LO, rule.value as u32);
        pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_VAL_HI, (rule.value >> 32) as u32);
        pe.mmio_write(offsets::START, 1);
        let res = pe.execute(&mut mem);
        assert_eq!(res.tuples_in, stats.tuples_in, "case {case}");
        assert_eq!(res.tuples_out, stats.tuples_out, "case {case}");
        let mut got = vec![0u8; expected.len()];
        mem.read_bytes(0x8_0000, &mut got);
        assert_eq!(got, expected, "case {case}");
    }
}

/// Hardware performance-counter conservation on arbitrary blocks and
/// rules: every tuple that enters the pipeline either leaves it or is
/// dropped by exactly one filtering stage, and every cycle is either
/// active or idle. The counters are cumulative across blocks until the
/// `CNT_CTRL` reset.
#[test]
fn perf_counters_conserve_tuples_and_cycles() {
    use ndp_pe::regs::offsets;
    use ndp_pe::{MemBus, Mmio, PeDevice, PeSim, VecMem};
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xCF20 + case);
        let cfg = gen_config(&mut rng);
        let ts = cfg.input.tuple_bytes() as usize;
        let mut pe = PeSim::new(cfg.clone());
        let mut mem = VecMem::new(1 << 20);
        let mut total_cycles = 0u64;
        let mut total_in = 0u64;
        for _block in 0..2 {
            let n_tuples = 1 + rng.gen_usize(39);
            let input = random_bytes(&mut rng, n_tuples * ts);
            mem.write_bytes(0, &input);
            let rule = FilterRule {
                lane: rng.gen_u32(cfg.input.lanes),
                op_code: rng.gen_u32(7),
                value: rng.next_u64(),
            };
            pe.mmio_write(offsets::SRC_LEN, input.len() as u32);
            pe.mmio_write(offsets::DST_ADDR_LO, 0x8_0000);
            pe.mmio_write(offsets::DST_CAPACITY, 1 << 18);
            pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_FIELD, rule.lane);
            pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_OP, rule.op_code);
            pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_VAL_LO, rule.value as u32);
            pe.mmio_write(offsets::STAGE_BASE + offsets::STAGE_VAL_HI, (rule.value >> 32) as u32);
            pe.mmio_write(offsets::START, 1);
            let res = pe.execute(&mut mem);
            total_cycles += res.cycles;
            total_in += u64::from(res.tuples_in);
        }
        let perf = pe.perf();
        assert_eq!(perf.tuples_in, total_in, "case {case}: counters accumulate across blocks");
        assert_eq!(
            perf.tuples_in,
            perf.tuples_out + perf.dropped_total(),
            "case {case}: tuples_in = tuples_out + stage drops"
        );
        assert_eq!(
            perf.active + perf.idle,
            total_cycles,
            "case {case}: every cycle is active or idle"
        );
        pe.reset_perf();
        assert_eq!(pe.perf().tuples_in, 0, "case {case}: CNT_CTRL clears the bank");
    }
}

/// A latency histogram accounts for exactly the recorded samples: the
/// bucket populations sum to the record count, the max is exact, and
/// quantiles are monotone with upper bounds never below the true value
/// at that rank.
#[test]
fn latency_histogram_counts_every_record() {
    use nkv::LatencyHistogram;
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xD030 + case);
        let mut hist = LatencyHistogram::new();
        let n = 1 + rng.gen_usize(499);
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            // Span the full dynamic range: ns .. minutes.
            let v = rng.next_u64() >> rng.gen_u32(64);
            hist.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        assert_eq!(hist.count(), n as u64, "case {case}: every record counted");
        assert_eq!(
            hist.buckets().iter().sum::<u64>(),
            n as u64,
            "case {case}: bucket populations sum to the count"
        );
        assert_eq!(hist.max(), *samples.last().unwrap(), "case {case}: max is exact");
        let mut prev = 0;
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let est = hist.quantile(q);
            assert!(est >= prev, "case {case}: quantiles are monotone");
            // Same nearest-rank definition as `quantile`: the
            // ceil(q*n)-th smallest sample (1-indexed).
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            assert!(
                est >= samples[rank],
                "case {case}: q{q} bound {est} below true value {}",
                samples[rank]
            );
            prev = est;
        }
    }
}

// ------------------------------------------------------------- LSM props

/// The LSM tree (through flush and compaction) is observationally
/// equivalent to a `BTreeMap` under random put/delete sequences.
#[test]
fn lsm_matches_btreemap_model() {
    use cosmos_sim::{FlashArray, FlashConfig};
    use nkv::lsm::{LsmConfig, LsmTree};
    use nkv::memtable::Entry;
    use nkv::placement::PageAllocator;
    use nkv::sst::{read_block, search_block};

    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x8B80 + case);
        let mut flash = FlashArray::new(FlashConfig::default());
        let mut alloc = PageAllocator::new(flash.config());
        let cfg = LsmConfig { memtable_bytes: 1 << 14, c1_sst_limit: 2, ..LsmConfig::default() };
        let mut lsm = LsmTree::new("t", 16, cfg, 5);
        let mut model = std::collections::BTreeMap::new();

        let rec = |key: u64, tag: u8| {
            let mut v = key.to_le_bytes().to_vec();
            v.resize(16, tag);
            v
        };

        let n_ops = 1 + rng.gen_usize(299);
        let flush_every = 10 + rng.gen_usize(40);
        for i in 0..n_ops {
            let key = rng.gen_range_u64(1, 64);
            let tag = rng.next_u32() as u8;
            if rng.gen_bool(0.5) {
                lsm.put(key, rec(key, tag));
                model.insert(key, rec(key, tag));
            } else {
                lsm.delete(key);
                model.remove(&key);
            }
            if i % flush_every == flush_every - 1 {
                lsm.flush(&mut flash, &mut alloc, 0).unwrap();
            }
            if lsm.should_compact(0) {
                lsm.compact(&mut flash, &mut alloc, 0, 0).unwrap();
            }
        }

        // Reference read path over the final state.
        for key in 1u64..64 {
            let got = match lsm.memtable_get(key) {
                Some(Entry::Value(v)) => Some(v.clone()),
                Some(Entry::Tombstone) => None,
                None => {
                    let mut found = None;
                    for sst in lsm.candidate_ssts(key) {
                        if sst.is_tombstoned(key) {
                            break;
                        }
                        if !sst.may_contain(key) {
                            continue;
                        }
                        if let Some(bi) = sst.block_for(key) {
                            let (_, data) = read_block(&mut flash, sst, bi, 0).unwrap();
                            if let Some(r) = search_block(&data, 16, key).unwrap() {
                                found = Some(r.to_vec());
                                break;
                            }
                        }
                    }
                    found
                }
            };
            assert_eq!(&got, &model.get(&key).cloned(), "case {case} key {key}");
        }
    }
}

/// SST index serialization round-trips for arbitrary record sizes and
/// key sets.
#[test]
fn sst_index_round_trips() {
    use cosmos_sim::{FlashArray, FlashConfig};
    use nkv::placement::PageAllocator;
    use nkv::sst::{deserialize_index, serialize_index, SstBuilder};

    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0x9C90 + case);
        let record_bytes = [8usize, 12, 16, 20, 40, 80][rng.gen_usize(6)];
        let keys: std::collections::BTreeSet<u64> =
            (0..1 + rng.gen_usize(199)).map(|_| rng.gen_range_u64(1, 100_000)).collect();

        let mut flash = FlashArray::new(FlashConfig::default());
        let mut alloc = PageAllocator::new(flash.config());
        let mut b = SstBuilder::new(3, 1, record_bytes, 32 * 1024, "t");
        for &k in &keys {
            let mut rec = k.to_le_bytes().to_vec();
            rec.resize(record_bytes, 0x5A);
            b.add_record(k, &rec).unwrap();
        }
        let (meta, _) = b.finish(&mut flash, &mut alloc, 0).unwrap();
        let back = deserialize_index(&serialize_index(&meta)).unwrap();
        assert_eq!(back.blocks, meta.blocks, "case {case}");
        assert_eq!(back.n_records, meta.n_records, "case {case}");
        assert_eq!((back.min_key, back.max_key), (meta.min_key, meta.max_key), "case {case}");
    }
}

/// CRC-32C detects any single-byte corruption in a block.
#[test]
fn crc_detects_any_single_byte_change() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xAD00 + case);
        let len = 1 + rng.gen_usize(2047);
        let data = random_bytes(&mut rng, len);
        let clean = nkv::util::crc32c(&data);
        let mut corrupted = data.clone();
        let pos = rng.gen_usize(corrupted.len());
        let delta = 1 + rng.next_u32() as u8 % 255;
        corrupted[pos] ^= delta;
        assert_ne!(nkv::util::crc32c(&corrupted), clean, "case {case}");
    }
}

/// Bloom filters never produce false negatives.
#[test]
fn bloom_never_false_negative() {
    for case in 0..12u64 {
        let mut rng = SplitMix64::new(0xBE10 + case);
        let keys: std::collections::HashSet<u64> =
            (0..1 + rng.gen_usize(499)).map(|_| rng.next_u64()).collect();
        let bits_per_key = 4 + rng.gen_u32(12);
        let mut bloom = nkv::util::Bloom::new(keys.len(), bits_per_key);
        for &k in &keys {
            bloom.insert(k);
        }
        for &k in &keys {
            assert!(bloom.may_contain(k), "case {case}");
        }
    }
}
