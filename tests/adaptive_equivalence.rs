//! Adaptive-planner differential suite: cost-based tier selection must
//! never change *what* a query returns, only which engine runs it.
//!
//! Contracts:
//!
//! 1. **equivalence**: for every logical op shape, the adaptive run's
//!    bytes match every forced tier that lowers (Software, Hardware,
//!    Hybrid) on an identical device — the tier choice is invisible in
//!    results;
//! 2. **promotion**: a repeated flash-heavy scan starts on the ARM
//!    (cold hardware estimate charges un-overlapped page reads) and
//!    flips SW → HW once the op class crosses the promotion threshold,
//!    with byte-identical results on both sides of the flip;
//! 3. **fault weather**: adaptive runs under transient/ECC flash faults
//!    and PE hangs return the fault-free bytes or the same typed errors
//!    any forced tier can surface — never a panic, never silent drift;
//! 4. **cluster**: a cluster-wide adaptive scan merges to the same
//!    bytes as forced fan-outs and reports one tier choice per shard;
//! 5. **explain**: `explain_adaptive` renders the chosen tier and the
//!    per-tier cost estimates the decision was made from.

use cosmos_sim::faults::FaultPlan;
use ndp_ir::elaborate;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{Paper, PaperGen, PubGraphConfig};
use nkv::{
    Backend, ClusterConfig, LogicalOp, NkvCluster, NkvDb, PlanOutcome, ReadPolicy, TableConfig,
    PROMOTE_AFTER,
};
use std::collections::BTreeMap;

fn encode(p: &Paper) -> Vec<u8> {
    let mut v = Vec::with_capacity(80);
    p.encode_into(&mut v);
    v
}

/// Tiny LSM thresholds so a few hundred records yield the multi-SST,
/// flash-resident shape whose tier choice is actually contested.
fn table_cfg() -> TableConfig {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let mut cfg = TableConfig::new(elaborate(&m, PAPER_PE).unwrap());
    cfg.lsm.memtable_bytes = 8 * 1024;
    cfg.lsm.c1_sst_limit = 4;
    cfg
}

fn record_for(key: u64) -> Vec<u8> {
    let gen_cfg = PubGraphConfig { papers: 200, refs: 0, seed: 1 };
    let mut p = PaperGen::paper_at(&gen_cfg, key % 200);
    p.id = key;
    encode(&p)
}

fn build_db(n: u64) -> (NkvDb, BTreeMap<u64, Vec<u8>>) {
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    let mut model = BTreeMap::new();
    for key in 1..=n {
        let r = record_for(key);
        db.put("papers", r.clone()).unwrap();
        model.insert(key, r);
        if key % 64 == 0 {
            db.flush("papers").unwrap();
        }
    }
    (db, model)
}

/// The op shapes the suite sweeps: point/absent GETs, batched GETs,
/// full and selective scans, a range scan and an aggregate.
fn op_suite() -> Vec<LogicalOp> {
    vec![
        LogicalOp::Get { key: 17 },
        LogicalOp::Get { key: 9_999 },
        LogicalOp::MultiGet { keys: vec![3, 77, 250, 9_999] },
        LogicalOp::Scan {
            rules: vec![FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 0 }],
        },
        LogicalOp::Scan {
            rules: vec![FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2015 }],
        },
        LogicalOp::RangeScan { lo: 50, hi: 150 },
        LogicalOp::ScanAggregate {
            rules: vec![FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2000 }],
            agg: ndp_ir::AggOp::Count,
            lane: paper_lanes::YEAR,
        },
    ]
}

/// Project an outcome down to its result bytes (reports carry timing,
/// which tiers legitimately change).
fn result_bytes(outcome: &PlanOutcome) -> Vec<u8> {
    match outcome {
        PlanOutcome::Records { records, count, .. } => {
            let mut v = count.to_le_bytes().to_vec();
            v.extend_from_slice(records);
            v
        }
        PlanOutcome::Aggregate { value, any, .. } => {
            let mut v = value.to_le_bytes().to_vec();
            v.push(u8::from(*any));
            v
        }
        PlanOutcome::Point { record, .. } => record.clone().unwrap_or_default(),
        PlanOutcome::Batch { results, .. } => {
            let mut v = Vec::new();
            for r in results {
                match r {
                    Ok(rec) => v.extend_from_slice(&rec.clone().unwrap_or_default()),
                    Err(e) => v.extend_from_slice(format!("<err {e}>").as_bytes()),
                }
            }
            v
        }
    }
}

#[test]
fn adaptive_matches_every_forced_tier_on_every_op_shape() {
    let (mut adaptive, _) = build_db(400);
    let mut forced: Vec<(Backend, NkvDb)> = [Backend::Software, Backend::Hardware, Backend::Hybrid]
        .into_iter()
        .map(|b| (b, build_db(400).0))
        .collect();
    // Two passes: the second runs with warmed-up feedback state, so the
    // adaptive planner may pick different tiers than the first — the
    // bytes must not care.
    let mut total_compared = 0;
    for pass in 0..2 {
        for (i, op) in op_suite().iter().enumerate() {
            let (outcome, report) = adaptive
                .execute_adaptive("papers", op)
                .unwrap_or_else(|e| panic!("pass {pass} op {i}: adaptive -> {e}"));
            let got = result_bytes(&outcome);
            let mut compared = 0;
            for (backend, db) in forced.iter_mut() {
                if db.plan("papers", op, *backend).is_err() {
                    continue; // tier doesn't lower this shape (e.g. deep chains)
                }
                let want = result_bytes(
                    &db.execute("papers", op, *backend)
                        .unwrap_or_else(|e| panic!("pass {pass} op {i} {backend:?}: {e}")),
                );
                assert_eq!(
                    got, want,
                    "pass {pass} op {i}: adaptive (chose {:?}) diverged from forced {backend:?}",
                    report.chosen
                );
                compared += 1;
            }
            assert!(compared >= 1, "pass {pass} op {i}: no forced tier lowered to compare");
            total_compared += compared;
        }
    }
    // The sweep must genuinely exercise multi-tier comparisons, not
    // degenerate to software-only.
    assert!(total_compared >= 30, "only {total_compared} forced comparisons ran");
}

#[test]
fn repeated_hot_scans_promote_from_software_to_hardware() {
    let (mut db, _) = build_db(400);
    let rules = vec![FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 0 }];
    let mut choices = Vec::new();
    let mut first_bytes: Option<Vec<u8>> = None;
    for i in 0..8u64 {
        let (summary, cost) =
            db.scan_adaptive("papers", &rules).unwrap_or_else(|e| panic!("scan {i}: {e}"));
        let bytes = (summary.count, summary.records);
        let flat = format!("{bytes:?}").into_bytes();
        match &first_bytes {
            None => first_bytes = Some(flat),
            Some(want) => assert_eq!(&flat, want, "scan {i}: bytes changed across the tier flip"),
        }
        choices.push(cost.chosen);
        assert_eq!(cost.hot, i >= PROMOTE_AFTER, "scan {i}: promotion state");
    }
    assert!(
        choices[..PROMOTE_AFTER as usize].iter().all(|&b| b == Backend::Software),
        "cold sightings must stay on the ARM path: {choices:?}"
    );
    assert!(
        choices[PROMOTE_AFTER as usize..].contains(&Backend::Hardware),
        "a hot flash-heavy scan must promote to hardware: {choices:?}"
    );
}

#[test]
fn adaptive_gets_match_the_model_under_fault_weather() {
    let (mut db, model) = build_db(400);
    db.enable_observability(1 << 14);
    db.platform_mut().install_faults(&FaultPlan {
        seed: 0xADA7,
        transient_read_p: 0.05,
        correctable_p: 0.10,
        pe_hang_p: 0.10,
        ..FaultPlan::default()
    });
    let rules = vec![FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 0 }];
    // Fault-free reference bytes for the repeated scan.
    let (reference, _) = build_db(400).0.scan_adaptive("papers", &rules).unwrap();
    for i in 0..40u64 {
        let key = 1 + (i * 11) % 400;
        match db.get_adaptive("papers", key) {
            Ok((rec, _, _)) => {
                assert_eq!(rec, model.get(&key).cloned(), "get({key}) diverged under fault weather")
            }
            Err(
                nkv::NkvError::RetriesExhausted { .. }
                | nkv::NkvError::Flash(_)
                | nkv::NkvError::PeTimeout { .. },
            ) => {}
            Err(e) => panic!("get({key}) -> unexpected {e}"),
        }
        if i % 8 == 0 {
            match db.scan_adaptive("papers", &rules) {
                Ok((summary, _)) => {
                    assert_eq!(summary.count, reference.count, "scan {i} count drifted");
                    assert_eq!(summary.records, reference.records, "scan {i} bytes drifted");
                }
                Err(
                    nkv::NkvError::RetriesExhausted { .. }
                    | nkv::NkvError::Flash(_)
                    | nkv::NkvError::PeTimeout { .. },
                ) => {}
                Err(e) => panic!("scan {i} -> unexpected {e}"),
            }
        }
    }
    let health = db.health_report();
    assert!(
        health.flash.transient_failures + health.flash.correctable_hits + health.pe_hangs_injected
            > 0,
        "the campaign never injected a fault"
    );
}

#[test]
fn cluster_adaptive_scan_merges_like_forced_fanouts_and_reports_tiers() {
    let build = || {
        let mut cluster = NkvCluster::new(ClusterConfig {
            devices: 3,
            read_policy: ReadPolicy::Strict,
            ..ClusterConfig::default()
        })
        .unwrap();
        cluster.create_table("papers", table_cfg()).unwrap();
        cluster.bulk_load("papers", (1..=400).map(record_for).collect::<Vec<_>>()).unwrap();
        cluster
    };
    let rules = vec![FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 0 }];
    let mut adaptive = build();
    // Warm the per-shard feedback past the promotion threshold so the
    // router exercises heterogeneous tier choices too.
    for _ in 0..=PROMOTE_AFTER {
        let (scan, tiers) = adaptive.scan_adaptive("papers", &rules).unwrap();
        assert!(scan.missing_shards.is_empty());
        assert_eq!(tiers.len(), 3, "one tier choice per serving shard: {tiers:?}");
        assert!(tiers.iter().enumerate().all(|(i, &(s, _))| s == i), "shard order: {tiers:?}");
        for backend in [Backend::Software, Backend::Hardware] {
            let forced = build().scan("papers", &rules, backend).unwrap();
            assert_eq!(scan.count, forced.count, "{backend:?}");
            assert_eq!(scan.records, forced.records, "{backend:?}: cluster merge bytes diverged");
        }
    }
    // After warm-up every flash-heavy shard should have left the ARM
    // path (Hardware or its Hybrid pushdown twin — observed feedback
    // legitimately ping-pongs between the two near-equal tiers).
    let (_, tiers) = adaptive.scan_adaptive("papers", &rules).unwrap();
    assert!(
        tiers.iter().all(|&(_, b)| b != Backend::Software),
        "hot flash-heavy shards should promote off the ARM: {tiers:?}"
    );
}

#[test]
fn explain_adaptive_renders_tier_and_cost_estimates() {
    let (db, _) = build_db(400);
    let op = LogicalOp::Scan {
        rules: vec![FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2010 }],
    };
    let text = db.explain_adaptive("papers", &op).unwrap();
    assert!(text.contains("PLAN SCAN ON papers"), "{text}");
    assert!(text.contains("  cost: software "), "{text}");
    assert!(text.contains("hardware "), "{text}");
    assert!(text.contains("adaptive: chose "), "{text}");
    assert!(text.contains("cold after 0 sightings"), "{text}");
}
