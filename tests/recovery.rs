//! Power-cycle recovery: persist, drop the in-memory state, rebuild from
//! the flash image, and verify reads and scans are unchanged.

use ndp_ir::elaborate;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{Paper, PaperGen, PubGraphConfig};
use nkv::{ExecMode, NkvDb, NkvError, TableConfig};

fn encode(p: &Paper) -> Vec<u8> {
    let mut v = Vec::with_capacity(80);
    p.encode_into(&mut v);
    v
}

fn table_cfg() -> TableConfig {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    TableConfig::new(elaborate(&m, PAPER_PE).unwrap())
}

#[test]
fn recovery_preserves_reads_scans_and_tombstones() {
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    let cfg = PubGraphConfig { papers: 3000, refs: 3000, seed: 21 };
    db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
    // Some churn: updates, deletes, flush so everything is persistent.
    let mut upd = PaperGen::paper_at(&cfg, 100);
    upd.year = 1900;
    db.put("papers", encode(&upd)).unwrap();
    db.delete("papers", 200).unwrap();
    db.flush("papers").unwrap();
    db.persist().unwrap();

    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 5, value: 1950 }];
    let before = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
    let (g_before, _) = db.get("papers", 500, ExecMode::Software).unwrap();

    // Power cycle: only the flash array survives.
    let mut fresh = cosmos_sim::CosmosPlatform::default_platform();
    fresh.flash = db.platform_mut().flash.clone();
    let mut recovered = NkvDb::recover(fresh, vec![("papers".into(), table_cfg())]).unwrap();

    let after = recovered.scan("papers", &rules, ExecMode::Hardware).unwrap();
    assert_eq!(after.records, before.records);
    assert_eq!(after.count, before.count);
    let (g_after, _) = recovered.get("papers", 500, ExecMode::Software).unwrap();
    assert_eq!(g_after, g_before);
    // The tombstone survived recovery.
    let (gone, _) = recovered.get("papers", 200, ExecMode::Software).unwrap();
    assert_eq!(gone, None);
    // The updated version still shadows the bulk one.
    let (u, _) = recovered.get("papers", upd.id, ExecMode::Software).unwrap();
    assert_eq!(Paper::decode(&u.unwrap()).year, 1900);
}

#[test]
fn recovery_then_write_path_does_not_clobber_recovered_data() {
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    let cfg = PubGraphConfig { papers: 1000, refs: 1000, seed: 22 };
    db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
    db.persist().unwrap();

    let mut fresh = cosmos_sim::CosmosPlatform::default_platform();
    fresh.flash = db.platform_mut().flash.clone();
    let mut rec = NkvDb::recover(fresh, vec![("papers".into(), table_cfg())]).unwrap();

    // New writes after recovery must not overwrite recovered pages
    // (allocator watermarks were advanced).
    for i in 0..500u64 {
        let mut p = PaperGen::paper_at(&cfg, i % cfg.papers);
        p.venue = 9999;
        rec.put("papers", encode(&p)).unwrap();
    }
    rec.flush("papers").unwrap();
    // Untouched keys still read their original values.
    let p = PaperGen::paper_at(&cfg, 700);
    let (got, _) = rec.get("papers", p.id, ExecMode::Software).unwrap();
    assert_eq!(got, Some(encode(&p)));
    // Updated keys read the new version.
    let (got, _) = rec.get("papers", 5, ExecMode::Software).unwrap();
    assert_eq!(Paper::decode(&got.unwrap()).venue, 9999);
}

#[test]
fn recovery_without_manifest_fails_cleanly() {
    let platform = cosmos_sim::CosmosPlatform::default_platform();
    let err = NkvDb::recover(platform, vec![("papers".into(), table_cfg())]);
    assert!(err.is_err());
}

#[test]
fn recovery_rejects_mismatched_format() {
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    let cfg = PubGraphConfig { papers: 100, refs: 100, seed: 23 };
    db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
    db.persist().unwrap();
    let mut fresh = cosmos_sim::CosmosPlatform::default_platform();
    fresh.flash = db.platform_mut().flash.clone();
    // Supply the 20-byte Ref format for the 80-byte papers table.
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let wrong = TableConfig::new(elaborate(&m, ndp_workload::REF_PE).unwrap());
    match NkvDb::recover(fresh, vec![("papers".into(), wrong)]) {
        Err(NkvError::Config(msg)) => assert!(msg.contains("80")),
        Err(other) => panic!("expected format mismatch, got {other:?}"),
        Ok(_) => panic!("expected format mismatch, got a recovered database"),
    }
}

#[test]
fn recovery_requires_a_config_for_every_table() {
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    let cfg = PubGraphConfig { papers: 50, refs: 50, seed: 24 };
    db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
    db.persist().unwrap();
    let mut fresh = cosmos_sim::CosmosPlatform::default_platform();
    fresh.flash = db.platform_mut().flash.clone();
    match NkvDb::recover(fresh, vec![]) {
        Err(NkvError::Config(msg)) => assert!(msg.contains("papers")),
        Err(other) => panic!("expected missing-config error, got {other:?}"),
        Ok(_) => panic!("expected missing-config error, got a recovered database"),
    }
}

#[test]
fn torn_manifest_slot_recovers_the_previous_epoch() {
    // Two persists land in alternating slots. Tearing the newer slot
    // (as a power cut mid-manifest-write would) must make recovery fall
    // back to the older epoch's state — not fail, not mix the two.
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    let cfg = PubGraphConfig { papers: 500, refs: 500, seed: 26 };
    db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
    db.persist().unwrap(); // epoch 1 -> slot 1
    let mut extra = PaperGen::paper_at(&cfg, 0);
    extra.id = 90_000;
    db.put("papers", encode(&extra)).unwrap();
    db.flush("papers").unwrap();
    db.persist().unwrap(); // epoch 2 -> slot 0

    let mut fresh = cosmos_sim::CosmosPlatform::default_platform();
    fresh.flash = db.platform_mut().flash.clone();
    // Tear epoch 2's slot: corrupt the first page of slot 0 (the
    // topmost page of channel 0 / LUN 0).
    let top = fresh.flash.config().pages_per_lun - 1;
    let addr = cosmos_sim::PhysAddr { channel: 0, lun: 0, page: top };
    let mut torn = fresh.flash.read_page(addr, 0).unwrap().1.to_vec();
    torn.truncate(16); // only the header reached the cells
    fresh.flash.program_page(addr, &torn, 0).unwrap();

    let mut rec = NkvDb::recover(fresh, vec![("papers".into(), table_cfg())]).unwrap();
    // Epoch 1 state: the bulk data is there, the later put is not.
    let p = PaperGen::paper_at(&cfg, 123);
    let (got, _) = rec.get("papers", p.id, ExecMode::Software).unwrap();
    assert_eq!(got, Some(encode(&p)));
    let (gone, _) = rec.get("papers", 90_000, ExecMode::Software).unwrap();
    assert_eq!(gone, None, "the torn epoch's writes must not surface");
}

#[test]
fn half_written_index_fails_with_a_typed_error() {
    // A manifest that points at an index block whose pages never got
    // (fully) written — the half-written-index crash window. Recovery
    // must fail with a typed error, never panic or half-load the table.
    use nkv::recovery::{write_manifest, Manifest, TableManifest};
    let mut flash = cosmos_sim::FlashArray::new(cosmos_sim::FlashConfig::default());
    let garbage = cosmos_sim::PhysAddr { channel: 3, lun: 1, page: 10 };
    flash.program_page(garbage, &[0xAB; 64], 0).unwrap();
    let unwritten = cosmos_sim::PhysAddr { channel: 3, lun: 1, page: 11 };
    for bad_pages in [vec![garbage], vec![unwritten]] {
        let manifest = Manifest {
            epoch: 1,
            tables: vec![TableManifest {
                name: "papers".into(),
                record_bytes: 80,
                unique_keys: true,
                ssts: vec![(0, bad_pages)],
            }],
        };
        write_manifest(&mut flash, &manifest, 0).unwrap();
        let mut fresh = cosmos_sim::CosmosPlatform::default_platform();
        fresh.flash = flash.clone();
        match NkvDb::recover(fresh, vec![("papers".into(), table_cfg())]) {
            Err(NkvError::Config(msg)) => assert!(msg.contains("index")),
            Err(NkvError::Flash(_)) => {} // unwritten index page
            Err(other) => panic!("expected a typed index error, got {other:?}"),
            Ok(_) => panic!("recovery must not succeed from a half-written index"),
        }
    }
}

#[test]
fn unflushed_memtable_data_is_volatile() {
    // Documented LSM-without-WAL semantics: unflushed writes are lost.
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    let cfg = PubGraphConfig { papers: 100, refs: 100, seed: 25 };
    db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
    let mut extra = PaperGen::paper_at(&cfg, 0);
    extra.id = 90_000; // beyond the bulk range, memtable only
    db.put("papers", encode(&extra)).unwrap();
    db.persist().unwrap(); // no flush!
    let mut fresh = cosmos_sim::CosmosPlatform::default_platform();
    fresh.flash = db.platform_mut().flash.clone();
    let mut rec = NkvDb::recover(fresh, vec![("papers".into(), table_cfg())]).unwrap();
    let (gone, _) = rec.get("papers", 90_000, ExecMode::Software).unwrap();
    assert_eq!(gone, None, "memtable contents do not survive a power cycle");
}
