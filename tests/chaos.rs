//! Chaos suite: seeded fault campaigns against a model-checked store.
//!
//! Every round drives random PUT/DELETE/GET/SCAN traffic through a
//! database whose platform has a [`FaultPlan`] installed — transient
//! read failures, correctable-ECC degradation, DRAM stall bursts and PE
//! hangs all firing at once — and checks three properties:
//!
//! 1. **no panics**: every operation returns `Ok` or a typed
//!    [`NkvError`]; nothing unwinds;
//! 2. **correctness under degradation**: once the fault campaign ends,
//!    the store's contents match a `BTreeMap` model of the acknowledged
//!    operations exactly — retries, HW→SW fallback and read-repair must
//!    never change *what* is read, only *when*;
//! 3. **observability**: the injected faults show up in the
//!    [`HealthReport`] counters.
//!
//! Plans are seeded, so any failure replays from the printed seed.

use cosmos_sim::faults::{FaultPlan, FlashFaultKind, ScheduledFault};
use cosmos_sim::PhysAddr;
use ndp_ir::elaborate;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{Paper, PaperGen, PubGraphConfig, SplitMix64};
use nkv::{ExecMode, NkvDb, NkvError, TableConfig};
use std::collections::BTreeMap;

fn encode(p: &Paper) -> Vec<u8> {
    let mut v = Vec::with_capacity(80);
    p.encode_into(&mut v);
    v
}

/// Table with a tiny memtable and an aggressive compaction trigger so a
/// few hundred operations exercise flush + compaction under faults.
fn table_cfg() -> TableConfig {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let mut cfg = TableConfig::new(elaborate(&m, PAPER_PE).unwrap());
    cfg.lsm.memtable_bytes = 8 * 1024;
    cfg.lsm.c1_sst_limit = 2;
    cfg
}

fn record(cfg: &PubGraphConfig, key: u64, step: u32) -> Vec<u8> {
    let mut p = PaperGen::paper_at(cfg, key % cfg.papers);
    p.id = key;
    p.year = 1900 + (step % 120);
    encode(&p)
}

/// Count of model records matching `year < bound` (mirrors the scan
/// predicate pushed to the device).
fn model_matches(model: &BTreeMap<u64, Vec<u8>>, bound: u32) -> u64 {
    model.values().filter(|r| Paper::decode(r).year < bound).count() as u64
}

/// One seeded chaos round; returns the device-wide health counters so
/// the caller can assert the campaign actually injected faults.
fn chaos_round(seed: u64) -> nkv::HealthReport {
    let plan = FaultPlan {
        seed,
        transient_read_p: 0.02,
        correctable_p: 0.05,
        dram_stall_p: 0.01,
        dram_stall_ns: (5_000, 50_000),
        pe_hang_p: 0.02,
        // Pin one low hot-class page to correctable-ECC so read-repair
        // has a deterministic target once scans degrade it.
        schedule: vec![ScheduledFault {
            addr: PhysAddr { channel: 0, lun: 0, page: 2 },
            kind: FlashFaultKind::Correctable,
        }],
        ..FaultPlan::default()
    };
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    db.enable_observability(1 << 14);
    db.platform_mut().install_faults(&plan);

    let gen_cfg = PubGraphConfig { papers: 200, refs: 0, seed: 1 };
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut rng = SplitMix64::new(seed ^ 0x00C0_FFEE);
    for step in 0..400u32 {
        let key = rng.gen_range_u64(1, 250);
        let roll = rng.gen_range_u64(0, 100);
        let mode = if rng.gen_bool(0.5) { ExecMode::Hardware } else { ExecMode::Software };
        if roll < 55 {
            let r = record(&gen_cfg, key, step);
            match db.put("papers", r.clone()) {
                Ok(()) => {
                    model.insert(key, r);
                }
                Err(e) => panic!("seed {seed}: put({key}) -> {e}"),
            }
        } else if roll < 70 {
            match db.delete("papers", key) {
                Ok(()) => {
                    model.remove(&key);
                }
                Err(e) => panic!("seed {seed}: delete({key}) -> {e}"),
            }
        } else if roll < 90 {
            // Reads may legitimately fail while faults fire; only the
            // error *type* is constrained (never a panic, never silent
            // wrong data).
            match db.get("papers", key, mode) {
                Ok((got, _)) => assert_eq!(
                    got,
                    model.get(&key).cloned(),
                    "seed {seed} step {step}: get({key}) diverged"
                ),
                Err(NkvError::RetriesExhausted { .. } | NkvError::Flash(_)) => {}
                Err(e) => panic!("seed {seed}: get({key}) -> unexpected {e}"),
            }
        } else if roll < 97 {
            let bound = 1900 + (step % 120);
            let rules =
                [FilterRule { lane: paper_lanes::YEAR, op_code: 5, value: u64::from(bound) }];
            match db.scan("papers", &rules, mode) {
                Ok(s) => assert_eq!(
                    s.count,
                    model_matches(&model, bound),
                    "seed {seed} step {step}: scan(year<{bound}) diverged"
                ),
                Err(NkvError::RetriesExhausted { .. } | NkvError::Flash(_)) => {}
                Err(e) => panic!("seed {seed}: scan -> unexpected {e}"),
            }
        } else {
            // Maintenance traffic: relocate degrading pages and bring
            // watchdog-retired PEs back into rotation.
            db.read_repair(3).unwrap_or_else(|e| panic!("seed {seed}: repair -> {e}"));
            db.reset_pes("papers").unwrap();
        }
    }

    let health = db.health_report();
    // Observability: the operator-facing `DeviceStats` snapshot carries
    // the same health counters the campaign accumulated, and the ops
    // that provoked them are accounted in the metrics registry.
    let stats = db.device_stats();
    assert_eq!(stats.health, health, "seed {seed}: DeviceStats diverges from health_report");
    assert!(stats.metrics.total_ops() > 0, "seed {seed}: no ops recorded");
    // End of campaign: with injection off (no persistent damage was
    // planned) the store must agree with the model on every key.
    db.platform_mut().clear_faults();
    db.reset_pes("papers").unwrap();
    for key in 1..250u64 {
        let (got, _) = db
            .get("papers", key, ExecMode::Software)
            .unwrap_or_else(|e| panic!("seed {seed}: final get({key}) -> {e}"));
        assert_eq!(got, model.get(&key).cloned(), "seed {seed}: final state, key {key}");
    }
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 5, value: 3000 }];
    let s = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
    assert_eq!(s.count, model.len() as u64, "seed {seed}: final scan count");
    health
}

#[test]
fn thirty_two_seeded_fault_campaigns_preserve_the_model() {
    let mut total = nkv::HealthReport::default();
    for seed in 0..32u64 {
        let h = chaos_round(0xBAD5_EED0 + seed);
        total.flash.transient_failures += h.flash.transient_failures;
        total.flash.correctable_hits += h.flash.correctable_hits;
        total.dram.stalls += h.dram.stalls;
        total.pe_hangs_injected += h.pe_hangs_injected;
        total.read_retries += h.read_retries;
        total.watchdog_trips += h.watchdog_trips;
        total.sw_fallback_blocks += h.sw_fallback_blocks;
        total.pages_repaired += h.pages_repaired;
    }
    // The campaigns must actually have exercised every fault class and
    // every resilience reaction (rates are high enough that a silent
    // no-op injector cannot pass).
    assert!(total.flash.transient_failures > 0, "no transient faults fired");
    assert!(total.flash.correctable_hits > 0, "no correctable-ECC events");
    assert!(total.dram.stalls > 0, "no DRAM stalls");
    assert!(total.pe_hangs_injected > 0, "no PE hangs");
    assert!(total.read_retries > 0, "resilience layer never retried");
    assert!(total.watchdog_trips > 0, "watchdog never tripped");
    assert!(total.sw_fallback_blocks > 0, "HW never degraded to SW");
}

/// Every fault class a plan injects is visible in the single
/// [`DeviceStats`](nkv::DeviceStats) snapshot an operator would pull:
/// the health block equals `health_report()` and the rendered text
/// carries the exact counters — injection can never be silent.
#[test]
fn every_injected_fault_is_visible_in_device_stats() {
    let plan = FaultPlan {
        seed: 0xD1A6,
        transient_read_p: 0.05,
        correctable_p: 0.2,
        dram_stall_p: 0.05,
        dram_stall_ns: (5_000, 50_000),
        pe_hang_p: 0.2,
        schedule: vec![ScheduledFault {
            addr: PhysAddr { channel: 0, lun: 0, page: 2 },
            kind: FlashFaultKind::Correctable,
        }],
        ..FaultPlan::default()
    };
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    db.enable_observability(1 << 16);
    db.platform_mut().install_faults(&plan);

    let gen_cfg = PubGraphConfig { papers: 200, refs: 0, seed: 2 };
    for step in 0..120u32 {
        let key = u64::from(step % 60) + 1;
        db.put("papers", record(&gen_cfg, key, step)).unwrap();
    }
    // Push everything to flash so reads actually face the fault plan.
    db.flush("papers").unwrap();
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 5, value: 3000 }];
    for _ in 0..10 {
        let _ = db.scan("papers", &rules, ExecMode::Hardware);
        db.reset_pes("papers").unwrap();
    }
    for key in 1..40u64 {
        let _ = db.get("papers", key, ExecMode::Software);
    }
    db.read_repair(2).unwrap();

    let stats = db.device_stats();
    assert_eq!(stats.health, db.health_report(), "one snapshot, one truth");
    let h = stats.health;
    assert!(h.flash.transient_failures > 0, "transient faults invisible");
    assert!(h.flash.correctable_hits > 0, "correctable-ECC hits invisible");
    assert!(h.dram.stalls > 0, "DRAM stalls invisible");
    assert!(h.pe_hangs_injected > 0, "PE hangs invisible");
    assert!(h.read_retries > 0, "retry reaction invisible");
    assert!(h.watchdog_trips > 0, "watchdog reaction invisible");
    assert!(h.sw_fallback_blocks > 0, "HW->SW degradation invisible");
    assert!(h.pages_repaired > 0, "read-repair invisible");

    let rendered = stats.to_string();
    for needle in [
        format!("injected {} transient flash", h.flash.transient_failures),
        format!("{} ecc-corrected", h.flash.correctable_hits),
        format!("{} dram stalls", h.dram.stalls),
        format!("{} pe hangs", h.pe_hangs_injected),
        format!("{} watchdog trips", h.watchdog_trips),
        format!("{} pages repaired", h.pages_repaired),
    ] {
        assert!(rendered.contains(&needle), "stats text missing `{needle}`:\n{rendered}");
    }
    // The ops that provoked the faults are accounted too.
    assert_eq!(stats.metrics.op(nkv::OpKind::Put).ops, 120);
    assert!(stats.metrics.op(nkv::OpKind::Get).ops > 0);
    assert!(stats.metrics.op(nkv::OpKind::ReadRepair).ops > 0);
}

#[test]
fn retry_backoff_costs_simulated_time() {
    let plan = FaultPlan { seed: 7, transient_read_p: 0.2, ..FaultPlan::default() };
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    let gen_cfg = PubGraphConfig { papers: 2000, refs: 0, seed: 2 };
    db.bulk_load("papers", PaperGen::new(gen_cfg).map(|p| encode(&p))).unwrap();
    db.platform_mut().install_faults(&plan);
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 5, value: 3000 }];
    db.scan("papers", &rules, ExecMode::Software).unwrap();
    let h = db.table_health("papers").unwrap();
    assert!(h.read_retries > 0);
    assert!(
        h.retry_backoff_ns >= h.read_retries * 50_000,
        "exponential backoff must charge at least the base per retry"
    );
    assert_eq!(h.reads_failed, 0, "0.2 transient rate must not exhaust 3 retries");
}

#[test]
fn pe_hang_mid_scan_degrades_to_software_with_identical_results() {
    let gen_cfg = PubGraphConfig { papers: 3000, refs: 0, seed: 3 };
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 5, value: 1980 }];

    // Reference: a clean database, hardware scan.
    let mut clean = NkvDb::default_db();
    clean.create_table("papers", table_cfg()).unwrap();
    clean.bulk_load("papers", PaperGen::new(gen_cfg).map(|p| encode(&p))).unwrap();
    let reference = clean.scan("papers", &rules, ExecMode::Hardware).unwrap();

    // Faulty: every PE block job hangs, so the watchdog retires the PE
    // on its first block and the rest of the scan runs on the ARM core.
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    db.bulk_load("papers", PaperGen::new(gen_cfg).map(|p| encode(&p))).unwrap();
    db.platform_mut().install_faults(&FaultPlan {
        seed: 9,
        pe_hang_p: 1.0,
        ..FaultPlan::default()
    });
    let degraded = db.scan("papers", &rules, ExecMode::Hardware).unwrap();

    assert_eq!(degraded.records, reference.records, "degradation changed results");
    assert_eq!(degraded.count, reference.count);
    let h = db.table_health("papers").unwrap();
    assert_eq!(h.watchdog_trips, 1, "one trip retires the only PE");
    assert!(h.sw_fallback_blocks > 0, "remaining blocks must run in software");
    let report = db.health_report();
    assert_eq!(report.pes_failed, 1);
    assert!(report.pe_hangs_injected >= 1);

    // A PL reconfiguration brings the PE back.
    db.reset_pes("papers").unwrap();
    assert_eq!(db.health_report().pes_failed, 0);
}

#[test]
fn pe_hang_without_fallback_is_a_typed_timeout() {
    let gen_cfg = PubGraphConfig { papers: 500, refs: 0, seed: 4 };
    let mut cfg = table_cfg();
    cfg.resilience.hw_fallback_to_sw = false;
    let mut db = NkvDb::default_db();
    db.create_table("papers", cfg).unwrap();
    db.bulk_load("papers", PaperGen::new(gen_cfg).map(|p| encode(&p))).unwrap();
    db.platform_mut().install_faults(&FaultPlan {
        seed: 11,
        pe_hang_p: 1.0,
        ..FaultPlan::default()
    });
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 5, value: 3000 }];
    match db.scan("papers", &rules, ExecMode::Hardware) {
        Err(NkvError::PeTimeout { watchdog_ns, .. }) => {
            assert_eq!(watchdog_ns, 1_000_000, "default watchdog budget");
        }
        other => panic!("expected PeTimeout, got {other:?}"),
    }
}

#[test]
fn read_repair_relocates_degrading_pages_and_survives_recovery() {
    let gen_cfg = PubGraphConfig { papers: 1500, refs: 0, seed: 5 };
    let mut db = NkvDb::default_db();
    db.create_table("papers", table_cfg()).unwrap();
    db.bulk_load("papers", PaperGen::new(gen_cfg).map(|p| encode(&p))).unwrap();
    db.persist().unwrap();
    // Every read is a correctable-ECC event: pages degrade fast.
    db.platform_mut().install_faults(&FaultPlan {
        seed: 13,
        correctable_p: 1.0,
        ..FaultPlan::default()
    });
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 5, value: 3000 }];
    for _ in 0..3 {
        db.scan("papers", &rules, ExecMode::Software).unwrap();
    }
    let moved = db.read_repair(3).unwrap();
    assert!(moved > 0, "three full scans must push data pages past the threshold");
    assert_eq!(db.health_report().pages_repaired, moved);
    // Repaired pages start fresh; a second pass finds nothing at the
    // same threshold.
    assert_eq!(db.read_repair(u32::MAX).unwrap(), 0);

    // Contents are unchanged and the rewired metadata survives a power
    // cycle (read-repair re-persisted the manifest).
    db.platform_mut().clear_faults();
    let count = db.scan("papers", &rules, ExecMode::Hardware).unwrap().count;
    assert_eq!(count, gen_cfg.papers);
    let mut fresh = cosmos_sim::CosmosPlatform::default_platform();
    fresh.flash = db.platform_mut().flash.clone();
    let mut rec = NkvDb::recover(fresh, vec![("papers".into(), table_cfg())]).unwrap();
    assert_eq!(rec.scan("papers", &rules, ExecMode::Hardware).unwrap().count, count);
}

#[test]
fn power_cut_recovery_yields_a_consistent_prefix_of_acknowledged_flushes() {
    // Acknowledged state = model snapshot taken after each successful
    // flush + persist. A power cut strikes during some later batch; the
    // recovered device must match either the last *acknowledged*
    // snapshot or the single *in-flight* one (a persist interrupted by
    // the cut may still have become durable — standard crash semantics)
    // — never a torn half-state, never a resurrected older one, and an
    // acknowledged snapshot must never be lost.
    let gen_cfg = PubGraphConfig { papers: 200, refs: 0, seed: 6 };
    for cut_at in [40u64, 170, 260, 900] {
        let mut db = NkvDb::default_db();
        db.create_table("papers", table_cfg()).unwrap();
        db.platform_mut().install_faults(&FaultPlan {
            seed: 17,
            power_cut_at_write: Some(cut_at),
            ..FaultPlan::default()
        });
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut acked: Option<BTreeMap<u64, Vec<u8>>> = None;
        let mut in_flight: Option<BTreeMap<u64, Vec<u8>>> = None;
        let mut acked_batches = 0u32;
        'batches: for batch in 0..200u32 {
            for i in 0..40u64 {
                let key = 1 + (u64::from(batch) * 7 + i) % 300;
                let r = record(&gen_cfg, key, batch);
                match db.put("papers", r.clone()) {
                    Ok(()) => {
                        model.insert(key, r);
                    }
                    Err(NkvError::Flash(cosmos_sim::FlashError::PowerCut)) => break 'batches,
                    Err(e) => panic!("unexpected error before the cut: {e}"),
                }
            }
            match db.flush("papers").and_then(|()| db.persist()) {
                Ok(()) => {
                    acked = Some(model.clone());
                    acked_batches = batch + 1;
                }
                Err(NkvError::Flash(cosmos_sim::FlashError::PowerCut)) => {
                    in_flight = Some(model.clone());
                    break 'batches;
                }
                Err(e) => panic!("unexpected error before the cut: {e}"),
            }
        }
        let stats = db.platform_mut().flash.fault_stats();
        assert_eq!(stats.torn_writes, 1, "cut_at={cut_at}: exactly one torn program");
        assert!(acked_batches < 200, "cut_at={cut_at}: the cut must strike mid-run");

        // Reboot: only the flash image survives; power comes back on.
        let mut fresh = cosmos_sim::CosmosPlatform::default_platform();
        fresh.flash = db.platform_mut().flash.clone();
        fresh.flash.reboot();
        let mut rec = match NkvDb::recover(fresh, vec![("papers".into(), table_cfg())]) {
            Ok(rec) => rec,
            Err(e) => {
                assert!(acked.is_none(), "cut_at={cut_at}: acknowledged state lost: {e}");
                continue;
            }
        };
        let mut state: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for key in 1..=300u64 {
            let (got, _) = rec.get("papers", key, ExecMode::Software).unwrap();
            if let Some(r) = got {
                state.insert(key, r);
            }
        }
        let candidates = [acked.unwrap_or_default(), in_flight.unwrap_or_default()];
        assert!(
            candidates.contains(&state),
            "cut_at={cut_at}: recovered state ({} keys) is neither the \
             acknowledged snapshot nor the in-flight one",
            state.len()
        );
    }
}
