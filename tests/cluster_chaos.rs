//! Cluster chaos suite: fleet-level fault domains under seeded
//! campaigns, checked against a `BTreeMap` model and a per-shard byte
//! reference.
//!
//! The single-device chaos suite (`tests/chaos.rs`) proves one device
//! degrades safely; this suite proves the *router* does, across N
//! simulated Cosmos+ devices:
//!
//! 1. **pass-through**: with one device, every cluster operation is
//!    byte-identical to calling the [`NkvDb`] directly — same records,
//!    same simulated nanoseconds, same queue report;
//! 2. **survivor correctness**: with a device killed/hung/power-cut
//!    mid-run, `Available`-policy reads return exactly the surviving
//!    shards' bytes (model minus the dead shard), never torn or
//!    reordered, and name the hole in `missing_shards`;
//! 3. **strictness**: `Strict`-policy reads fail with a typed
//!    [`NkvError::ShardUnavailable`] instead;
//! 4. **health FSM**: under sustained faults a shard's state walks the
//!    severity ladder monotonically (`Healthy → Degraded → Quarantined
//!    → Dead`), quarantined shards keep probing, dead shards stay dead
//!    until an explicit heal, and healing re-converges the cluster;
//! 5. **gray failure**: a slow-but-alive device changes *when*, never
//!    *what* — identical bytes, stretched simulated time.

use cosmos_sim::{DeviceFaultKind, DeviceFaultPlan};
use ndp_ir::elaborate;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{Paper, PaperGen, PubGraphConfig, SplitMix64};
use nkv::{
    Backend, ClientScript, ClusterConfig, LogicalOp, NkvCluster, NkvDb, NkvError, PlanOutcome,
    QueueRunConfig, QueuedOp, ReadPolicy, ShardState, TableConfig,
};
use std::collections::BTreeMap;

fn encode(p: &Paper) -> Vec<u8> {
    let mut v = Vec::with_capacity(80);
    p.encode_into(&mut v);
    v
}

/// The papers table with `n_pes` PEs and the chaos suite's tiny LSM
/// thresholds.
fn table_cfg(n_pes: usize) -> TableConfig {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let mut cfg = TableConfig::new(elaborate(&m, PAPER_PE).unwrap());
    cfg.n_pes = n_pes;
    cfg.lsm.memtable_bytes = 8 * 1024;
    cfg.lsm.c1_sst_limit = 2;
    cfg
}

fn record_for(key: u64) -> Vec<u8> {
    let gen_cfg = PubGraphConfig { papers: 200, refs: 0, seed: 1 };
    let mut p = PaperGen::paper_at(&gen_cfg, key % 200);
    p.id = key;
    encode(&p)
}

/// Keys 1..=n with deterministic payloads, in bulk-load order.
fn dataset(n: u64) -> Vec<(u64, Vec<u8>)> {
    (1..=n).map(|k| (k, record_for(k))).collect()
}

/// Match-everything predicate (year < 3000).
fn all_rules() -> Vec<FilterRule> {
    vec![FilterRule { lane: paper_lanes::YEAR, op_code: 5, value: 3000 }]
}

/// A loaded, persisted cluster: `devices` shards, `streams` parallel PE
/// job streams per shard table.
fn build_cluster(
    devices: usize,
    policy: ReadPolicy,
    n_pes: usize,
    streams: usize,
    records: &[(u64, Vec<u8>)],
) -> NkvCluster {
    let mut cluster =
        NkvCluster::new(ClusterConfig { devices, read_policy: policy, ..ClusterConfig::default() })
            .unwrap();
    cluster.create_table("papers", table_cfg(n_pes)).unwrap();
    cluster.bulk_load("papers", records.iter().map(|(_, r)| r.clone()).collect()).unwrap();
    cluster.persist().unwrap();
    cluster.set_parallel_pes("papers", streams).unwrap();
    cluster
}

/// One shard's full-scan bytes through `backend`, straight off its
/// device — the byte reference cluster merges must reproduce.
fn shard_scan_bytes(cluster: &mut NkvCluster, shard: usize, backend: Backend) -> (Vec<u8>, u64) {
    let db = cluster.shard_db(shard).unwrap();
    match db.execute("papers", &LogicalOp::Scan { rules: all_rules() }, backend).unwrap() {
        PlanOutcome::Records { records, count, .. } => (records, count),
        other => panic!("scan lowered to {other:?}"),
    }
}

/// One seeded mid-run device-fault campaign: load, capture the per-shard
/// byte reference, trip `kind` on one device, drive reads through
/// `backend` while asserting survivor byte-identity and FSM
/// monotonicity, then heal and assert re-convergence.
fn fault_campaign(kind: DeviceFaultKind, backend: Backend, streams: usize) {
    let ctx = format!("kind={kind:?} backend={backend:?} streams={streams}");
    let records = dataset(400);
    let model: BTreeMap<u64, Vec<u8>> = records.iter().cloned().collect();
    let mut cluster = build_cluster(4, ReadPolicy::Available, 4, streams, &records);
    let victim = 1usize;

    let per_shard: Vec<(Vec<u8>, u64)> =
        (0..4).map(|s| shard_scan_bytes(&mut cluster, s, backend)).collect();
    let full: Vec<u8> = per_shard.iter().flat_map(|(r, _)| r.clone()).collect();
    let pre = cluster.scan("papers", &all_rules(), backend).unwrap();
    assert_eq!(pre.records, full, "{ctx}: clean cluster scan must concat shard scans in order");
    assert_eq!(pre.count, 400, "{ctx}");
    assert!(pre.missing_shards.is_empty(), "{ctx}");

    cluster.install_device_fault(victim, DeviceFaultPlan { kind, after_ops: 0 }).unwrap();

    let mut last_severity = cluster.shard_state(victim).unwrap().severity();
    let mut saw_missing_get = false;
    let mut saw_missing_scan = false;
    for step in 0..80u64 {
        let key = 1 + (step * 7) % 400;
        let owner = cluster.shard_for_key(key);
        let got = cluster.get("papers", key, backend).unwrap();
        if got.missing_shards.is_empty() {
            assert_eq!(
                got.record,
                model.get(&key).cloned(),
                "{ctx} step {step}: surviving get({key}) diverged"
            );
        } else {
            assert_eq!(got.missing_shards, vec![victim], "{ctx} step {step}");
            assert_eq!(owner, victim, "{ctx} step {step}: only the victim may go missing");
            assert_eq!(got.record, None, "{ctx} step {step}");
            saw_missing_get = true;
        }
        let severity = cluster.shard_state(victim).unwrap().severity();
        assert!(
            severity >= last_severity,
            "{ctx} step {step}: severity regressed {last_severity} -> {severity} without a heal"
        );
        last_severity = severity;

        if step % 10 == 9 {
            let scan = cluster.scan("papers", &all_rules(), backend).unwrap();
            let expected: Vec<u8> = (0..4usize)
                .filter(|s| !scan.missing_shards.contains(s))
                .flat_map(|s| per_shard[s].0.clone())
                .collect();
            assert_eq!(
                scan.records, expected,
                "{ctx} step {step}: survivors must be byte-identical to the reference"
            );
            if !scan.missing_shards.is_empty() {
                assert_eq!(scan.missing_shards, vec![victim], "{ctx} step {step}");
                saw_missing_scan = true;
            }
        }
    }
    assert!(saw_missing_get, "{ctx}: the fault never surfaced on the GET path");
    assert!(saw_missing_scan, "{ctx}: the fault never surfaced on the SCAN path");
    assert_eq!(
        cluster.shard_state(victim).unwrap(),
        ShardState::Dead,
        "{ctx}: sustained rejection must walk the victim to Dead"
    );
    let probes = cluster.cluster_health().shards[victim].probes_sent;
    assert!(probes >= 3, "{ctx}: quarantine must have probed (got {probes})");

    // Operator repair: the shard rejoins and the namespace re-converges.
    cluster.heal_shard(victim).unwrap();
    assert_eq!(cluster.shard_state(victim).unwrap(), ShardState::Recovered, "{ctx}");
    for (key, record) in model.iter().filter(|(k, _)| *k % 5 == 0) {
        let got = cluster.get("papers", *key, backend).unwrap();
        assert!(got.missing_shards.is_empty(), "{ctx}: post-heal get({key}) still degraded");
        assert_eq!(got.record, Some(record.clone()), "{ctx}: post-heal get({key}) diverged");
    }
    let post = cluster.scan("papers", &all_rules(), backend).unwrap();
    assert!(post.missing_shards.is_empty(), "{ctx}: post-heal scan still degraded");
    assert_eq!(post.count, 400, "{ctx}: post-heal scan count");
    if kind != DeviceFaultKind::PowerCut {
        // Hang/link-loss leave device state intact, so even the byte
        // order is exactly the pre-fault reference. (A power cut rebuilds
        // from flash; contents re-converge — asserted above — but SST ids
        // differ.)
        assert_eq!(post.records, full, "{ctx}: post-heal scan bytes");
    }
    assert_eq!(
        cluster.shard_state(victim).unwrap(),
        ShardState::Healthy,
        "{ctx}: successful post-heal traffic must promote the shard back to Healthy"
    );
}

/// The ISSUE's core matrix: kill (link loss), hang and power-cut one
/// device mid-run, for every backend and both dispatch styles (serial
/// and 2 parallel PE job streams).
#[test]
fn seeded_device_fault_campaigns_every_backend_and_stream_count() {
    for kind in [DeviceFaultKind::Hang, DeviceFaultKind::PowerCut, DeviceFaultKind::LinkLoss] {
        for backend in [Backend::Software, Backend::Hardware, Backend::Hybrid] {
            for streams in [0, 2] {
                fault_campaign(kind, backend, streams);
            }
        }
    }
}

/// With one device the cluster is a pass-through: identical bytes,
/// identical simulated time, identical queue report.
#[test]
fn single_device_cluster_is_byte_identical_to_a_standalone_db() {
    let records = dataset(300);
    for backend in [Backend::Software, Backend::Hardware] {
        for streams in [0, 2] {
            let ctx = format!("backend={backend:?} streams={streams}");
            let mut solo = NkvDb::default_db();
            solo.create_table("papers", table_cfg(4)).unwrap();
            solo.bulk_load("papers", records.iter().map(|(_, r)| r.clone())).unwrap();
            solo.persist().unwrap();
            solo.set_parallel_pes("papers", streams).unwrap();
            let mut cluster = build_cluster(1, ReadPolicy::Strict, 4, streams, &records);

            for key in [1u64, 57, 170, 299, 100_000] {
                let (solo_rec, solo_ns) =
                    match solo.execute("papers", &LogicalOp::Get { key }, backend).unwrap() {
                        PlanOutcome::Point { record, report } => (record, report.sim_ns),
                        other => panic!("{ctx}: GET lowered to {other:?}"),
                    };
                let got = cluster.get("papers", key, backend).unwrap();
                assert_eq!(got.record, solo_rec, "{ctx}: get({key}) bytes");
                assert_eq!(got.sim_ns, solo_ns, "{ctx}: get({key}) time");
                assert!(got.missing_shards.is_empty(), "{ctx}");
            }

            let op = LogicalOp::Scan { rules: all_rules() };
            let (solo_recs, solo_count, solo_ns) = match solo
                .execute("papers", &op, backend)
                .unwrap()
            {
                PlanOutcome::Records { records, count, report } => (records, count, report.sim_ns),
                other => panic!("{ctx}: SCAN lowered to {other:?}"),
            };
            let scan = cluster.scan("papers", &all_rules(), backend).unwrap();
            assert_eq!(scan.records, solo_recs, "{ctx}: scan bytes");
            assert_eq!(scan.count, solo_count, "{ctx}: scan count");
            assert_eq!(scan.sim_ns, solo_ns, "{ctx}: scan time");

            // RANGE_SCAN is a 2-stage predicate chain; the paper PE has
            // one filtering stage, so the range path runs software (the
            // cluster and the standalone db must agree on that too).
            let op = LogicalOp::RangeScan { lo: 50, hi: 150 };
            let (solo_recs, solo_count, solo_ns) = match solo
                .execute("papers", &op, Backend::Software)
                .unwrap()
            {
                PlanOutcome::Records { records, count, report } => (records, count, report.sim_ns),
                other => panic!("{ctx}: RANGE_SCAN lowered to {other:?}"),
            };
            let range = cluster.range_scan("papers", 50, 150, Backend::Software).unwrap();
            assert_eq!(range.records, solo_recs, "{ctx}: range bytes");
            assert_eq!(range.count, solo_count, "{ctx}: range count");
            assert_eq!(range.sim_ns, solo_ns, "{ctx}: range time");

            let op =
                LogicalOp::ScanAggregate { rules: all_rules(), agg: ndp_ir::AggOp::Count, lane: 0 };
            let (solo_value, solo_any, solo_ns) =
                match solo.execute("papers", &op, Backend::Software).unwrap() {
                    PlanOutcome::Aggregate { value, any, report } => (value, any, report.sim_ns),
                    other => panic!("{ctx}: aggregate lowered to {other:?}"),
                };
            let agg = cluster
                .scan_aggregate("papers", &all_rules(), ndp_ir::AggOp::Count, 0, Backend::Software)
                .unwrap();
            assert_eq!((agg.value, agg.any, agg.sim_ns), (solo_value, solo_any, solo_ns), "{ctx}");

            // The queued engine: same scripts, same report — on the
            // legacy path and through the auto-batching fold alike.
            let scripts: Vec<ClientScript> = (0..3u64)
                .map(|c| ClientScript {
                    ops: (0..20u64)
                        .map(|i| match (c + i) % 6 {
                            0 => QueuedOp::Scan { rules: all_rules() },
                            1 => QueuedOp::Put { record: record_for(500 + c * 20 + i) },
                            _ => QueuedOp::Get { key: 1 + (c * 37 + i * 11) % 300 },
                        })
                        .collect(),
                    ..Default::default()
                })
                .collect();
            for batch in [1u32, 8] {
                let qcfg = QueueRunConfig { batch, ..QueueRunConfig::default() };
                let solo_report = solo.run_queued("papers", &scripts, &qcfg).unwrap();
                let report = cluster.run_queued("papers", &scripts, &qcfg).unwrap();
                assert_eq!(report.logical_ops, 60, "{ctx} batch={batch}");
                assert_eq!(
                    report.completions,
                    solo_report.ops(),
                    "{ctx} batch={batch}: queued completions"
                );
                assert_eq!(
                    report.span_ns,
                    solo_report.finished_ns - solo_report.started_ns,
                    "{ctx} batch={batch}: queued span"
                );
                assert_eq!(
                    report.latency, solo_report.latency,
                    "{ctx} batch={batch}: queued latency histogram"
                );
                assert_eq!(report.shard_spans, vec![report.span_ns], "{ctx} batch={batch}");
            }
        }
    }
}

/// Batched queued runs split per shard and re-merge to the same bytes
/// as the unbatched fan-out: the router partitions each client's script
/// by key ownership, every shard folds its own GET runs, and the merged
/// result — completion counts during the run, and the full cross-shard
/// byte image after it — is identical to batch 1.
#[test]
fn batched_queued_runs_split_per_shard_and_rejoin_the_unbatched_bytes() {
    let records = dataset(300);
    let scripts: Vec<ClientScript> = (0..3u64)
        .map(|c| ClientScript {
            ops: (0..24u64)
                .map(|i| match (c + i) % 8 {
                    0 => QueuedOp::Put { record: record_for(600 + c * 24 + i) },
                    _ => QueuedOp::Get { key: 1 + (c * 41 + i * 13) % 300 },
                })
                .collect(),
            ..Default::default()
        })
        .collect();
    let run = |batch: u32| {
        let mut cluster = build_cluster(4, ReadPolicy::Available, 4, 0, &records);
        let report = cluster
            .run_queued("papers", &scripts, &QueueRunConfig { batch, ..QueueRunConfig::default() })
            .unwrap();
        let scan = cluster.scan("papers", &all_rules(), Backend::Software).unwrap();
        assert!(scan.missing_shards.is_empty(), "batch {batch}");
        (report, scan)
    };
    let (base, base_scan) = run(1);
    assert_eq!(base.logical_ops, 72);
    assert_eq!(base.completions, 72, "every op routes to exactly one shard");
    for batch in [2u32, 16] {
        let (b, scan) = run(batch);
        assert_eq!(b.logical_ops, base.logical_ops, "batch {batch}");
        assert_eq!(b.completions, base.completions, "batch {batch}: merged completion count");
        assert_eq!(scan.count, base_scan.count, "batch {batch}: post-run record count");
        assert_eq!(
            scan.records, base_scan.records,
            "batch {batch}: post-run cross-shard bytes diverged from the unbatched fan-out"
        );
    }
}

/// `Strict` reads fail loudly: a killed shard is a typed
/// [`NkvError::ShardUnavailable`] on both the point and fan-out paths,
/// while keys owned by survivors keep serving.
#[test]
fn strict_policy_turns_a_killed_shard_into_typed_errors() {
    let records = dataset(200);
    let model: BTreeMap<u64, Vec<u8>> = records.iter().cloned().collect();
    let mut cluster = build_cluster(4, ReadPolicy::Strict, 1, 0, &records);
    let victim = 2usize;
    cluster
        .install_device_fault(victim, DeviceFaultPlan { kind: DeviceFaultKind::Hang, after_ops: 0 })
        .unwrap();

    let victim_key = (1..=200u64).find(|k| cluster.shard_for_key(*k) == victim).unwrap();
    let survivor_key = (1..=200u64).find(|k| cluster.shard_for_key(*k) != victim).unwrap();

    match cluster.get("papers", victim_key, Backend::Hardware) {
        Err(NkvError::ShardUnavailable { shard, reason }) => {
            assert_eq!(shard, victim);
            assert!(reason.contains("hang"), "reason should name the fault: {reason}");
        }
        other => panic!("strict get on a hung shard: {other:?}"),
    }
    match cluster.scan("papers", &all_rules(), Backend::Hardware) {
        Err(NkvError::ShardUnavailable { shard, .. }) => assert_eq!(shard, victim),
        other => panic!("strict scan with a hung shard: {other:?}"),
    }
    let got = cluster.get("papers", survivor_key, Backend::Hardware).unwrap();
    assert_eq!(got.record, model.get(&survivor_key).cloned());
    assert!(got.missing_shards.is_empty());

    // Writes are strict under either policy; the victim's keys bounce.
    match cluster.put("papers", record_for(victim_key)) {
        Err(NkvError::ShardUnavailable { shard, .. }) => assert_eq!(shard, victim),
        other => panic!("write to a hung shard: {other:?}"),
    }
    cluster.put("papers", record_for(survivor_key)).unwrap();
}

/// Property: under a sustained fault (no successful op, probe or heal),
/// the victim's severity is non-decreasing at every single step, across
/// seeded op mixes; and it always ends Dead with probes on record.
#[test]
fn shard_state_is_monotone_under_sustained_faults() {
    let records = dataset(150);
    for seed in 0..8u64 {
        let mut cluster = build_cluster(4, ReadPolicy::Available, 1, 0, &records);
        let victim = (seed % 4) as usize;
        cluster
            .install_device_fault(
                victim,
                DeviceFaultPlan { kind: DeviceFaultKind::LinkLoss, after_ops: 0 },
            )
            .unwrap();
        let mut rng = SplitMix64::new(0xC1A0_5EED ^ seed);
        let mut last = cluster.shard_state(victim).unwrap().severity();
        for step in 0..120u32 {
            let key = rng.gen_range_u64(1, 151);
            if rng.gen_bool(0.8) {
                cluster.get("papers", key, Backend::Hardware).unwrap();
            } else {
                cluster.scan("papers", &all_rules(), Backend::Software).unwrap();
            }
            let severity = cluster.shard_state(victim).unwrap().severity();
            assert!(
                severity >= last,
                "seed {seed} step {step}: severity regressed {last} -> {severity}"
            );
            last = severity;
        }
        assert_eq!(cluster.shard_state(victim).unwrap(), ShardState::Dead, "seed {seed}");
        assert!(cluster.cluster_health().shards[victim].probes_sent > 0, "seed {seed}");
    }
}

/// A quarantined shard keeps probing on foreground traffic, and the
/// first probe after the fault clears brings it back — no operator
/// action, no restart.
#[test]
fn quarantined_shard_reprobes_and_recovers_when_the_fault_clears() {
    let records = dataset(200);
    let mut cluster = build_cluster(4, ReadPolicy::Available, 1, 0, &records);
    let victim = 3usize;
    cluster
        .install_device_fault(victim, DeviceFaultPlan { kind: DeviceFaultKind::Hang, after_ops: 0 })
        .unwrap();
    let victim_key = (1..=200u64).find(|k| cluster.shard_for_key(*k) == victim).unwrap();
    let survivor_key = (1..=200u64).find(|k| cluster.shard_for_key(*k) != victim).unwrap();

    // Drive victim traffic until the FSM quarantines it.
    let mut quarantined = false;
    for _ in 0..40 {
        cluster.get("papers", victim_key, Backend::Hardware).unwrap();
        if cluster.shard_state(victim).unwrap() == ShardState::Quarantined {
            quarantined = true;
            break;
        }
    }
    assert!(quarantined, "sustained errors must quarantine the shard");
    let probes_before = cluster.cluster_health().shards[victim].probes_sent;

    // The cable is reseated: clear the device fault out from under the
    // router. Only survivor traffic flows; probes must ride on it.
    cluster.shard_db(victim).unwrap().platform_mut().clear_device_fault();
    let mut recovered = false;
    for _ in 0..20 {
        cluster.get("papers", survivor_key, Backend::Hardware).unwrap();
        if cluster.shard_state(victim).unwrap() == ShardState::Recovered {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "a probe must observe the cleared fault and recover the shard");
    assert!(
        cluster.cluster_health().shards[victim].probes_sent > probes_before,
        "recovery must come from probing, not from routed traffic"
    );
    // And the shard serves again, correct bytes included.
    let got = cluster.get("papers", victim_key, Backend::Hardware).unwrap();
    assert!(got.missing_shards.is_empty());
    assert_eq!(got.record, Some(record_for(victim_key)));
}

/// Dead is sticky: once probes exhaust, even a cleared fault does not
/// revive the shard — only an explicit heal does.
#[test]
fn dead_shard_stays_dead_until_explicitly_healed() {
    let records = dataset(200);
    let mut cluster = build_cluster(4, ReadPolicy::Available, 1, 0, &records);
    let victim = 0usize;
    cluster
        .install_device_fault(
            victim,
            DeviceFaultPlan { kind: DeviceFaultKind::LinkLoss, after_ops: 0 },
        )
        .unwrap();
    let victim_key = (1..=200u64).find(|k| cluster.shard_for_key(*k) == victim).unwrap();
    for _ in 0..80 {
        cluster.get("papers", victim_key, Backend::Software).unwrap();
        if cluster.shard_state(victim).unwrap() == ShardState::Dead {
            break;
        }
    }
    assert_eq!(cluster.shard_state(victim).unwrap(), ShardState::Dead);

    cluster.shard_db(victim).unwrap().platform_mut().clear_device_fault();
    for _ in 0..30 {
        let got = cluster.get("papers", victim_key, Backend::Software).unwrap();
        assert_eq!(got.missing_shards, vec![victim], "a dead shard must not serve");
    }
    assert_eq!(cluster.shard_state(victim).unwrap(), ShardState::Dead);

    cluster.heal_shard(victim).unwrap();
    assert_eq!(cluster.shard_state(victim).unwrap(), ShardState::Recovered);
    let got = cluster.get("papers", victim_key, Backend::Software).unwrap();
    assert!(got.missing_shards.is_empty());
    assert_eq!(got.record, Some(record_for(victim_key)));
}

/// Gray failure: a slow-but-alive device returns identical bytes with
/// stretched simulated time, and is never treated as failed.
#[test]
fn gray_slow_device_stretches_time_but_not_results() {
    let records = dataset(200);
    let mut clean = build_cluster(4, ReadPolicy::Available, 1, 0, &records);
    let mut slow = build_cluster(4, ReadPolicy::Available, 1, 0, &records);
    let victim = 1usize;
    slow.install_device_fault(
        victim,
        DeviceFaultPlan { kind: DeviceFaultKind::Slow { factor_x10: 30 }, after_ops: 0 },
    )
    .unwrap();

    let victim_key = (1..=200u64).find(|k| clean.shard_for_key(*k) == victim).unwrap();
    let clean_get = clean.get("papers", victim_key, Backend::Hardware).unwrap();
    let slow_get = slow.get("papers", victim_key, Backend::Hardware).unwrap();
    assert_eq!(slow_get.record, clean_get.record, "gray failure changed bytes");
    assert!(slow_get.missing_shards.is_empty(), "a slow shard is not missing");
    assert_eq!(slow_get.sim_ns, clean_get.sim_ns * 3, "factor 3.0x must stretch time exactly");

    let clean_scan = clean.scan("papers", &all_rules(), Backend::Hardware).unwrap();
    let slow_scan = slow.scan("papers", &all_rules(), Backend::Hardware).unwrap();
    assert_eq!(slow_scan.records, clean_scan.records, "gray failure changed scan bytes");
    assert!(slow_scan.missing_shards.is_empty());
    assert!(
        slow_scan.sim_ns > clean_scan.sim_ns,
        "the slowed shard must dominate the device-parallel span \
         ({} !> {})",
        slow_scan.sim_ns,
        clean_scan.sim_ns
    );
    assert_eq!(slow.shard_state(victim).unwrap(), ShardState::Healthy, "slow is not sick");
    let stats = slow.device_fault_stats(victim).unwrap().unwrap();
    assert!(stats.ops_slowed > 0, "the gray fault must account its slowdowns");
}

/// The health renderings operators grep are stable: the cluster report
/// names every FSM state with fixed wording, and the single-device
/// [`nkv::HealthReport`] text is unchanged by the cluster work.
#[test]
fn health_renderings_are_stable_across_the_new_states() {
    let records = dataset(120);
    let mut cluster = build_cluster(4, ReadPolicy::Available, 1, 0, &records);
    // The virgin rendering, before any routed op has been scored.
    let fresh = NkvCluster::new(ClusterConfig::default()).unwrap().cluster_health().to_string();
    assert!(
        fresh.starts_with(
            "cluster: 4 shards (4 serving) — 4 healthy, 0 degraded, 0 quarantined, 0 dead, 0 recovered"
        ),
        "fresh cluster header drifted:\n{fresh}"
    );
    assert!(
        fresh.contains("  shard 0: healthy (ops 0, errors 0, probes 0, transitions 0)"),
        "fresh shard line drifted:\n{fresh}"
    );
    assert!(
        fresh.ends_with("  router: 0 retries (+0 ns backoff)"),
        "router line drifted:\n{fresh}"
    );

    // Walk shard 1 to Dead and shard 2 to Degraded, then check the
    // rendering names both.
    cluster
        .install_device_fault(1, DeviceFaultPlan { kind: DeviceFaultKind::Hang, after_ops: 0 })
        .unwrap();
    let k1 = (1..=120u64).find(|k| cluster.shard_for_key(*k) == 1).unwrap();
    for _ in 0..80 {
        cluster.get("papers", k1, Backend::Software).unwrap();
        if cluster.shard_state(1).unwrap() == ShardState::Dead {
            break;
        }
    }
    cluster
        .install_device_fault(2, DeviceFaultPlan { kind: DeviceFaultKind::LinkLoss, after_ops: 0 })
        .unwrap();
    let k2 = (1..=120u64).find(|k| cluster.shard_for_key(*k) == 2).unwrap();
    cluster.get("papers", k2, Backend::Software).unwrap();
    assert_eq!(cluster.shard_state(1).unwrap(), ShardState::Dead);
    assert_eq!(cluster.shard_state(2).unwrap(), ShardState::Degraded);

    let report = cluster.cluster_health();
    let text = report.to_string();
    assert!(text.starts_with("cluster: 4 shards (3 serving) —"), "serving count drifted:\n{text}");
    assert!(text.contains("1 degraded"), "{text}");
    assert!(text.contains("1 dead"), "{text}");
    assert!(text.contains("  shard 1: dead ("), "{text}");
    assert!(text.contains("  shard 2: degraded ("), "{text}");
    assert!(report.router_retries > 0, "rejections must be counted as router retries");

    // The device-level health text predates the cluster layer and must
    // not have moved: byte-exact for a fresh device.
    let device = NkvDb::default_db().health_report().to_string();
    assert_eq!(
        device,
        "health: injected 0 transient flash, 0 ecc-corrected, 0 grown-bad, 0 torn, \
         0 dram stalls (+0 ns), 0 pe hangs\n        reacted 0 retries (+0 ns backoff), \
         0 reads failed, 0 watchdog trips, 0 sw-fallback blocks, 0 PEs retired, 0 pages repaired"
    );
}

/// Range sharding keeps contiguous key ranges per device and prunes
/// RANGE_SCAN fan-out: a scan inside one shard's interval touches only
/// that shard, even with the rest of the fleet dead.
#[test]
fn range_sharding_prunes_range_scans_to_owning_shards() {
    let records = dataset(300);
    let mut cluster = NkvCluster::new(ClusterConfig {
        devices: 3,
        strategy: nkv::ShardStrategy::Range { boundaries: vec![101, 201] },
        read_policy: ReadPolicy::Strict,
        ..ClusterConfig::default()
    })
    .unwrap();
    cluster.create_table("papers", table_cfg(1)).unwrap();
    cluster.bulk_load("papers", records.iter().map(|(_, r)| r.clone()).collect()).unwrap();
    cluster.persist().unwrap();

    // Kill shards 1 and 2; a range entirely inside shard 0 still works —
    // under Strict policy — because pruning proves the others hold
    // nothing.
    for s in [1usize, 2] {
        cluster
            .install_device_fault(s, DeviceFaultPlan { kind: DeviceFaultKind::Hang, after_ops: 0 })
            .unwrap();
    }
    let scan = cluster.range_scan("papers", 10, 101, Backend::Software).unwrap();
    assert_eq!(scan.count, 91, "keys 10..=100 live on shard 0");
    assert!(scan.missing_shards.is_empty());
    // A range crossing into shard 1 must hit the hung device and fail
    // strictly.
    match cluster.range_scan("papers", 50, 150, Backend::Software) {
        Err(NkvError::ShardUnavailable { shard: 1, .. }) => {}
        other => panic!("cross-shard range over a hung device: {other:?}"),
    }
}
