//! Device-level integration tests: the full nKV stack on the simulated
//! Cosmos+ platform, including failure injection.

use cosmos_sim::{FlashError, PhysAddr};
use ndp_ir::elaborate;
use ndp_pe::oracle::FilterRule;
use ndp_pe::template::PeVariant;
use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC, REF_PE};
use ndp_workload::{Paper, PaperGen, PubGraphConfig, Ref, RefGen};
use nkv::{ExecMode, NkvDb, NkvError, TableConfig};

fn encode_paper(p: &Paper) -> Vec<u8> {
    let mut v = Vec::with_capacity(80);
    p.encode_into(&mut v);
    v
}

fn papers_db() -> (NkvDb, PubGraphConfig) {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let pe = elaborate(&m, PAPER_PE).unwrap();
    let mut db = NkvDb::default_db();
    db.create_table("papers", TableConfig::new(pe)).unwrap();
    let cfg = PubGraphConfig { papers: 4000, refs: 4000, seed: 77 };
    db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode_paper(&p))).unwrap();
    (db, cfg)
}

#[test]
fn hardware_and_software_agree_after_updates_and_deletes() {
    let (mut db, cfg) = papers_db();
    // Mixed mutations on top of the bulk data.
    for i in (0..cfg.papers).step_by(97) {
        let mut p = PaperGen::paper_at(&cfg, i);
        p.year = 1949; // distinctive updated value
        db.put("papers", encode_paper(&p)).unwrap();
    }
    for i in (0..cfg.papers).step_by(301) {
        db.delete("papers", i + 1).unwrap();
    }
    db.flush("papers").unwrap();
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 5 /* lt */, value: 1950 }];
    let sw = db.scan("papers", &rules, ExecMode::Software).unwrap();
    let hw = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
    assert_eq!(sw.records, hw.records);
    // Exactly the updated-but-not-deleted papers have year < 1950
    // (i = 0 is both updated and later deleted).
    let expected = (0..cfg.papers).step_by(97).filter(|i| i % 301 != 0).count() as u64;
    assert_eq!(sw.count, expected);
    // GETs agree too.
    for i in [0u64, 97, 301, 1234] {
        let (a, _) = db.get("papers", i + 1, ExecMode::Software).unwrap();
        let (b, _) = db.get("papers", i + 1, ExecMode::Hardware).unwrap();
        assert_eq!(a, b, "key {}", i + 1);
    }
}

#[test]
fn injected_ecc_fault_surfaces_as_flash_error() {
    let (mut db, _) = papers_db();
    // Poison a page belonging to the table's data (probe the first
    // allocated addresses — placement starts at page 0 of each LUN).
    db.platform_mut().flash.inject_bad_page(PhysAddr { channel: 0, lun: 2, page: 0 });
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 1000 }];
    // The scan must fail loudly (never silently drop data), whichever
    // block the bad page lands in.
    let result = db.scan("papers", &rules, ExecMode::Hardware);
    match result {
        Err(NkvError::Flash(FlashError::Uncorrectable(_))) => {}
        other => panic!("expected uncorrectable-ECC error, got {other:?}"),
    }
    // Healing restores service.
    db.platform_mut().flash.heal_page(PhysAddr { channel: 0, lun: 2, page: 0 });
    assert!(db.scan("papers", &rules, ExecMode::Hardware).is_ok());
}

#[test]
fn baseline_pe_population_matches_generated_results() {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let pe = elaborate(&m, PAPER_PE).unwrap();
    let cfg = PubGraphConfig { papers: 3000, refs: 3000, seed: 5 };
    let mut results = Vec::new();
    for variant in [PeVariant::Generated, PeVariant::HandCrafted] {
        let mut db = NkvDb::default_db();
        let mut tc = TableConfig::new(pe.clone());
        tc.variant = variant;
        tc.n_pes = 2;
        db.create_table("papers", tc).unwrap();
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode_paper(&p))).unwrap();
        let rules = [FilterRule { lane: paper_lanes::N_CITS, op_code: 4, value: 1500 }];
        results.push(db.scan("papers", &rules, ExecMode::Hardware).unwrap().records);
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn duplicate_key_edge_table_full_workflow() {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let pe = elaborate(&m, REF_PE).unwrap();
    let mut db = NkvDb::default_db();
    let mut tc = TableConfig::new(pe);
    tc.unique_keys = false;
    tc.n_pes = 3;
    db.create_table("refs", tc).unwrap();
    let cfg = PubGraphConfig { papers: 500, refs: 6000, seed: 9 };
    let mut buf = Vec::new();
    let n = db
        .bulk_load(
            "refs",
            RefGen::new(cfg).map(|r| {
                buf.clear();
                r.encode_into(&mut buf);
                buf.clone()
            }),
        )
        .unwrap();
    assert_eq!(n, 6000);
    // SCAN over duplicate keys returns every matching edge.
    let rules = [FilterRule { lane: 2 /* year */, op_code: 4, value: 2000 }];
    let s = db.scan("refs", &rules, ExecMode::Hardware).unwrap();
    let expected = RefGen::new(cfg).filter(|r| r.year >= 2000).count() as u64;
    assert_eq!(s.count, expected);
    for rec in s.records.chunks_exact(20) {
        assert!(Ref::decode(rec).year >= 2000);
    }
    // GET by source id returns one of that source's edges.
    let (rec, _) = db.get("refs", 42, ExecMode::Software).unwrap();
    assert_eq!(Ref::decode(&rec.unwrap()).src, 42);
}

#[test]
fn range_scan_matches_key_range_exactly() {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let mut pe = elaborate(&m, PAPER_PE).unwrap();
    pe.stages = 2;
    let mut db = NkvDb::default_db();
    db.create_table("papers", TableConfig::new(pe)).unwrap();
    let cfg = PubGraphConfig { papers: 5000, refs: 5000, seed: 13 };
    db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode_paper(&p))).unwrap();
    for (lo, hi) in [(1u64, 2u64), (100, 1100), (4990, 6000), (6000, 7000)] {
        let s = db.range_scan("papers", lo, hi, ExecMode::Hardware).unwrap();
        let expected = (lo..hi.min(cfg.papers + 1)).count() as u64;
        let expected = expected.min(cfg.papers.saturating_sub(lo - 1));
        assert_eq!(s.count, expected, "range {lo}..{hi}");
    }
}

#[test]
fn simulated_times_scale_with_data_volume() {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let pe = elaborate(&m, PAPER_PE).unwrap();
    let mut times = Vec::new();
    for n in [20_000u64, 80_000] {
        let mut db = NkvDb::default_db();
        db.create_table("papers", TableConfig::new(pe.clone())).unwrap();
        let cfg = PubGraphConfig { papers: n, refs: n, seed: 3 };
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode_paper(&p))).unwrap();
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 3000 }];
        let s = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
        times.push(s.report.sim_ns as f64);
    }
    let ratio = times[1] / times[0];
    assert!(
        (3.2..4.8).contains(&ratio),
        "4x the data should take ~4x the streaming time \
         (constant per-op overheads shift it slightly), got {ratio:.2}x"
    );
}

/// Minimal recursive-descent JSON validator (the workspace carries no
/// serde); returns the rest of the input after one complete value.
fn json_value(s: &[u8]) -> Result<&[u8], String> {
    let s = skip_ws(s);
    match s.first() {
        Some(b'{') => json_seq(&s[1..], b'}', |s| {
            let s = json_string(skip_ws(s))?;
            let s = skip_ws(s);
            match s.first() {
                Some(b':') => json_value(&s[1..]),
                _ => Err("expected `:`".into()),
            }
        }),
        Some(b'[') => json_seq(&s[1..], b']', json_value),
        Some(b'"') => json_string(s),
        Some(b't') => json_lit(s, b"true"),
        Some(b'f') => json_lit(s, b"false"),
        Some(b'n') => json_lit(s, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let end = s
                .iter()
                .position(|c| !(c.is_ascii_digit() || b"+-.eE".contains(c)))
                .unwrap_or(s.len());
            s[..end]
                .iter()
                .any(|c| c.is_ascii_digit())
                .then(|| &s[end..])
                .ok_or_else(|| "bad number".into())
        }
        other => Err(format!("unexpected {other:?}")),
    }
}

fn skip_ws(s: &[u8]) -> &[u8] {
    let n = s.iter().take_while(|c| c.is_ascii_whitespace()).count();
    &s[n..]
}

fn json_lit<'a>(s: &'a [u8], lit: &[u8]) -> Result<&'a [u8], String> {
    s.strip_prefix(lit).ok_or_else(|| "bad literal".into())
}

fn json_string(s: &[u8]) -> Result<&[u8], String> {
    let mut rest = s.strip_prefix(b"\"").ok_or("expected string")?;
    loop {
        match rest.first().ok_or("unterminated string")? {
            b'"' => return Ok(&rest[1..]),
            b'\\' => rest = rest.get(2..).ok_or("bad escape")?,
            _ => rest = &rest[1..],
        }
    }
}

/// `items` already past the opener; elements parsed by `elem`, separated
/// by commas, closed by `close`.
fn json_seq<'a>(
    items: &'a [u8],
    close: u8,
    elem: impl Fn(&'a [u8]) -> Result<&'a [u8], String>,
) -> Result<&'a [u8], String> {
    let mut s = skip_ws(items);
    if s.first() == Some(&close) {
        return Ok(&s[1..]);
    }
    loop {
        s = skip_ws(elem(s)?);
        match s.first() {
            Some(b',') => s = skip_ws(&s[1..]),
            Some(c) if *c == close => return Ok(&s[1..]),
            other => return Err(format!("expected `,` or close, got {other:?}")),
        }
    }
}

/// The Chrome `trace_event` export of a tiny SCAN is well-formed JSON,
/// covers every device resource the op touched, orders spans by start
/// time, and is byte-for-byte reproducible across identical runs.
#[test]
fn tiny_scan_chrome_trace_is_valid_json_with_stable_ordering() {
    let run = || {
        let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
        let pe = elaborate(&m, PAPER_PE).unwrap();
        let mut db = NkvDb::default_db();
        db.create_table("papers", TableConfig::new(pe)).unwrap();
        let cfg = PubGraphConfig { papers: 200, refs: 0, seed: 5 };
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode_paper(&p))).unwrap();
        db.enable_observability(1 << 12);
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4 /* ge */, value: 2000 }];
        let s = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
        assert!(s.count > 0, "the tiny scan must match something");
        cosmos_sim::chrome_trace_json(&db.take_trace())
    };
    let json = run();

    // Well-formed JSON, one complete value, nothing trailing.
    let rest = json_value(json.as_bytes()).unwrap_or_else(|e| panic!("invalid JSON ({e})"));
    assert!(skip_ws(rest).is_empty(), "trailing bytes after the JSON value");
    assert!(json.starts_with("{\"traceEvents\":["), "envelope drifted");
    assert!(json.ends_with("],\"displayTimeUnit\":\"ns\"}"), "envelope drifted");

    // Every resource the scan exercised has spans, on its stable pid row.
    for (name, pid_frag) in [
        ("flash_read", "\"pid\":100,"),
        ("dram_transfer", "\"pid\":200,"),
        ("pe_job", "\"pid\":300,"),
        ("reg_access", "\"pid\":300,"),
        ("nvme_transfer", "\"pid\":400,"),
    ] {
        assert!(json.contains(&format!("\"name\":\"{name}\"")), "no {name} spans");
        assert!(json.contains(pid_frag), "pid row {pid_frag} missing");
    }

    // Spans come out sorted by start timestamp.
    let ts: Vec<f64> = json
        .match_indices("\"ts\":")
        .map(|(i, _)| {
            let t = &json[i + 5..];
            t[..t.find(',').unwrap()].parse().unwrap()
        })
        .collect();
    assert!(!ts.is_empty() && ts.windows(2).all(|w| w[0] <= w[1]), "spans not time-ordered");

    // Deterministic: an identical run renders the identical bytes.
    assert_eq!(json, run(), "trace export is not reproducible");
}
