//! The device-wide fault-injection engine in action: a seeded
//! `FaultPlan` throws transient reads, correctable-ECC degradation and
//! PE hangs at the store, which reacts with retries, watchdog-driven
//! HW→SW degradation and read-repair — then a power cut mid-persist is
//! recovered from the dual-slot manifest.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use cosmos_sim::faults::FaultPlan;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{PaperGen, PubGraphConfig};
use nkv::{ExecMode, NkvDb, NkvError, TableConfig};

fn main() {
    let module = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let mut db = NkvDb::default_db();
    db.create_table("papers", TableConfig::new(ndp_ir::elaborate(&module, PAPER_PE).unwrap()))
        .unwrap();
    let cfg = PubGraphConfig { papers: 5_000, refs: 5_000, seed: 7 };
    let mut buf = Vec::new();
    db.bulk_load(
        "papers",
        PaperGen::new(cfg).map(|p| {
            buf.clear();
            p.encode_into(&mut buf);
            buf.clone()
        }),
    )
    .unwrap();
    db.persist().unwrap();
    println!("loaded {} papers on the healthy device", cfg.papers);

    // A fault-free hardware scan is the reference answer.
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2010 }];
    let reference = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
    println!("reference HW scan: {} matches", reference.count);

    // --- Turn the weather bad: flaky reads, degrading pages, and a PE
    // that hangs on every block.
    db.platform_mut().install_faults(&FaultPlan {
        seed: 42,
        transient_read_p: 0.02, // retried with simulated-time backoff
        correctable_p: 0.30,    // degrades pages; read-repair relocates them
        pe_hang_p: 1.0,         // watchdog retires the PE, blocks re-run on ARM
        ..FaultPlan::default()
    });
    let degraded = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
    assert_eq!(degraded.records, reference.records, "degradation must not change results");
    println!(
        "faulty   HW scan: {} matches (identical), {:.1}x slower simulated",
        degraded.count,
        degraded.report.sim_ns as f64 / reference.report.sim_ns as f64
    );
    println!("{}", db.health_report());

    // --- Read-repair: a couple more scans accumulate ECC-correction
    // counts, then degrading pages are relocated to fresh ones.
    for _ in 0..2 {
        db.scan("papers", &rules, ExecMode::Hardware).unwrap();
    }
    let repaired = db.read_repair(2).unwrap();
    let again = db.read_repair(2).unwrap();
    println!("read-repair relocated {repaired} degrading pages ({again} left on a second pass)");

    // --- The PE comes back after maintenance.
    db.platform_mut().clear_faults();
    db.reset_pes("papers").unwrap();
    let healed = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
    assert_eq!(healed.records, reference.records);
    println!("after clear_faults + reset_pes: HW scan healthy again, {} matches", healed.count);

    // --- Power cut mid-persist: the dual-slot manifest keeps the last
    // acknowledged epoch readable.
    let mut extra = PaperGen::paper_at(&cfg, 0);
    extra.id = 1_000_000;
    buf.clear();
    extra.encode_into(&mut buf);
    db.put("papers", buf.clone()).unwrap();
    db.flush("papers").unwrap();
    db.platform_mut().install_faults(&FaultPlan {
        seed: 9,
        power_cut_at_write: Some(0), // the very next page program is torn
        ..FaultPlan::default()
    });
    match db.persist() {
        Err(NkvError::Flash(cosmos_sim::FlashError::PowerCut)) => {
            println!("power cut struck during persist — manifest write torn")
        }
        other => panic!("expected a power cut, got {other:?}"),
    }

    let mut fresh = cosmos_sim::CosmosPlatform::default_platform();
    fresh.flash = db.platform_mut().flash.clone();
    fresh.flash.reboot();
    let table_cfg = TableConfig::new(ndp_ir::elaborate(&module, PAPER_PE).unwrap());
    let mut rec = NkvDb::recover(fresh, vec![("papers".into(), table_cfg)]).unwrap();
    let survivors = rec.scan("papers", &rules, ExecMode::Hardware).unwrap();
    assert_eq!(survivors.records, reference.records, "acknowledged state must survive the cut");
    println!(
        "rebooted + recovered from the surviving manifest slot: {} matches, \
         unacknowledged flush rolled back",
        survivors.count
    );
}
