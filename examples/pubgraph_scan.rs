//! The paper's evaluation workload on the full stack: a publication
//! reference graph stored in nKV on the simulated Cosmos+ OpenSSD,
//! queried with GET and SCAN in software and hardware NDP modes.
//!
//! ```text
//! cargo run --release --example pubgraph_scan [-- scale]
//! ```
//!
//! `scale` is a fraction of the paper's 3.78 M-paper / 40.1 M-reference
//! dataset (default 1/128 ≈ 8.6 MB of records).

use cosmos_sim::ns_to_secs;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, ref_lanes};
use ndp_workload::PaperGen;
use nkv::ExecMode;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1.0 / 128.0);

    println!("building the device and loading the publication graph (scale {scale}) ...");
    let module = ndp_spec::parse(ndp_workload::PAPER_REF_SPEC).unwrap();
    let paper_pe = ndp_ir::elaborate(&module, ndp_workload::PAPER_PE).unwrap();
    let ref_pe = ndp_ir::elaborate(&module, ndp_workload::REF_PE).unwrap();

    let mut db = nkv::NkvDb::default_db();
    let mut papers = nkv::TableConfig::new(paper_pe);
    papers.n_pes = 1;
    db.create_table("papers", papers).unwrap();
    let mut refs = nkv::TableConfig::new(ref_pe);
    refs.n_pes = 7; // the paper's population: 1 paper-PE + 7 ref-PEs
    refs.unique_keys = false;
    db.create_table("refs", refs).unwrap();

    let cfg = ndp_workload::PubGraphConfig::scaled(scale);
    let mut buf = Vec::new();
    db.bulk_load(
        "papers",
        ndp_workload::PaperGen::new(cfg).map(|p| {
            buf.clear();
            p.encode_into(&mut buf);
            buf.clone()
        }),
    )
    .unwrap();
    let mut buf = Vec::new();
    db.bulk_load(
        "refs",
        ndp_workload::RefGen::new(cfg).map(|r| {
            buf.clear();
            r.encode_into(&mut buf);
            buf.clone()
        }),
    )
    .unwrap();
    println!(
        "loaded {} papers and {} references ({} MB)",
        cfg.papers,
        cfg.refs,
        cfg.total_bytes() / 1_000_000
    );

    // --- GET: a point lookup on the papers table.
    let sample = PaperGen::paper_at(&cfg, cfg.papers / 3);
    for mode in [ExecMode::Software, ExecMode::Hardware] {
        let (rec, rep) = db.get("papers", sample.id, mode).unwrap();
        assert!(rec.is_some());
        println!(
            "GET  paper {:7} [{}]: {:8.3} ms simulated ({} blocks read)",
            sample.id,
            mode_name(mode),
            rep.sim_ns as f64 / 1e6,
            rep.blocks
        );
    }

    // --- SCAN: recent papers (year >= 2015) — the I/O-heavy operation
    // where near-data processing pays off.
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2015 }];
    let mut times = Vec::new();
    for mode in [ExecMode::Software, ExecMode::Hardware] {
        let s = db.scan("papers", &rules, mode).unwrap();
        println!(
            "SCAN papers year>=2015 [{}]: {:8.3} ms simulated, {} matches \
             ({} MB scanned)",
            mode_name(mode),
            s.report.sim_ns as f64 / 1e6,
            s.count,
            s.report.bytes_scanned / 1_000_000
        );
        times.push(s.report.sim_ns);
    }
    println!("hardware NDP speedup on SCAN: {:.2}x", times[0] as f64 / times[1] as f64);

    // --- SCAN on the edge table with 7 ref-PEs in parallel.
    let rules = [FilterRule { lane: ref_lanes::YEAR, op_code: 2, value: 1980 }];
    let s = db.scan("refs", &rules, ExecMode::Hardware).unwrap();
    println!(
        "SCAN refs year==1980 [hw, 7 PEs]: {:8.3} ms simulated, {} matches",
        s.report.sim_ns as f64 / 1e6,
        s.count
    );
    println!("total simulated device time: {:.3} s", ns_to_secs(db.clock()));
}

fn mode_name(m: ExecMode) -> &'static str {
    match m {
        ExecMode::Software => "sw",
        ExecMode::Hardware => "hw",
    }
}
