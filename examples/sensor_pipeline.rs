//! IoT sensor analytics: the "evolving feature vector" scenario from the
//! paper's introduction — data formats change over time, so accelerators
//! must be regenerated, not hand-crafted.
//!
//! ```text
//! cargo run --release --example sensor_pipeline
//! ```
//!
//! Demonstrates the framework extensions over the hand-crafted PEs of
//! [1]: multi-stage predicate chains, signed/float fields, string
//! prefixes, a custom comparator operation, and a data transformation
//! that strips metadata before results leave the device.

use ndp_core::generate_with_custom_ops;
use ndp_pe::oracle::FilterRule;
use ndp_pe::regs::offsets;
use ndp_pe::{MemBus, Mmio, VecMem};
use ndp_swgen::{DriverProfile, FilterJob, PeDriver};

/// Version 2 of the sensor record: a float was added, the tag grew.
/// (Version 1 shipped last month; regenerating took one annotation edit.)
const SPEC: &str = r#"
/* @autogen define parser SensorV2 with
   chunksize = 32, input = SensorReading, output = SensorExport,
   stages = 3, operators = { ==, !=, >, >=, <, <=, in_band } */
typedef struct {
    uint64_t device_id;
    int32_t  temp_milli_c;     /* signed: freezer readings are negative */
    float    humidity;
    uint32_t flags;            /* internal metadata, stripped on export */
    /* @string(prefix = 4) */ uint8_t site[16];
} SensorReading;
typedef struct {
    uint64_t device_id;
    int32_t  temp_milli_c;
    float    humidity;
    /* @string(prefix = 4) */ uint8_t site[16];
} SensorExport;
"#;

fn encode(device: u64, temp: i32, hum: f32, flags: u32, site: &str) -> Vec<u8> {
    let mut v = Vec::with_capacity(36);
    v.extend_from_slice(&device.to_le_bytes());
    v.extend_from_slice(&temp.to_le_bytes());
    v.extend_from_slice(&hum.to_le_bytes());
    v.extend_from_slice(&flags.to_le_bytes());
    let mut site_bytes = [0u8; 16];
    site_bytes[..site.len().min(16)].copy_from_slice(&site.as_bytes()[..site.len().min(16)]);
    v.extend_from_slice(&site_bytes);
    v
}

fn main() {
    let artifacts = generate_with_custom_ops(SPEC, &["in_band"]).expect("specification is valid");
    let pe = artifacts.pe("SensorV2").expect("parser defined");
    println!(
        "generated `{}`: {} lanes, 3 filtering stages, {} slices OOC",
        pe.config.name, pe.config.input.lanes, pe.report.slices_out_of_context
    );

    let mut sim = pe.simulator();
    // Bind the custom operator declared in the annotation: |a - b| small,
    // on the raw milli-degrees (the paper's extensible-operator hook).
    assert!(sim.bind_custom_op("in_band", |_, a, b| { (a as i64 - b as i64).abs() < 5_000 }));

    // A day of readings from three sites.
    let mut mem = VecMem::new(1 << 16);
    let readings = [
        encode(1, -18_200, 0.31, 7, "freezer-a"),
        encode(2, 21_500, 0.44, 0, "office-3"),
        encode(3, 22_800, 0.40, 1, "office-3"),
        encode(4, -21_050, 0.29, 0, "freezer-b"),
        encode(5, 23_900, 0.95, 0, "greenhouse"),
        encode(6, 19_700, 0.51, 2, "office-3"),
    ];
    let mut bytes = Vec::new();
    for r in &readings {
        bytes.extend_from_slice(r);
    }
    mem.write_bytes(0, &bytes);

    // 3-stage chain: temperature in band around 21.5 °C, humidity < 0.6,
    // site prefix == "offi".
    let lanes = &pe.config.input;
    let lane = |path: &str| lanes.field(path).unwrap().lane.unwrap();
    let in_band = pe.config.op_code("in_band").unwrap();
    let lt = pe.config.op_code("lt").unwrap();
    let eq = pe.config.op_code("eq").unwrap();
    let rules = [
        FilterRule { lane: lane("temp_milli_c"), op_code: in_band, value: 21_500i32 as u32 as u64 },
        FilterRule { lane: lane("humidity"), op_code: lt, value: u64::from(0.6f32.to_bits()) },
        FilterRule {
            lane: lane("site.prefix"),
            op_code: eq,
            value: u64::from(u32::from_le_bytes(*b"offi")),
        },
    ];

    // Drive it through the generated software interface, exactly like
    // the device firmware would.
    let mut driver = PeDriver::new(sim, DriverProfile::Generated);
    let job = FilterJob {
        src: 0,
        len: bytes.len() as u32,
        dst: 0x8000,
        capacity: 4096,
        rules: rules.to_vec(),
        aggregate: None,
    };
    let res = driver.filter_sync(&mut mem, &job);
    println!(
        "filtered {} readings -> {} exported ({} register writes, {} reads)",
        res.block.tuples_in, res.tuples_out, res.io.reg_writes, res.io.reg_reads
    );

    let out_bytes = pe.config.output.tuple_bytes() as usize;
    let mut out = vec![0u8; res.result_bytes as usize];
    mem.read_bytes(0x8000, &mut out);
    println!("exports (metadata `flags` stripped by the transformation unit):");
    for rec in out.chunks_exact(out_bytes) {
        let device = u64::from_le_bytes(rec[0..8].try_into().unwrap());
        let temp = i32::from_le_bytes(rec[8..12].try_into().unwrap());
        let hum = f32::from_le_bytes(rec[12..16].try_into().unwrap());
        let site = String::from_utf8_lossy(&rec[16..32]);
        println!(
            "  device {device}: {:.1} °C, humidity {hum:.2}, site `{}`",
            temp as f64 / 1000.0,
            site.trim_end_matches('\0')
        );
    }
    // Devices 2 (21.5 °C), 3 (22.8) and 6 (19.7) are in band at office-3;
    // all have humidity < 0.6.
    assert_eq!(res.tuples_out, 3);
    assert_eq!(out.len() % out_bytes, 0);

    // The PE driver checks: register traffic matches the generated header
    // protocol the paper's Fig. 6 describes.
    let mut state = driver;
    let dev = state.device();
    println!(
        "PE state after run: TUPLES_IN={} TUPLES_OUT={} RESULT_BYTES={}",
        dev.mmio_read(offsets::TUPLES_IN),
        dev.mmio_read(offsets::TUPLES_OUT),
        dev.mmio_read(offsets::RESULT_BYTES),
    );
}
