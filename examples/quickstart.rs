//! Quickstart: the paper's Fig. 4 example, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A database engineer writes C-style typedefs plus one `@autogen`
//! annotation; the framework generates the accelerator (Verilog +
//! resource estimate), the software interface (C header), and an
//! executable model — which we immediately use to filter and project a
//! batch of 3-D points.

use ndp_core::generate;
use ndp_pe::regs::offsets;
use ndp_pe::{MemBus, Mmio, PeDevice, VecMem};

const SPEC: &str = r#"
/* @autogen define parser Point3DTo2D with
   chunksize = 32, input = Point3D, output = Point2D,
   mapping = { output.x = input.y, output.y = input.z }
*/
typedef struct { uint32_t x, y, z; } Point3D;
typedef struct { uint32_t x, y; } Point2D;
"#;

fn main() {
    // 1. One call runs the whole toolflow (paper, Sec. IV).
    let artifacts = generate(SPEC).expect("specification is valid");
    let pe = artifacts.pe("Point3DTo2D").expect("parser was defined");

    println!("=== Generated artifacts for `{}` ===", pe.config.name);
    println!(
        "input: {} bytes/tuple, {} comparator lanes of {} bit",
        pe.config.input.tuple_bytes(),
        pe.config.input.lanes,
        pe.config.input.lane_bits
    );
    println!(
        "hardware estimate: {} slices (in-context), {} BRAM",
        pe.report.slices_in_context, pe.report.brams
    );
    println!("register map: {} control registers", pe.register_map.len());

    println!("\n--- C header (first lines, cf. paper Fig. 6) ---");
    for line in pe.c_header.lines().take(14) {
        println!("{line}");
    }
    println!("\n--- Verilog (first lines) ---");
    for line in pe.verilog.lines().take(6) {
        println!("{line}");
    }

    // 2. Drive the generated PE: filter points with y >= 300, project to
    // 2-D (the paper's running example semantics).
    let mut sim = pe.simulator();
    let mut mem = VecMem::new(1 << 16);
    let points: &[(u32, u32, u32)] = &[(1, 100, 11), (2, 300, 22), (3, 250, 33), (4, 999, 44)];
    let mut bytes = Vec::new();
    for &(x, y, z) in points {
        for v in [x, y, z] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    mem.write_bytes(0, &bytes);

    let ge = pe.config.op_code("ge").expect("standard operator set");
    sim.mmio_write(offsets::SRC_ADDR_LO, 0);
    sim.mmio_write(offsets::SRC_LEN, bytes.len() as u32);
    sim.mmio_write(offsets::DST_ADDR_LO, 0x8000);
    sim.mmio_write(offsets::DST_CAPACITY, 4096);
    sim.mmio_write(offsets::STAGE_BASE + offsets::STAGE_FIELD, 1); // lane of `y`
    sim.mmio_write(offsets::STAGE_BASE + offsets::STAGE_OP, ge);
    sim.mmio_write(offsets::STAGE_BASE + offsets::STAGE_VAL_LO, 300);
    sim.mmio_write(offsets::START, 1);
    let res = sim.execute(&mut mem);

    println!("\n=== Execution (filter y >= 300, project to 2-D) ===");
    println!(
        "{} tuples in, {} passed, {} result bytes in {} PL cycles",
        res.tuples_in, res.tuples_out, res.result_bytes, res.cycles
    );
    let mut out = vec![0u8; res.result_bytes as usize];
    mem.read_bytes(0x8000, &mut out);
    for rec in out.chunks_exact(8) {
        let x = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let y = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        println!("  Point2D {{ x: {x}, y: {y} }}");
    }
    assert_eq!(res.tuples_out, 2, "points (2,300,22) and (4,999,44) pass");
}
