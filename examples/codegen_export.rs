//! Export the generated hardware and software artifacts to disk — what a
//! user would hand to Vivado (Verilog) and to the firmware build (C
//! header) on a real Cosmos+ board.
//!
//! ```text
//! cargo run --release --example codegen_export [-- out_dir]
//! ```
//!
//! Also prints the resource planning table a deployment engineer needs:
//! how many PEs of each kind fit next to the platform logic.

use ndp_core::generate;
use ndp_hdl::XC7Z045;
use ndp_ir::elaborate;
use ndp_pe::template::{pe_report, system_report, PePopulation, PeVariant};
use ndp_workload::{PAPER_PE, PAPER_REF_SPEC, REF_PE};
use std::path::PathBuf;

fn main() {
    let out_dir: PathBuf =
        std::env::args().nth(1).map(Into::into).unwrap_or_else(|| "generated".into());

    // Generate both evaluation PEs from the shared specification.
    let artifacts = generate(PAPER_REF_SPEC).expect("bundled spec is valid");
    artifacts.write_to(&out_dir).expect("artifact directory is writable");
    println!("wrote artifacts to `{}`:", out_dir.display());
    for pe in &artifacts.pes {
        println!(
            "  {stem}.v ({} lines), {stem}.h ({} lines)",
            pe.verilog.lines().count(),
            pe.c_header.lines().count(),
            stem = pe.file_stem()
        );
    }

    // Resource planning: how many ref-PEs fit beside one paper-PE?
    let module = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let paper = elaborate(&module, PAPER_PE).unwrap();
    let r#ref = elaborate(&module, REF_PE).unwrap();
    println!("\nresource plan on the XC7Z045 ({} slices):", XC7Z045::SLICES);
    println!("  paper-PE: {} slices", pe_report(&paper, PeVariant::Generated).slices_in_context);
    println!("  ref-PE:   {} slices", pe_report(&r#ref, PeVariant::Generated).slices_in_context);
    println!("\n  ref-PEs | overall slices | utilization");
    let mut last_fit = 0;
    for n in [1u32, 3, 5, 7, 9, 11] {
        let rep = system_report(&[
            PePopulation { cfg: paper.clone(), variant: PeVariant::Generated, count: 1 },
            PePopulation { cfg: r#ref.clone(), variant: PeVariant::Generated, count: n },
        ]);
        let fits = rep.overall_slices <= XC7Z045::SLICES;
        println!(
            "  {:7} | {:14} | {:6.2}% {}",
            n,
            rep.overall_slices,
            rep.overall_pct,
            if fits { "" } else { "  (does not fit)" }
        );
        if fits {
            last_fit = n;
        }
    }
    println!(
        "\nthe paper's configuration (7 ref-PEs) fits; at most {last_fit} ref-PEs fit \
         next to one paper-PE"
    );
}
