//! The device-wide observability stack, end to end: hardware
//! performance counters read back from a generated PE, op-level latency
//! histograms and busy-time breakdowns from the key-value store, and a
//! Chrome `trace_event` JSON export of the device-internal spans
//! (load it at `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! ```text
//! cargo run --release --example profiling [-- <trace-output.json>]
//! ```

use ndp_pe::oracle::FilterRule;
use ndp_pe::regs::{offsets, perf_offsets};
use ndp_pe::template::{pe_report_opts, PeObservability, PeVariant};
use ndp_pe::{MemBus, Mmio, PeDevice, VecMem};
use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{PaperGen, PubGraphConfig};
use nkv::{ExecMode, NkvDb, TableConfig};

/// `ge` in the standard operator set (ndp-ir encoding).
const OP_GE: u32 = 4;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "target/profile_trace.json".into());

    // --- 1. The synthesis cost of observability. The software surface
    // always exposes the CNT_* bank; whether the counter logic is
    // synthesized is a template option, so the figure paths keep the
    // paper's exact slice counts.
    let module = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let cfg = ndp_ir::elaborate(&module, PAPER_PE).unwrap();
    let stripped = pe_report_opts(&cfg, PeVariant::Generated, PeObservability::Stripped);
    let counters = pe_report_opts(&cfg, PeVariant::Generated, PeObservability::Counters);
    println!("=== Hardware tax of the performance-counter bank (paper-PE) ===");
    println!(
        "  stripped: {} slices   with counters: {} slices   (+{}, {} CNT_* registers)",
        stripped.slices_in_context,
        counters.slices_in_context,
        counters.slices_in_context - stripped.slices_in_context,
        9 + cfg.stages
    );

    // --- 2. Counter readback from a running PE: filter `year >= 2010`
    // over a batch of encoded Paper records and read the CNT_* bank.
    let artifacts = ndp_core::generate(PAPER_REF_SPEC).expect("workload spec is valid");
    let pe = artifacts.pe(PAPER_PE).expect("paper PE is defined");
    let mut sim = pe.simulator();
    let mut mem = VecMem::new(1 << 20);
    let gen_cfg = PubGraphConfig { papers: 512, refs: 512, seed: 11 };
    let mut bytes = Vec::new();
    for p in PaperGen::new(gen_cfg) {
        p.encode_into(&mut bytes);
    }
    mem.write_bytes(0, &bytes);
    sim.mmio_write(offsets::SRC_ADDR_LO, 0);
    sim.mmio_write(offsets::SRC_LEN, bytes.len() as u32);
    sim.mmio_write(offsets::DST_ADDR_LO, 0x8_0000);
    sim.mmio_write(offsets::DST_CAPACITY, 1 << 19);
    sim.mmio_write(offsets::STAGE_BASE + offsets::STAGE_FIELD, paper_lanes::YEAR);
    sim.mmio_write(offsets::STAGE_BASE + offsets::STAGE_OP, OP_GE);
    sim.mmio_write(offsets::STAGE_BASE + offsets::STAGE_VAL_LO, 2010);
    sim.mmio_write(offsets::START, 1);
    let res = sim.execute(&mut mem);
    let perf = sim.perf().clone();
    println!("\n=== CNT_* readback after one block ({} tuples) ===", res.tuples_in);
    println!(
        "  tuples in/out: {}/{}   stage drops: {:?}   load/store beats: {}/{}",
        perf.tuples_in, perf.tuples_out, perf.stage_drops, perf.load_beats, perf.store_beats
    );
    println!(
        "  cycles: {} active + {} idle = {}   stalls: in {}, out {}",
        perf.active, perf.idle, res.cycles, perf.in_stall, perf.out_stall
    );
    assert_eq!(perf.tuples_in, perf.tuples_out + perf.dropped_total(), "conservation");
    assert_eq!(perf.active + perf.idle, res.cycles, "every cycle accounted");
    // The bank is W1C-cleared through CNT_CTRL, like real hardware.
    sim.mmio_write(offsets::STAGE_BASE + offsets::STAGE_STRIDE + perf_offsets::CNT_CTRL, 1);

    // --- 3. Op-level metrics on the store: load a small corpus, run
    // GETs and a hardware SCAN with full observability on, and render
    // the device's own account of where the time went.
    let mut db = NkvDb::default_db();
    db.create_table("papers", TableConfig::new(cfg)).unwrap();
    db.enable_observability(1 << 20);
    let mut buf = Vec::new();
    db.bulk_load(
        "papers",
        PaperGen::new(gen_cfg).map(|p| {
            buf.clear();
            p.encode_into(&mut buf);
            buf.clone()
        }),
    )
    .unwrap();
    for i in 0..8 {
        let p = PaperGen::paper_at(&gen_cfg, (i * 61) % gen_cfg.papers);
        let (rec, _) = db.get("papers", p.id, ExecMode::Hardware).unwrap();
        assert!(rec.is_some());
    }
    let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: OP_GE, value: 2010 }];
    let scan = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
    println!("\n=== Device stats after {} GETs + 1 SCAN ({} matches) ===", 8, scan.count);
    println!("{}", db.device_stats());

    // --- 4. Export the trace for chrome://tracing / Perfetto.
    let trace = db.take_trace();
    let json = cosmos_sim::chrome_trace_json(&trace);
    std::fs::write(&out_path, &json).expect("trace file is writable");
    println!(
        "\nwrote {} spans ({} bytes of trace_event JSON) to {}",
        trace.len(),
        json.len(),
        out_path
    );
}
