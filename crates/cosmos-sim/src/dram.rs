//! The PS-DRAM: shared storage and bandwidth model.
//!
//! The PEs are not directly coupled to flash; data is staged in DRAM and
//! results are collected in DRAM before the host transfer (paper,
//! Sec. IV). The single shared AXI port means memory contention is a
//! real effect — the paper's flexible Store Units exist precisely to
//! reduce that contention — so the model tracks port occupancy per
//! client class.

use crate::faults::{DramFaultState, DramFaultStats, FaultPlan};
use crate::server::BandwidthLink;
use crate::trace::{TraceEvent, TraceKind, TraceRing};
use crate::SimNs;

/// Who is using the DRAM port (for contention accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramClient {
    /// Flash-controller DMA staging a block.
    FlashDma,
    /// A PE's Load Unit.
    PeLoad,
    /// A PE's Store Unit.
    PeStore,
    /// The ARM core (software NDP).
    Cpu,
    /// NVMe host transfers.
    Host,
    /// Block-cache hit: a DRAM-resident SST block burst into the
    /// staging buffer in place of a flash read + flash-DMA transfer.
    CacheHit,
}

/// The PS-DRAM model: byte storage plus a shared-port timing model.
pub struct Dram {
    bytes: Vec<u8>,
    port: BandwidthLink,
    traffic: [u64; 6],
    /// Stall-burst injection state; `None` (the default) costs one
    /// branch per transfer and changes nothing else.
    faults: Option<DramFaultState>,
    /// Event tracing; `None` (the default) costs one branch per
    /// transfer and changes nothing else.
    trace: Option<TraceRing>,
}

/// Zynq-7000 PS DDR3 effective bandwidth available to the PL masters
/// (shared HP ports; conservative figure).
pub const DRAM_PORT_BW: f64 = 1.0e9;

impl Dram {
    /// A zeroed DRAM of `size` bytes.
    pub fn new(size: usize) -> Self {
        Self {
            bytes: vec![0; size],
            port: BandwidthLink::new(DRAM_PORT_BW),
            traffic: [0; 6],
            faults: None,
            trace: None,
        }
    }

    /// DRAM size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Functional read without timing (used by firmware bookkeeping).
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
    }

    /// Functional write without timing.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// Account a timed transfer of `bytes` by `client` starting at `now`;
    /// returns the completion time on the shared port.
    pub fn timed_transfer(&mut self, client: DramClient, bytes: u64, now: SimNs) -> SimNs {
        self.traffic[client as usize] += bytes;
        let mut start = now;
        if let Some(f) = &mut self.faults {
            if f.stall_p > 0.0 && f.rng.gen_bool(f.stall_p) {
                // AXI stall burst: the port stops serving for a while
                // before this transfer is granted.
                let (lo, hi) = f.stall_ns;
                let stall = if hi > lo { lo + f.rng.gen_u64(hi - lo) } else { lo };
                f.stats.stalls += 1;
                f.stats.stall_ns_total += stall;
                start += stall;
            }
        }
        let (grant, finish) = self.port.transfer(start, bytes);
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent {
                kind: TraceKind::DramTransfer { client, bytes, wait_ns: grant - now },
                start: now,
                dur: finish - now,
            });
        }
        finish
    }

    /// Start recording DRAM-port spans into a ring of `capacity` events.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Some(TraceRing::new(capacity));
    }

    /// Stop recording and drop any buffered spans.
    pub fn disable_tracing(&mut self) {
        self.trace = None;
    }

    /// Whether DRAM spans are being recorded.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Drain the buffered DRAM spans (oldest first; empty when tracing
    /// is disabled).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(TraceRing::drain).unwrap_or_default()
    }

    /// Spans evicted from the DRAM ring because it was full.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map_or(0, TraceRing::dropped)
    }

    /// Install the stall-burst portion of a fault plan.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.faults = Some(DramFaultState::from_plan(plan));
    }

    /// Drop stall-burst injection state.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Switch the port timeline between the strict conveyor and
    /// gap-aware backfill (see `cosmos_sim::Server::set_backfill`).
    pub fn set_backfill(&mut self, on: bool) {
        self.port.set_backfill(on);
    }

    /// Stall counters since install (zeros when no plan is installed).
    pub fn fault_stats(&self) -> DramFaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Total bytes moved by `client`.
    pub fn traffic_of(&self, client: DramClient) -> u64 {
        self.traffic[client as usize]
    }

    /// Total bytes moved over the port.
    pub fn traffic_total(&self) -> u64 {
        self.traffic.iter().sum()
    }

    /// Port utilization over `[0, now]`.
    pub fn utilization(&self, now: SimNs) -> f64 {
        self.port.utilization(now)
    }

    /// Borrow the backing bytes (testing/diagnostics).
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_read_write() {
        let mut d = Dram::new(1024);
        d.write(100, &[1, 2, 3]);
        let mut buf = [0u8; 3];
        d.read(100, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(d.len(), 1024);
    }

    #[test]
    fn contention_serializes_on_the_port() {
        let mut d = Dram::new(0);
        let f1 = d.timed_transfer(DramClient::FlashDma, 32 * 1024, 0);
        let f2 = d.timed_transfer(DramClient::PeLoad, 32 * 1024, 0);
        assert!(f2 >= 2 * f1 - 1, "second transfer must queue behind the first");
    }

    #[test]
    fn stall_bursts_delay_transfers_and_are_counted() {
        let mut d = Dram::new(0);
        d.install_faults(&FaultPlan {
            seed: 3,
            dram_stall_p: 1.0,
            dram_stall_ns: (10_000, 20_000),
            ..FaultPlan::default()
        });
        let mut clean = Dram::new(0);
        let f_faulty = d.timed_transfer(DramClient::PeLoad, 4096, 0);
        let f_clean = clean.timed_transfer(DramClient::PeLoad, 4096, 0);
        let delta = f_faulty - f_clean;
        assert!((10_000..20_000).contains(&delta), "stall of {delta} ns");
        assert_eq!(d.fault_stats().stalls, 1);
        assert_eq!(d.fault_stats().stall_ns_total, delta);
        d.clear_faults();
        assert_eq!(d.fault_stats(), DramFaultStats::default());
    }

    #[test]
    fn traffic_is_accounted_per_client() {
        let mut d = Dram::new(0);
        d.timed_transfer(DramClient::PeStore, 100, 0);
        d.timed_transfer(DramClient::PeStore, 50, 0);
        d.timed_transfer(DramClient::Cpu, 7, 0);
        assert_eq!(d.traffic_of(DramClient::PeStore), 150);
        assert_eq!(d.traffic_of(DramClient::Cpu), 7);
        assert_eq!(d.traffic_total(), 157);
        assert_eq!(d.traffic_of(DramClient::Host), 0);
    }
}
