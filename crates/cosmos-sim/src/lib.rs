//! Discrete-event simulator of the Cosmos+ OpenSSD platform.
//!
//! The paper's system (Fig. 2) runs on the Cosmos+ OpenSSD: a Xilinx
//! Zynq-7000 (XC7Z045) whose programmable logic implements an NVMe
//! front-end (250 MHz), two Tiger4 flash controllers and the NDP PEs
//! (100 MHz), next to the PS-side ARM Cortex-A9 cores and DRAM. None of
//! that hardware is available here, so this crate provides a
//! discrete-event model with the paper's stated bandwidths and clocks:
//!
//! * [`flash`] — NAND array behind two Tiger4-style controllers
//!   (~200 MB/s aggregate, the paper's stated bottleneck), with channels,
//!   LUNs, page latencies, per-channel buses and data storage;
//! * [`dram`] — the shared PS-DRAM port PEs and CPU compete for;
//! * [`timing`] — the calibrated constants (documented one by one) that
//!   anchor Fig. 7's absolute runtimes;
//! * [`server`]/[`events`] — the queueing/event primitives everything is
//!   built from;
//! * [`platform`] — the assembled device ([`CosmosPlatform`]);
//! * [`faults`] — deterministic, seeded fault injection ([`FaultPlan`]):
//!   transient/persistent/correctable flash faults, DRAM stall bursts,
//!   PE hangs and power cuts, with zero overhead when disabled; plus
//!   *device-level* fault plans ([`DeviceFaultPlan`]: whole-device
//!   hang, power cut, NVMe link loss, gray slowdown) that a multi-device
//!   cluster router treats as fleet-level fault domains;
//! * [`trace`] — ring-buffered typed event spans in simulated time with
//!   Chrome `trace_event` export, zero-cost when disabled;
//! * [`queue`] — paired NVMe submission/completion queues with
//!   configurable count/depth, doorbell + SQE/CQE link accounting and
//!   full-queue stall tracking, opt-in like faults and tracing;
//! * [`batch`] — the key-list DMA descriptor ([`KeyListDescriptor`])
//!   that lets one PE configuration serve N GET keys, amortizing the
//!   per-invocation config-register tax across a batch;
//! * [`cache`] — a fixed-budget segmented-LRU block cache in device
//!   DRAM ([`BlockCache`]): repeated SST block/index reads are served
//!   by a DRAM-port burst instead of flash, opt-in and zero-cost when
//!   disabled like everything else.
//!
//! Simulated time is in **nanoseconds** ([`SimNs`]); both PL clock
//! domains are exact in ns (10 ns at 100 MHz, 4 ns at 250 MHz).

pub mod batch;
pub mod cache;
pub mod dram;
pub mod events;
pub mod faults;
pub mod flash;
pub mod platform;
pub mod queue;
pub mod server;
pub mod timing;
pub mod trace;

pub use batch::{
    KeyListDescriptor, KeyListError, KEY_LIST_HEADER_BYTES, KEY_LIST_MAGIC, KEY_LIST_PAGE_BYTES,
};
pub use cache::{BlockCache, CacheStats, INDEX_BLOCK};
pub use dram::Dram;
pub use events::EventQueue;
pub use faults::{
    DeviceAdmission, DeviceFaultKind, DeviceFaultPlan, DeviceFaultStats, FaultPlan, FaultRng,
    FlashFaultKind, ScheduledFault,
};
pub use flash::{FlashArray, FlashConfig, FlashError, PhysAddr};
pub use platform::{CosmosConfig, CosmosPlatform, FirmwareEra};
pub use queue::{NvmeQueueConfig, NvmeQueues, QueuePair, QueueStats, CQE_BYTES, SQE_BYTES};
pub use server::{BandwidthLink, Server};
pub use trace::{
    chrome_trace_json, chrome_trace_json_cluster, DeviceTrace, RouterSpan, RouterSpanKind,
    TraceEvent, TraceKind, TraceRing, DEVICE_PID_STRIDE, ROUTER_PID,
};

/// Simulated time in nanoseconds.
pub type SimNs = u64;

/// Convert 100 MHz PL cycles to nanoseconds.
pub fn pl_cycles_to_ns(cycles: u64) -> SimNs {
    cycles * 10
}

/// Convert seconds (f64) to [`SimNs`].
pub fn secs_to_ns(s: f64) -> SimNs {
    (s * 1e9).round() as SimNs
}

/// Convert [`SimNs`] to seconds.
pub fn ns_to_secs(ns: SimNs) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_conversions() {
        assert_eq!(pl_cycles_to_ns(100_000_000), 1_000_000_000);
        assert_eq!(secs_to_ns(5.512), 5_512_000_000);
        assert!((ns_to_secs(5_512_000_000) - 5.512).abs() < 1e-12);
    }
}
