//! Paired NVMe submission/completion queues.
//!
//! The Cosmos+ NVMe front-end (250 MHz PL) exposes the standard NVMe
//! queueing model to the host: the driver rings a submission-queue
//! doorbell (one MMIO write), the controller fetches the 64 B submission
//! entry over the link, executes the command, and posts a 16 B
//! completion entry back to host memory. This module models that
//! envelope on top of the FCFS [`Server`]/[`BandwidthLink`] timeline —
//! it accounts for the per-command doorbell + SQE/CQE link traffic and
//! enforces per-queue depth, while the *execution* of each command
//! (flash, PEs, ARM) stays with the existing executor.
//!
//! Commands are processed one at a time in simulated time, so a
//! command's completion time is already known when the next command is
//! admitted; a queue pair therefore tracks its in-flight window as a
//! min-heap of completion times and drains it lazily. When a pair is
//! full, admission stalls (in simulated time) until the earliest
//! in-flight command completes — the host blocking on a full SQ.
//!
//! Like faults and tracing, the queue model is strictly opt-in: the
//! platform holds an `Option<NvmeQueues>` that is `None` by default, and
//! the serial executor path never touches it.
//!
//! [`Server`]: crate::server::Server
//! [`BandwidthLink`]: crate::server::BandwidthLink

use crate::SimNs;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Size of one NVMe submission-queue entry fetched over the link.
pub const SQE_BYTES: u64 = 64;

/// Size of one NVMe completion-queue entry posted over the link.
pub const CQE_BYTES: u64 = 16;

/// Queue-geometry configuration: how many paired SQ/CQ rings the
/// controller exposes and how many commands each may hold in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmeQueueConfig {
    /// Number of paired submission/completion queues.
    pub queues: u16,
    /// Maximum in-flight commands per pair (SQ depth).
    pub depth: u16,
}

impl Default for NvmeQueueConfig {
    /// Eight pairs of depth 32 — modest for NVMe, generous for a device
    /// whose flash array has eight channels.
    fn default() -> Self {
        Self { queues: 8, depth: 32 }
    }
}

/// Counters kept per queue pair (and summable device-wide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Commands admitted into the pair.
    pub submitted: u64,
    /// Commands whose completion entry has been posted.
    pub completed: u64,
    /// Admissions that found the pair full and had to stall.
    pub full_stalls: u64,
    /// Total simulated time spent stalled on a full pair.
    pub full_stall_ns: SimNs,
    /// High-water mark of concurrently in-flight commands.
    pub max_inflight: u64,
    /// Doorbell MMIO writes *saved* by batched submission: a batch of N
    /// commands rings one SQ doorbell instead of N, so each batch adds
    /// N-1 here (and the CQ-head write-back coalesces the same way).
    pub coalesced_doorbells: u64,
}

impl QueueStats {
    fn absorb(&mut self, other: &QueueStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.full_stalls += other.full_stalls;
        self.full_stall_ns += other.full_stall_ns;
        self.max_inflight = self.max_inflight.max(other.max_inflight);
        self.coalesced_doorbells += other.coalesced_doorbells;
    }
}

/// One paired submission/completion queue.
#[derive(Debug, Clone)]
pub struct QueuePair {
    id: u16,
    depth: u16,
    /// Completion times of in-flight commands (min-heap). Entries are
    /// popped lazily at the next admission that reaches past them.
    inflight: BinaryHeap<Reverse<SimNs>>,
    stats: QueueStats,
}

impl QueuePair {
    fn new(id: u16, depth: u16) -> Self {
        Self { id, depth, inflight: BinaryHeap::new(), stats: QueueStats::default() }
    }

    /// Queue identifier (0-based).
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Counters for this pair.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Commands still in flight as of the last admission.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    fn drain_completed(&mut self, now: SimNs) {
        while matches!(self.inflight.peek(), Some(Reverse(t)) if *t <= now) {
            self.inflight.pop();
        }
    }

    /// Admit one command at `now`, returning the simulated time the
    /// doorbell can actually be rung: `now` when a slot is free, or the
    /// earliest in-flight completion when the pair is full (the host
    /// stalls on the full SQ).
    pub fn admit(&mut self, now: SimNs) -> SimNs {
        self.drain_completed(now);
        let mut at = now;
        if self.inflight.len() >= usize::from(self.depth) {
            let Reverse(earliest) = self.inflight.pop().expect("full queue is non-empty");
            self.stats.full_stalls += 1;
            self.stats.full_stall_ns += earliest - at;
            at = earliest;
            self.drain_completed(at);
        }
        self.stats.submitted += 1;
        at
    }

    /// Record that the command just admitted holds its slot until
    /// `complete_ns` (known immediately because commands execute
    /// synchronously in simulated time).
    pub fn commit(&mut self, complete_ns: SimNs) {
        self.inflight.push(Reverse(complete_ns));
        self.stats.max_inflight = self.stats.max_inflight.max(self.inflight.len() as u64);
        self.stats.completed += 1;
    }

    /// Account doorbell MMIO writes saved by a coalesced batch (one SQ
    /// tail ring + one CQ head write-back for N commands).
    pub(crate) fn note_coalesced(&mut self, saved: u64) {
        self.stats.coalesced_doorbells += saved;
    }
}

/// The controller's full set of queue pairs.
#[derive(Debug, Clone)]
pub struct NvmeQueues {
    cfg: NvmeQueueConfig,
    pairs: Vec<QueuePair>,
}

impl NvmeQueues {
    /// Build `cfg.queues` empty pairs of depth `cfg.depth`.
    pub fn new(cfg: NvmeQueueConfig) -> Self {
        assert!(cfg.queues > 0, "need at least one queue pair");
        assert!(cfg.depth > 0, "queue depth must be positive");
        let pairs = (0..cfg.queues).map(|id| QueuePair::new(id, cfg.depth)).collect();
        Self { cfg, pairs }
    }

    /// The geometry this set was built with.
    pub fn config(&self) -> NvmeQueueConfig {
        self.cfg
    }

    /// Static client→queue mapping (round-robin by client id), the
    /// usual one-queue-per-submitter NVMe driver layout.
    pub fn pair_for_client(&self, client: u32) -> u16 {
        (client % u32::from(self.cfg.queues)) as u16
    }

    /// Borrow one pair by id.
    pub fn pair(&self, qid: u16) -> &QueuePair {
        &self.pairs[usize::from(qid)]
    }

    pub(crate) fn pair_mut(&mut self, qid: u16) -> &mut QueuePair {
        &mut self.pairs[usize::from(qid)]
    }

    /// Counters summed across every pair (`max_inflight` is the max).
    pub fn stats_total(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for p in &self.pairs {
            total.absorb(p.stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_eight_by_thirty_two() {
        let cfg = NvmeQueueConfig::default();
        assert_eq!(cfg.queues, 8);
        assert_eq!(cfg.depth, 32);
    }

    #[test]
    fn clients_round_robin_across_pairs() {
        let q = NvmeQueues::new(NvmeQueueConfig { queues: 4, depth: 2 });
        assert_eq!(q.pair_for_client(0), 0);
        assert_eq!(q.pair_for_client(3), 3);
        assert_eq!(q.pair_for_client(4), 0);
        assert_eq!(q.pair_for_client(9), 1);
    }

    #[test]
    fn admission_is_immediate_below_depth() {
        let mut p = QueuePair::new(0, 2);
        assert_eq!(p.admit(100), 100);
        p.commit(500);
        assert_eq!(p.admit(110), 110);
        p.commit(600);
        assert_eq!(p.inflight(), 2);
        assert_eq!(p.stats().full_stalls, 0);
    }

    #[test]
    fn full_pair_stalls_to_earliest_completion() {
        let mut p = QueuePair::new(0, 2);
        assert_eq!(p.admit(0), 0);
        p.commit(500);
        assert_eq!(p.admit(10), 10);
        p.commit(300);
        // Both slots held; earliest completion is 300.
        assert_eq!(p.admit(20), 300);
        assert_eq!(p.stats().full_stalls, 1);
        assert_eq!(p.stats().full_stall_ns, 280);
        p.commit(900);
        // By 600 the command that completed at 500 has drained too.
        assert_eq!(p.admit(600), 600);
        assert_eq!(p.stats().submitted, 4);
    }

    #[test]
    fn completed_commands_drain_lazily() {
        let mut p = QueuePair::new(0, 1);
        assert_eq!(p.admit(0), 0);
        p.commit(50);
        // Completion at 50 is in the past by 60: no stall.
        assert_eq!(p.admit(60), 60);
        assert_eq!(p.stats().full_stalls, 0);
        assert_eq!(p.stats().max_inflight, 1);
    }

    #[test]
    fn stats_total_sums_pairs() {
        let mut q = NvmeQueues::new(NvmeQueueConfig { queues: 2, depth: 1 });
        let a = q.pair_for_client(0);
        let b = q.pair_for_client(1);
        assert_ne!(a, b);
        let t = q.pair_mut(a).admit(0);
        q.pair_mut(a).commit(t + 10);
        let t = q.pair_mut(b).admit(0);
        q.pair_mut(b).commit(t + 20);
        let total = q.stats_total();
        assert_eq!(total.submitted, 2);
        assert_eq!(total.completed, 2);
        assert_eq!(total.max_inflight, 1);
    }

    #[test]
    fn coalesced_doorbells_sum_across_pairs() {
        let mut q = NvmeQueues::new(NvmeQueueConfig { queues: 2, depth: 4 });
        q.pair_mut(0).note_coalesced(3);
        q.pair_mut(1).note_coalesced(7);
        assert_eq!(q.pair(0).stats().coalesced_doorbells, 3);
        assert_eq!(q.stats_total().coalesced_doorbells, 10);
    }
}
