//! The NAND flash subsystem behind two Tiger4-style controllers.
//!
//! nKV's native computational storage operates on *physical* flash
//! addresses ([`PhysAddr`]): channel, LUN (way), page. Data placement
//! across channels/LUNs enables parallel access (paper, Sec. III-B), and
//! the model reflects the three-stage structure of a NAND read:
//!
//! 1. the page array read (tR) occupies the *LUN*,
//! 2. the data transfer occupies the *channel bus*,
//! 3. the DMA into DRAM occupies the *controller* port — whose aggregate
//!    rate (~200 MB/s over both controllers) is the paper's stated
//!    bottleneck.
//!
//! Pages are stored sparsely (`HashMap`), so full-volume datasets
//! (~1.1 GB) are held without preallocating the whole array.

use crate::server::{BandwidthLink, Server};
use crate::{timing, SimNs};
use std::collections::HashMap;

/// A physical flash location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysAddr {
    pub channel: u16,
    pub lun: u16,
    pub page: u32,
}

/// Geometry and timing of the flash subsystem.
#[derive(Debug, Clone)]
pub struct FlashConfig {
    /// Independent flash channels (the paper uses one DIMM behind two
    /// controllers; Cosmos+ channels are split evenly between them).
    pub channels: u16,
    /// LUNs (ways) per channel.
    pub luns_per_channel: u16,
    /// Pages per LUN.
    pub pages_per_lun: u32,
    /// Page size in bytes.
    pub page_bytes: u32,
    /// Number of Tiger4 controllers (each owns `channels / controllers`
    /// channels).
    pub controllers: u16,
    /// Aggregate DMA bandwidth over all controllers, bytes/s.
    pub aggregate_bw: f64,
    /// Page array read latency (tR).
    pub page_read_ns: SimNs,
    /// Page program latency (tPROG).
    pub page_program_ns: SimNs,
}

impl Default for FlashConfig {
    fn default() -> Self {
        Self {
            channels: 8,
            luns_per_channel: 4,
            pages_per_lun: 1 << 16,
            page_bytes: timing::FLASH_PAGE_BYTES,
            controllers: 2,
            aggregate_bw: timing::FLASH_AGGREGATE_BW,
            page_read_ns: timing::FLASH_PAGE_READ_NS,
            page_program_ns: timing::FLASH_PAGE_PROGRAM_NS,
        }
    }
}

/// Flash access errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The address is outside the configured geometry.
    OutOfRange(PhysAddr),
    /// Read of a page that was never programmed.
    Unwritten(PhysAddr),
    /// Injected uncorrectable ECC failure (fault-injection hook).
    Uncorrectable(PhysAddr),
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::OutOfRange(a) => write!(f, "flash address out of range: {a:?}"),
            FlashError::Unwritten(a) => write!(f, "read of unwritten page: {a:?}"),
            FlashError::Uncorrectable(a) => write!(f, "uncorrectable ECC error at {a:?}"),
        }
    }
}

impl std::error::Error for FlashError {}

/// The simulated flash array: storage plus timing state.
#[derive(Clone)]
pub struct FlashArray {
    cfg: FlashConfig,
    pages: HashMap<PhysAddr, Box<[u8]>>,
    /// Per-LUN array-read occupancy.
    luns: Vec<Server>,
    /// Per-channel bus occupancy.
    channels: Vec<BandwidthLink>,
    /// Per-controller DMA occupancy (the end-to-end bottleneck).
    controllers: Vec<BandwidthLink>,
    /// Pages marked as failing with uncorrectable ECC errors.
    bad_pages: HashMap<PhysAddr, ()>,
    reads: u64,
    writes: u64,
}

impl FlashArray {
    /// Build an empty array with the given configuration.
    pub fn new(cfg: FlashConfig) -> Self {
        assert!(cfg.controllers > 0 && cfg.channels % cfg.controllers == 0);
        let per_controller = cfg.aggregate_bw / f64::from(cfg.controllers);
        // Channel buses run faster than the controller DMA (ONFI buses do
        // ~400 MB/s); model them at 2x the controller rate so the
        // controller is the bottleneck, as the paper states.
        let per_channel = per_controller * 2.0;
        Self {
            luns: vec![Server::new(); usize::from(cfg.channels) * usize::from(cfg.luns_per_channel)],
            channels: vec![BandwidthLink::new(per_channel); usize::from(cfg.channels)],
            controllers: vec![BandwidthLink::new(per_controller); usize::from(cfg.controllers)],
            pages: HashMap::new(),
            bad_pages: HashMap::new(),
            reads: 0,
            writes: 0,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlashConfig {
        &self.cfg
    }

    /// Which controller owns `channel`.
    pub fn controller_of(&self, channel: u16) -> u16 {
        channel / (self.cfg.channels / self.cfg.controllers)
    }

    fn check(&self, addr: PhysAddr) -> Result<(), FlashError> {
        if addr.channel >= self.cfg.channels
            || addr.lun >= self.cfg.luns_per_channel
            || addr.page >= self.cfg.pages_per_lun
        {
            return Err(FlashError::OutOfRange(addr));
        }
        Ok(())
    }

    fn lun_index(&self, addr: PhysAddr) -> usize {
        usize::from(addr.channel) * usize::from(self.cfg.luns_per_channel) + usize::from(addr.lun)
    }

    /// Program one page at `addr` (data shorter than a page is
    /// zero-padded). Returns the completion time.
    pub fn program_page(
        &mut self,
        addr: PhysAddr,
        data: &[u8],
        now: SimNs,
    ) -> Result<SimNs, FlashError> {
        self.check(addr)?;
        assert!(data.len() <= self.cfg.page_bytes as usize, "data larger than a page");
        let mut page = vec![0u8; self.cfg.page_bytes as usize].into_boxed_slice();
        page[..data.len()].copy_from_slice(data);

        // Transfer to the chip over channel + controller, then program.
        let ctrl = usize::from(self.controller_of(addr.channel));
        let (_, dma_done) = self.controllers[ctrl].transfer(now, u64::from(self.cfg.page_bytes));
        let (_, bus_done) =
            self.channels[usize::from(addr.channel)].transfer(dma_done, u64::from(self.cfg.page_bytes));
        let li = self.lun_index(addr);
        let (_, prog_done) = self.luns[li].schedule(bus_done, self.cfg.page_program_ns);

        self.pages.insert(addr, page);
        self.writes += 1;
        Ok(prog_done)
    }

    /// Read one page; returns `(completion_time, data)`.
    pub fn read_page(
        &mut self,
        addr: PhysAddr,
        now: SimNs,
    ) -> Result<(SimNs, &[u8]), FlashError> {
        self.check(addr)?;
        if self.bad_pages.contains_key(&addr) {
            return Err(FlashError::Uncorrectable(addr));
        }
        if !self.pages.contains_key(&addr) {
            return Err(FlashError::Unwritten(addr));
        }
        // tR on the LUN, then channel bus, then controller DMA.
        let li = self.lun_index(addr);
        let (_, array_done) = self.luns[li].schedule(now, self.cfg.page_read_ns);
        let (_, bus_done) = self.channels[usize::from(addr.channel)]
            .transfer(array_done, u64::from(self.cfg.page_bytes));
        let ctrl = usize::from(self.controller_of(addr.channel));
        let (_, dma_done) = self.controllers[ctrl].transfer(bus_done, u64::from(self.cfg.page_bytes));
        self.reads += 1;
        Ok((dma_done, &self.pages[&addr]))
    }

    /// Mark a page as failing with uncorrectable ECC errors
    /// (fault-injection hook used by the reliability tests).
    pub fn inject_bad_page(&mut self, addr: PhysAddr) {
        self.bad_pages.insert(addr, ());
    }

    /// Clear an injected fault.
    pub fn heal_page(&mut self, addr: PhysAddr) {
        self.bad_pages.remove(&addr);
    }

    /// Pages read/programmed so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Bytes of live page data currently stored.
    pub fn stored_bytes(&self) -> u64 {
        self.pages.len() as u64 * u64::from(self.cfg.page_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(channel: u16, lun: u16, page: u32) -> PhysAddr {
        PhysAddr { channel, lun, page }
    }

    #[test]
    fn program_then_read_round_trips() {
        let mut f = FlashArray::new(FlashConfig::default());
        let a = addr(0, 0, 0);
        let t1 = f.program_page(a, b"hello flash", 0).unwrap();
        assert!(t1 >= timing::FLASH_PAGE_PROGRAM_NS);
        let (t2, data) = f.read_page(a, t1).unwrap();
        assert!(t2 > t1);
        assert_eq!(&data[..11], b"hello flash");
        assert_eq!(data.len(), 8192);
        assert_eq!(f.op_counts(), (1, 1));
    }

    #[test]
    fn unwritten_page_read_fails() {
        let mut f = FlashArray::new(FlashConfig::default());
        assert_eq!(
            f.read_page(addr(0, 0, 5), 0),
            Err(FlashError::Unwritten(addr(0, 0, 5)))
        );
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut f = FlashArray::new(FlashConfig::default());
        assert!(matches!(
            f.program_page(addr(99, 0, 0), b"x", 0),
            Err(FlashError::OutOfRange(_))
        ));
        assert!(matches!(f.read_page(addr(0, 99, 0), 0), Err(FlashError::OutOfRange(_))));
    }

    #[test]
    fn injected_ecc_fault_surfaces_and_heals() {
        let mut f = FlashArray::new(FlashConfig::default());
        let a = addr(1, 1, 7);
        f.program_page(a, b"data", 0).unwrap();
        f.inject_bad_page(a);
        assert!(matches!(f.read_page(a, 0), Err(FlashError::Uncorrectable(_))));
        f.heal_page(a);
        assert!(f.read_page(a, 0).is_ok());
    }

    #[test]
    fn parallel_channels_overlap_but_controller_serializes() {
        let mut f = FlashArray::new(FlashConfig::default());
        // Two pages on different channels of the SAME controller.
        let (a, b) = (addr(0, 0, 0), addr(1, 0, 0));
        // Two pages on channels of DIFFERENT controllers.
        let (c, d) = (addr(0, 1, 0), addr(4, 0, 0));
        for p in [a, b, c, d] {
            f.program_page(p, b"x", 0).unwrap();
        }
        let warm = 10_000_000; // after programming noise
        let (t_a, _) = f.read_page(a, warm).unwrap();
        let single = t_a - warm;

        let mut f2 = FlashArray::new(FlashConfig::default());
        for p in [a, b, c, d] {
            f2.program_page(p, b"x", 0).unwrap();
        }
        let (t1, _) = f2.read_page(c, warm).unwrap();
        let (t2, _) = f2.read_page(d, warm).unwrap();
        let both_diff_ctrl = t1.max(t2) - warm;
        // Different controllers fully overlap: same finish as one read.
        assert_eq!(both_diff_ctrl, single);

        let mut f3 = FlashArray::new(FlashConfig::default());
        for p in [a, b, c, d] {
            f3.program_page(p, b"x", 0).unwrap();
        }
        let (u1, _) = f3.read_page(a, warm).unwrap();
        let (u2, _) = f3.read_page(b, warm).unwrap();
        let both_same_ctrl = u1.max(u2) - warm;
        // Same controller: the DMA stage serializes, so it takes longer
        // than a single read but less than 2x (tR and buses overlap).
        assert!(both_same_ctrl > single);
        assert!(both_same_ctrl < 2 * single);
    }

    #[test]
    fn controller_mapping_splits_channels_evenly() {
        let f = FlashArray::new(FlashConfig::default());
        assert_eq!(f.controller_of(0), 0);
        assert_eq!(f.controller_of(3), 0);
        assert_eq!(f.controller_of(4), 1);
        assert_eq!(f.controller_of(7), 1);
    }

    #[test]
    fn stored_bytes_tracks_unique_pages() {
        let mut f = FlashArray::new(FlashConfig::default());
        f.program_page(addr(0, 0, 0), b"a", 0).unwrap();
        f.program_page(addr(0, 0, 1), b"b", 0).unwrap();
        f.program_page(addr(0, 0, 0), b"rewrite", 0).unwrap();
        assert_eq!(f.stored_bytes(), 2 * 8192);
    }
}
