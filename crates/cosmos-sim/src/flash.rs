//! The NAND flash subsystem behind two Tiger4-style controllers.
//!
//! nKV's native computational storage operates on *physical* flash
//! addresses ([`PhysAddr`]): channel, LUN (way), page. Data placement
//! across channels/LUNs enables parallel access (paper, Sec. III-B), and
//! the model reflects the three-stage structure of a NAND read:
//!
//! 1. the page array read (tR) occupies the *LUN*,
//! 2. the data transfer occupies the *channel bus*,
//! 3. the DMA into DRAM occupies the *controller* port — whose aggregate
//!    rate (~200 MB/s over both controllers) is the paper's stated
//!    bottleneck.
//!
//! Pages are stored sparsely (`HashMap`), so full-volume datasets
//! (~1.1 GB) are held without preallocating the whole array.
//!
//! # Fault semantics
//!
//! Injected read faults are **explicitly transient or persistent**
//! (see [`FlashFaultKind`]); nothing heals implicitly:
//!
//! * a *transient* fault fails a bounded number of reads of the page
//!   and then clears — the recovery action is a retry;
//! * a *persistent* fault (a grown bad page) fails every read until the
//!   data is relocated and survives a [`FlashArray::reboot`] — the
//!   recovery action is relocation from a redundant copy or loss;
//! * a *correctable* fault returns correct data with an
//!   [`ECC_CORRECTION_NS`] latency penalty and increments the page's
//!   degradation counter — the recovery action is proactive read-repair
//!   before the page degrades to persistent failure.
//!
//! Random fault rates are driven by an installed [`FaultPlan`]; with no
//! plan installed every fault check is a single `Option` branch and the
//! timing behaviour is bit-for-bit the no-fault model.

use crate::faults::{
    FaultPlan, FlashFaultKind, FlashFaultState, FlashFaultStats, ECC_CORRECTION_NS,
};
use crate::server::{BandwidthLink, Server};
use crate::trace::{TraceEvent, TraceKind, TraceRing};
use crate::{timing, SimNs};
use std::collections::HashMap;

/// A physical flash location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysAddr {
    pub channel: u16,
    pub lun: u16,
    pub page: u32,
}

/// Geometry and timing of the flash subsystem.
#[derive(Debug, Clone)]
pub struct FlashConfig {
    /// Independent flash channels (the paper uses one DIMM behind two
    /// controllers; Cosmos+ channels are split evenly between them).
    pub channels: u16,
    /// LUNs (ways) per channel.
    pub luns_per_channel: u16,
    /// Pages per LUN.
    pub pages_per_lun: u32,
    /// Page size in bytes.
    pub page_bytes: u32,
    /// Number of Tiger4 controllers (each owns `channels / controllers`
    /// channels).
    pub controllers: u16,
    /// Aggregate DMA bandwidth over all controllers, bytes/s.
    pub aggregate_bw: f64,
    /// Page array read latency (tR).
    pub page_read_ns: SimNs,
    /// Page program latency (tPROG).
    pub page_program_ns: SimNs,
}

impl Default for FlashConfig {
    fn default() -> Self {
        Self {
            channels: 8,
            luns_per_channel: 4,
            pages_per_lun: 1 << 16,
            page_bytes: timing::FLASH_PAGE_BYTES,
            controllers: 2,
            aggregate_bw: timing::FLASH_AGGREGATE_BW,
            page_read_ns: timing::FLASH_PAGE_READ_NS,
            page_program_ns: timing::FLASH_PAGE_PROGRAM_NS,
        }
    }
}

/// Flash access errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The address is outside the configured geometry.
    OutOfRange(PhysAddr),
    /// Read of a page that was never programmed.
    Unwritten(PhysAddr),
    /// Uncorrectable ECC failure: the page is a (possibly grown) bad
    /// page. Persistent — retries do not help, relocation does.
    Uncorrectable(PhysAddr),
    /// Transient read failure: an immediate retry of the same page is
    /// expected to succeed.
    TransientRead(PhysAddr),
    /// Power was cut; every flash operation fails until
    /// [`FlashArray::reboot`].
    PowerCut,
}

impl FlashError {
    /// Whether retrying the same operation can succeed (the resilience
    /// layer's retry loop keys off this).
    pub fn is_retryable(&self) -> bool {
        matches!(self, FlashError::TransientRead(_))
    }
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::OutOfRange(a) => write!(f, "flash address out of range: {a:?}"),
            FlashError::Unwritten(a) => write!(f, "read of unwritten page: {a:?}"),
            FlashError::Uncorrectable(a) => write!(f, "uncorrectable ECC error at {a:?}"),
            FlashError::TransientRead(a) => write!(f, "transient read failure at {a:?}"),
            FlashError::PowerCut => write!(f, "flash operation after power cut"),
        }
    }
}

impl std::error::Error for FlashError {}

/// The simulated flash array: storage plus timing state.
#[derive(Clone)]
pub struct FlashArray {
    cfg: FlashConfig,
    pages: HashMap<PhysAddr, Box<[u8]>>,
    /// Per-LUN array-read occupancy.
    luns: Vec<Server>,
    /// Per-channel bus occupancy.
    channels: Vec<BandwidthLink>,
    /// Per-controller DMA occupancy (the end-to-end bottleneck).
    controllers: Vec<BandwidthLink>,
    /// Pages marked as failing with uncorrectable ECC errors.
    bad_pages: HashMap<PhysAddr, ()>,
    /// Fault-injection state; `None` (the default) costs one branch per
    /// operation and changes nothing else.
    faults: Option<FlashFaultState>,
    /// Event tracing; `None` (the default) costs one branch per
    /// operation and changes nothing else.
    trace: Option<TraceRing>,
    reads: u64,
    writes: u64,
}

impl FlashArray {
    /// Build an empty array with the given configuration.
    pub fn new(cfg: FlashConfig) -> Self {
        assert!(cfg.controllers > 0 && cfg.channels.is_multiple_of(cfg.controllers));
        let per_controller = cfg.aggregate_bw / f64::from(cfg.controllers);
        // Channel buses run faster than the controller DMA (ONFI buses do
        // ~400 MB/s); model them at 2x the controller rate so the
        // controller is the bottleneck, as the paper states.
        let per_channel = per_controller * 2.0;
        Self {
            luns: vec![
                Server::new();
                usize::from(cfg.channels) * usize::from(cfg.luns_per_channel)
            ],
            channels: vec![BandwidthLink::new(per_channel); usize::from(cfg.channels)],
            controllers: vec![BandwidthLink::new(per_controller); usize::from(cfg.controllers)],
            pages: HashMap::new(),
            bad_pages: HashMap::new(),
            faults: None,
            trace: None,
            reads: 0,
            writes: 0,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlashConfig {
        &self.cfg
    }

    /// Which controller owns `channel`.
    pub fn controller_of(&self, channel: u16) -> u16 {
        channel / (self.cfg.channels / self.cfg.controllers)
    }

    fn check(&self, addr: PhysAddr) -> Result<(), FlashError> {
        if addr.channel >= self.cfg.channels
            || addr.lun >= self.cfg.luns_per_channel
            || addr.page >= self.cfg.pages_per_lun
        {
            return Err(FlashError::OutOfRange(addr));
        }
        Ok(())
    }

    fn lun_index(&self, addr: PhysAddr) -> usize {
        usize::from(addr.channel) * usize::from(self.cfg.luns_per_channel) + usize::from(addr.lun)
    }

    /// Program one page at `addr` (data shorter than a page is
    /// zero-padded). Returns the completion time.
    pub fn program_page(
        &mut self,
        addr: PhysAddr,
        data: &[u8],
        now: SimNs,
    ) -> Result<SimNs, FlashError> {
        self.check(addr)?;
        assert!(data.len() <= self.cfg.page_bytes as usize, "data larger than a page");
        if let Some(f) = &mut self.faults {
            if f.power_is_cut {
                f.stats.rejected_while_cut += 1;
                return Err(FlashError::PowerCut);
            }
            if let Some(left) = &mut f.writes_until_cut {
                if *left == 0 {
                    // The cut strikes mid-program: a random prefix of the
                    // data reaches the cells, the tail is lost, and no
                    // later operation succeeds until `reboot`.
                    f.power_is_cut = true;
                    f.writes_until_cut = None;
                    f.stats.torn_writes += 1;
                    let keep = f.rng.gen_u64(data.len() as u64 + 1) as usize;
                    let mut page = vec![0u8; self.cfg.page_bytes as usize].into_boxed_slice();
                    page[..keep].copy_from_slice(&data[..keep]);
                    self.pages.insert(addr, page);
                    self.writes += 1;
                    return Err(FlashError::PowerCut);
                }
                *left -= 1;
            }
        }
        let mut page = vec![0u8; self.cfg.page_bytes as usize].into_boxed_slice();
        page[..data.len()].copy_from_slice(data);

        // Transfer to the chip over channel + controller, then program.
        let ctrl = usize::from(self.controller_of(addr.channel));
        let (dma_grant, dma_done) =
            self.controllers[ctrl].transfer(now, u64::from(self.cfg.page_bytes));
        let (bus_grant, bus_done) = self.channels[usize::from(addr.channel)]
            .transfer(dma_done, u64::from(self.cfg.page_bytes));
        let li = self.lun_index(addr);
        let (prog_grant, prog_done) = self.luns[li].schedule(bus_done, self.cfg.page_program_ns);

        self.pages.insert(addr, page);
        self.writes += 1;
        if let Some(t) = &mut self.trace {
            // The span starts at the first resource grant and its
            // duration is the summed *service* time at the controller,
            // channel bus and LUN. Queue waits (behind earlier pages, or
            // between stages when a later stage is the bottleneck) are
            // excluded, so per-op flash busy time stays comparable to
            // wall time x resource parallelism instead of exploding
            // quadratically under load.
            t.record(TraceEvent {
                kind: TraceKind::FlashProgram { channel: addr.channel, lun: addr.lun },
                start: dma_grant,
                dur: (dma_done - dma_grant) + (bus_done - bus_grant) + (prog_done - prog_grant),
            });
        }
        Ok(prog_done)
    }

    /// Read one page; returns `(completion_time, data)`.
    pub fn read_page(&mut self, addr: PhysAddr, now: SimNs) -> Result<(SimNs, &[u8]), FlashError> {
        self.check(addr)?;
        if let Some(f) = &mut self.faults {
            if f.power_is_cut {
                f.stats.rejected_while_cut += 1;
                return Err(FlashError::PowerCut);
            }
        }
        if self.bad_pages.contains_key(&addr) {
            return Err(FlashError::Uncorrectable(addr));
        }
        if !self.pages.contains_key(&addr) {
            return Err(FlashError::Unwritten(addr));
        }
        // Injected-fault processing (transient, grown-bad, correctable).
        let mut ecc_penalty_ns: SimNs = 0;
        if let Some(f) = &mut self.faults {
            if let Some(left) = f.transient.get_mut(&addr) {
                *left -= 1;
                if *left == 0 {
                    f.transient.remove(&addr);
                }
                f.stats.transient_failures += 1;
                return Err(FlashError::TransientRead(addr));
            }
            if f.bad_growth_p > 0.0 && f.rng.gen_bool(f.bad_growth_p) {
                f.stats.grown_bad_pages += 1;
                self.bad_pages.insert(addr, ());
                return Err(FlashError::Uncorrectable(addr));
            }
            if f.transient_read_p > 0.0 && f.rng.gen_bool(f.transient_read_p) {
                // This read fails; sometimes the glitch lingers for one
                // more attempt before the retry succeeds.
                if f.rng.gen_bool(0.25) {
                    f.transient.insert(addr, 1);
                }
                f.stats.transient_failures += 1;
                return Err(FlashError::TransientRead(addr));
            }
            if f.sticky_correctable.contains_key(&addr)
                || (f.correctable_p > 0.0 && f.rng.gen_bool(f.correctable_p))
            {
                f.stats.correctable_hits += 1;
                *f.correctable_counts.entry(addr).or_insert(0) += 1;
                ecc_penalty_ns = ECC_CORRECTION_NS;
            }
        }
        // tR (+ any ECC correction) on the LUN, then channel bus, then
        // controller DMA.
        let li = self.lun_index(addr);
        let (tr_grant, array_done) =
            self.luns[li].schedule(now, self.cfg.page_read_ns + ecc_penalty_ns);
        let (bus_grant, bus_done) = self.channels[usize::from(addr.channel)]
            .transfer(array_done, u64::from(self.cfg.page_bytes));
        let ctrl = usize::from(self.controller_of(addr.channel));
        let (dma_grant, dma_done) =
            self.controllers[ctrl].transfer(bus_done, u64::from(self.cfg.page_bytes));
        self.reads += 1;
        if let Some(t) = &mut self.trace {
            // dur = summed service time at LUN + channel bus + controller
            // DMA, excluding queue waits; see program_page for rationale.
            t.record(TraceEvent {
                kind: TraceKind::FlashRead { channel: addr.channel, lun: addr.lun },
                start: tr_grant,
                dur: (array_done - tr_grant) + (bus_done - bus_grant) + (dma_done - dma_grant),
            });
        }
        Ok((dma_done, &self.pages[&addr]))
    }

    /// Install a fault plan: seeds the per-array RNG streams, arms the
    /// power cut and applies the explicit schedule. Replaces any
    /// previously installed state.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        let mut st = FlashFaultState::from_plan(plan);
        for s in &plan.schedule {
            match s.kind {
                FlashFaultKind::Transient { failures } => {
                    if failures > 0 {
                        st.transient.insert(s.addr, failures);
                    }
                }
                FlashFaultKind::Persistent => {
                    self.bad_pages.insert(s.addr, ());
                    st.stats.grown_bad_pages += 1;
                }
                FlashFaultKind::Correctable => {
                    st.sticky_correctable.insert(s.addr, ());
                }
            }
        }
        self.faults = Some(st);
    }

    /// Drop all fault state (pages already grown bad stay bad: that is
    /// physical damage, not injection bookkeeping).
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Switch every LUN, channel bus and controller timeline between
    /// the strict conveyor and gap-aware backfill (see
    /// [`Server::set_backfill`]); the queue engine enables backfill for
    /// the duration of a multi-client run.
    pub fn set_backfill(&mut self, on: bool) {
        for l in &mut self.luns {
            l.set_backfill(on);
        }
        for c in &mut self.channels {
            c.set_backfill(on);
        }
        for c in &mut self.controllers {
            c.set_backfill(on);
        }
    }

    /// Explicitly inject one fault at `addr`. Transient faults clear
    /// after their failure budget; persistent faults last until
    /// [`FlashArray::heal_page`]; correctable faults hit every read of
    /// the page until repaired.
    pub fn inject_fault(&mut self, addr: PhysAddr, kind: FlashFaultKind) {
        match kind {
            FlashFaultKind::Persistent => {
                self.bad_pages.insert(addr, ());
            }
            FlashFaultKind::Transient { failures } => {
                if failures > 0 {
                    self.ensure_fault_state().transient.insert(addr, failures);
                }
            }
            FlashFaultKind::Correctable => {
                self.ensure_fault_state().sticky_correctable.insert(addr, ());
            }
        }
    }

    fn ensure_fault_state(&mut self) -> &mut FlashFaultState {
        self.faults.get_or_insert_with(|| FlashFaultState::from_plan(&FaultPlan::default()))
    }

    /// Mark a page as failing with uncorrectable ECC errors. Persistent:
    /// reads fail until [`FlashArray::heal_page`]; retries and reboots
    /// do not help.
    pub fn inject_bad_page(&mut self, addr: PhysAddr) {
        self.inject_fault(addr, FlashFaultKind::Persistent);
    }

    /// Explicitly repair a persistent fault (models factory-style
    /// remapping; the resilience layer instead *relocates* the logical
    /// data and leaves the physical page bad).
    pub fn heal_page(&mut self, addr: PhysAddr) {
        self.bad_pages.remove(&addr);
    }

    /// Power restored after a cut: later operations succeed again.
    /// Transient glitch state clears with the power rail; grown bad
    /// pages, degradation counters and torn page contents persist.
    pub fn reboot(&mut self) {
        if let Some(f) = &mut self.faults {
            f.power_is_cut = false;
            f.writes_until_cut = None;
            f.transient.clear();
        }
    }

    /// True while a struck power cut keeps the array offline.
    pub fn power_is_cut(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.power_is_cut)
    }

    /// Pages whose ECC-correction count has reached `threshold`
    /// (read-repair candidates), in deterministic address order.
    pub fn degrading_pages(&self, threshold: u32) -> Vec<PhysAddr> {
        let Some(f) = &self.faults else { return Vec::new() };
        let mut v: Vec<PhysAddr> = f
            .correctable_counts
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(&a, _)| a)
            .collect();
        v.sort();
        v
    }

    /// Forget degradation history for `addr` after its data was
    /// relocated (the physical page may still be failing; it simply no
    /// longer holds live data).
    pub fn mark_repaired(&mut self, addr: PhysAddr) {
        if let Some(f) = &mut self.faults {
            f.correctable_counts.remove(&addr);
            f.sticky_correctable.remove(&addr);
            f.transient.remove(&addr);
        }
    }

    /// Fault counters since install (zeros when no plan is installed).
    pub fn fault_stats(&self) -> FlashFaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Pages read/programmed so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Start recording flash spans into a ring of `capacity` events.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Some(TraceRing::new(capacity));
    }

    /// Stop recording and drop any buffered spans.
    pub fn disable_tracing(&mut self) {
        self.trace = None;
    }

    /// Whether flash spans are being recorded.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Drain the buffered flash spans (oldest first; empty when tracing
    /// is disabled).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(TraceRing::drain).unwrap_or_default()
    }

    /// Spans evicted from the flash ring because it was full.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map_or(0, TraceRing::dropped)
    }

    /// Total busy time accumulated over the controller DMA stage — the
    /// paper's stated bottleneck. The SCAN occupancy claim (flash-bound,
    /// ≈100 % busy) is asserted from this, not from end-to-end runtime.
    pub fn controller_busy_ns(&self) -> SimNs {
        self.controllers.iter().map(BandwidthLink::busy_total).sum()
    }

    /// Bytes of live page data currently stored.
    pub fn stored_bytes(&self) -> u64 {
        self.pages.len() as u64 * u64::from(self.cfg.page_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(channel: u16, lun: u16, page: u32) -> PhysAddr {
        PhysAddr { channel, lun, page }
    }

    #[test]
    fn program_then_read_round_trips() {
        let mut f = FlashArray::new(FlashConfig::default());
        let a = addr(0, 0, 0);
        let t1 = f.program_page(a, b"hello flash", 0).unwrap();
        assert!(t1 >= timing::FLASH_PAGE_PROGRAM_NS);
        let (t2, data) = f.read_page(a, t1).unwrap();
        assert!(t2 > t1);
        assert_eq!(&data[..11], b"hello flash");
        assert_eq!(data.len(), 8192);
        assert_eq!(f.op_counts(), (1, 1));
    }

    #[test]
    fn unwritten_page_read_fails() {
        let mut f = FlashArray::new(FlashConfig::default());
        assert_eq!(f.read_page(addr(0, 0, 5), 0), Err(FlashError::Unwritten(addr(0, 0, 5))));
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut f = FlashArray::new(FlashConfig::default());
        assert!(matches!(f.program_page(addr(99, 0, 0), b"x", 0), Err(FlashError::OutOfRange(_))));
        assert!(matches!(f.read_page(addr(0, 99, 0), 0), Err(FlashError::OutOfRange(_))));
    }

    #[test]
    fn injected_ecc_fault_surfaces_and_heals() {
        let mut f = FlashArray::new(FlashConfig::default());
        let a = addr(1, 1, 7);
        f.program_page(a, b"data", 0).unwrap();
        f.inject_bad_page(a);
        assert!(matches!(f.read_page(a, 0), Err(FlashError::Uncorrectable(_))));
        f.heal_page(a);
        assert!(f.read_page(a, 0).is_ok());
    }

    #[test]
    fn parallel_channels_overlap_but_controller_serializes() {
        let mut f = FlashArray::new(FlashConfig::default());
        // Two pages on different channels of the SAME controller.
        let (a, b) = (addr(0, 0, 0), addr(1, 0, 0));
        // Two pages on channels of DIFFERENT controllers.
        let (c, d) = (addr(0, 1, 0), addr(4, 0, 0));
        for p in [a, b, c, d] {
            f.program_page(p, b"x", 0).unwrap();
        }
        let warm = 10_000_000; // after programming noise
        let (t_a, _) = f.read_page(a, warm).unwrap();
        let single = t_a - warm;

        let mut f2 = FlashArray::new(FlashConfig::default());
        for p in [a, b, c, d] {
            f2.program_page(p, b"x", 0).unwrap();
        }
        let (t1, _) = f2.read_page(c, warm).unwrap();
        let (t2, _) = f2.read_page(d, warm).unwrap();
        let both_diff_ctrl = t1.max(t2) - warm;
        // Different controllers fully overlap: same finish as one read.
        assert_eq!(both_diff_ctrl, single);

        let mut f3 = FlashArray::new(FlashConfig::default());
        for p in [a, b, c, d] {
            f3.program_page(p, b"x", 0).unwrap();
        }
        let (u1, _) = f3.read_page(a, warm).unwrap();
        let (u2, _) = f3.read_page(b, warm).unwrap();
        let both_same_ctrl = u1.max(u2) - warm;
        // Same controller: the DMA stage serializes, so it takes longer
        // than a single read but less than 2x (tR and buses overlap).
        assert!(both_same_ctrl > single);
        assert!(both_same_ctrl < 2 * single);
    }

    #[test]
    fn controller_mapping_splits_channels_evenly() {
        let f = FlashArray::new(FlashConfig::default());
        assert_eq!(f.controller_of(0), 0);
        assert_eq!(f.controller_of(3), 0);
        assert_eq!(f.controller_of(4), 1);
        assert_eq!(f.controller_of(7), 1);
    }

    #[test]
    fn transient_fault_clears_after_its_failure_budget() {
        let mut f = FlashArray::new(FlashConfig::default());
        let a = addr(2, 0, 3);
        f.program_page(a, b"payload", 0).unwrap();
        f.inject_fault(a, FlashFaultKind::Transient { failures: 2 });
        assert_eq!(f.read_page(a, 0).unwrap_err(), FlashError::TransientRead(a));
        assert_eq!(f.read_page(a, 0).unwrap_err(), FlashError::TransientRead(a));
        let (_, data) = f.read_page(a, 0).unwrap();
        assert_eq!(&data[..7], b"payload");
        assert_eq!(f.fault_stats().transient_failures, 2);
    }

    #[test]
    fn persistent_fault_survives_retries_and_reboot() {
        let mut f = FlashArray::new(FlashConfig::default());
        let a = addr(0, 2, 9);
        f.program_page(a, b"x", 0).unwrap();
        f.inject_fault(a, FlashFaultKind::Persistent);
        for _ in 0..3 {
            assert_eq!(f.read_page(a, 0).unwrap_err(), FlashError::Uncorrectable(a));
        }
        f.reboot();
        assert_eq!(f.read_page(a, 0).unwrap_err(), FlashError::Uncorrectable(a));
    }

    #[test]
    fn correctable_fault_returns_data_with_latency_penalty() {
        let mut clean = FlashArray::new(FlashConfig::default());
        let mut faulty = FlashArray::new(FlashConfig::default());
        let a = addr(3, 1, 4);
        clean.program_page(a, b"ecc", 0).unwrap();
        faulty.program_page(a, b"ecc", 0).unwrap();
        faulty.inject_fault(a, FlashFaultKind::Correctable);
        let warm = 100_000_000;
        let (t_clean, _) = clean.read_page(a, warm).unwrap();
        let (t_faulty, data) = faulty.read_page(a, warm).unwrap();
        assert_eq!(&data[..3], b"ecc");
        assert_eq!(t_faulty - t_clean, ECC_CORRECTION_NS);
        assert_eq!(faulty.fault_stats().correctable_hits, 1);
        assert_eq!(faulty.degrading_pages(1), vec![a]);
        assert!(faulty.degrading_pages(2).is_empty());
        faulty.mark_repaired(a);
        assert!(faulty.degrading_pages(1).is_empty());
    }

    #[test]
    fn power_cut_tears_the_write_and_blocks_until_reboot() {
        let mut f = FlashArray::new(FlashConfig::default());
        f.install_faults(&FaultPlan {
            seed: 11,
            power_cut_at_write: Some(2),
            ..FaultPlan::default()
        });
        f.program_page(addr(0, 0, 0), &[0xAA; 4096], 0).unwrap();
        f.program_page(addr(0, 0, 1), &[0xBB; 4096], 0).unwrap();
        // Third program is torn by the cut.
        let torn = [0xCC; 4096];
        assert_eq!(f.program_page(addr(0, 0, 2), &torn, 0).unwrap_err(), FlashError::PowerCut);
        assert!(f.power_is_cut());
        assert_eq!(f.read_page(addr(0, 0, 0), 0).unwrap_err(), FlashError::PowerCut);
        assert_eq!(f.program_page(addr(0, 0, 3), b"x", 0).unwrap_err(), FlashError::PowerCut);
        let stats = f.fault_stats();
        assert_eq!(stats.torn_writes, 1);
        assert!(stats.rejected_while_cut >= 2);

        f.reboot();
        // Pre-cut pages are intact; the torn page holds a strict prefix.
        let (_, ok) = f.read_page(addr(0, 0, 1), 0).unwrap();
        assert!(ok[..4096].iter().all(|&b| b == 0xBB));
        let (_, t) = f.read_page(addr(0, 0, 2), 0).unwrap();
        let prefix_len = t.iter().take_while(|&&b| b == 0xCC).count();
        assert!(prefix_len < 4096, "the torn write must not be complete");
        assert!(t[prefix_len..].iter().all(|&b| b == 0));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_quiet_plan_is_transparent() {
        let run = |plan: Option<FaultPlan>| {
            let mut f = FlashArray::new(FlashConfig::default());
            if let Some(p) = plan {
                f.install_faults(&p);
            }
            let mut log = Vec::new();
            for i in 0..40u32 {
                let a = addr((i % 4) as u16, 0, i);
                f.program_page(a, &[i as u8; 64], 0).unwrap();
            }
            for round in 0..3 {
                for i in 0..40u32 {
                    let a = addr((i % 4) as u16, 0, i);
                    log.push((round, i, f.read_page(a, 0).map(|(t, _)| t)));
                }
            }
            log
        };
        let plan = FaultPlan {
            seed: 99,
            transient_read_p: 0.2,
            correctable_p: 0.2,
            bad_growth_p: 0.05,
            ..FaultPlan::default()
        };
        assert_eq!(run(Some(plan.clone())), run(Some(plan)));
        // A quiet plan (rates all zero) behaves exactly like no plan.
        assert_eq!(run(Some(FaultPlan::quiet(1))), run(None));
    }

    #[test]
    fn stored_bytes_tracks_unique_pages() {
        let mut f = FlashArray::new(FlashConfig::default());
        f.program_page(addr(0, 0, 0), b"a", 0).unwrap();
        f.program_page(addr(0, 0, 1), b"b", 0).unwrap();
        f.program_page(addr(0, 0, 0), b"rewrite", 0).unwrap();
        assert_eq!(f.stored_bytes(), 2 * 8192);
    }
}
