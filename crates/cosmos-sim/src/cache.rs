//! Device-DRAM block cache.
//!
//! `repro profile` shows a hardware SCAN keeps the flash controllers
//! ~99 % occupied — every repeated query re-streams the same SST pages
//! over the ~200 MB/s flash channels while the platform's DRAM
//! (1 GB/s, mostly staging buffers) sits idle. This module spends a
//! fixed DRAM budget on recently read SST **data blocks and index
//! pages** so repeated reads are served from DRAM instead of flash.
//!
//! The cache is pure storage + bookkeeping; *timing* stays where all
//! other timing lives: a hit replaces the flash read and its
//! flash-DMA staging transfer with one DRAM-port burst
//! ([`crate::dram::DramClient::CacheHit`]), charged by the executor
//! through the ordinary shared-port model, so hits are cheaper but
//! never free and still contend with PE load/store traffic.
//!
//! **Replacement** is a segmented LRU: entries are admitted into a
//! *probationary* segment and promoted to the *protected* segment on
//! their first hit (scan-resistant — a one-pass streaming SCAN cannot
//! flush the hot set). The protected segment is capped at 3/4 of the
//! byte budget; overflow demotes the oldest protected entry back to
//! probationary. Victims are probationary-LRU first, protected-LRU
//! only when no probationary entry remains. Recency is a strictly
//! increasing touch sequence, so victim selection is deterministic
//! regardless of hash-map iteration order.
//!
//! **Correctness** is the caller's invalidation contract: SSTs are
//! immutable on flash and the page allocator never reuses pages, so a
//! cached entry can only go stale when an SST id is retired
//! (compaction) or its pages are relocated (read-repair). `nkv` evicts
//! those ids via [`BlockCache::evict_sst`]; everything else —
//! memtable-first reads, version reconciliation — already happens
//! *above* the block reads this cache serves, so the cached path is
//! byte-identical to the uncached path by construction.
//!
//! Like faults, tracing, metrics and queues, the cache follows the
//! zero-cost-when-disabled idiom: the platform holds an
//! `Option<BlockCache>` and every consult site is one branch.

use std::collections::HashMap;

/// Pseudo block index under which an SST's index page is cached
/// (data blocks use their ordinary block index).
pub const INDEX_BLOCK: usize = usize::MAX;

/// Counters the cache keeps. Conservation invariant (tested):
/// `hits + misses == lookups`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Block lookups issued while the cache was enabled.
    pub lookups: u64,
    /// Lookups served from DRAM.
    pub hits: u64,
    /// Lookups that went to flash.
    pub misses: u64,
    /// Blocks admitted (probationary).
    pub insertions: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
    /// Blocks dropped by explicit invalidation (compaction/read-repair).
    pub invalidations: u64,
    /// Bytes served from DRAM instead of flash.
    pub hit_bytes: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    data: Vec<u8>,
    /// Strictly increasing touch sequence — unique, so LRU victim
    /// selection is deterministic under any map iteration order.
    touched: u64,
    protected: bool,
}

/// Fixed-budget segmented-LRU cache over `(sst_id, block)` keys.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    budget: usize,
    /// Byte cap of the protected segment (3/4 of the budget).
    protected_cap: usize,
    used: usize,
    protected_used: usize,
    seq: u64,
    map: HashMap<(u64, usize), Entry>,
    stats: CacheStats,
}

impl BlockCache {
    /// An empty cache bounded to `budget_bytes` of DRAM.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes,
            protected_cap: budget_bytes - budget_bytes / 4,
            ..Self::default()
        }
    }

    /// The byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `(sst_id, block)` is cached, without touching recency
    /// or counters (tests/diagnostics).
    pub fn contains(&self, sst_id: u64, block: usize) -> bool {
        self.map.contains_key(&(sst_id, block))
    }

    /// Look `(sst_id, block)` up; a hit promotes the entry to the
    /// protected segment and returns its bytes.
    pub fn lookup(&mut self, sst_id: u64, block: usize) -> Option<&[u8]> {
        self.stats.lookups += 1;
        let key = (sst_id, block);
        if !self.map.contains_key(&key) {
            self.stats.misses += 1;
            return None;
        }
        self.stats.hits += 1;
        self.seq += 1;
        let seq = self.seq;
        let (len, was_protected) = {
            let e = self.map.get_mut(&key).expect("checked above");
            e.touched = seq;
            let wp = e.protected;
            e.protected = true;
            (e.data.len(), wp)
        };
        self.stats.hit_bytes += len as u64;
        if !was_protected {
            self.protected_used += len;
            self.demote_overflow(key);
        }
        Some(&self.map[&key].data)
    }

    /// Admit `(sst_id, block)` into the probationary segment, evicting
    /// LRU entries until it fits. Blocks larger than the whole budget
    /// are not admitted; re-inserting an existing key replaces it.
    pub fn insert(&mut self, sst_id: u64, block: usize, data: Vec<u8>) {
        if data.len() > self.budget {
            return;
        }
        let key = (sst_id, block);
        if let Some(old) = self.map.remove(&key) {
            self.used -= old.data.len();
            if old.protected {
                self.protected_used -= old.data.len();
            }
        }
        while self.used + data.len() > self.budget {
            self.evict_one();
        }
        self.seq += 1;
        self.used += data.len();
        self.stats.insertions += 1;
        self.map.insert(key, Entry { data, touched: self.seq, protected: false });
    }

    /// Drop every cached block of `sst_id` (data and index). Called
    /// when compaction retires the SST or read-repair relocates its
    /// pages. Returns how many entries were invalidated.
    pub fn evict_sst(&mut self, sst_id: u64) -> u64 {
        let keys: Vec<(u64, usize)> = self.map.keys().filter(|k| k.0 == sst_id).copied().collect();
        for k in &keys {
            let e = self.map.remove(k).expect("key collected above");
            self.used -= e.data.len();
            if e.protected {
                self.protected_used -= e.data.len();
            }
        }
        self.stats.invalidations += keys.len() as u64;
        keys.len() as u64
    }

    /// Demote protected-LRU entries (other than the freshly promoted
    /// `keep`) until the protected segment fits its cap again.
    fn demote_overflow(&mut self, keep: (u64, usize)) {
        while self.protected_used > self.protected_cap {
            let victim = self
                .map
                .iter()
                .filter(|(k, e)| e.protected && **k != keep)
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| *k);
            let Some(k) = victim else { break };
            let e = self.map.get_mut(&k).expect("victim exists");
            e.protected = false;
            self.protected_used -= e.data.len();
        }
    }

    /// Evict one block: probationary LRU first, protected LRU only
    /// when the probationary segment is empty.
    fn evict_one(&mut self) {
        let victim = self
            .map
            .iter()
            .filter(|(_, e)| !e.protected)
            .min_by_key(|(_, e)| e.touched)
            .map(|(k, _)| *k)
            .or_else(|| self.map.iter().min_by_key(|(_, e)| e.touched).map(|(k, _)| *k));
        let Some(k) = victim else { return };
        let e = self.map.remove(&k).expect("victim exists");
        self.used -= e.data.len();
        if e.protected {
            self.protected_used -= e.data.len();
        }
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_and_counter_conservation() {
        let mut c = BlockCache::new(1 << 20);
        assert!(c.lookup(1, 0).is_none());
        c.insert(1, 0, vec![7; 100]);
        assert_eq!(c.lookup(1, 0).unwrap(), &[7; 100][..]);
        assert!(c.lookup(1, 1).is_none());
        let s = c.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits + s.misses, s.lookups);
        assert_eq!(s.hit_bytes, 100);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn budget_is_enforced_and_probationary_evicts_first() {
        let mut c = BlockCache::new(300);
        c.insert(1, 0, vec![0; 100]);
        c.insert(1, 1, vec![0; 100]);
        c.insert(1, 2, vec![0; 100]);
        // Promote blocks 0 and 2 to the protected segment.
        assert!(c.lookup(1, 0).is_some());
        assert!(c.lookup(1, 2).is_some());
        // A new admission must evict the only probationary entry (1).
        c.insert(2, 0, vec![0; 100]);
        assert!(c.contains(1, 0));
        assert!(!c.contains(1, 1), "probationary LRU is the victim");
        assert!(c.contains(1, 2));
        assert!(c.contains(2, 0));
        assert_eq!(c.used_bytes(), 300);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn protected_lru_falls_back_when_no_probationary_left() {
        let mut c = BlockCache::new(200);
        c.insert(1, 0, vec![0; 100]);
        c.insert(1, 1, vec![0; 100]);
        assert!(c.lookup(1, 0).is_some());
        assert!(c.lookup(1, 1).is_some());
        // Both are protected (150-byte cap demotes the older, block 0,
        // back to probationary) — the admission evicts exactly one.
        c.insert(2, 0, vec![0; 100]);
        assert_eq!(c.len(), 2);
        assert!(!c.contains(1, 0), "oldest entry is the victim");
        assert!(c.contains(1, 1));
        assert!(c.contains(2, 0));
    }

    #[test]
    fn oversized_blocks_are_not_admitted() {
        let mut c = BlockCache::new(64);
        c.insert(1, 0, vec![0; 65]);
        assert!(c.is_empty());
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn evict_sst_invalidates_data_and_index_entries() {
        let mut c = BlockCache::new(1 << 20);
        c.insert(1, 0, vec![0; 10]);
        c.insert(1, 1, vec![0; 10]);
        c.insert(1, INDEX_BLOCK, vec![0; 10]);
        c.insert(2, 0, vec![0; 10]);
        assert_eq!(c.evict_sst(1), 3);
        assert_eq!(c.len(), 1);
        assert!(c.contains(2, 0));
        assert_eq!(c.stats().invalidations, 3);
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.evict_sst(99), 0, "unknown SSTs invalidate nothing");
    }

    #[test]
    fn reinsert_replaces_without_double_accounting() {
        let mut c = BlockCache::new(1 << 10);
        c.insert(1, 0, vec![0; 100]);
        assert!(c.lookup(1, 0).is_some()); // protected now
        c.insert(1, 0, vec![1; 200]);
        assert_eq!(c.used_bytes(), 200);
        assert_eq!(c.lookup(1, 0).unwrap(), &[1; 200][..]);
    }
}
