//! Calibrated timing constants.
//!
//! Every constant is anchored either to a number the paper states
//! explicitly or to a derivation documented here (and re-derived in
//! EXPERIMENTS.md). The two headline anchors of Fig. 7(b):
//!
//! * dataset volume = 3,775,161 papers × 80 B + 40,128,663 refs × 20 B
//!   = 1,104,586,140 B, processed in 32 KiB blocks ⇒ 33,710 blocks;
//! * \[1\]'s hardware SCAN takes 5.512 s and ours 5.530 s (+0.018 s).
//!
//! With the per-block configuration overheads derived from counted
//! register accesses below, the effective aggregate flash bandwidth that
//! reproduces 5.512 s is ~201.7 MB/s — consistent with the paper's
//! "about 200 MB/s" for two Tiger4 controllers.

use crate::SimNs;

/// 100 MHz programmable-logic clock period (PEs, flash controllers).
pub const PL_CLK_NS: SimNs = 10;
/// 250 MHz NVMe core clock period.
pub const NVME_CLK_NS: SimNs = 4;
/// ARM Cortex-A9 clock on the Zynq-7045 (667 MHz grade): ~1.5 ns/cycle.
pub const ARM_CLK_PS: u64 = 1500;

/// Effective aggregate flash read bandwidth over both Tiger4 controllers,
/// bytes/second. Derived from the 5.512 s anchor (see module docs);
/// the paper states "about 200 MB/s".
pub const FLASH_AGGREGATE_BW: f64 = 201.609_6e6;
/// NAND page-array read latency (tR). Overlapped across LUNs, so it only
/// shows up on cold, single-block accesses such as GET index walks.
pub const FLASH_PAGE_READ_NS: SimNs = 70_000;
/// NAND page program latency (tPROG).
pub const FLASH_PAGE_PROGRAM_NS: SimNs = 600_000;
/// Flash page size (Cosmos+ ships 8 KiB-page NAND).
pub const FLASH_PAGE_BYTES: u32 = 8192;

/// Uncached PS→PL AXI-Lite register write, as issued by the firmware when
/// configuring a PE.
pub const MMIO_WRITE_NS: SimNs = 150;
/// Uncached PL→PS register read (round trip).
pub const MMIO_READ_NS: SimNs = 234;

/// Steady-state register writes the \[1\] firmware issues per processed
/// block: SRC_ADDR_LO/HI, DST_ADDR_LO/HI and START. (Filter rules are
/// written once per scan and cached — see `ndp_swgen::PeDriver`.)
pub const BASE_CFG_WRITES: u64 = 5;
/// Register reads per block for \[1\]: the pass counter.
pub const BASE_CFG_READS: u64 = 1;
/// Steady-state register writes of our generated firmware per block: the
/// \[1\] set plus SRC_LEN and DST_CAPACITY (flexible partial-block
/// units must be told the transfer length and the result capacity).
pub const OURS_CFG_WRITES: u64 = 7;
/// Register reads per block for our firmware: pass counter plus
/// RESULT_BYTES (partial-block results have a variable size).
pub const OURS_CFG_READS: u64 = 2;

/// Steady-state register writes per *key* once a batched GET's key-list
/// walker owns the datapath: the PL walker advances the descriptor
/// itself, so the ARM only rings the per-key START strobe. Rules,
/// addresses and capacities were programmed once by the batch's first
/// key (which pays the full cold [`OURS_CFG_WRITES`]/[`OURS_CFG_READS`]
/// sequence).
pub const BATCH_KEY_CFG_WRITES: u64 = 1;
/// Register reads per key in batched steady state: none — per-key
/// result lengths ride the result stream itself (the walker prefixes
/// each record with its length), not a readback register.
pub const BATCH_KEY_CFG_READS: u64 = 0;

/// ARM cost of parsing + validating one key-list descriptor header
/// before handing it to the PL walker (magic/count/flags checks on the
/// DMA'd page).
pub const ARM_BATCH_HEADER_PARSE_NS: SimNs = 1_000;

/// ARM software filtering cost per byte, picoseconds (≈5.4 cycles/byte
/// at 667 MHz: record parse, field extract, compare, branch, result
/// append). Deliberately above the ~4.96 ns/B aggregate flash rate so the
/// software SCAN is compute-bound — the paper's premise for hardware
/// NDP paying off on SCAN, consistent with [1]'s up-to-2.7x speedups.
pub const ARM_FILTER_PS_PER_BYTE: u64 = 8_150;
/// ARM per-block dispatch overhead on the software path (function call,
/// loop setup, result append bookkeeping).
pub const ARM_SW_BLOCK_OVERHEAD_NS: SimNs = 200;
/// ARM cost of one memtable/skip-list probe during GET.
pub const ARM_MEMTABLE_PROBE_NS: SimNs = 2_000;
/// ARM cost of a binary search + record parse in one 32 KiB block
/// (software GET path).
pub const ARM_BLOCK_SEARCH_NS: SimNs = 15_000;

/// Host NVMe link bandwidth (PCIe Gen2 x8 front-end of the Cosmos+,
/// conservatively clocked): result sets travel over this.
pub const NVME_LINK_BW: f64 = 1.2e9;

/// Per-operation firmware overhead of the *updated* Cosmos+ firmware the
/// paper used ("traded some performance for higher reliability", making
/// their GETs ~10 % slower than [1]'s). Amortized to nothing over a
/// 5.5 s SCAN, but visible on a millisecond GET.
pub const FIRMWARE_OP_OVERHEAD_NS: SimNs = 200_000;

/// Per-block PE configuration overhead (ns) for the given firmware
/// register-access counts.
pub const fn cfg_overhead_ns(writes: u64, reads: u64) -> SimNs {
    writes * MMIO_WRITE_NS + reads * MMIO_READ_NS
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The derivation chain of the module docs, kept honest by a test:
    /// dataset volume at the calibrated bandwidth plus per-block config
    /// overheads must land on the paper's 5.512 s / 5.530 s anchors.
    #[test]
    fn fig7b_anchor_derivation() {
        let bytes: f64 = 3_775_161.0 * 80.0 + 40_128_663.0 * 20.0;
        assert_eq!(bytes, 1_104_586_140.0);
        let blocks = (bytes / 32_768.0).ceil();
        assert_eq!(blocks, 33_710.0);

        let flash_s = bytes / FLASH_AGGREGATE_BW;
        let base_s =
            flash_s + blocks * cfg_overhead_ns(BASE_CFG_WRITES, BASE_CFG_READS) as f64 * 1e-9;
        let ours_s =
            flash_s + blocks * cfg_overhead_ns(OURS_CFG_WRITES, OURS_CFG_READS) as f64 * 1e-9;
        assert!((base_s - 5.512).abs() < 0.005, "base anchor drifted: {base_s}");
        assert!((ours_s - 5.530).abs() < 0.005, "ours anchor drifted: {ours_s}");
        // The paper's headline delta: ~0.018 s.
        assert!(((ours_s - base_s) - 0.018).abs() < 0.001);
    }

    #[test]
    fn config_overhead_counts() {
        assert_eq!(cfg_overhead_ns(BASE_CFG_WRITES, BASE_CFG_READS), 5 * 150 + 234);
        assert_eq!(cfg_overhead_ns(OURS_CFG_WRITES, OURS_CFG_READS), 7 * 150 + 2 * 234);
    }

    #[test]
    fn software_scan_lands_between_flash_and_double_flash() {
        // The SW SCAN overlaps flash reads with ARM filtering (double
        // buffering), so its runtime is max(flash, ARM) — and the ARM is
        // the slower stream, making the SCAN compute-bound. The implied
        // speedup must sit inside [1]'s reported band (up to 2.7x).
        let bytes: f64 = 1_104_586_140.0;
        let flash_s = bytes / FLASH_AGGREGATE_BW;
        let arm_s = bytes * ARM_FILTER_PS_PER_BYTE as f64 * 1e-12;
        assert!(arm_s > flash_s, "SW scan must be ARM-bound");
        let sw = flash_s.max(arm_s);
        let hw = 5.530;
        let speedup = sw / hw;
        assert!((1.3..2.7).contains(&speedup), "SW/HW speedup {speedup:.2} out of band");
    }
}
