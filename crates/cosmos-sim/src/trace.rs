//! Ring-buffered DES event tracing.
//!
//! When enabled, the platform records one typed span ([`TraceEvent`])
//! per interesting hardware activity — flash page reads/programs per
//! channel/LUN, DRAM AXI transfers with their contention waits, PE block
//! jobs, NVMe transfers and PE register accesses — all in *simulated*
//! time. The ring ([`TraceRing`]) is bounded: when full, the oldest
//! event is evicted and counted, so tracing a long run costs bounded
//! memory and never fails.
//!
//! Like fault injection ([`crate::faults`]), tracing follows the
//! zero-cost-when-disabled idiom: every record site is guarded by one
//! `Option` branch, and with tracing off the timing behaviour is
//! bit-for-bit the untraced model.
//!
//! [`chrome_trace_json`] exports a span list in the Chrome
//! `trace_event` JSON format (the `chrome://tracing` / Perfetto "JSON
//! array" flavor): each flash channel and each PE renders as its own
//! "process" row, LUNs and clients as threads, so a whole SCAN can be
//! opened in a trace viewer.
//!
//! [`chrome_trace_json_cluster`] is the fleet-scope variant: it merges
//! the drained rings of N devices into *one* trace by namespacing each
//! device's pids (device `i` offsets every pid by
//! [`DEVICE_PID_STRIDE`]` * i`), and interleaves the host router's
//! synthetic spans ([`RouterSpan`]: fan-out, per-shard wait, merge) on
//! their own process row, so one cluster query reads as a single flame
//! graph. The export carries a `metadata` object with the device count
//! and the total spans dropped to ring overflow — a truncated trace is
//! labelled, never silent.

use crate::dram::DramClient;
use crate::SimNs;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// What a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// One NAND page read (tR + bus + controller DMA) on `channel`/`lun`.
    FlashRead { channel: u16, lun: u16 },
    /// One NAND page program on `channel`/`lun`.
    FlashProgram { channel: u16, lun: u16 },
    /// One transfer over the shared PS-DRAM port. `wait_ns` is the time
    /// the transfer spent waiting for the port (contention + injected
    /// stalls) before being served.
    DramTransfer { client: DramClient, bytes: u64, wait_ns: SimNs },
    /// One PE block job (START → DONE), `cycles` at the 100 MHz PL clock.
    PeJob { pe: u32, cycles: u64 },
    /// One NVMe host transfer.
    NvmeTransfer { bytes: u64 },
    /// A batch of PE control-register accesses (PS↔PL round trips).
    RegAccess { pe: u32, writes: u64, reads: u64 },
    /// NVMe command admission on queue pair `qid`: SQ doorbell write
    /// plus the controller's 64 B SQE fetch, for command id `cid`.
    QueueSubmit { qid: u16, cid: u16 },
    /// NVMe completion posting on queue pair `qid`: 16 B CQE DMA plus
    /// the host's CQ-head doorbell acknowledgement, for command `cid`.
    QueueComplete { qid: u16, cid: u16 },
    /// A DRAM block-cache hit: `bytes` of SST `sst_id` (block index
    /// `block`; `u64::MAX` marks the index page) served from DRAM
    /// instead of flash. The busy time of the burst itself is the
    /// accompanying `DramTransfer` span with the `CacheHit` client.
    CacheHit { sst_id: u64, block: u64, bytes: u64 },
}

/// One timed span in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub kind: TraceKind,
    /// Span start, simulated nanoseconds.
    pub start: SimNs,
    /// Span duration, simulated nanoseconds.
    pub dur: SimNs,
}

/// A bounded ring of trace events.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        Self { events: VecDeque::with_capacity(capacity.min(4096)), capacity, dropped: 0 }
    }

    /// Record one span, evicting the oldest if the ring is full.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Remove and return all buffered events (oldest first). The
    /// dropped counter is preserved.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

fn client_name(c: DramClient) -> &'static str {
    match c {
        DramClient::FlashDma => "flash_dma",
        DramClient::PeLoad => "pe_load",
        DramClient::PeStore => "pe_store",
        DramClient::Cpu => "cpu",
        DramClient::Host => "host",
        DramClient::CacheHit => "cache_hit",
    }
}

/// Stable process-ID layout of the Chrome export: one "process" per
/// flash channel and per PE, one for the DRAM port, one for NVMe data
/// transfers, and one per NVMe queue pair (submissions and completions
/// on separate threads).
fn pid_tid(kind: &TraceKind) -> (u64, u64) {
    match kind {
        TraceKind::FlashRead { channel, lun } | TraceKind::FlashProgram { channel, lun } => {
            (100 + u64::from(*channel), 1 + u64::from(*lun))
        }
        TraceKind::DramTransfer { client, .. } => (200, 1 + *client as u64),
        TraceKind::PeJob { pe, .. } => (300 + u64::from(*pe), 1),
        TraceKind::RegAccess { pe, .. } => (300 + u64::from(*pe), 2),
        TraceKind::NvmeTransfer { .. } => (400, 1),
        TraceKind::QueueSubmit { qid, .. } => (500 + u64::from(*qid), 1),
        TraceKind::QueueComplete { qid, .. } => (500 + u64::from(*qid), 2),
        TraceKind::CacheHit { .. } => (600, 1),
    }
}

fn name_cat_args(kind: &TraceKind) -> (&'static str, &'static str, String) {
    match kind {
        TraceKind::FlashRead { channel, lun } => {
            ("flash_read", "flash", format!("\"channel\":{channel},\"lun\":{lun}"))
        }
        TraceKind::FlashProgram { channel, lun } => {
            ("flash_program", "flash", format!("\"channel\":{channel},\"lun\":{lun}"))
        }
        TraceKind::DramTransfer { client, bytes, wait_ns } => (
            "dram_transfer",
            "dram",
            format!(
                "\"client\":\"{}\",\"bytes\":{bytes},\"wait_ns\":{wait_ns}",
                client_name(*client)
            ),
        ),
        TraceKind::PeJob { pe, cycles } => {
            ("pe_job", "pe", format!("\"pe\":{pe},\"cycles\":{cycles}"))
        }
        TraceKind::NvmeTransfer { bytes } => {
            ("nvme_transfer", "nvme", format!("\"bytes\":{bytes}"))
        }
        TraceKind::RegAccess { pe, writes, reads } => {
            ("reg_access", "mmio", format!("\"pe\":{pe},\"writes\":{writes},\"reads\":{reads}"))
        }
        TraceKind::QueueSubmit { qid, cid } => {
            ("queue_submit", "queue", format!("\"qid\":{qid},\"cid\":{cid}"))
        }
        TraceKind::QueueComplete { qid, cid } => {
            ("queue_complete", "queue", format!("\"qid\":{qid},\"cid\":{cid}"))
        }
        TraceKind::CacheHit { sst_id, block, bytes } => {
            ("cache_hit", "cache", format!("\"sst\":{sst_id},\"block\":{block},\"bytes\":{bytes}"))
        }
    }
}

/// Write one device span as a Chrome complete event, with every pid
/// shifted by `pid_offset` (0 keeps the single-device layout).
fn write_event(out: &mut String, ev: &TraceEvent, pid_offset: u64) {
    let (name, cat, args) = name_cat_args(&ev.kind);
    let (pid, tid) = pid_tid(&ev.kind);
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\
         \"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{{args}}}}}",
        ts = ev.start as f64 / 1000.0,
        dur = ev.dur as f64 / 1000.0,
        pid = pid + pid_offset,
    );
}

/// Render spans as Chrome `trace_event` JSON (complete events, `ph:"X"`,
/// timestamps in microseconds of simulated time). Field order is stable;
/// events render in the order given.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, ev, 0);
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Pid distance between the namespaces of adjacent devices in a merged
/// cluster trace: device `i`'s spans render with `pid + 1000 * i`, so
/// device 0 keeps the documented single-device layout exactly.
pub const DEVICE_PID_STRIDE: u64 = 1000;

/// Process id of the host-side router row in a merged cluster trace.
/// Chosen inside device 0's namespace but clear of every span pid the
/// device model emits (100–699).
pub const ROUTER_PID: u64 = 900;

/// What a synthetic host-router span describes. These are not measured
/// device activity: the router runs host-side and charges no simulated
/// device time of its own, but rendering its fan-out/wait/merge
/// structure makes a cluster query read as one flame graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterSpanKind {
    /// The router dispatched one logical operation to `shards` shards.
    FanOut { shards: u32 },
    /// The router waited on shard `shard` for its part of the fan-out.
    ShardWait { shard: u32 },
    /// The router merged `shards` shard results into the reply.
    Merge { shards: u32 },
}

/// One synthetic router span on the cluster trace's router row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterSpan {
    pub kind: RouterSpanKind,
    /// Span start on the router's virtual timeline, simulated ns.
    pub start: SimNs,
    /// Span duration, simulated ns.
    pub dur: SimNs,
}

/// One device's contribution to a merged cluster trace: its drained
/// spans plus the ring-overflow count at drain time.
#[derive(Debug, Clone, Default)]
pub struct DeviceTrace {
    /// Device (shard) index; decides the pid namespace.
    pub device: u32,
    /// Drained spans, device-local simulated time.
    pub events: Vec<TraceEvent>,
    /// Spans this device evicted to ring overflow before the drain.
    pub dropped_spans: u64,
}

fn write_router_span(out: &mut String, span: &RouterSpan) {
    let (name, tid, args) = match span.kind {
        RouterSpanKind::FanOut { shards } => ("router_fanout", 1, format!("\"shards\":{shards}")),
        RouterSpanKind::Merge { shards } => ("router_merge", 2, format!("\"shards\":{shards}")),
        RouterSpanKind::ShardWait { shard } => {
            ("router_shard_wait", 10 + u64::from(shard), format!("\"shard\":{shard}"))
        }
    };
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"router\",\"ph\":\"X\",\
         \"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{ROUTER_PID},\"tid\":{tid},\
         \"args\":{{{args}}}}}",
        ts = span.start as f64 / 1000.0,
        dur = span.dur as f64 / 1000.0,
    );
}

/// Render a merged multi-device trace: every device's spans with its
/// pid namespace ([`DEVICE_PID_STRIDE`]` * device`), the router's
/// synthetic spans on pid [`ROUTER_PID`], and a `metadata` object
/// carrying the device count and the total ring-overflow drops (so a
/// truncated trace is visibly labelled). Field order is stable.
pub fn chrome_trace_json_cluster(devices: &[DeviceTrace], router: &[RouterSpan]) -> String {
    let total: usize = devices.iter().map(|d| d.events.len()).sum::<usize>() + router.len();
    let mut out = String::with_capacity(total * 128 + 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for dev in devices {
        let offset = DEVICE_PID_STRIDE * u64::from(dev.device);
        for ev in &dev.events {
            if !first {
                out.push(',');
            }
            first = false;
            write_event(&mut out, ev, offset);
        }
    }
    for span in router {
        if !first {
            out.push(',');
        }
        first = false;
        write_router_span(&mut out, span);
    }
    let dropped: u64 = devices.iter().map(|d| d.dropped_spans).sum();
    let _ = write!(
        out,
        "],\"metadata\":{{\"devices\":{},\"dropped_spans\":{dropped}}},\
         \"displayTimeUnit\":\"ns\"}}",
        devices.len(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = TraceRing::new(2);
        for i in 0..5u64 {
            r.record(TraceEvent { kind: TraceKind::NvmeTransfer { bytes: i }, start: i, dur: 1 });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let evs = r.drain();
        assert_eq!(evs[0].start, 3);
        assert_eq!(evs[1].start, 4);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 3, "drain preserves the dropped count");
    }

    #[test]
    fn chrome_json_field_order_is_stable() {
        let evs = [
            TraceEvent {
                kind: TraceKind::FlashRead { channel: 2, lun: 1 },
                start: 1500,
                dur: 70_000,
            },
            TraceEvent {
                kind: TraceKind::DramTransfer {
                    client: DramClient::PeLoad,
                    bytes: 4096,
                    wait_ns: 250,
                },
                start: 72_000,
                dur: 4_346,
            },
        ];
        let json = chrome_trace_json(&evs);
        assert_eq!(
            json,
            "{\"traceEvents\":[\
             {\"name\":\"flash_read\",\"cat\":\"flash\",\"ph\":\"X\",\
             \"ts\":1.500,\"dur\":70.000,\"pid\":102,\"tid\":2,\
             \"args\":{\"channel\":2,\"lun\":1}},\
             {\"name\":\"dram_transfer\",\"cat\":\"dram\",\"ph\":\"X\",\
             \"ts\":72.000,\"dur\":4.346,\"pid\":200,\"tid\":2,\
             \"args\":{\"client\":\"pe_load\",\"bytes\":4096,\"wait_ns\":250}}\
             ],\"displayTimeUnit\":\"ns\"}"
        );
    }

    #[test]
    fn every_kind_renders_with_its_own_process() {
        let kinds = [
            TraceKind::FlashRead { channel: 0, lun: 0 },
            TraceKind::FlashProgram { channel: 7, lun: 3 },
            TraceKind::DramTransfer { client: DramClient::Host, bytes: 1, wait_ns: 0 },
            TraceKind::PeJob { pe: 4, cycles: 99 },
            TraceKind::NvmeTransfer { bytes: 80 },
            TraceKind::RegAccess { pe: 4, writes: 7, reads: 2 },
            TraceKind::QueueSubmit { qid: 3, cid: 17 },
            TraceKind::QueueComplete { qid: 3, cid: 17 },
            TraceKind::CacheHit { sst_id: 5, block: 2, bytes: 32_768 },
        ];
        let evs: Vec<TraceEvent> =
            kinds.iter().map(|&kind| TraceEvent { kind, start: 0, dur: 1 }).collect();
        let json = chrome_trace_json(&evs);
        for frag in [
            "\"pid\":100,",
            "\"pid\":107,",
            "\"pid\":200,",
            "\"pid\":304,",
            "\"pid\":400,",
            "\"pid\":503,",
            "\"pid\":600,",
        ] {
            assert!(json.contains(frag), "{frag} missing in {json}");
        }
        // PE job and its register accesses share a process, on separate
        // threads.
        assert!(json.contains("\"name\":\"pe_job\",\"cat\":\"pe\",\"ph\":\"X\",\"ts\":0.000,\"dur\":0.001,\"pid\":304,\"tid\":1"));
        assert!(json.contains("\"name\":\"reg_access\",\"cat\":\"mmio\",\"ph\":\"X\",\"ts\":0.000,\"dur\":0.001,\"pid\":304,\"tid\":2"));
        // A queue pair is one process: submissions on tid 1,
        // completions on tid 2.
        assert!(json.contains("\"name\":\"queue_submit\",\"cat\":\"queue\",\"ph\":\"X\",\"ts\":0.000,\"dur\":0.001,\"pid\":503,\"tid\":1"));
        assert!(json.contains("\"name\":\"queue_complete\",\"cat\":\"queue\",\"ph\":\"X\",\"ts\":0.000,\"dur\":0.001,\"pid\":503,\"tid\":2"));
        assert!(json.contains("\"args\":{\"qid\":3,\"cid\":17}"));
    }

    #[test]
    fn cluster_export_namespaces_pids_per_device() {
        let ev = |ch: u16, start: SimNs| TraceEvent {
            kind: TraceKind::FlashRead { channel: ch, lun: 0 },
            start,
            dur: 70_000,
        };
        let devices = [
            DeviceTrace { device: 0, events: vec![ev(2, 0)], dropped_spans: 0 },
            DeviceTrace { device: 1, events: vec![ev(2, 100)], dropped_spans: 3 },
            DeviceTrace { device: 3, events: vec![ev(0, 200)], dropped_spans: 0 },
        ];
        let json = chrome_trace_json_cluster(&devices, &[]);
        // Device 0 keeps the single-device layout; devices 1 and 3 shift
        // by the stride.
        assert!(json.contains("\"pid\":102,"), "{json}");
        assert!(json.contains("\"pid\":1102,"), "{json}");
        assert!(json.contains("\"pid\":3100,"), "{json}");
        assert!(
            json.contains("\"metadata\":{\"devices\":3,\"dropped_spans\":3}"),
            "overflow must be labelled in the export: {json}"
        );
        assert!(json.ends_with("\"displayTimeUnit\":\"ns\"}"), "{json}");
    }

    #[test]
    fn cluster_export_renders_router_spans_on_their_own_process() {
        let router = [
            RouterSpan { kind: RouterSpanKind::FanOut { shards: 4 }, start: 0, dur: 1_000 },
            RouterSpan { kind: RouterSpanKind::ShardWait { shard: 2 }, start: 1_000, dur: 50_000 },
            RouterSpan { kind: RouterSpanKind::Merge { shards: 4 }, start: 51_000, dur: 1_000 },
        ];
        let json = chrome_trace_json_cluster(&[], &router);
        assert!(
            json.contains(
                "{\"name\":\"router_fanout\",\"cat\":\"router\",\"ph\":\"X\",\
                 \"ts\":0.000,\"dur\":1.000,\"pid\":900,\"tid\":1,\"args\":{\"shards\":4}}"
            ),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"router_shard_wait\"") && json.contains("\"tid\":12,"),
            "shard 2's wait renders on tid 12: {json}"
        );
        assert!(
            json.contains("\"name\":\"router_merge\"") && json.contains("\"tid\":2,"),
            "{json}"
        );
        assert!(json.contains("\"metadata\":{\"devices\":0,\"dropped_spans\":0}"), "{json}");
    }

    #[test]
    fn cluster_export_with_one_unshifted_device_matches_single_device_events() {
        let evs = vec![
            TraceEvent { kind: TraceKind::NvmeTransfer { bytes: 80 }, start: 10, dur: 67 },
            TraceEvent { kind: TraceKind::PeJob { pe: 1, cycles: 9 }, start: 80, dur: 90 },
        ];
        let single = chrome_trace_json(&evs);
        let cluster = chrome_trace_json_cluster(
            &[DeviceTrace { device: 0, events: evs, dropped_spans: 0 }],
            &[],
        );
        // Same events section; the cluster export only appends metadata.
        let body = single.strip_suffix("],\"displayTimeUnit\":\"ns\"}").unwrap();
        assert!(cluster.starts_with(body), "single {single} vs cluster {cluster}");
    }
}
