//! A generic discrete-event calendar.
//!
//! Used by the NDP scan executor to interleave per-channel block
//! completions deterministically: ties are broken by insertion order, so
//! a simulation run is fully reproducible.

use crate::SimNs;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with stable FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(SimNs, u64)>>,
    payloads: Vec<Option<T>>,
    times: Vec<SimNs>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self { heap: BinaryHeap::new(), payloads: Vec::new(), times: Vec::new(), seq: 0 }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` to fire at `time`.
    pub fn push(&mut self, time: SimNs, payload: T) {
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((time, id)));
        self.payloads.push(Some(payload));
        self.times.push(time);
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimNs, T)> {
        let Reverse((time, id)) = self.heap.pop()?;
        let payload = self.payloads[id as usize].take().expect("event fired twice");
        Some((time, payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimNs> {
        self.heap.peek().map(|Reverse((t, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(5, 'x');
        assert_eq!(q.pop(), Some((5, 'x')));
        q.push(3, 'y');
        q.push(1, 'z');
        assert_eq!(q.pop(), Some((1, 'z')));
        q.push(2, 'w');
        assert_eq!(q.pop(), Some((2, 'w')));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
