//! The assembled Cosmos+ platform.
//!
//! Bundles flash, DRAM, the ARM core and the NVMe host link into one
//! device model ([`CosmosPlatform`]), parameterized by [`CosmosConfig`]
//! and by the firmware generation ([`FirmwareEra`]) — the paper notes its
//! measurements use an *updated* firmware that is ~10 % slower on GET
//! than the firmware of \[1\] ("traded some performance for higher
//! reliability").

use crate::cache::{BlockCache, CacheStats};
use crate::dram::Dram;
use crate::faults::{
    DeviceAdmission, DeviceFaultKind, DeviceFaultPlan, DeviceFaultState, DeviceFaultStats,
    FaultPlan, PeFaultState,
};
use crate::flash::{FlashArray, FlashConfig};
use crate::queue::{NvmeQueueConfig, NvmeQueues, CQE_BYTES, SQE_BYTES};
use crate::server::{BandwidthLink, Server};
use crate::trace::{TraceEvent, TraceKind, TraceRing};
use crate::{timing, SimNs};

/// Which firmware generation timing applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirmwareEra {
    /// The firmware used by Vinçon et al. \[1\].
    Original,
    /// The updated, reliability-hardened firmware of this work
    /// (per-operation overhead, see [`timing::FIRMWARE_OP_OVERHEAD_NS`]).
    Updated,
}

impl FirmwareEra {
    /// Fixed overhead added to every KV operation under this firmware.
    pub fn op_overhead_ns(self) -> SimNs {
        match self {
            FirmwareEra::Original => 0,
            FirmwareEra::Updated => timing::FIRMWARE_OP_OVERHEAD_NS,
        }
    }
}

/// Platform-level configuration.
#[derive(Debug, Clone)]
pub struct CosmosConfig {
    pub flash: FlashConfig,
    /// DRAM size in bytes (staging buffers only; the KV data lives in
    /// flash).
    pub dram_bytes: usize,
    pub firmware: FirmwareEra,
}

impl Default for CosmosConfig {
    fn default() -> Self {
        Self { flash: FlashConfig::default(), dram_bytes: 64 << 20, firmware: FirmwareEra::Updated }
    }
}

/// The simulated device.
pub struct CosmosPlatform {
    pub flash: FlashArray,
    pub dram: Dram,
    /// The ARM Cortex-A9 executing the firmware and software NDP.
    pub arm: Server,
    /// NVMe link to the host.
    pub nvme: BandwidthLink,
    pub firmware: FirmwareEra,
    /// PE-hang injection state; `None` (the default) means every
    /// hang roll answers "no" without drawing randomness.
    pe_faults: Option<PeFaultState>,
    /// Platform-level span ring (PE jobs, NVMe transfers, register
    /// accesses); `None` (the default) costs one branch per record site.
    trace: Option<TraceRing>,
    /// NVMe queue pairs for multi-tenant command admission; `None` (the
    /// default) keeps the serial one-op-at-a-time path untouched.
    queues: Option<NvmeQueues>,
    /// Device-DRAM block cache over SST data/index pages; `None` (the
    /// default) keeps every read on the flash path untouched.
    cache: Option<BlockCache>,
    /// Device-level fault plan (hang/power-cut/link-loss/slow); `None`
    /// (the default) admits every operation without counting anything.
    device_faults: Option<DeviceFaultState>,
}

impl CosmosPlatform {
    /// Build a platform from `cfg`.
    pub fn new(cfg: CosmosConfig) -> Self {
        Self {
            flash: FlashArray::new(cfg.flash),
            dram: Dram::new(cfg.dram_bytes),
            arm: Server::new(),
            nvme: BandwidthLink::new(timing::NVME_LINK_BW),
            firmware: cfg.firmware,
            pe_faults: None,
            trace: None,
            queues: None,
            cache: None,
            device_faults: None,
        }
    }

    /// Default platform (updated firmware, default geometry).
    pub fn default_platform() -> Self {
        Self::new(CosmosConfig::default())
    }

    /// Cost of the firmware writing `writes` and reading `reads` PE
    /// control registers (PS↔PL round trips).
    pub fn mmio_cost_ns(&self, writes: u64, reads: u64) -> SimNs {
        timing::cfg_overhead_ns(writes, reads)
    }

    /// ARM software filtering time for `bytes` of packed tuples.
    pub fn arm_filter_ns(&self, bytes: u64) -> SimNs {
        (bytes * timing::ARM_FILTER_PS_PER_BYTE).div_ceil(1000) + timing::ARM_SW_BLOCK_OVERHEAD_NS
    }

    /// Install a fault plan device-wide: flash, DRAM port and PE hangs
    /// all draw from independent streams of the plan's seed.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.flash.install_faults(plan);
        self.dram.install_faults(plan);
        self.pe_faults = Some(PeFaultState::from_plan(plan));
    }

    /// Drop all fault-injection state (flash damage already grown
    /// persists, matching physical reality).
    pub fn clear_faults(&mut self) {
        self.flash.clear_faults();
        self.dram.clear_faults();
        self.pe_faults = None;
    }

    /// Roll whether the next hardware block job hangs (DONE never set).
    /// The executor's watchdog decides what a hang *means*; the
    /// platform only decides deterministically *whether* it happens.
    pub fn roll_pe_hang(&mut self) -> bool {
        match &mut self.pe_faults {
            Some(f) if f.hang_p > 0.0 => {
                let hang = f.rng.gen_bool(f.hang_p);
                if hang {
                    f.hangs += 1;
                }
                hang
            }
            _ => false,
        }
    }

    /// PE hangs injected so far (zero when no plan is installed).
    pub fn pe_hangs(&self) -> u64 {
        self.pe_faults.as_ref().map_or(0, |f| f.hangs)
    }

    /// Install a *device-level* fault plan: after `plan.after_ops`
    /// admitted operations the whole device hangs, power-cuts, loses
    /// its NVMe link or turns slow. Replaces any previous device plan.
    pub fn install_device_fault(&mut self, plan: DeviceFaultPlan) {
        self.device_faults = Some(DeviceFaultState::from_plan(plan));
    }

    /// Drop the device-level fault state: models a device reset (Hang),
    /// a link re-establishment (LinkLoss) or the end of a throttling
    /// episode (Slow). Power restoration after a PowerCut also goes
    /// through here, but volatile state is the *caller's* to discard —
    /// the platform only stops rejecting operations.
    pub fn clear_device_fault(&mut self) {
        self.device_faults = None;
    }

    /// The device-fault kind currently in force (`None` before the trip
    /// or when no plan is installed).
    pub fn device_fault_active(&self) -> Option<DeviceFaultKind> {
        self.device_faults.as_ref().filter(|f| f.stats.tripped).map(|f| f.plan.kind)
    }

    /// Device-fault counters (`None` when no plan is installed).
    pub fn device_fault_stats(&self) -> Option<DeviceFaultStats> {
        self.device_faults.as_ref().map(|f| f.stats)
    }

    /// Admit one device operation against the installed device fault
    /// plan. Counts the operation, trips the fault once `after_ops`
    /// admissions have passed, and reports how the device answers:
    /// normally, slowly (gray failure) or not at all. With no plan
    /// installed this is a single branch and always admits.
    pub fn device_op_admit(&mut self) -> DeviceAdmission {
        let Some(f) = &mut self.device_faults else {
            return DeviceAdmission::Ok;
        };
        if !f.stats.tripped {
            if f.ops_seen < f.plan.after_ops {
                f.ops_seen += 1;
                f.stats.ops_admitted += 1;
                return DeviceAdmission::Ok;
            }
            f.stats.tripped = true;
        }
        match f.plan.kind {
            DeviceFaultKind::Slow { factor_x10 } => {
                f.stats.ops_slowed += 1;
                DeviceAdmission::Slow { factor_x10 }
            }
            kind => {
                f.stats.ops_rejected += 1;
                DeviceAdmission::Rejected(kind)
            }
        }
    }

    /// Enable device-wide event tracing: flash, DRAM and the platform
    /// ring each hold up to `capacity` spans.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.flash.enable_tracing(capacity);
        self.dram.enable_tracing(capacity);
        self.trace = Some(TraceRing::new(capacity));
    }

    /// Disable tracing everywhere and drop buffered spans.
    pub fn disable_tracing(&mut self) {
        self.flash.disable_tracing();
        self.dram.disable_tracing();
        self.trace = None;
    }

    /// Whether device-wide tracing is on.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Record one PE block job span (START → DONE).
    pub fn trace_pe_job(&mut self, pe: u32, start: SimNs, dur: SimNs, cycles: u64) {
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent { kind: TraceKind::PeJob { pe, cycles }, start, dur });
        }
    }

    /// Record one NVMe host-transfer span.
    pub fn trace_nvme(&mut self, start: SimNs, dur: SimNs, bytes: u64) {
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent { kind: TraceKind::NvmeTransfer { bytes }, start, dur });
        }
    }

    /// Record one batch of PE control-register accesses.
    pub fn trace_reg_access(&mut self, pe: u32, start: SimNs, dur: SimNs, writes: u64, reads: u64) {
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent { kind: TraceKind::RegAccess { pe, writes, reads }, start, dur });
        }
    }

    /// Drain every span recorded device-wide (flash + DRAM + platform),
    /// merged and sorted by start time. Empty when tracing is disabled.
    pub fn drain_trace(&mut self) -> Vec<TraceEvent> {
        let mut evs = self.flash.take_trace();
        evs.extend(self.dram.take_trace());
        if let Some(t) = &mut self.trace {
            evs.extend(t.drain());
        }
        evs.sort_by_key(|e| (e.start, e.dur));
        evs
    }

    /// Total spans evicted from any of the three rings.
    pub fn trace_dropped(&self) -> u64 {
        self.flash.trace_dropped()
            + self.dram.trace_dropped()
            + self.trace.as_ref().map_or(0, TraceRing::dropped)
    }

    /// Expose NVMe queue pairs with geometry `cfg`. Until this is
    /// called the platform has no queue state at all and every
    /// operation takes the serial path. While queues are enabled, every
    /// resource timeline runs in gap-aware backfill mode so commands of
    /// different clients overlap the way pipelined hardware would (the
    /// serial path's strictly monotone arrivals make the two modes
    /// coincide, so enabling queues never perturbs serial results).
    pub fn enable_queues(&mut self, cfg: NvmeQueueConfig) {
        self.queues = Some(NvmeQueues::new(cfg));
        self.set_backfill(true);
    }

    /// Drop all queue state (in-flight bookkeeping and counters) and
    /// return the resource timelines to the strict conveyor.
    pub fn disable_queues(&mut self) {
        self.queues = None;
        self.set_backfill(false);
    }

    /// Switch every device timeline (ARM, NVMe link, flash, DRAM)
    /// between the strict conveyor and gap-aware backfill.
    fn set_backfill(&mut self, on: bool) {
        self.arm.set_backfill(on);
        self.nvme.set_backfill(on);
        self.flash.set_backfill(on);
        self.dram.set_backfill(on);
    }

    /// Multi-PE job dispatch: a parallel scan plan expands several
    /// per-PE job chains that overlap in simulated time but are walked
    /// sequentially in host order, so every shared timeline must accept
    /// out-of-order arrivals while the chains are expanded — the same
    /// gap-aware backfill the queue engine uses. The off-switch is a
    /// no-op while queues are enabled (the queue run owns the mode and
    /// restores it when it ends).
    pub fn set_parallel_dispatch(&mut self, on: bool) {
        if !on && self.queues.is_some() {
            return;
        }
        self.set_backfill(on);
    }

    /// The queue pairs, when enabled.
    pub fn queues(&self) -> Option<&NvmeQueues> {
        self.queues.as_ref()
    }

    /// Spend `budget_bytes` of device DRAM on the block cache. Until
    /// this is called the platform has no cache state at all and every
    /// block read takes the flash path (byte-identical timing).
    pub fn enable_cache(&mut self, budget_bytes: usize) {
        self.cache = Some(BlockCache::new(budget_bytes));
    }

    /// Drop the cache and all its contents/counters.
    pub fn disable_cache(&mut self) {
        self.cache = None;
    }

    /// Whether the block cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The block cache, when enabled.
    pub fn cache(&self) -> Option<&BlockCache> {
        self.cache.as_ref()
    }

    /// Mutable access to the block cache, when enabled.
    pub fn cache_mut(&mut self) -> Option<&mut BlockCache> {
        self.cache.as_mut()
    }

    /// Cache counters, when enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(BlockCache::stats)
    }

    /// Invalidate every cached block of `sst_id` (no-op with the cache
    /// disabled). Returns how many entries were dropped.
    pub fn cache_evict_sst(&mut self, sst_id: u64) -> u64 {
        self.cache.as_mut().map_or(0, |c| c.evict_sst(sst_id))
    }

    /// Record one block-cache hit span (the DRAM burst itself is also
    /// recorded by the port as a `DramTransfer` with the `CacheHit`
    /// client).
    pub fn trace_cache_hit(
        &mut self,
        sst_id: u64,
        block: u64,
        bytes: u64,
        start: SimNs,
        dur: SimNs,
    ) {
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent { kind: TraceKind::CacheHit { sst_id, block, bytes }, start, dur });
        }
    }

    /// Admit command `cid` from `client` at `now`: pick the client's
    /// queue pair, stall if it is full, ring the SQ doorbell (one MMIO
    /// write) and fetch the 64 B SQE over the NVMe link. Returns
    /// `(qid, submit_ns, fetch_done_ns)`; the command's execution should
    /// be scheduled at `fetch_done_ns`.
    ///
    /// Panics when queues are not enabled — the caller owns the choice
    /// of serial vs. queued path.
    pub fn queue_submit(&mut self, client: u32, cid: u16, now: SimNs) -> (u16, SimNs, SimNs) {
        let (qid, submit) = {
            let q = self.queues.as_mut().expect("NVMe queues not enabled");
            let qid = q.pair_for_client(client);
            (qid, q.pair_mut(qid).admit(now))
        };
        let (_, fetch_done) = self.nvme.transfer(submit + timing::MMIO_WRITE_NS, SQE_BYTES);
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent {
                kind: TraceKind::QueueSubmit { qid, cid },
                start: submit,
                dur: fetch_done - submit,
            });
        }
        (qid, submit, fetch_done)
    }

    /// Post the completion of command `cid` on pair `qid`: DMA the 16 B
    /// CQE over the NVMe link after the command's execution finishes at
    /// `exec_done`, then the host acknowledges with a CQ-head doorbell
    /// write. Returns the completion time the host observes, and frees
    /// the command's queue slot as of that time.
    pub fn queue_complete(&mut self, qid: u16, cid: u16, exec_done: SimNs) -> SimNs {
        let (_, cqe_done) = self.nvme.transfer(exec_done, CQE_BYTES);
        let complete = cqe_done + timing::MMIO_WRITE_NS;
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent {
                kind: TraceKind::QueueComplete { qid, cid },
                start: exec_done,
                dur: complete - exec_done,
            });
        }
        let q = self.queues.as_mut().expect("NVMe queues not enabled");
        q.pair_mut(qid).commit(complete);
        complete
    }

    /// Admit a coalesced batch of `n` commands (consecutive cids from
    /// `first_cid`) from `client` at `now`: all `n` slots are claimed —
    /// stalling through the full-queue window exactly as `n` serial
    /// admissions would — but the host rings **one** SQ doorbell and the
    /// controller fetches all `n` SQEs in a single link burst. The
    /// `n - 1` saved doorbell writes are counted in
    /// [`QueueStats::coalesced_doorbells`].
    ///
    /// Returns `(qid, submit_ns, fetch_done_ns)` like
    /// [`queue_submit`](Self::queue_submit); with `n == 1` the timings
    /// are identical to the unbatched call.
    pub fn queue_submit_batch(
        &mut self,
        client: u32,
        first_cid: u16,
        n: u16,
        now: SimNs,
    ) -> (u16, SimNs, SimNs) {
        assert!(n >= 1, "a batch admits at least one command");
        let (qid, submit) = {
            let q = self.queues.as_mut().expect("NVMe queues not enabled");
            let qid = q.pair_for_client(client);
            let mut at = now;
            for _ in 0..n {
                at = q.pair_mut(qid).admit(at);
            }
            q.pair_mut(qid).note_coalesced(u64::from(n) - 1);
            (qid, at)
        };
        let (_, fetch_done) =
            self.nvme.transfer(submit + timing::MMIO_WRITE_NS, u64::from(n) * SQE_BYTES);
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent {
                kind: TraceKind::QueueSubmit { qid, cid: first_cid },
                start: submit,
                dur: fetch_done - submit,
            });
        }
        (qid, submit, fetch_done)
    }

    /// Post one completion belonging to a coalesced batch: the 16 B CQE
    /// still travels per command, but the CQ-head doorbell write-back is
    /// deferred to the batch's **last** completion — earlier commands
    /// complete at their CQE post itself (`last == false`), saving one
    /// MMIO write each (also counted in
    /// [`QueueStats::coalesced_doorbells`]). With `last == true` the
    /// timing matches [`queue_complete`](Self::queue_complete) exactly.
    pub fn queue_complete_batched(
        &mut self,
        qid: u16,
        cid: u16,
        exec_done: SimNs,
        last: bool,
    ) -> SimNs {
        let (_, cqe_done) = self.nvme.transfer(exec_done, CQE_BYTES);
        let complete = if last { cqe_done + timing::MMIO_WRITE_NS } else { cqe_done };
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent {
                kind: TraceKind::QueueComplete { qid, cid },
                start: exec_done,
                dur: complete - exec_done,
            });
        }
        let q = self.queues.as_mut().expect("NVMe queues not enabled");
        q.pair_mut(qid).commit(complete);
        if !last {
            q.pair_mut(qid).note_coalesced(1);
        }
        complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::PhysAddr;

    #[test]
    fn platform_assembles_with_defaults() {
        let p = CosmosPlatform::default_platform();
        assert_eq!(p.firmware, FirmwareEra::Updated);
        assert_eq!(p.dram.len(), 64 << 20);
        assert_eq!(p.flash.config().controllers, 2);
    }

    #[test]
    fn firmware_eras_differ_in_op_overhead() {
        assert_eq!(FirmwareEra::Original.op_overhead_ns(), 0);
        assert!(FirmwareEra::Updated.op_overhead_ns() > 0);
    }

    #[test]
    fn mmio_cost_matches_timing_table() {
        let p = CosmosPlatform::default_platform();
        assert_eq!(p.mmio_cost_ns(1, 0), timing::MMIO_WRITE_NS);
        assert_eq!(p.mmio_cost_ns(0, 1), timing::MMIO_READ_NS);
    }

    #[test]
    fn arm_filter_time_scales_with_bytes() {
        let p = CosmosPlatform::default_platform();
        let one_block = p.arm_filter_ns(32 * 1024);
        let two_blocks = p.arm_filter_ns(64 * 1024);
        assert!(two_blocks > one_block);
        // ~8.15 ns per byte: a 32 KiB block costs ~267 µs + overhead.
        assert!((267_000..268_500).contains(&one_block), "got {one_block}");
    }

    #[test]
    fn queue_submit_accounts_doorbell_and_sqe_fetch() {
        let mut p = CosmosPlatform::default_platform();
        p.enable_queues(crate::queue::NvmeQueueConfig { queues: 2, depth: 4 });
        let (qid, submit, fetch) = p.queue_submit(3, 0, 1_000);
        assert_eq!(qid, 1, "client 3 of 2 queues lands on pair 1");
        assert_eq!(submit, 1_000);
        // Doorbell MMIO then a 64 B SQE fetch on an idle link.
        let expected =
            submit + timing::MMIO_WRITE_NS + p.nvme.duration_for(crate::queue::SQE_BYTES);
        assert_eq!(fetch, expected);
        let done = p.queue_complete(qid, 0, fetch + 500_000);
        assert!(done > fetch + 500_000);
        let stats = p.queues().unwrap().stats_total();
        assert_eq!((stats.submitted, stats.completed), (1, 1));
    }

    #[test]
    fn batched_submit_of_one_matches_the_unbatched_call() {
        let mk = || {
            let mut p = CosmosPlatform::default_platform();
            p.enable_queues(crate::queue::NvmeQueueConfig { queues: 2, depth: 4 });
            p
        };
        let mut a = mk();
        let mut b = mk();
        let serial = a.queue_submit(3, 7, 1_000);
        let batched = b.queue_submit_batch(3, 7, 1, 1_000);
        assert_eq!(serial, batched);
        let done_a = a.queue_complete(serial.0, 7, serial.2 + 500);
        let done_b = b.queue_complete_batched(batched.0, 7, batched.2 + 500, true);
        assert_eq!(done_a, done_b);
        assert_eq!(b.queues().unwrap().stats_total().coalesced_doorbells, 0);
    }

    #[test]
    fn batched_submit_coalesces_doorbells_and_fetches_one_burst() {
        let mut p = CosmosPlatform::default_platform();
        p.enable_queues(crate::queue::NvmeQueueConfig { queues: 1, depth: 8 });
        let n: u16 = 4;
        let (qid, submit, fetch) = p.queue_submit_batch(0, 0, n, 2_000);
        assert_eq!(submit, 2_000, "slots were free: no stall");
        // One doorbell MMIO, then all four SQEs in a single link burst.
        let expected = submit
            + timing::MMIO_WRITE_NS
            + p.nvme.duration_for(u64::from(n) * crate::queue::SQE_BYTES);
        assert_eq!(fetch, expected);
        // Per-key completions: CQ doorbell only on the last.
        let mut last_done = 0;
        for i in 0..n {
            let done =
                p.queue_complete_batched(qid, i, fetch + 1_000 * u64::from(i) + 1_000, i + 1 == n);
            assert!(done > last_done, "completions stay monotone");
            last_done = done;
        }
        let stats = p.queues().unwrap().stats_total();
        assert_eq!((stats.submitted, stats.completed), (4, 4));
        // 3 saved SQ doorbells + 3 saved CQ-head write-backs.
        assert_eq!(stats.coalesced_doorbells, 6);
    }

    #[test]
    fn batched_submit_still_stalls_through_a_full_pair() {
        let mut p = CosmosPlatform::default_platform();
        p.enable_queues(crate::queue::NvmeQueueConfig { queues: 1, depth: 2 });
        // Fill both slots with completions far in the future.
        let (qid, _, f1) = p.queue_submit(0, 0, 0);
        p.queue_complete(qid, 0, f1 + 1_000_000);
        let (_, _, f2) = p.queue_submit(0, 1, 10);
        p.queue_complete(qid, 1, f2 + 2_000_000);
        // A batch of 2 stalls until the earliest completion frees a
        // slot; the freed slot then covers the second admission.
        let (_, submit, _) = p.queue_submit_batch(0, 2, 2, 20);
        let stats = p.queues().unwrap().stats_total();
        assert_eq!(stats.full_stalls, 1, "first admission stalled: {stats:?}");
        assert!(submit > 1_000_000, "batch admitted only after the earliest completion");
    }

    #[test]
    fn device_fault_admits_then_trips_then_rejects() {
        let mut p = CosmosPlatform::default_platform();
        assert_eq!(p.device_op_admit(), DeviceAdmission::Ok, "no plan admits for free");
        assert!(p.device_fault_stats().is_none());

        p.install_device_fault(DeviceFaultPlan { kind: DeviceFaultKind::Hang, after_ops: 2 });
        assert_eq!(p.device_op_admit(), DeviceAdmission::Ok);
        assert_eq!(p.device_op_admit(), DeviceAdmission::Ok);
        assert!(p.device_fault_active().is_none(), "not tripped yet");
        assert_eq!(p.device_op_admit(), DeviceAdmission::Rejected(DeviceFaultKind::Hang));
        assert_eq!(p.device_op_admit(), DeviceAdmission::Rejected(DeviceFaultKind::Hang));
        assert_eq!(p.device_fault_active(), Some(DeviceFaultKind::Hang));
        let s = p.device_fault_stats().unwrap();
        assert!(s.tripped);
        assert_eq!((s.ops_admitted, s.ops_rejected, s.ops_slowed), (2, 2, 0));

        p.clear_device_fault();
        assert_eq!(p.device_op_admit(), DeviceAdmission::Ok, "reset restores service");
        assert!(p.device_fault_active().is_none());
    }

    #[test]
    fn slow_device_fault_reports_the_gray_factor() {
        let mut p = CosmosPlatform::default_platform();
        p.install_device_fault(DeviceFaultPlan {
            kind: DeviceFaultKind::Slow { factor_x10: 35 },
            after_ops: 0,
        });
        assert_eq!(p.device_op_admit(), DeviceAdmission::Slow { factor_x10: 35 });
        assert_eq!(p.device_fault_active(), Some(DeviceFaultKind::Slow { factor_x10: 35 }));
        assert_eq!(p.device_fault_stats().unwrap().ops_slowed, 1);
    }

    #[test]
    fn end_to_end_block_staging_path() {
        // Flash page → DRAM staging is the executor's inner loop; check
        // the data path functions and the clock moves forward.
        let mut p = CosmosPlatform::default_platform();
        let a = PhysAddr { channel: 0, lun: 0, page: 0 };
        let done = p.flash.program_page(a, b"kv block", 0).unwrap();
        let (t, data) = p.flash.read_page(a, done).unwrap();
        let page = data.to_vec();
        let t2 = p.dram.timed_transfer(crate::dram::DramClient::FlashDma, page.len() as u64, t);
        p.dram.write(0x1000, &page);
        assert!(t2 > t);
        let mut buf = [0u8; 8];
        p.dram.read(0x1000, &mut buf);
        assert_eq!(&buf, b"kv block");
    }
}
