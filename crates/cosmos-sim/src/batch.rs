//! Key-list DMA descriptor for batched GET invocation.
//!
//! A batched GET hands the PE datapath **one** configuration and a DMA
//! descriptor naming N keys; the device walks the list and streams one
//! result per key back, so the per-invocation config-register tax
//! (Fig. 7a's ~45×) is paid once per batch instead of once per key.
//!
//! The wire format is deliberately dumb — a fixed 16-byte header
//! followed by packed little-endian `u64` keys — so the PL-side walker
//! is a counter and an adder, not a parser:
//!
//! ```text
//! struct nkl_key_list {           // little-endian, 8-byte aligned
//!     uint32_t magic;             // "NKL1" = 0x4E4B4C31
//!     uint16_t n_keys;            // 1 ..= NKL_MAX_KEYS
//!     uint16_t flags;             // reserved, must be 0
//!     uint64_t reserved;          // must be 0
//!     uint64_t key[n_keys];       // strictly no duplicates
//! };
//! ```
//!
//! One descriptor must fit a single 4 KiB DMA page (the walker never
//! crosses a page), which caps a batch at [`KeyListDescriptor::MAX_KEYS`]
//! keys. Validation is total: every malformed input is a typed
//! [`KeyListError`], never a panic — the descriptor arrives over DMA
//! from the host, so the device must treat it as hostile bytes.

use std::collections::HashSet;
use std::fmt;

/// Magic tag ("NKL1" in LE byte order) opening every key-list page.
pub const KEY_LIST_MAGIC: u32 = 0x4E4B_4C31;

/// Bytes in the fixed descriptor header.
pub const KEY_LIST_HEADER_BYTES: usize = 16;

/// DMA page the walker reads the descriptor from (it never crosses it).
pub const KEY_LIST_PAGE_BYTES: usize = 4096;

/// Why a key-list descriptor was rejected. Typed so the KV layer can
/// surface a configuration error instead of panicking on hostile bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyListError {
    /// A batch must name at least one key.
    Empty,
    /// More keys than fit one DMA page.
    OverCapacity { n: usize, max: usize },
    /// The same key appears twice — the walker would emit two results
    /// for one slot and the host could not attribute them.
    DuplicateKey { key: u64 },
    /// The byte buffer ends before the advertised key list does.
    Truncated { need: usize, len: usize },
    /// The header does not open with [`KEY_LIST_MAGIC`].
    BadMagic { found: u32 },
    /// The reserved flags/pad fields carry non-zero bits.
    ReservedBits,
}

impl fmt::Display for KeyListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyListError::Empty => write!(f, "key list is empty (a batch needs >= 1 key)"),
            KeyListError::OverCapacity { n, max } => {
                write!(f, "key list has {n} keys but one DMA page holds at most {max}")
            }
            KeyListError::DuplicateKey { key } => {
                write!(f, "key {key} appears twice in the key list")
            }
            KeyListError::Truncated { need, len } => {
                write!(f, "key list truncated: need {need} bytes, got {len}")
            }
            KeyListError::BadMagic { found } => {
                write!(f, "key list magic {found:#010x} != {KEY_LIST_MAGIC:#010x} (\"NKL1\")")
            }
            KeyListError::ReservedBits => {
                write!(f, "key list reserved fields must be zero")
            }
        }
    }
}

impl std::error::Error for KeyListError {}

/// A validated key-list DMA descriptor: the batch of keys one PE
/// configuration serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyListDescriptor {
    keys: Vec<u64>,
}

impl KeyListDescriptor {
    /// Most keys one descriptor can carry: what is left of a 4 KiB DMA
    /// page after the 16-byte header, 8 bytes per key.
    pub const MAX_KEYS: usize = (KEY_LIST_PAGE_BYTES - KEY_LIST_HEADER_BYTES) / 8;

    /// Build a descriptor, validating batch shape: non-empty, within
    /// page capacity, no duplicate keys. Order is preserved — the
    /// walker streams results back in list order.
    pub fn new(keys: &[u64]) -> Result<Self, KeyListError> {
        if keys.is_empty() {
            return Err(KeyListError::Empty);
        }
        if keys.len() > Self::MAX_KEYS {
            return Err(KeyListError::OverCapacity { n: keys.len(), max: Self::MAX_KEYS });
        }
        let mut seen = HashSet::with_capacity(keys.len());
        for &k in keys {
            if !seen.insert(k) {
                return Err(KeyListError::DuplicateKey { key: k });
            }
        }
        Ok(Self { keys: keys.to_vec() })
    }

    /// The keys, in the order the walker serves them.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Number of keys in the batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// A descriptor is never empty ([`KeyListError::Empty`] guards it),
    /// but the conventional probe exists anyway.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Bytes the host DMAs to the device for this batch: header plus
    /// the packed key list.
    pub fn dma_bytes(&self) -> usize {
        KEY_LIST_HEADER_BYTES + 8 * self.keys.len()
    }

    /// Serialize to the wire format the PL walker reads.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.dma_bytes());
        out.extend_from_slice(&KEY_LIST_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.keys.len() as u16).to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags
        out.extend_from_slice(&0u64.to_le_bytes()); // reserved
        for &k in &self.keys {
            out.extend_from_slice(&k.to_le_bytes());
        }
        out
    }

    /// Parse and validate hostile bytes back into a descriptor. Every
    /// malformed shape is a typed error; this function cannot panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, KeyListError> {
        let header = bytes
            .get(..KEY_LIST_HEADER_BYTES)
            .ok_or(KeyListError::Truncated { need: KEY_LIST_HEADER_BYTES, len: bytes.len() })?;
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        if magic != KEY_LIST_MAGIC {
            return Err(KeyListError::BadMagic { found: magic });
        }
        let n = u16::from_le_bytes([header[4], header[5]]) as usize;
        let flags = u16::from_le_bytes([header[6], header[7]]);
        let reserved = u64::from_le_bytes([
            header[8], header[9], header[10], header[11], header[12], header[13], header[14],
            header[15],
        ]);
        if flags != 0 || reserved != 0 {
            return Err(KeyListError::ReservedBits);
        }
        if n == 0 {
            return Err(KeyListError::Empty);
        }
        if n > Self::MAX_KEYS {
            return Err(KeyListError::OverCapacity { n, max: Self::MAX_KEYS });
        }
        let need = KEY_LIST_HEADER_BYTES + 8 * n;
        let body = bytes
            .get(KEY_LIST_HEADER_BYTES..need)
            .ok_or(KeyListError::Truncated { need, len: bytes.len() })?;
        let mut keys = Vec::with_capacity(n);
        for chunk in body.chunks_exact(8) {
            keys.push(u64::from_le_bytes([
                chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
            ]));
        }
        Self::new(&keys)
    }

    /// The C layout of the wire format, byte for byte — snapshotted as
    /// a golden next to the generated Verilog/C headers so the
    /// host-visible ABI cannot drift silently.
    pub fn layout() -> String {
        format!(
            "// Key-list DMA descriptor, little-endian, one 4 KiB page.\n\
             // Walker contract: one PE configuration, n_keys results\n\
             // streamed back in key order.\n\
             #define NKL_MAGIC      0x{KEY_LIST_MAGIC:08X}u /* \"NKL1\" */\n\
             #define NKL_MAX_KEYS   {max}u\n\
             #define NKL_PAGE_BYTES {page}u\n\
             \n\
             struct nkl_key_list {{\n\
             \x20   uint32_t magic;    /* NKL_MAGIC                    */\n\
             \x20   uint16_t n_keys;   /* 1 ..= NKL_MAX_KEYS           */\n\
             \x20   uint16_t flags;    /* reserved, must be 0          */\n\
             \x20   uint64_t reserved; /* must be 0                    */\n\
             \x20   uint64_t key[];    /* n_keys packed LE keys,       */\n\
             \x20                      /* strictly no duplicates       */\n\
             }};\n",
            max = Self::MAX_KEYS,
            page = KEY_LIST_PAGE_BYTES,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_preserve_key_order() {
        let keys = [7u64, 3, u64::MAX, 0, 42];
        let d = KeyListDescriptor::new(&keys).unwrap();
        assert_eq!(d.len(), 5);
        assert_eq!(d.dma_bytes(), 16 + 40);
        let bytes = d.encode();
        assert_eq!(bytes.len(), d.dma_bytes());
        let back = KeyListDescriptor::decode(&bytes).unwrap();
        assert_eq!(back.keys(), &keys);
        assert_eq!(back, d);
    }

    #[test]
    fn capacity_is_one_dma_page() {
        // 16-byte header + 510 * 8 = 4096 exactly.
        assert_eq!(KeyListDescriptor::MAX_KEYS, 510);
        let max: Vec<u64> = (0..510).collect();
        let d = KeyListDescriptor::new(&max).unwrap();
        assert_eq!(d.dma_bytes(), KEY_LIST_PAGE_BYTES);
        let over: Vec<u64> = (0..511).collect();
        assert_eq!(
            KeyListDescriptor::new(&over),
            Err(KeyListError::OverCapacity { n: 511, max: 510 })
        );
    }

    #[test]
    fn empty_and_duplicate_batches_are_typed_errors() {
        assert_eq!(KeyListDescriptor::new(&[]), Err(KeyListError::Empty));
        assert_eq!(KeyListDescriptor::new(&[1, 2, 1]), Err(KeyListError::DuplicateKey { key: 1 }));
    }

    #[test]
    fn decode_rejects_every_malformed_shape_without_panicking() {
        let good = KeyListDescriptor::new(&[10, 20, 30]).unwrap().encode();

        // Truncated header, truncated body — at every possible length.
        for cut in 0..good.len() {
            let err = KeyListDescriptor::decode(&good[..cut]).unwrap_err();
            assert!(matches!(err, KeyListError::Truncated { .. }), "cut at {cut}: {err:?}");
        }

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(KeyListDescriptor::decode(&bad), Err(KeyListError::BadMagic { .. })));

        // Zero-length batch.
        let mut zero = good.clone();
        zero[4] = 0;
        zero[5] = 0;
        assert_eq!(KeyListDescriptor::decode(&zero[..16]), Err(KeyListError::Empty));

        // Advertised count over capacity.
        let mut over = good.clone();
        over[4..6].copy_from_slice(&1000u16.to_le_bytes());
        assert!(matches!(
            KeyListDescriptor::decode(&over),
            Err(KeyListError::OverCapacity { n: 1000, .. })
        ));

        // Non-zero reserved bits.
        let mut flags = good.clone();
        flags[6] = 1;
        assert_eq!(KeyListDescriptor::decode(&flags), Err(KeyListError::ReservedBits));
        let mut resv = good.clone();
        resv[12] = 0xAA;
        assert_eq!(KeyListDescriptor::decode(&resv), Err(KeyListError::ReservedBits));

        // Duplicate keys on the wire.
        let mut dup = good;
        let (a, b) = (16..24, 24..32);
        let first: Vec<u8> = dup[a.clone()].to_vec();
        dup[b].copy_from_slice(&first);
        let _ = &dup[a];
        assert!(matches!(
            KeyListDescriptor::decode(&dup),
            Err(KeyListError::DuplicateKey { key: 10 })
        ));
    }

    #[test]
    fn seeded_fuzz_decode_never_panics() {
        // Splitmix-style deterministic byte fuzzer: decode must return
        // Ok or a typed error for arbitrary garbage, never panic.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for round in 0..512 {
            let len = (next() % 96) as usize;
            let mut bytes = Vec::with_capacity(len);
            while bytes.len() < len {
                bytes.extend_from_slice(&next().to_le_bytes());
            }
            bytes.truncate(len);
            // Half the rounds, plant the right magic so deeper paths run.
            if round % 2 == 0 && bytes.len() >= 4 {
                bytes[..4].copy_from_slice(&KEY_LIST_MAGIC.to_le_bytes());
            }
            let _ = KeyListDescriptor::decode(&bytes);
        }
    }

    #[test]
    fn layout_snapshot_names_the_abi_constants() {
        let text = KeyListDescriptor::layout();
        assert!(text.contains("0x4E4B4C31"));
        assert!(text.contains("NKL_MAX_KEYS   510"));
        assert!(text.contains("struct nkl_key_list"));
    }
}
