//! Deterministic fault injection for the simulated device.
//!
//! The paper's premise is that GET/SCAN execute *on the device*, below
//! the host's error-handling stack — so the simulated platform must
//! survive what real NAND and real PEs produce, not just the happy path
//! the figure repro exercises. A [`FaultPlan`] describes, from one seed
//! and an optional explicit schedule, every fault class the resilience
//! layer in `nkv` is built against:
//!
//! * **transient read failures** — the read fails, an immediate retry
//!   succeeds (bus glitches, read-disturb near threshold);
//! * **persistent read failures** — grown bad pages whose data is gone
//!   until rewritten elsewhere (uncorrectable ECC);
//! * **correctable ECC** — the read succeeds after error correction,
//!   costing extra latency and signalling that the page is degrading
//!   (the read-repair trigger);
//! * **DRAM/AXI stall bursts** — the shared PS-DRAM port stops serving
//!   for a burst (refresh storms, arbitration pathologies);
//! * **PE hangs** — an accelerator never raises DONE (the watchdog /
//!   HW→SW degradation trigger);
//! * **power cut** — at a chosen program operation the in-flight page
//!   write is torn mid-page and every later flash op fails until the
//!   device "reboots".
//!
//! **Determinism.** All randomness comes from [`FaultRng`] (SplitMix64)
//! streams derived from `FaultPlan::seed`; the same plan over the same
//! operation sequence produces the same faults, so every chaos-test
//! failure is replayable from its seed.
//!
//! **Zero overhead when disabled.** Components store fault state as
//! `Option<…>` that defaults to `None`; the disabled path is a single
//! branch with no RNG draws and no timing charges, so simulated results
//! with faults off are byte-identical to a build without this module.

use crate::flash::PhysAddr;
use crate::SimNs;
use std::collections::HashMap;

/// SplitMix64: small, seedable, statistically solid. Local to the
/// simulator so fault injection needs no external dependency.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Decorrelated stream `stream` of a base seed (so flash, DRAM and
    /// PE faults draw independently from one plan seed).
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut r = Self::new(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        r.next_u64(); // one warm-up step decorrelates nearby seeds
        r
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (`bound > 0`).
    pub fn gen_u64(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

/// An explicitly scheduled flash fault (applied at install time, on top
/// of the random rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashFaultKind {
    /// The next `failures` reads of the page fail, then reads succeed
    /// again. A *retry* recovers transient faults; nothing else does.
    Transient { failures: u32 },
    /// Grown bad page: every read fails with uncorrectable ECC until the
    /// logical data is relocated. Rebooting does **not** clear it.
    Persistent,
    /// Reads succeed after ECC correction with a latency penalty, and
    /// the page's degradation counter grows (read-repair trigger).
    Correctable,
}

/// One entry of a [`FaultPlan`]'s explicit schedule.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledFault {
    pub addr: PhysAddr,
    pub kind: FlashFaultKind,
}

/// The full, seeded description of an injection campaign.
///
/// Probabilities are per-operation rates; `schedule` pins specific
/// faults to specific pages. `FaultPlan::default()` injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Master seed; every component derives an independent stream.
    pub seed: u64,
    /// Per-read probability of a fresh transient failure.
    pub transient_read_p: f64,
    /// Per-read probability the page is hit by a *correctable* ECC
    /// event (latency penalty + degradation count).
    pub correctable_p: f64,
    /// Per-read probability the page becomes a grown bad page
    /// (persistent uncorrectable failure).
    pub bad_growth_p: f64,
    /// Per-transfer probability the DRAM port stalls for a burst.
    pub dram_stall_p: f64,
    /// Stall burst duration bounds `(min_ns, max_ns)`.
    pub dram_stall_ns: (SimNs, SimNs),
    /// Per-block probability a PE hangs (DONE never observed).
    pub pe_hang_p: f64,
    /// Cut power during the `n`-th page program from install (0-based):
    /// that write is torn and all later flash ops fail until
    /// [`crate::FlashArray::reboot`].
    pub power_cut_at_write: Option<u64>,
    /// Faults pinned to specific pages, applied at install.
    pub schedule: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (identical to running with faults
    /// disabled, but exercises the enabled code path).
    pub fn quiet(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }
}

/// Extra LUN occupancy charged when a read needs ECC correction
/// (re-read + correction pipeline; order of an extra tR).
pub const ECC_CORRECTION_NS: SimNs = 60_000;

/// Counters the flash array keeps while faults are installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashFaultStats {
    /// Reads that failed transiently.
    pub transient_failures: u64,
    /// Reads that needed ECC correction (latency penalty paid).
    pub correctable_hits: u64,
    /// Pages that became grown bad pages (randomly or via schedule).
    pub grown_bad_pages: u64,
    /// Page programs torn by a power cut (0 or 1 per cut).
    pub torn_writes: u64,
    /// Flash operations rejected because power was out.
    pub rejected_while_cut: u64,
}

/// Per-array fault state, owned by `FlashArray` (cloned with it, so a
/// flash image carried across a simulated reboot keeps its grown-bad
/// and degradation history).
#[derive(Debug, Clone)]
pub struct FlashFaultState {
    pub(crate) rng: FaultRng,
    pub(crate) transient_read_p: f64,
    pub(crate) correctable_p: f64,
    pub(crate) bad_growth_p: f64,
    /// Remaining forced failures per page (transient faults).
    pub(crate) transient: HashMap<PhysAddr, u32>,
    /// Pages pinned to correctable-ECC behaviour by the schedule.
    pub(crate) sticky_correctable: HashMap<PhysAddr, ()>,
    /// ECC-correction count per page since install (degradation).
    pub(crate) correctable_counts: HashMap<PhysAddr, u32>,
    /// Programs remaining until the power cut strikes.
    pub(crate) writes_until_cut: Option<u64>,
    /// True once the cut struck and the device has not rebooted.
    pub(crate) power_is_cut: bool,
    pub(crate) stats: FlashFaultStats,
}

impl FlashFaultState {
    pub(crate) fn from_plan(plan: &FaultPlan) -> Self {
        Self {
            rng: FaultRng::stream(plan.seed, 1),
            transient_read_p: plan.transient_read_p,
            correctable_p: plan.correctable_p,
            bad_growth_p: plan.bad_growth_p,
            transient: HashMap::new(),
            sticky_correctable: HashMap::new(),
            correctable_counts: HashMap::new(),
            writes_until_cut: plan.power_cut_at_write,
            power_is_cut: false,
            stats: FlashFaultStats::default(),
        }
    }
}

/// Counters the DRAM port keeps while faults are installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramFaultStats {
    /// Transfers delayed by a stall burst.
    pub stalls: u64,
    /// Total stall time inserted.
    pub stall_ns_total: SimNs,
}

/// Per-port fault state, owned by `Dram`.
#[derive(Debug, Clone)]
pub struct DramFaultState {
    pub(crate) rng: FaultRng,
    pub(crate) stall_p: f64,
    pub(crate) stall_ns: (SimNs, SimNs),
    pub(crate) stats: DramFaultStats,
}

impl DramFaultState {
    pub(crate) fn from_plan(plan: &FaultPlan) -> Self {
        Self {
            rng: FaultRng::stream(plan.seed, 2),
            stall_p: plan.dram_stall_p,
            stall_ns: plan.dram_stall_ns,
            stats: DramFaultStats::default(),
        }
    }
}

/// A *device-level* fault class: the whole device (not one page, port
/// or PE) leaves service. These are the fleet-level fault domains a
/// multi-device cluster router is built against — one device hanging,
/// power-cutting or graying out must degrade the cluster, never take it
/// down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFaultKind {
    /// The device stops answering: every operation after the trip is
    /// swallowed (firmware wedge, controller lockup). A device reset
    /// ([`crate::CosmosPlatform::clear_device_fault`]) restores it with
    /// its state intact.
    Hang,
    /// The device loses power: every operation is rejected and all
    /// volatile state (memtables, caches, queue bookkeeping) is gone.
    /// Only the flash image survives; recovery must rebuild from it.
    PowerCut,
    /// The NVMe link to the host drops: commands cannot be submitted or
    /// completed. The device itself is fine — re-establishing the link
    /// restores service with state intact.
    LinkLoss,
    /// Gray failure: the device keeps answering, but every operation
    /// takes `factor_x10 / 10` times as long (thermal throttling, a
    /// dying capacitor bank, a flaky PHY retraining on every transfer).
    Slow { factor_x10: u32 },
}

/// A scheduled device-level fault: trip `kind` once `after_ops`
/// operations have been admitted (0 = the very next operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFaultPlan {
    pub kind: DeviceFaultKind,
    /// Operations admitted normally before the fault trips.
    pub after_ops: u64,
}

/// Counters the platform keeps while a device fault plan is installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceFaultStats {
    /// Whether the fault has tripped yet.
    pub tripped: bool,
    /// Operations admitted normally (before the trip).
    pub ops_admitted: u64,
    /// Operations rejected after a Hang/PowerCut/LinkLoss trip.
    pub ops_rejected: u64,
    /// Operations served slowly after a Slow trip.
    pub ops_slowed: u64,
}

/// Device-fault state, owned by `CosmosPlatform`. The platform only
/// *admits* operations ([`crate::CosmosPlatform::device_op_admit`]);
/// the cluster router decides what a rejection means (retry, failover,
/// quarantine).
#[derive(Debug, Clone)]
pub struct DeviceFaultState {
    pub(crate) plan: DeviceFaultPlan,
    pub(crate) ops_seen: u64,
    pub(crate) stats: DeviceFaultStats,
}

impl DeviceFaultState {
    pub(crate) fn from_plan(plan: DeviceFaultPlan) -> Self {
        Self { plan, ops_seen: 0, stats: DeviceFaultStats::default() }
    }
}

/// Outcome of admitting one operation on a device (see
/// [`crate::CosmosPlatform::device_op_admit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceAdmission {
    /// The device serves the operation normally.
    Ok,
    /// The device serves the operation `factor_x10 / 10` times slower
    /// (gray failure).
    Slow { factor_x10: u32 },
    /// The device does not serve the operation at all.
    Rejected(DeviceFaultKind),
}

/// PE-hang state, owned by `CosmosPlatform` (the PEs themselves live in
/// `nkv`'s executor; the platform decides *whether* the next block job
/// hangs, the executor decides what that means).
#[derive(Debug, Clone)]
pub struct PeFaultState {
    pub(crate) rng: FaultRng,
    pub(crate) hang_p: f64,
    /// Block jobs whose DONE was never observed.
    pub hangs: u64,
}

impl PeFaultState {
    pub(crate) fn from_plan(plan: &FaultPlan) -> Self {
        Self { rng: FaultRng::stream(plan.seed, 3), hang_p: plan.pe_hang_p, hangs: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_streams_are_decorrelated_and_deterministic() {
        let mut a1 = FaultRng::stream(7, 1);
        let mut a2 = FaultRng::stream(7, 1);
        let mut b = FaultRng::stream(7, 2);
        let xs: Vec<u64> = (0..4).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_respects_edge_probabilities() {
        let mut r = FaultRng::new(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn default_plan_is_quiet() {
        let p = FaultPlan::default();
        assert_eq!(p.transient_read_p, 0.0);
        assert_eq!(p.power_cut_at_write, None);
        assert!(p.schedule.is_empty());
    }

    #[test]
    fn device_fault_state_trips_after_the_scheduled_ops() {
        let mut st = DeviceFaultState::from_plan(DeviceFaultPlan {
            kind: DeviceFaultKind::Hang,
            after_ops: 2,
        });
        assert!(!st.stats.tripped);
        st.ops_seen += 2;
        st.stats.ops_admitted += 2;
        assert_eq!(st.plan.after_ops, 2);
        assert_eq!(st.stats.ops_admitted, 2);
    }
}
