//! Queueing primitives: FCFS servers and bandwidth links.
//!
//! All platform resources (flash channel buses, controller queues, the
//! DRAM port, the ARM core, the NVMe link) are modeled as single FCFS
//! servers: a request arriving at time `t` starts at `max(t, busy_until)`
//! and occupies the resource for its service time. This is the classic
//! "resource timeline" discrete-event style — deterministic and exact for
//! the pipelined bulk transfers that dominate the paper's workloads.

use crate::SimNs;

/// A single first-come-first-served resource.
#[derive(Debug, Clone, Copy, Default)]
pub struct Server {
    busy_until: SimNs,
    /// Total busy time accumulated (for utilization reporting).
    busy_total: SimNs,
}

impl Server {
    /// A server idle since time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a job arriving at `arrival` with the given service
    /// `duration`; returns `(start, finish)`.
    pub fn schedule(&mut self, arrival: SimNs, duration: SimNs) -> (SimNs, SimNs) {
        let start = arrival.max(self.busy_until);
        let finish = start + duration;
        self.busy_until = finish;
        self.busy_total += duration;
        (start, finish)
    }

    /// Earliest time a new job could start.
    pub fn available_at(&self) -> SimNs {
        self.busy_until
    }

    /// Total time this server has been busy.
    pub fn busy_total(&self) -> SimNs {
        self.busy_total
    }

    /// Utilization over the horizon `[0, now]`.
    pub fn utilization(&self, now: SimNs) -> f64 {
        if now == 0 {
            0.0
        } else {
            self.busy_total as f64 / now as f64
        }
    }
}

/// A server whose service time is proportional to the transferred bytes.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthLink {
    server: Server,
    /// Picoseconds per byte (ps keeps sub-ns rates exact in integers).
    ps_per_byte: u64,
    bytes_total: u64,
}

impl BandwidthLink {
    /// Create a link with the given throughput in bytes per second.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0);
        Self {
            server: Server::new(),
            ps_per_byte: (1e12 / bytes_per_sec).round() as u64,
            bytes_total: 0,
        }
    }

    /// Service duration for `bytes`.
    pub fn duration_for(&self, bytes: u64) -> SimNs {
        (bytes * self.ps_per_byte).div_ceil(1000)
    }

    /// Schedule a transfer of `bytes` arriving at `arrival`;
    /// returns `(start, finish)`.
    pub fn transfer(&mut self, arrival: SimNs, bytes: u64) -> (SimNs, SimNs) {
        self.bytes_total += bytes;
        let d = self.duration_for(bytes);
        self.server.schedule(arrival, d)
    }

    /// Earliest time a new transfer could start.
    pub fn available_at(&self) -> SimNs {
        self.server.available_at()
    }

    /// Total bytes moved over this link.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Total time this link has been busy serving transfers.
    pub fn busy_total(&self) -> SimNs {
        self.server.busy_total()
    }

    /// Link utilization over `[0, now]`.
    pub fn utilization(&self, now: SimNs) -> f64 {
        self.server.utilization(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_back_to_back() {
        let mut s = Server::new();
        assert_eq!(s.schedule(0, 10), (0, 10));
        assert_eq!(s.schedule(3, 5), (10, 15), "second job queues behind the first");
        assert_eq!(s.schedule(100, 5), (100, 105), "idle gap is not consumed");
        assert_eq!(s.busy_total(), 20);
    }

    #[test]
    fn utilization_accounts_busy_fraction() {
        let mut s = Server::new();
        s.schedule(0, 50);
        assert!((s.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(0), 0.0);
    }

    #[test]
    fn bandwidth_link_duration_is_proportional() {
        let mut l = BandwidthLink::new(200e6); // 200 MB/s
        assert_eq!(l.duration_for(200_000_000), 1_000_000_000);
        let (s0, f0) = l.transfer(0, 32 * 1024);
        assert_eq!(s0, 0);
        assert_eq!(f0, 163_840); // 32 KiB at 5 ns/B
        let (s1, _) = l.transfer(0, 1);
        assert_eq!(s1, f0, "transfers serialize on the link");
        assert_eq!(l.bytes_total(), 32 * 1024 + 1);
    }

    #[test]
    fn sub_ns_rates_accumulate_without_drift() {
        // 1.6 GB/s → 0.625 ns per byte; 8-byte beats must not round to 0.
        let mut l = BandwidthLink::new(1.6e9);
        let (_, f) = l.transfer(0, 8);
        assert_eq!(f, 5);
    }
}
