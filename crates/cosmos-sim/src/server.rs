//! Queueing primitives: FCFS servers and bandwidth links.
//!
//! All platform resources (flash channel buses, controller queues, the
//! DRAM port, the ARM core, the NVMe link) are modeled as single FCFS
//! servers: a request arriving at time `t` starts at the first point at
//! or after `t` where the resource is free for its whole service time.
//! This is the classic "resource timeline" discrete-event style —
//! deterministic and exact for the pipelined bulk transfers that
//! dominate the paper's workloads.
//!
//! The timeline can be *gap-aware*: reservations are kept as disjoint
//! busy intervals, and with [`Server::set_backfill`] enabled a job may
//! start in an idle gap that lies before a later reservation. The
//! default is the strict conveyor (`start = max(arrival, busy_until)`),
//! which every serial one-op-at-a-time code path uses — so all paper
//! figures are computed exactly as before, byte for byte. The queued
//! engine (`nkv::queue`) switches the device into backfill mode for the
//! duration of a multi-client run: there, command N+1 may need a
//! resource at a wall time earlier than command N's *future*
//! reservation on it — e.g. the ARM core is touched at the start
//! (memtable probe) and end (PE config writes) of every GET, and under
//! the strict conveyor each command's first ARM job would queue behind
//! its predecessor's last one even though the core sits idle in
//! between, serializing the whole device. Backfill restores the
//! overlap a real pipelined device has. Note that for monotonically
//! non-decreasing arrivals the two modes provably coincide: a usable
//! gap at or after a new arrival would require an earlier job to have
//! started later than the new arrival, contradicting monotonicity.

use crate::SimNs;
use std::collections::VecDeque;

/// Cap on remembered busy intervals per server. When exceeded, the
/// oldest interval is folded into a "no job before here" floor — the
/// distant past is treated as solid, which only forbids backfilling
/// into gaps nobody will reach and keeps memory bounded on long runs.
const MAX_TRACKED_INTERVALS: usize = 512;

/// A single first-come-first-served resource with a gap-aware timeline.
#[derive(Debug, Clone, Default)]
pub struct Server {
    /// Disjoint busy intervals `(start, end)`, sorted by start and
    /// coalesced when abutting.
    reserved: VecDeque<(SimNs, SimNs)>,
    /// No job may be placed before this time (pruned-history horizon).
    floor: SimNs,
    /// Total busy time accumulated (for utilization reporting).
    busy_total: SimNs,
    /// When set, jobs may start in idle gaps before later reservations;
    /// when clear (default), the strict `busy_until` conveyor applies.
    backfill: bool,
}

impl Server {
    /// A server idle since time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switch between the strict conveyor (`false`, default) and
    /// gap-aware backfill scheduling (`true`). Toggling is safe at any
    /// point: existing reservations stay as they are.
    pub fn set_backfill(&mut self, on: bool) {
        self.backfill = on;
    }

    /// Schedule a job arriving at `arrival` with the given service
    /// `duration`: the job starts at the first instant `>= arrival`
    /// where the resource is continuously free for `duration` (in
    /// backfill mode), or at `max(arrival, busy_until)` (strict mode).
    /// Returns `(start, finish)`.
    pub fn schedule(&mut self, arrival: SimNs, duration: SimNs) -> (SimNs, SimNs) {
        let mut start = arrival.max(self.floor);
        let mut idx = self.reserved.len();
        if self.backfill {
            for (i, &(s, e)) in self.reserved.iter().enumerate() {
                if e <= start {
                    continue;
                }
                if start + duration <= s {
                    idx = i;
                    break;
                }
                start = start.max(e);
            }
        } else {
            start = start.max(self.available_at());
        }
        let finish = start + duration;
        self.insert_at(idx, start, finish);
        self.busy_total += duration;
        while self.reserved.len() > MAX_TRACKED_INTERVALS {
            if let Some((_, e)) = self.reserved.pop_front() {
                self.floor = e;
            }
        }
        (start, finish)
    }

    /// Insert `(start, finish)` before index `idx`, coalescing with
    /// abutting neighbors so dense timelines stay short.
    fn insert_at(&mut self, idx: usize, start: SimNs, finish: SimNs) {
        if start == finish {
            return; // zero-length jobs reserve nothing
        }
        let joins_prev = idx > 0 && self.reserved[idx - 1].1 == start;
        let joins_next = idx < self.reserved.len() && self.reserved[idx].0 == finish;
        match (joins_prev, joins_next) {
            (true, true) => {
                self.reserved[idx - 1].1 = self.reserved[idx].1;
                self.reserved.remove(idx);
            }
            (true, false) => self.reserved[idx - 1].1 = finish,
            (false, true) => self.reserved[idx].0 = start,
            (false, false) => self.reserved.insert(idx, (start, finish)),
        }
    }

    /// Time after which the resource is free indefinitely (end of the
    /// last reservation). Earlier idle gaps may still accept jobs.
    pub fn available_at(&self) -> SimNs {
        self.reserved.back().map_or(self.floor, |&(_, e)| e)
    }

    /// Total time this server has been busy.
    pub fn busy_total(&self) -> SimNs {
        self.busy_total
    }

    /// Utilization over the horizon `[0, now]`.
    pub fn utilization(&self, now: SimNs) -> f64 {
        if now == 0 {
            0.0
        } else {
            self.busy_total as f64 / now as f64
        }
    }
}

/// A server whose service time is proportional to the transferred bytes.
#[derive(Debug, Clone)]
pub struct BandwidthLink {
    server: Server,
    /// Picoseconds per byte (ps keeps sub-ns rates exact in integers).
    ps_per_byte: u64,
    bytes_total: u64,
}

impl BandwidthLink {
    /// Create a link with the given throughput in bytes per second.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0);
        Self {
            server: Server::new(),
            ps_per_byte: (1e12 / bytes_per_sec).round() as u64,
            bytes_total: 0,
        }
    }

    /// Service duration for `bytes`.
    pub fn duration_for(&self, bytes: u64) -> SimNs {
        (bytes * self.ps_per_byte).div_ceil(1000)
    }

    /// Switch between strict conveyor and gap-aware backfill (see
    /// [`Server::set_backfill`]).
    pub fn set_backfill(&mut self, on: bool) {
        self.server.set_backfill(on);
    }

    /// Schedule a transfer of `bytes` arriving at `arrival`;
    /// returns `(start, finish)`.
    pub fn transfer(&mut self, arrival: SimNs, bytes: u64) -> (SimNs, SimNs) {
        self.bytes_total += bytes;
        let d = self.duration_for(bytes);
        self.server.schedule(arrival, d)
    }

    /// Time after which the link is free indefinitely.
    pub fn available_at(&self) -> SimNs {
        self.server.available_at()
    }

    /// Total bytes moved over this link.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Total time this link has been busy serving transfers.
    pub fn busy_total(&self) -> SimNs {
        self.server.busy_total()
    }

    /// Link utilization over `[0, now]`.
    pub fn utilization(&self, now: SimNs) -> f64 {
        self.server.utilization(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_back_to_back() {
        let mut s = Server::new();
        assert_eq!(s.schedule(0, 10), (0, 10));
        assert_eq!(s.schedule(3, 5), (10, 15), "second job queues behind the first");
        assert_eq!(s.schedule(100, 5), (100, 105), "idle gap is not consumed");
        assert_eq!(s.busy_total(), 20);
    }

    #[test]
    fn strict_mode_never_backfills() {
        let mut s = Server::new();
        s.schedule(0, 15); // [0, 15)
        s.schedule(100, 5); // [100, 105)
        assert_eq!(s.schedule(16, 2), (105, 107), "conveyor ignores the gap");
    }

    #[test]
    fn backfill_uses_idle_gaps_between_reservations() {
        let mut s = Server::new();
        s.set_backfill(true);
        s.schedule(0, 15); // [0, 15)
        s.schedule(100, 5); // [100, 105)
                            // A job arriving in the gap fits there instead of queueing
                            // behind the future reservation.
        assert_eq!(s.schedule(16, 2), (16, 18), "gap accepts the job");
        // One that does not fit before the next reservation queues
        // behind it.
        assert_eq!(s.schedule(20, 90), (105, 195), "oversized job skips the gap");
        assert_eq!(s.busy_total(), 15 + 5 + 2 + 90);
    }

    #[test]
    fn abutting_reservations_coalesce() {
        let mut s = Server::new();
        for i in 0..10 * MAX_TRACKED_INTERVALS as u64 {
            s.schedule(i * 10, 10);
        }
        // Back-to-back jobs merge into one interval, so dense timelines
        // never hit the pruning cap.
        assert_eq!(s.available_at(), 10 * MAX_TRACKED_INTERVALS as u64 * 10);
        assert_eq!(s.schedule(3, 4), (s.available_at() - 4, s.available_at()));
    }

    #[test]
    fn pruning_bounds_memory_and_stays_causal() {
        let mut s = Server::new();
        s.set_backfill(true);
        // Sparse jobs (gaps never abut) force interval growth past the
        // cap; the oldest gaps become unusable but scheduling after the
        // horizon is unaffected.
        for i in 0..2 * MAX_TRACKED_INTERVALS as u64 {
            s.schedule(i * 100, 1);
        }
        let tail = s.available_at();
        let (start, finish) = s.schedule(tail + 50, 1);
        assert_eq!((start, finish), (tail + 50, tail + 51));
    }

    #[test]
    fn utilization_accounts_busy_fraction() {
        let mut s = Server::new();
        s.schedule(0, 50);
        assert!((s.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(0), 0.0);
    }

    #[test]
    fn bandwidth_link_duration_is_proportional() {
        let mut l = BandwidthLink::new(200e6); // 200 MB/s
        assert_eq!(l.duration_for(200_000_000), 1_000_000_000);
        let (s0, f0) = l.transfer(0, 32 * 1024);
        assert_eq!(s0, 0);
        assert_eq!(f0, 163_840); // 32 KiB at 5 ns/B
        let (s1, _) = l.transfer(0, 1);
        assert_eq!(s1, f0, "transfers serialize on the link");
        assert_eq!(l.bytes_total(), 32 * 1024 + 1);
    }

    #[test]
    fn sub_ns_rates_accumulate_without_drift() {
        // 1.6 GB/s → 0.625 ns per byte; 8-byte beats must not round to 0.
        let mut l = BandwidthLink::new(1.6e9);
        let (_, f) = l.transfer(0, 8);
        assert_eq!(f, 5);
    }
}
