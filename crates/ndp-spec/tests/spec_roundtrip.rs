//! Differential round-trip property suite for the specification
//! frontend, plus a lexer/parser fuzz corpus.
//!
//! Round trip: for seeded random specifications `s`,
//! `parse(print(parse(s)))` must equal `parse(s)` modulo source spans —
//! the printer's output is used as the span-free normal form, so the
//! property checked is `print(parse(print(parse(s)))) ==
//! print(parse(s))`, which also pins the printer's idempotence.
//!
//! Fuzz: malformed inputs (a fixed corpus of classic lexer traps, every
//! truncation of a valid source, and seeded random mutants) must return
//! a graceful `Err` or `Ok` — never panic. A panic anywhere in
//! lexing/parsing fails the test process itself.

use ndp_spec::{parse, print_module};
use std::fmt::Write as _;

/// SplitMix64 (public-domain constants) — the suite must stay
/// dependency-free, so the generator carries its own tiny PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

const PRIMS: [&str; 10] = [
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t",
    "float", "double",
];

/// Random inter-token filler: spaces, newlines, comments.
fn filler(rng: &mut Rng) -> &'static str {
    match rng.below(5) {
        0 => " ",
        1 => "\n",
        2 => "  ",
        3 => " /* noise */ ",
        _ => "\t",
    }
}

/// Generate one random, *valid* specification source. Structs come
/// first in dependency order (named-struct fields only reference
/// earlier structs); parsers reference generated structs and real field
/// names.
fn random_spec(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let n_structs = 1 + rng.below(4) as usize;
    // (name, scalar field names) per struct, for mapping generation.
    let mut structs: Vec<(String, Vec<String>)> = Vec::new();
    let mut out = String::new();

    for si in 0..n_structs {
        let name = format!("S{si}");
        let n_lines = 1 + rng.below(5);
        let mut fields = Vec::new();
        let _ = write!(out, "typedef struct {{{}", filler(&mut rng));
        let mut fid = 0;
        for _ in 0..n_lines {
            let use_named = !structs.is_empty() && rng.chance(20);
            let ty: String = if use_named {
                structs[rng.below(structs.len() as u64) as usize].0.clone()
            } else {
                PRIMS[rng.below(PRIMS.len() as u64) as usize].to_string()
            };
            let n_decls = 1 + rng.below(3);
            let mut decls = Vec::new();
            for _ in 0..n_decls {
                let fname = format!("f{fid}");
                fid += 1;
                let n_dims = rng.below(3);
                let dims: String = (0..n_dims).map(|_| format!("[{}]", 1 + rng.below(4))).collect();
                if n_dims == 0 && !use_named {
                    fields.push(fname.clone());
                }
                decls.push(format!("{fname}{dims}"));
            }
            // Occasionally a string-annotated byte array field.
            if rng.chance(15) {
                let fname = format!("f{fid}");
                fid += 1;
                let _ = write!(
                    out,
                    "/* @string(prefix = {}) */ uint8_t {fname}[{}];{}",
                    [1u64, 2, 4, 8][rng.below(4) as usize], // prefixes are hardware words
                    8 + rng.below(24),
                    filler(&mut rng)
                );
            }
            let _ = write!(out, "{ty} {};{}", decls.join(", "), filler(&mut rng));
        }
        let _ = write!(out, "}} {name};{}", filler(&mut rng));
        structs.push((name, fields));
    }

    let n_parsers = rng.below(3);
    for pi in 0..n_parsers {
        let (in_name, in_fields) = &structs[rng.below(structs.len() as u64) as usize];
        let (out_name, out_fields) = &structs[rng.below(structs.len() as u64) as usize];
        let _ = write!(
            out,
            "/* @autogen define parser P{pi} with chunksize = {}, input = {in_name}, \
             output = {out_name}",
            [16u64, 32, 64][rng.below(3) as usize]
        );
        if rng.chance(50) {
            let _ = write!(out, ", stages = {}", 1 + rng.below(3));
        }
        if !in_fields.is_empty() && !out_fields.is_empty() && rng.chance(70) {
            let n_map = 1 + rng.below(3);
            let entries: Vec<String> = (0..n_map)
                .map(|_| {
                    format!(
                        "output.{} = input.{}",
                        out_fields[rng.below(out_fields.len() as u64) as usize],
                        in_fields[rng.below(in_fields.len() as u64) as usize]
                    )
                })
                .collect();
            let _ = write!(out, ", mapping = {{ {} }}", entries.join(", "));
        }
        if rng.chance(30) {
            let _ = write!(out, ", operators = {{ eq, ne, lt }}");
        }
        if rng.chance(20) {
            let _ = write!(out, ", aggregate = {{ count, sum }}");
        }
        let _ = write!(out, " */{}", filler(&mut rng));
    }
    out
}

#[test]
fn random_specs_round_trip_through_the_printer() {
    for seed in 0..256 {
        let src = random_spec(seed);
        let m1 = parse(&src)
            .unwrap_or_else(|e| panic!("generated spec must parse (seed {seed}):\n{src}\n{e}"));
        let printed = print_module(&m1);
        let m2 = parse(&printed).unwrap_or_else(|e| {
            panic!("printed spec must re-parse (seed {seed}):\n{printed}\n{e}")
        });
        let reprinted = print_module(&m2);
        assert_eq!(
            printed, reprinted,
            "parse(print(parse(s))) != parse(s) modulo spans (seed {seed}):\n{src}"
        );
        // Structure survives, not just text: counts and names match.
        assert_eq!(m1.structs.len(), m2.structs.len(), "seed {seed}");
        assert_eq!(m1.parsers.len(), m2.parsers.len(), "seed {seed}");
        for (a, b) in m1.structs.iter().zip(&m2.structs) {
            assert_eq!(a.name, b.name, "seed {seed}");
            assert_eq!(a.fields.len(), b.fields.len(), "seed {seed}");
        }
    }
}

/// Classic lexer/parser traps. Every entry must produce a graceful
/// `Err` — none may panic, loop forever or be silently accepted.
const MALFORMED: [&str; 18] = [
    "typedef struct { uint32_t x; } ",    // missing name + semicolon
    "typedef struct { uint32_t x; }",     // missing name
    "typedef struct { uint32_t ; } P;",   // missing declarator
    "typedef struct { notatype x; } P;",  // unknown type is Named — but unclosed:
    "typedef struct { uint32_t x[; } P;", // unterminated array dim
    "typedef struct { uint32_t x[999999999999999999999]; } P;", // overflowing literal
    "/* unterminated comment",            // EOF inside comment
    "/* @autogen define parser with input = A */", // missing parser name
    "/* @autogen define parser P with chunksize = , input = A, output = A */",
    "/* @autogen define parser P with mapping = { output.x input.y } */", // missing '='
    "/* @autogen define parser P with mapping = { output. = input.y } */",
    "/* @string(prefix = ) */",
    "typedef",
    "}}}}",
    ";;;;",
    "typedef struct { /* @string(prefix = 8) */ uint32_t x; } P; \u{0}",
    "typedef struct { uint32_t \u{211d}; } P;", // non-ASCII identifier start
    "@autogen define parser P",                 // annotation outside a comment
];

#[test]
fn malformed_sources_err_gracefully() {
    for (i, src) in MALFORMED.iter().enumerate() {
        // The call must return; most entries are hard errors. A few
        // prefixes of valid syntax may parse to an empty module — that
        // is graceful too; what is forbidden is a panic.
        let _ = parse(src).err().map(|e| e.to_string());
        let _ = i;
    }
    // Spot-check that real errors do surface as Err.
    assert!(parse("typedef struct { uint32_t x; }").is_err());
    assert!(parse("/* unterminated").is_err());
    assert!(parse("typedef struct { uint32_t x[bad]; } P;").is_err());
}

#[test]
fn every_truncation_of_a_valid_source_is_handled() {
    let src = random_spec(7);
    for end in 0..src.len() {
        if !src.is_char_boundary(end) {
            continue;
        }
        let _ = parse(&src[..end]); // must not panic
    }
}

#[test]
fn seeded_mutants_never_panic() {
    let base = random_spec(11);
    let bytes = base.as_bytes().to_vec();
    let mut rng = Rng::new(0xf0cc);
    for _ in 0..512 {
        let mut m = bytes.clone();
        // 1–3 single-byte printable-ASCII edits keep the input valid
        // UTF-8 while destroying token structure.
        for _ in 0..1 + rng.below(3) {
            let pos = rng.below(m.len() as u64) as usize;
            match rng.below(3) {
                0 => m[pos] = b' ' + (rng.below(95) as u8),
                1 => {
                    m.insert(pos, b"{}[]=,;./*"[rng.below(10) as usize]);
                }
                _ => {
                    m.remove(pos);
                }
            }
        }
        let s = String::from_utf8(m).expect("ASCII edits preserve UTF-8");
        let _ = parse(&s); // Ok or Err both fine; panics are not
    }
}
