//! Diagnostics for the specification frontend.

use crate::lexer::Span;
use std::fmt;

/// Result alias used throughout the frontend.
pub type SpecResult<T> = Result<T, SpecError>;

/// A frontend error with source location and a rendered excerpt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Location of the offending token (byte offset, line, column).
    pub span: Span,
    /// The source line containing the error, for rendering.
    pub source_line: String,
}

impl SpecError {
    /// Build an error at `span`, extracting the offending line from `source`.
    pub fn new(message: impl Into<String>, span: Span, source: &str) -> Self {
        let source_line = source.lines().nth(span.line.saturating_sub(1)).unwrap_or("").to_string();
        Self { message: message.into(), span, source_line }
    }

    /// Build an error without source context (used by sub-lexers that only
    /// see an annotation body).
    pub fn bare(message: impl Into<String>, span: Span) -> Self {
        Self { message: message.into(), span, source_line: String::new() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {} (line {}, column {})", self.message, self.span.line, self.span.col)?;
        if !self.source_line.is_empty() {
            writeln!(f, "  | {}", self.source_line)?;
            // Column is 1-based; the caret sits under the offending token.
            writeln!(f, "  | {}^", " ".repeat(self.span.col.saturating_sub(1)))?;
        }
        Ok(())
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_caret_under_offending_column() {
        let src = "typedef strct { } X;";
        let span = Span { offset: 8, line: 1, col: 9 };
        let err = SpecError::new("unknown keyword `strct`", span, src);
        let rendered = err.to_string();
        assert!(rendered.contains("unknown keyword"));
        assert!(rendered.contains("typedef strct"));
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(
            caret_line.find('^').unwrap(),
            4 + 8,
            "caret under column 9 after the `  | ` gutter"
        );
    }

    #[test]
    fn missing_line_yields_empty_excerpt() {
        let err = SpecError::new("eof", Span { offset: 0, line: 99, col: 1 }, "one line");
        assert_eq!(err.source_line, "");
    }
}
