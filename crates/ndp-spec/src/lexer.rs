//! Lexer for the C-style specification language.
//!
//! Ordinary `/* ... */` and `// ...` comments are skipped, with one
//! exception: block comments whose first non-whitespace token is `@autogen`
//! or `@string` are surfaced as [`TokenKind::Annotation`] tokens so the
//! parser can interpret them (the paper embeds all generator directives in
//! such comments, keeping the file a valid C header).

use crate::error::{SpecError, SpecResult};
use std::fmt;

/// A half-open source region identified by byte offset plus 1-based
/// line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

/// Lexical token categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`typedef`, `struct`, type names, field names).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `.`
    Dot,
    /// `<` — used by annotation comparators in `operators = {...}` sets.
    Lt,
    /// `>`
    Gt,
    /// `!`
    Bang,
    /// Annotation comment body (leading `@` kind tag included), e.g.
    /// `@autogen define parser P with ...`.
    Annotation(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "`{v}`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Annotation(_) => write!(f, "annotation comment"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token paired with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Streaming lexer over a source string.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Self { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    /// Tokenize the whole input, ending with a single [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> SpecResult<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn span(&self) -> Span {
        Span { offset: self.pos, line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Consume a `/* ... */` body, returning its text (without delimiters).
    fn block_comment_body(&mut self, start: Span) -> SpecResult<String> {
        // Caller consumed `/*`.
        let body_start = self.pos;
        loop {
            match (self.peek(), self.peek2()) {
                (Some(b'*'), Some(b'/')) => {
                    let body = self.src[body_start..self.pos].to_string();
                    self.bump();
                    self.bump();
                    return Ok(body);
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    return Err(SpecError::new("unterminated block comment", start, self.src));
                }
            }
        }
    }

    fn next_token(&mut self) -> SpecResult<Token> {
        loop {
            self.skip_whitespace();
            let span = self.span();
            let Some(b) = self.peek() else {
                return Ok(Token { kind: TokenKind::Eof, span });
            };
            match b {
                b'/' if self.peek2() == Some(b'/') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    let body = self.block_comment_body(span)?;
                    let trimmed = body.trim_start();
                    if trimmed.starts_with("@autogen") || trimmed.starts_with("@string") {
                        return Ok(Token {
                            kind: TokenKind::Annotation(trimmed.trim_end().to_string()),
                            span,
                        });
                    }
                    // Ordinary comment: skip and continue.
                }
                b'{' => return self.single(TokenKind::LBrace, span),
                b'}' => return self.single(TokenKind::RBrace, span),
                b'[' => return self.single(TokenKind::LBracket, span),
                b']' => return self.single(TokenKind::RBracket, span),
                b'(' => return self.single(TokenKind::LParen, span),
                b')' => return self.single(TokenKind::RParen, span),
                b';' => return self.single(TokenKind::Semi, span),
                b',' => return self.single(TokenKind::Comma, span),
                b'=' => return self.single(TokenKind::Eq, span),
                b'.' => return self.single(TokenKind::Dot, span),
                b'<' => return self.single(TokenKind::Lt, span),
                b'>' => return self.single(TokenKind::Gt, span),
                b'!' => return self.single(TokenKind::Bang, span),
                b'0'..=b'9' => return self.number(span),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => return self.ident(span),
                other => {
                    return Err(SpecError::new(
                        format!("unexpected character `{}`", other as char),
                        span,
                        self.src,
                    ));
                }
            }
        }
    }

    fn single(&mut self, kind: TokenKind, span: Span) -> SpecResult<Token> {
        self.bump();
        Ok(Token { kind, span })
    }

    fn number(&mut self, span: Span) -> SpecResult<Token> {
        let start = self.pos;
        // Hex literals are accepted for reference values in annotations.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x' | b'X')) {
            self.bump();
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')) {
                self.bump();
            }
            let text = &self.src[start + 2..self.pos];
            let value = u64::from_str_radix(text, 16).map_err(|_| {
                SpecError::new(format!("invalid hex literal `0x{text}`"), span, self.src)
            })?;
            return Ok(Token { kind: TokenKind::Int(value), span });
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        let value: u64 = text.parse().map_err(|_| {
            SpecError::new(format!("integer literal `{text}` out of range"), span, self.src)
        })?;
        Ok(Token { kind: TokenKind::Int(value), span })
    }

    fn ident(&mut self, span: Span) -> SpecResult<Token> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')) {
            self.bump();
        }
        let text = self.src[start..self.pos].to_string();
        Ok(Token { kind: TokenKind::Ident(text), span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_typedef() {
        let toks = kinds("typedef struct { uint32_t x; } P;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("typedef".into()),
                TokenKind::Ident("struct".into()),
                TokenKind::LBrace,
                TokenKind::Ident("uint32_t".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Ident("P".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let toks = kinds("// line\n/* block */ typedef");
        assert_eq!(toks, vec![TokenKind::Ident("typedef".into()), TokenKind::Eof]);
    }

    #[test]
    fn surfaces_autogen_annotation() {
        let toks = kinds("/* @autogen define parser P with input = A */");
        match &toks[0] {
            TokenKind::Annotation(body) => {
                assert!(body.starts_with("@autogen"));
                assert!(body.contains("input = A"));
            }
            other => panic!("expected annotation, got {other:?}"),
        }
    }

    #[test]
    fn surfaces_string_annotation() {
        let toks = kinds("/* @string(prefix = 4) */ uint8_t");
        assert!(matches!(&toks[0], TokenKind::Annotation(b) if b.starts_with("@string")));
        assert!(matches!(&toks[1], TokenKind::Ident(i) if i == "uint8_t"));
    }

    #[test]
    fn multiline_annotation_preserves_body() {
        let src = "/* @autogen define parser X with\n   chunksize = 32,\n   input = A */";
        let toks = kinds(src);
        match &toks[0] {
            TokenKind::Annotation(body) => assert!(body.contains("chunksize = 32")),
            other => panic!("expected annotation, got {other:?}"),
        }
    }

    #[test]
    fn lexes_numbers_decimal_and_hex() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("0xFF")[0], TokenKind::Int(255));
        assert_eq!(kinds("0x0")[0], TokenKind::Int(0));
    }

    #[test]
    fn rejects_unterminated_comment() {
        let err = Lexer::new("/* never closed").tokenize().unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn rejects_unknown_character() {
        let err = Lexer::new("typedef $").tokenize().unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.span.col, 9);
    }

    #[test]
    fn rejects_out_of_range_integer() {
        let err = Lexer::new("99999999999999999999999").tokenize().unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!(toks[0].span, Span { offset: 0, line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { offset: 4, line: 2, col: 3 });
    }

    #[test]
    fn punctuation_tokens() {
        let toks = kinds("{ } [ ] ( ) ; , = . < > !");
        assert_eq!(toks.len(), 14); // 13 punct + EOF
        assert_eq!(toks[12], TokenKind::Bang);
    }
}
