//! Specification frontend for the NDP accelerator generator.
//!
//! The paper's toolflow (Fig. 4) accepts *C-style type definitions* plus
//! `@autogen` annotations embedded in comments, so that a database engineer
//! can reuse application code to drive hardware generation:
//!
//! ```text
//! /* @autogen define parser Point3DTo2D with
//!    chunksize = 32, input = Point3D, output = Point2D,
//!    mapping = { output.x = input.y, output.y = input.z }
//! */
//! typedef struct { uint32_t x, y, z; } Point3D;
//! typedef struct { uint32_t x, y; } Point2D;
//! ```
//!
//! This crate lexes and parses that language into an AST ([`SpecModule`]).
//! Semantic analysis (type resolution, string handling, scalarization,
//! padding, layout) lives in the `ndp-ir` crate.
//!
//! Supported surface syntax:
//!
//! * `typedef struct { ... } Name;` with primitive fields
//!   (`uint8_t`..`uint64_t`, `int8_t`..`int64_t`, `float`, `double`),
//!   multi-declarators (`uint32_t x, y, z;`), (nested) arrays
//!   (`uint32_t m[2][3];`) and references to previously defined structs.
//! * `/* @string(prefix = N) */` immediately before a byte-array field marks
//!   it as string data: the first `N` bytes become a regular (filterable)
//!   prefix field, the rest is an opaque postfix (paper, Sec. IV-B).
//! * `/* @autogen define parser NAME with key = value, ... */` defines a PE.
//!   Recognized keys: `chunksize` (KiB per processed block), `input`,
//!   `output` (struct names), `mapping` (explicit output←input field paths),
//!   `stages` (number of chained filtering units, default 1) and
//!   `operators` (comparator operator set, default the paper's standard set).

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{
    FieldDecl, FieldPath, MappingEntry, ParserSpec, PrimTy, SpecModule, StructDef, TypeExpr,
};
pub use error::{SpecError, SpecResult};
pub use lexer::{Lexer, Span, Token, TokenKind};
pub use parser::parse_module;
pub use printer::print_module;

/// Convenience entry point: parse a complete specification source file.
pub fn parse(source: &str) -> SpecResult<SpecModule> {
    parse_module(source)
}
