//! Pretty-printer: render a [`SpecModule`] back to specification source.
//!
//! Used by tooling that manipulates specifications programmatically
//! (e.g. schema-evolution scripts that add a field and regenerate), and
//! as a parser correctness check: `parse(print(parse(s)))` must equal
//! `parse(s)` for every valid source (round-trip tests below and in the
//! repository-level property suite).

use crate::ast::{ParserSpec, SpecModule, StructDef, TypeExpr};
use std::fmt::Write as _;

/// Render a whole module (parsers first, then typedefs — the paper's
/// Fig. 4 ordering).
pub fn print_module(m: &SpecModule) -> String {
    let mut out = String::new();
    for p in &m.parsers {
        out.push_str(&print_parser(p));
        out.push('\n');
    }
    for s in &m.structs {
        out.push_str(&print_struct(s));
        out.push('\n');
    }
    out
}

/// Render one `@autogen define parser` annotation.
pub fn print_parser(p: &ParserSpec) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "/* @autogen define parser {} with\n   chunksize = {}, input = {}, output = {}",
        p.name, p.chunk_kib, p.input, p.output
    );
    if p.stages != 1 {
        let _ = write!(out, ",\n   stages = {}", p.stages);
    }
    if !p.mapping.is_empty() {
        let entries: Vec<String> = p
            .mapping
            .iter()
            .map(|e| format!("output.{} = input.{}", e.output.dotted(), e.input.dotted()))
            .collect();
        let _ = write!(out, ",\n   mapping = {{ {} }}", entries.join(", "));
    }
    if let Some(ops) = &p.operators {
        let _ = write!(out, ",\n   operators = {{ {} }}", ops.join(", "));
    }
    if let Some(aggs) = &p.aggregates {
        let _ = write!(out, ",\n   aggregate = {{ {} }}", aggs.join(", "));
    }
    out.push_str("\n*/\n");
    out
}

/// Render one struct typedef.
pub fn print_struct(s: &StructDef) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "typedef struct {{");
    for f in &s.fields {
        let ty = match &f.ty {
            TypeExpr::Prim(p) => p.c_name().to_string(),
            TypeExpr::Named(n) => n.clone(),
        };
        let dims: String = f.dims.iter().map(|d| format!("[{d}]")).collect();
        match f.string_prefix {
            Some(n) => {
                let _ = writeln!(out, "    /* @string(prefix = {n}) */ {ty} {}{dims};", f.name);
            }
            None => {
                let _ = writeln!(out, "    {ty} {}{dims};", f.name);
            }
        }
    }
    let _ = writeln!(out, "}} {};", s.name);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const FIG4: &str = "
        /* @autogen define parser Point3DTo2D with
           chunksize = 32, input = Point3D, output = Point2D,
           mapping = { output.x = input.y, output.y = input.z } */
        typedef struct { uint32_t x, y, z; } Point3D;
        typedef struct { uint32_t x, y; } Point2D;
    ";

    fn round_trip(src: &str) {
        let m1 = parse(src).expect("source parses");
        let printed = print_module(&m1);
        let m2 = parse(&printed)
            .unwrap_or_else(|e| panic!("printed source does not re-parse:\n{printed}\n{e}"));
        assert_eq!(normalize(&m1), normalize(&m2), "round trip changed semantics:\n{printed}");
    }

    /// Spans differ between original and printed sources; compare
    /// everything else.
    fn normalize(m: &crate::SpecModule) -> String {
        // The printer itself is a convenient span-free normal form.
        print_module(m)
    }

    #[test]
    fn fig4_round_trips() {
        round_trip(FIG4);
    }

    #[test]
    fn multi_declarators_are_split_but_equivalent() {
        let m = parse("typedef struct { uint32_t x, y; } P;").unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("uint32_t x;"));
        assert!(printed.contains("uint32_t y;"));
        round_trip("typedef struct { uint32_t x, y; } P;");
    }

    #[test]
    fn strings_arrays_and_nesting_round_trip() {
        round_trip(
            "
            typedef struct { uint32_t v[3]; } Vec3;
            typedef struct {
                Vec3 pos;
                int16_t temps[2][2];
                /* @string(prefix = 8) */ uint8_t title[56];
                double score;
            } Node;
            ",
        );
    }

    #[test]
    fn all_annotation_keys_round_trip() {
        round_trip(
            "
            /* @autogen define parser Full with chunksize = 64,
               input = A, output = B, stages = 3,
               mapping = { output.k = input.k },
               operators = { eq, ne, lt },
               aggregate = { count, sum } */
            typedef struct { uint64_t k; uint32_t v; } A;
            typedef struct { uint64_t k; } B;
            ",
        );
    }

    #[test]
    fn printed_defaults_are_stable() {
        // Default chunksize/stages print explicitly (chunksize) or not at
        // all (stages = 1), and re-parse to the same values.
        let m = parse(
            "/* @autogen define parser P with input = T, output = T */
             typedef struct { uint32_t x; } T;",
        )
        .unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("chunksize = 32"));
        assert!(!printed.contains("stages"));
        let m2 = parse(&printed).unwrap();
        assert_eq!(m2.parsers[0].chunk_kib, 32);
        assert_eq!(m2.parsers[0].stages, 1);
    }

    #[test]
    fn printer_is_idempotent() {
        let m = parse(FIG4).unwrap();
        let once = print_module(&m);
        let twice = print_module(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }
}
