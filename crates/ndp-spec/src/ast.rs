//! Abstract syntax tree of the specification language.

use crate::lexer::Span;
use std::fmt;

/// Primitive scalar types suitable for hardware processing
/// (paper, Sec. IV-B: integers and single/double-precision floats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimTy {
    U8,
    U16,
    U32,
    U64,
    I8,
    I16,
    I32,
    I64,
    F32,
    F64,
}

impl PrimTy {
    /// Width of the type in bits.
    pub fn bits(self) -> u32 {
        match self {
            PrimTy::U8 | PrimTy::I8 => 8,
            PrimTy::U16 | PrimTy::I16 => 16,
            PrimTy::U32 | PrimTy::I32 | PrimTy::F32 => 32,
            PrimTy::U64 | PrimTy::I64 | PrimTy::F64 => 64,
        }
    }

    /// Width of the type in bytes.
    pub fn bytes(self) -> u32 {
        self.bits() / 8
    }

    /// True for signed integer types.
    pub fn is_signed(self) -> bool {
        matches!(self, PrimTy::I8 | PrimTy::I16 | PrimTy::I32 | PrimTy::I64)
    }

    /// True for IEEE-754 floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, PrimTy::F32 | PrimTy::F64)
    }

    /// Parse a C type name (`uint32_t`, `float`, ...).
    pub fn from_c_name(name: &str) -> Option<Self> {
        Some(match name {
            "uint8_t" => PrimTy::U8,
            "uint16_t" => PrimTy::U16,
            "uint32_t" => PrimTy::U32,
            "uint64_t" => PrimTy::U64,
            "int8_t" => PrimTy::I8,
            "int16_t" => PrimTy::I16,
            "int32_t" => PrimTy::I32,
            "int64_t" => PrimTy::I64,
            "float" => PrimTy::F32,
            "double" => PrimTy::F64,
            _ => return None,
        })
    }

    /// The canonical C spelling of the type.
    pub fn c_name(self) -> &'static str {
        match self {
            PrimTy::U8 => "uint8_t",
            PrimTy::U16 => "uint16_t",
            PrimTy::U32 => "uint32_t",
            PrimTy::U64 => "uint64_t",
            PrimTy::I8 => "int8_t",
            PrimTy::I16 => "int16_t",
            PrimTy::I32 => "int32_t",
            PrimTy::I64 => "int64_t",
            PrimTy::F32 => "float",
            PrimTy::F64 => "double",
        }
    }
}

impl fmt::Display for PrimTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// A field's type: either a primitive or a reference to a named struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    Prim(PrimTy),
    Named(String),
}

/// One declared field (one declarator of a possibly multi-declarator line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Element type (before array dimensions are applied).
    pub ty: TypeExpr,
    /// Array dimensions, outermost first; empty for scalars.
    pub dims: Vec<usize>,
    /// If `Some(n)`, the field was annotated `@string(prefix = n)`:
    /// the first `n` bytes are a filterable prefix, the rest an opaque
    /// postfix (paper, Sec. IV-B).
    pub string_prefix: Option<u32>,
    /// Source location of the declarator.
    pub span: Span,
}

/// A `typedef struct { ... } Name;` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<FieldDecl>,
    pub span: Span,
}

/// A dotted field path as used in mapping annotations, e.g. `pos.x`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldPath(pub Vec<String>);

impl FieldPath {
    /// Join the path segments with dots.
    pub fn dotted(&self) -> String {
        self.0.join(".")
    }
}

impl fmt::Display for FieldPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dotted())
    }
}

/// One `output.path = input.path` entry of a mapping annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingEntry {
    pub output: FieldPath,
    pub input: FieldPath,
    pub span: Span,
}

/// An `@autogen define parser ...` processing-element specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParserSpec {
    /// PE name (`Point3DTo2D` in the paper's example).
    pub name: String,
    /// Block granularity in KiB at which data is loaded and processed
    /// (`chunksize = 32` means 32 KiB blocks, matching the paper).
    pub chunk_kib: u32,
    /// Name of the input struct type.
    pub input: String,
    /// Name of the output struct type.
    pub output: String,
    /// Explicit output←input field mappings (paper's case 3).
    pub mapping: Vec<MappingEntry>,
    /// Number of chained filtering units (extension over [1]; default 1).
    pub stages: u32,
    /// Comparator operator set; `None` selects the paper's standard set
    /// (`!=, ==, >, >=, <, <=, nop`).
    pub operators: Option<Vec<String>>,
    /// Aggregation reductions to generate hardware for (extension
    /// implementing the paper's outlook on compute-intensive NDP tasks);
    /// `None` generates no aggregation unit.
    pub aggregates: Option<Vec<String>>,
    /// Source location of the annotation.
    pub span: Span,
}

/// A parsed specification file: struct typedefs plus parser definitions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecModule {
    pub structs: Vec<StructDef>,
    pub parsers: Vec<ParserSpec>,
}

impl SpecModule {
    /// Look up a struct definition by name.
    pub fn find_struct(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Look up a parser specification by name.
    pub fn find_parser(&self, name: &str) -> Option<&ParserSpec> {
        self.parsers.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_widths() {
        assert_eq!(PrimTy::U8.bits(), 8);
        assert_eq!(PrimTy::I16.bits(), 16);
        assert_eq!(PrimTy::F32.bits(), 32);
        assert_eq!(PrimTy::F64.bits(), 64);
        assert_eq!(PrimTy::U64.bytes(), 8);
    }

    #[test]
    fn prim_classification() {
        assert!(PrimTy::I32.is_signed());
        assert!(!PrimTy::U32.is_signed());
        assert!(PrimTy::F64.is_float());
        assert!(!PrimTy::F64.is_signed());
    }

    #[test]
    fn c_name_round_trip() {
        for ty in [
            PrimTy::U8,
            PrimTy::U16,
            PrimTy::U32,
            PrimTy::U64,
            PrimTy::I8,
            PrimTy::I16,
            PrimTy::I32,
            PrimTy::I64,
            PrimTy::F32,
            PrimTy::F64,
        ] {
            assert_eq!(PrimTy::from_c_name(ty.c_name()), Some(ty));
        }
        assert_eq!(PrimTy::from_c_name("size_t"), None);
    }

    #[test]
    fn field_path_display() {
        let p = FieldPath(vec!["pos".into(), "x".into()]);
        assert_eq!(p.to_string(), "pos.x");
        assert_eq!(p.dotted(), "pos.x");
    }

    #[test]
    fn module_lookup() {
        let m = SpecModule {
            structs: vec![StructDef { name: "A".into(), fields: vec![], span: Span::default() }],
            parsers: vec![],
        };
        assert!(m.find_struct("A").is_some());
        assert!(m.find_struct("B").is_none());
        assert!(m.find_parser("A").is_none());
    }
}
