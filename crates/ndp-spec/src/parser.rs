//! Recursive-descent parser for the specification language.
//!
//! A specification file is a sequence of annotation comments and
//! `typedef struct { ... } Name;` definitions. `@string` annotations attach
//! to the *next* field declaration; `@autogen` annotations are free-standing
//! parser definitions (they conventionally precede the structs they
//! reference, as in the paper's Fig. 4, but any order is accepted —
//! resolution happens in `ndp-ir`).

use crate::ast::{
    FieldDecl, FieldPath, MappingEntry, ParserSpec, PrimTy, SpecModule, StructDef, TypeExpr,
};
use crate::error::{SpecError, SpecResult};
use crate::lexer::{Lexer, Span, Token, TokenKind};

/// Parse a complete specification source file into a [`SpecModule`].
pub fn parse_module(source: &str) -> SpecResult<SpecModule> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser { src: source, tokens, pos: 0 }.module()
}

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>, span: Span) -> SpecError {
        SpecError::new(msg, span, self.src)
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> SpecResult<Token> {
        let t = self.bump();
        if &t.kind == kind {
            Ok(t)
        } else {
            Err(self.err(format!("expected {what}, found {}", t.kind), t.span))
        }
    }

    fn expect_ident(&mut self, what: &str) -> SpecResult<(String, Span)> {
        let t = self.bump();
        match t.kind {
            TokenKind::Ident(name) => Ok((name, t.span)),
            other => Err(self.err(format!("expected {what}, found {other}"), t.span)),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> SpecResult<Span> {
        let (name, span) = self.expect_ident(&format!("keyword `{kw}`"))?;
        if name == kw {
            Ok(span)
        } else {
            Err(self.err(format!("expected keyword `{kw}`, found `{name}`"), span))
        }
    }

    fn expect_int(&mut self, what: &str) -> SpecResult<(u64, Span)> {
        let t = self.bump();
        match t.kind {
            TokenKind::Int(v) => Ok((v, t.span)),
            other => Err(self.err(format!("expected {what}, found {other}"), t.span)),
        }
    }

    fn module(&mut self) -> SpecResult<SpecModule> {
        let mut module = SpecModule::default();
        // A pending `@string` annotation that must attach to the next field;
        // at module level it can only legally appear inside a struct body,
        // so seeing one here is an error.
        loop {
            let t = self.peek().clone();
            match &t.kind {
                TokenKind::Eof => break,
                TokenKind::Annotation(body) => {
                    self.bump();
                    if body.starts_with("@autogen") {
                        module.parsers.push(self.parse_autogen(body, t.span)?);
                    } else {
                        return Err(self.err(
                            "@string annotation is only valid immediately before a struct field",
                            t.span,
                        ));
                    }
                }
                TokenKind::Ident(kw) if kw == "typedef" => {
                    module.structs.push(self.parse_typedef()?);
                }
                other => {
                    return Err(self
                        .err(format!("expected `typedef` or annotation, found {other}"), t.span));
                }
            }
        }
        self.check_duplicates(&module)?;
        Ok(module)
    }

    fn check_duplicates(&self, module: &SpecModule) -> SpecResult<()> {
        for (i, s) in module.structs.iter().enumerate() {
            if module.structs[..i].iter().any(|p| p.name == s.name) {
                return Err(self.err(format!("duplicate struct definition `{}`", s.name), s.span));
            }
        }
        for (i, p) in module.parsers.iter().enumerate() {
            if module.parsers[..i].iter().any(|q| q.name == p.name) {
                return Err(self.err(format!("duplicate parser definition `{}`", p.name), p.span));
            }
        }
        Ok(())
    }

    // ---- typedef struct { fields } Name ; ----

    fn parse_typedef(&mut self) -> SpecResult<StructDef> {
        let span = self.expect_keyword("typedef")?;
        self.expect_keyword("struct")?;
        self.expect_kind(&TokenKind::LBrace, "`{`")?;

        let mut fields = Vec::new();
        let mut pending_prefix: Option<(u32, Span)> = None;
        loop {
            let t = self.peek().clone();
            match &t.kind {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Annotation(body) if body.starts_with("@string") => {
                    self.bump();
                    if pending_prefix.is_some() {
                        return Err(
                            self.err("two @string annotations before the same field", t.span)
                        );
                    }
                    pending_prefix = Some((self.parse_string_annotation(body, t.span)?, t.span));
                }
                TokenKind::Annotation(_) => {
                    return Err(
                        self.err("@autogen annotations are not allowed inside a struct", t.span)
                    );
                }
                TokenKind::Ident(_) => {
                    let prefix = pending_prefix.take();
                    let mut decls = self.parse_field_line(prefix.map(|(n, _)| n))?;
                    if let Some((_, pspan)) = prefix {
                        // A prefix annotation must attach to exactly one
                        // byte-array declarator.
                        if decls.len() != 1 {
                            return Err(self.err(
                                "@string annotation must precede a single field declarator",
                                pspan,
                            ));
                        }
                    }
                    fields.append(&mut decls);
                }
                other => {
                    return Err(self.err(format!("expected field or `}}`, found {other}"), t.span));
                }
            }
        }
        if let Some((_, pspan)) = pending_prefix {
            return Err(self.err("@string annotation not followed by a field", pspan));
        }

        let (name, _) = self.expect_ident("struct name")?;
        self.expect_kind(&TokenKind::Semi, "`;`")?;

        if fields.is_empty() {
            return Err(self.err(format!("struct `{name}` has no fields"), span));
        }
        // Duplicate field names within one struct.
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(
                    self.err(format!("duplicate field `{}` in struct `{name}`", f.name), f.span)
                );
            }
        }
        Ok(StructDef { name, fields, span })
    }

    /// One `type a, b[4], c;` line, producing one [`FieldDecl`] per declarator.
    fn parse_field_line(&mut self, string_prefix: Option<u32>) -> SpecResult<Vec<FieldDecl>> {
        let (ty_name, ty_span) = self.expect_ident("type name")?;
        let ty = match PrimTy::from_c_name(&ty_name) {
            Some(p) => TypeExpr::Prim(p),
            None => TypeExpr::Named(ty_name.clone()),
        };
        let mut out = Vec::new();
        loop {
            let (name, span) = self.expect_ident("field name")?;
            let mut dims = Vec::new();
            while self.peek().kind == TokenKind::LBracket {
                self.bump();
                let (n, nspan) = self.expect_int("array length")?;
                if n == 0 {
                    return Err(self.err("array length must be positive", nspan));
                }
                dims.push(n as usize);
                self.expect_kind(&TokenKind::RBracket, "`]`")?;
            }
            if string_prefix.is_some() {
                // `@string` only makes sense on byte arrays (paper: byte
                // arrays flagged as string data).
                let is_byte_array = ty == TypeExpr::Prim(PrimTy::U8) && dims.len() == 1;
                if !is_byte_array {
                    return Err(self.err(
                        "@string annotation requires a one-dimensional uint8_t array",
                        ty_span,
                    ));
                }
            }
            out.push(FieldDecl { name, ty: ty.clone(), dims, string_prefix, span });
            match self.bump() {
                Token { kind: TokenKind::Comma, .. } => continue,
                Token { kind: TokenKind::Semi, .. } => break,
                Token { kind: other, span } => {
                    return Err(self.err(format!("expected `,` or `;`, found {other}"), span));
                }
            }
        }
        Ok(out)
    }

    // ---- annotations ----

    /// Parse `@string(prefix = N)`.
    fn parse_string_annotation(&self, body: &str, span: Span) -> SpecResult<u32> {
        // The annotation body was captured textually; strip the `@string`
        // tag and re-lex the argument list.
        let rest = body.trim_start().strip_prefix("@string").unwrap_or(body);
        let tokens = Lexer::new(rest)
            .tokenize()
            .map_err(|e| self.err(format!("in @string annotation: {}", e.message), span))?;
        let mut sub = Parser { src: rest, tokens, pos: 0 };
        sub.expect_kind(&TokenKind::LParen, "`(`")
            .map_err(|e| self.err(format!("in @string annotation: {}", e.message), span))?;
        sub.expect_keyword("prefix")
            .map_err(|e| self.err(format!("in @string annotation: {}", e.message), span))?;
        sub.expect_kind(&TokenKind::Eq, "`=`")
            .map_err(|e| self.err(format!("in @string annotation: {}", e.message), span))?;
        let (n, _) = sub
            .expect_int("prefix length")
            .map_err(|e| self.err(format!("in @string annotation: {}", e.message), span))?;
        sub.expect_kind(&TokenKind::RParen, "`)`")
            .map_err(|e| self.err(format!("in @string annotation: {}", e.message), span))?;
        if !matches!(n, 1 | 2 | 4 | 8) {
            return Err(self.err(
                format!("@string prefix must be 1, 2, 4 or 8 bytes (a hardware word), got {n}"),
                span,
            ));
        }
        Ok(n as u32)
    }

    /// Parse `@autogen define parser NAME with key = value, ...`.
    fn parse_autogen(&self, body: &str, span: Span) -> SpecResult<ParserSpec> {
        let rest = body.trim_start().strip_prefix("@autogen").unwrap_or(body);
        let tokens = Lexer::new(rest)
            .tokenize()
            .map_err(|e| self.err(format!("in @autogen annotation: {}", e.message), span))?;
        let mut sub = Parser { src: rest, tokens, pos: 0 };
        let spec = sub
            .autogen_body(span)
            .map_err(|e| self.err(format!("in @autogen annotation: {}", e.message), span))?;
        Ok(spec)
    }

    fn autogen_body(&mut self, span: Span) -> SpecResult<ParserSpec> {
        self.expect_keyword("define")?;
        self.expect_keyword("parser")?;
        let (name, _) = self.expect_ident("parser name")?;
        self.expect_keyword("with")?;

        let mut chunk_kib: Option<u32> = None;
        let mut input: Option<String> = None;
        let mut output: Option<String> = None;
        let mut mapping: Vec<MappingEntry> = Vec::new();
        let mut stages: Option<u32> = None;
        let mut operators: Option<Vec<String>> = None;
        let mut aggregates: Option<Vec<String>> = None;

        loop {
            let (key, kspan) = self.expect_ident("annotation key")?;
            self.expect_kind(&TokenKind::Eq, "`=`")?;
            match key.as_str() {
                "chunksize" => {
                    let (v, vspan) = self.expect_int("chunk size in KiB")?;
                    if v == 0 || v > 4096 {
                        return Err(self.err("chunksize must be in 1..=4096 KiB", vspan));
                    }
                    set_once(&mut chunk_kib, v as u32, "chunksize", kspan, self.src)?;
                }
                "input" => {
                    let (v, _) = self.expect_ident("input struct name")?;
                    set_once(&mut input, v, "input", kspan, self.src)?;
                }
                "output" => {
                    let (v, _) = self.expect_ident("output struct name")?;
                    set_once(&mut output, v, "output", kspan, self.src)?;
                }
                "stages" => {
                    let (v, vspan) = self.expect_int("stage count")?;
                    if v == 0 || v > 64 {
                        return Err(self.err("stages must be in 1..=64", vspan));
                    }
                    set_once(&mut stages, v as u32, "stages", kspan, self.src)?;
                }
                "mapping" => {
                    if !mapping.is_empty() {
                        return Err(self.err("duplicate key `mapping`", kspan));
                    }
                    mapping = self.parse_mapping_block()?;
                }
                "operators" => {
                    let ops = self.parse_operator_set()?;
                    set_once(&mut operators, ops, "operators", kspan, self.src)?;
                }
                "aggregate" => {
                    let aggs = self.parse_ident_set("aggregate")?;
                    set_once(&mut aggregates, aggs, "aggregate", kspan, self.src)?;
                }
                other => {
                    return Err(self.err(
                        format!(
                            "unknown annotation key `{other}` (expected chunksize, input, \
                             output, mapping, stages, operators or aggregate)"
                        ),
                        kspan,
                    ));
                }
            }
            match self.bump() {
                Token { kind: TokenKind::Comma, .. } => continue,
                Token { kind: TokenKind::Eof, .. } => break,
                Token { kind: other, span } => {
                    return Err(self.err(format!("expected `,` or end, found {other}"), span));
                }
            }
        }

        let input = input.ok_or_else(|| self.err("missing `input` key", span))?;
        let output = output.ok_or_else(|| self.err("missing `output` key", span))?;
        Ok(ParserSpec {
            name,
            chunk_kib: chunk_kib.unwrap_or(32),
            input,
            output,
            mapping,
            stages: stages.unwrap_or(1),
            operators,
            aggregates,
            span,
        })
    }

    /// Parse `{ output.x = input.y, ... }`.
    fn parse_mapping_block(&mut self) -> SpecResult<Vec<MappingEntry>> {
        self.expect_kind(&TokenKind::LBrace, "`{`")?;
        let mut entries = Vec::new();
        if self.peek().kind == TokenKind::RBrace {
            self.bump();
            return Ok(entries);
        }
        loop {
            let (out_path, espan) = self.parse_qualified_path("output")?;
            self.expect_kind(&TokenKind::Eq, "`=`")?;
            let (in_path, _) = self.parse_qualified_path("input")?;
            entries.push(MappingEntry { output: out_path, input: in_path, span: espan });
            match self.bump() {
                Token { kind: TokenKind::Comma, .. } => continue,
                Token { kind: TokenKind::RBrace, .. } => break,
                Token { kind: other, span } => {
                    return Err(self.err(format!("expected `,` or `}}`, found {other}"), span));
                }
            }
        }
        Ok(entries)
    }

    /// Parse `output.a.b` / `input.a.b`, checking and stripping the root.
    fn parse_qualified_path(&mut self, root: &str) -> SpecResult<(FieldPath, Span)> {
        let (head, span) = self.expect_ident(&format!("`{root}.<field>` path"))?;
        if head != root {
            return Err(
                self.err(format!("mapping paths must start with `{root}.`, found `{head}`"), span)
            );
        }
        let mut segs = Vec::new();
        while self.peek().kind == TokenKind::Dot {
            self.bump();
            let (seg, sspan) = self.expect_ident("path segment")?;
            // Array elements may be addressed as `coords[1]` in mappings;
            // scalarization renames them `coords_1`, so accept both forms.
            let mut seg = seg;
            while self.peek().kind == TokenKind::LBracket {
                self.bump();
                let (idx, _) = self.expect_int("array index")?;
                self.expect_kind(&TokenKind::RBracket, "`]`")?;
                seg = format!("{seg}_{idx}");
                let _ = sspan;
            }
            segs.push(seg);
        }
        if segs.is_empty() {
            return Err(self.err(format!("`{root}` path needs at least one field segment"), span));
        }
        Ok((FieldPath(segs), span))
    }

    /// Parse a `{ ident, ident, ... }` set (used by `aggregate`).
    fn parse_ident_set(&mut self, what: &str) -> SpecResult<Vec<String>> {
        self.expect_kind(&TokenKind::LBrace, "`{`")?;
        let mut out = Vec::new();
        loop {
            let (name, span) = self.expect_ident(&format!("{what} name"))?;
            if out.contains(&name) {
                return Err(self.err(format!("duplicate {what} `{name}`"), span));
            }
            out.push(name);
            match self.bump() {
                Token { kind: TokenKind::Comma, .. } => continue,
                Token { kind: TokenKind::RBrace, .. } => break,
                Token { kind: other, span } => {
                    return Err(self.err(format!("expected `,` or `}}`, found {other}"), span));
                }
            }
        }
        Ok(out)
    }

    /// Parse `{ ne, eq, gt, ... }` operator sets. Symbolic spellings
    /// (`!=`, `==`, `>`, `>=`, `<`, `<=`) are also accepted.
    fn parse_operator_set(&mut self) -> SpecResult<Vec<String>> {
        self.expect_kind(&TokenKind::LBrace, "`{`")?;
        let mut ops = Vec::new();
        loop {
            let t = self.bump();
            let op = match t.kind {
                TokenKind::Ident(name) => name,
                TokenKind::Bang => {
                    self.expect_kind(&TokenKind::Eq, "`=` after `!`")?;
                    "ne".to_string()
                }
                TokenKind::Eq => {
                    self.expect_kind(&TokenKind::Eq, "`=` after `=`")?;
                    "eq".to_string()
                }
                TokenKind::Gt => {
                    if self.peek().kind == TokenKind::Eq {
                        self.bump();
                        "ge".to_string()
                    } else {
                        "gt".to_string()
                    }
                }
                TokenKind::Lt => {
                    if self.peek().kind == TokenKind::Eq {
                        self.bump();
                        "le".to_string()
                    } else {
                        "lt".to_string()
                    }
                }
                other => {
                    return Err(self.err(format!("expected operator name, found {other}"), t.span));
                }
            };
            if ops.contains(&op) {
                return Err(self.err(format!("duplicate operator `{op}`"), t.span));
            }
            ops.push(op);
            match self.bump() {
                Token { kind: TokenKind::Comma, .. } => continue,
                Token { kind: TokenKind::RBrace, .. } => break,
                Token { kind: other, span } => {
                    return Err(self.err(format!("expected `,` or `}}`, found {other}"), span));
                }
            }
        }
        if ops.is_empty() {
            return Err(self.err("operator set must not be empty", Span::default()));
        }
        Ok(ops)
    }
}

fn set_once<T>(slot: &mut Option<T>, value: T, key: &str, span: Span, src: &str) -> SpecResult<()> {
    if slot.is_some() {
        return Err(SpecError::new(format!("duplicate key `{key}`"), span, src));
    }
    *slot = Some(value);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG4: &str = r#"
        /* @autogen define parser Point3DTo2D with
           chunksize = 32, input = Point3D, output = Point2D,
           mapping = { output.x = input.y, output.y = input.z }
        */
        typedef struct { uint32_t x, y, z; } Point3D;
        typedef struct { uint32_t x, y; } Point2D;
    "#;

    #[test]
    fn parses_paper_fig4_example() {
        let m = parse_module(FIG4).unwrap();
        assert_eq!(m.structs.len(), 2);
        assert_eq!(m.parsers.len(), 1);
        let p = &m.parsers[0];
        assert_eq!(p.name, "Point3DTo2D");
        assert_eq!(p.chunk_kib, 32);
        assert_eq!(p.input, "Point3D");
        assert_eq!(p.output, "Point2D");
        assert_eq!(p.stages, 1);
        assert_eq!(p.mapping.len(), 2);
        assert_eq!(p.mapping[0].output.dotted(), "x");
        assert_eq!(p.mapping[0].input.dotted(), "y");
        assert_eq!(p.mapping[1].output.dotted(), "y");
        assert_eq!(p.mapping[1].input.dotted(), "z");
    }

    #[test]
    fn multi_declarator_fields_expand() {
        let m = parse_module("typedef struct { uint32_t x, y, z; } P;").unwrap();
        let s = &m.structs[0];
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[1].name, "y");
        assert!(s.fields.iter().all(|f| f.ty == TypeExpr::Prim(PrimTy::U32)));
    }

    #[test]
    fn arrays_and_nested_struct_references() {
        let src = "
            typedef struct { uint32_t v[3]; } Vec3;
            typedef struct { Vec3 pos; uint8_t tag[2][4]; } Node;
        ";
        let m = parse_module(src).unwrap();
        let node = m.find_struct("Node").unwrap();
        assert_eq!(node.fields[0].ty, TypeExpr::Named("Vec3".into()));
        assert_eq!(node.fields[1].dims, vec![2, 4]);
    }

    #[test]
    fn string_prefix_annotation_attaches_to_next_field() {
        let src = "typedef struct {
            uint64_t id;
            /* @string(prefix = 4) */ uint8_t title[32];
        } Paper;";
        let m = parse_module(src).unwrap();
        let f = &m.structs[0].fields[1];
        assert_eq!(f.string_prefix, Some(4));
        assert_eq!(f.dims, vec![32]);
        assert_eq!(m.structs[0].fields[0].string_prefix, None);
    }

    #[test]
    fn string_prefix_requires_byte_array() {
        let src = "typedef struct { /* @string(prefix = 4) */ uint32_t x; } P;";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("uint8_t array"), "{}", err.message);
    }

    #[test]
    fn string_prefix_must_be_power_of_two_word() {
        let src = "typedef struct { /* @string(prefix = 3) */ uint8_t s[8]; } P;";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("1, 2, 4 or 8"));
    }

    #[test]
    fn dangling_string_annotation_is_rejected() {
        let src = "typedef struct { uint32_t x; /* @string(prefix = 4) */ } P;";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("not followed by a field"));
    }

    #[test]
    fn stages_and_operator_sets() {
        let src = "
            /* @autogen define parser F with input = A, output = A,
               stages = 3, operators = { eq, ne, gt, custom_popcnt } */
            typedef struct { uint32_t x; } A;
        ";
        let m = parse_module(src).unwrap();
        let p = &m.parsers[0];
        assert_eq!(p.stages, 3);
        assert_eq!(p.operators.as_deref().unwrap(), ["eq", "ne", "gt", "custom_popcnt"]);
    }

    #[test]
    fn symbolic_operator_spellings() {
        let src = "
            /* @autogen define parser F with input = A, output = A,
               operators = { !=, ==, >, >=, <, <= } */
            typedef struct { uint32_t x; } A;
        ";
        let m = parse_module(src).unwrap();
        assert_eq!(
            m.parsers[0].operators.as_deref().unwrap(),
            ["ne", "eq", "gt", "ge", "lt", "le"]
        );
    }

    #[test]
    fn mapping_array_index_form_is_scalarized() {
        let src = "
            /* @autogen define parser F with input = A, output = B,
               mapping = { output.x = input.coords[1] } */
            typedef struct { uint32_t coords[3]; } A;
            typedef struct { uint32_t x; } B;
        ";
        let m = parse_module(src).unwrap();
        assert_eq!(m.parsers[0].mapping[0].input.dotted(), "coords_1");
    }

    #[test]
    fn default_chunksize_is_32_kib() {
        let src = "
            /* @autogen define parser F with input = A, output = A */
            typedef struct { uint32_t x; } A;
        ";
        assert_eq!(parse_module(src).unwrap().parsers[0].chunk_kib, 32);
    }

    #[test]
    fn missing_input_key_is_an_error() {
        let src = "/* @autogen define parser F with output = A */
                   typedef struct { uint32_t x; } A;";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("missing `input`"));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let src = "/* @autogen define parser F with input = A, input = B, output = A */
                   typedef struct { uint32_t x; } A;";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("duplicate key `input`"));
    }

    #[test]
    fn unknown_key_rejected_with_hint() {
        let src = "/* @autogen define parser F with inptu = A, output = A */
                   typedef struct { uint32_t x; } A;";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("unknown annotation key `inptu`"));
    }

    #[test]
    fn duplicate_struct_rejected() {
        let src = "typedef struct { uint32_t x; } A; typedef struct { uint32_t y; } A;";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("duplicate struct"));
    }

    #[test]
    fn duplicate_field_rejected() {
        let src = "typedef struct { uint32_t x; uint64_t x; } A;";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("duplicate field `x`"));
    }

    #[test]
    fn empty_struct_rejected() {
        let err = parse_module("typedef struct { } A;").unwrap_err();
        assert!(err.message.contains("no fields"));
    }

    #[test]
    fn zero_length_array_rejected() {
        let err = parse_module("typedef struct { uint32_t x[0]; } A;").unwrap_err();
        assert!(err.message.contains("array length must be positive"));
    }

    #[test]
    fn mapping_paths_must_be_rooted() {
        let src = "/* @autogen define parser F with input = A, output = A,
                      mapping = { out.x = input.y } */
                   typedef struct { uint32_t x, y; } A;";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("must start with `output.`"));
    }

    #[test]
    fn empty_mapping_block_is_allowed() {
        let src = "/* @autogen define parser F with input = A, output = A, mapping = { } */
                   typedef struct { uint32_t x; } A;";
        assert!(parse_module(src).unwrap().parsers[0].mapping.is_empty());
    }

    #[test]
    fn duplicate_parser_rejected() {
        let src = "/* @autogen define parser F with input = A, output = A */
                   /* @autogen define parser F with input = A, output = A */
                   typedef struct { uint32_t x; } A;";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("duplicate parser"));
    }

    #[test]
    fn stages_bounds_enforced() {
        let src = "/* @autogen define parser F with input = A, output = A, stages = 0 */
                   typedef struct { uint32_t x; } A;";
        assert!(parse_module(src).is_err());
        let src = "/* @autogen define parser F with input = A, output = A, stages = 65 */
                   typedef struct { uint32_t x; } A;";
        assert!(parse_module(src).is_err());
    }

    #[test]
    fn error_reports_line_of_offense() {
        let src = "typedef struct { uint32_t x; } A;\ntypedef strct { uint32_t y; } B;";
        let err = parse_module(src).unwrap_err();
        assert_eq!(err.span.line, 2);
    }
}
