//! The framework facade: one call from data-format specification to all
//! generated artifacts.
//!
//! This crate is the paper's "toolflow" entry point. Given the C-style
//! specification a database engineer writes (Fig. 4), [`generate`]
//! produces, for every `@autogen define parser` annotation:
//!
//! * the elaborated PE configuration (`ndp-ir`),
//! * the hardware design and its Verilog (`ndp-hdl`, `ndp-pe`),
//! * the resource report (slices in-context / out-of-context, BRAM),
//! * the register map and the header-only C software interface
//!   (`ndp-swgen`, the paper's Fig. 6), and
//! * a ready-to-run PE simulator factory.
//!
//! The two-sided promise of the paper — "hardware development expertise
//! is no longer required" and "the dependency between the accelerator
//! design and the interface development is removed" — maps to this crate
//! producing both sides from one source, in one call.

use ndp_hdl::verilog::emit_design;
use ndp_ir::{IrError, PeConfig};
use ndp_pe::regs::RegisterMap;
use ndp_pe::template::{pe_design_opts, pe_report_opts, PeObservability, PeReport, PeVariant};
use ndp_pe::PeSim;
use ndp_spec::{SpecError, SpecModule};
use std::fmt;
use std::path::Path;

/// Everything generated for one PE.
#[derive(Debug, Clone)]
pub struct GeneratedPe {
    /// Elaborated configuration (layouts, transform, operators, stages).
    pub config: PeConfig,
    /// Synthesizable-style Verilog of the accelerator.
    pub verilog: String,
    /// The header-only C software interface.
    pub c_header: String,
    /// Register map shared by hardware and software.
    pub register_map: RegisterMap,
    /// Resource estimate (slices, BRAM).
    pub report: PeReport,
}

impl GeneratedPe {
    /// Instantiate an executable simulator of this PE.
    pub fn simulator(&self) -> PeSim {
        PeSim::new(self.config.clone())
    }

    /// File stem used when writing artifacts (`<name>.v`, `<name>.h`).
    pub fn file_stem(&self) -> String {
        self.config.name.to_lowercase()
    }
}

/// The complete output of one generation run.
#[derive(Debug, Clone)]
pub struct Artifacts {
    /// One entry per `@autogen define parser` annotation, in source order.
    pub pes: Vec<GeneratedPe>,
}

impl Artifacts {
    /// Look up a generated PE by parser name.
    pub fn pe(&self, name: &str) -> Option<&GeneratedPe> {
        self.pes.iter().find(|p| p.config.name == name)
    }

    /// Write all artifacts (`.v`, `.h`) into `dir`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for pe in &self.pes {
            std::fs::write(dir.join(format!("{}.v", pe.file_stem())), &pe.verilog)?;
            std::fs::write(dir.join(format!("{}.h", pe.file_stem())), &pe.c_header)?;
        }
        Ok(())
    }
}

/// Errors of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// Frontend (lexing/parsing) failure.
    Spec(SpecError),
    /// Contextual analysis / elaboration failure.
    Ir(IrError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::Spec(e) => write!(f, "{e}"),
            GenError::Ir(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GenError {}

impl From<SpecError> for GenError {
    fn from(e: SpecError) -> Self {
        GenError::Spec(e)
    }
}

impl From<IrError> for GenError {
    fn from(e: IrError) -> Self {
        GenError::Ir(e)
    }
}

/// Run the complete toolflow on a specification source.
pub fn generate(source: &str) -> Result<Artifacts, GenError> {
    generate_with_custom_ops(source, &[])
}

/// Like [`generate`], with user-registered custom operator names
/// (their semantics are bound on the PE simulator afterwards).
pub fn generate_with_custom_ops(source: &str, custom_ops: &[&str]) -> Result<Artifacts, GenError> {
    let module: SpecModule = ndp_spec::parse(source)?;
    let mut pes = Vec::with_capacity(module.parsers.len());
    for parser in &module.parsers {
        let config = ndp_ir::elaborate_with_custom_ops(&module, &parser.name, custom_ops)?;
        // Exported artifacts carry the full observability bank so that
        // Verilog, register map and C header stay mutually consistent
        // (the CNT_* window the header advertises really exists in RTL).
        let design = pe_design_opts(&config, PeVariant::Generated, PeObservability::Counters);
        let verilog = emit_design(&design);
        let c_header = ndp_swgen::generate_header(&config);
        let register_map = RegisterMap::for_config(&config);
        let report = pe_report_opts(&config, PeVariant::Generated, PeObservability::Counters);
        pes.push(GeneratedPe { config, verilog, c_header, register_map, report });
    }
    Ok(Artifacts { pes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_pe::regs::offsets;
    use ndp_pe::{MemBus, Mmio, PeDevice, VecMem};

    const FIG4: &str = "
        /* @autogen define parser Point3DTo2D with
           chunksize = 32, input = Point3D, output = Point2D,
           mapping = { output.x = input.y, output.y = input.z } */
        typedef struct { uint32_t x, y, z; } Point3D;
        typedef struct { uint32_t x, y; } Point2D;
    ";

    #[test]
    fn one_call_produces_all_artifacts() {
        let arts = generate(FIG4).unwrap();
        assert_eq!(arts.pes.len(), 1);
        let pe = arts.pe("Point3DTo2D").unwrap();
        assert!(pe.verilog.contains("module pe_Point3DTo2D"));
        assert!(pe.c_header.contains("POINT3DTO2D_START"));
        assert!(pe.report.slices_in_context > 0);
        assert_eq!(pe.register_map.stages, 1);
    }

    #[test]
    fn generated_simulator_is_functional() {
        let arts = generate(FIG4).unwrap();
        let mut pe = arts.pe("Point3DTo2D").unwrap().simulator();
        let mut mem = VecMem::new(1 << 16);
        let mut bytes = Vec::new();
        for v in [1u32, 2, 3, 4, 5, 6] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        mem.write_bytes(0, &bytes);
        pe.mmio_write(offsets::SRC_LEN, 24);
        pe.mmio_write(offsets::DST_ADDR_LO, 0x8000);
        pe.mmio_write(offsets::DST_CAPACITY, 4096);
        pe.mmio_write(offsets::START, 1);
        let res = pe.execute(&mut mem);
        assert_eq!(res.tuples_in, 2);
        assert_eq!(res.tuples_out, 2);
        let mut out = [0u8; 16];
        mem.read_bytes(0x8000, &mut out);
        // Projection: (y, z) of each point.
        assert_eq!(&out[0..4], &2u32.to_le_bytes());
        assert_eq!(&out[4..8], &3u32.to_le_bytes());
        assert_eq!(&out[8..12], &5u32.to_le_bytes());
        assert_eq!(&out[12..16], &6u32.to_le_bytes());
    }

    #[test]
    fn frontend_errors_surface_with_location() {
        let err = generate("typedef struct { uint32_t x } Broken;").unwrap_err();
        match err {
            GenError::Spec(e) => assert!(e.span.line >= 1),
            other => panic!("expected spec error, got {other}"),
        }
    }

    #[test]
    fn elaboration_errors_surface() {
        let err = generate(
            "/* @autogen define parser P with input = Missing, output = Missing */
             typedef struct { uint32_t x; } Other;",
        )
        .unwrap_err();
        assert!(matches!(err, GenError::Ir(IrError::UnknownStruct { .. })));
    }

    #[test]
    fn multiple_parsers_generate_in_source_order() {
        let src = "
            /* @autogen define parser A with input = T, output = T */
            /* @autogen define parser B with input = T, output = T, stages = 3 */
            typedef struct { uint64_t k; uint32_t v; } T;
        ";
        let arts = generate(src).unwrap();
        assert_eq!(arts.pes.len(), 2);
        assert_eq!(arts.pes[0].config.name, "A");
        assert_eq!(arts.pes[1].config.name, "B");
        assert_eq!(arts.pes[1].register_map.stages, 3);
        assert!(
            arts.pes[1].report.slices_in_context > arts.pes[0].report.slices_in_context,
            "3-stage PE must cost more"
        );
    }

    #[test]
    fn artifacts_write_files() {
        let arts = generate(FIG4).unwrap();
        let dir = std::env::temp_dir().join("ndp_core_test_artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        arts.write_to(&dir).unwrap();
        assert!(dir.join("point3dto2d.v").exists());
        assert!(dir.join("point3dto2d.h").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn custom_ops_flow_through_the_pipeline() {
        let src = "
            /* @autogen define parser F with input = T, output = T,
               operators = { eq, within_mask } */
            typedef struct { uint64_t bits; } T;
        ";
        assert!(generate(src).is_err(), "unregistered custom op must fail");
        let arts = generate_with_custom_ops(src, &["within_mask"]).unwrap();
        let pe = arts.pe("F").unwrap();
        assert!(pe.c_header.contains("#define F_OP_WITHIN_MASK 2"));
        let mut sim = pe.simulator();
        assert!(sim.bind_custom_op("within_mask", |_, a, b| a & !b == 0));
    }
}
