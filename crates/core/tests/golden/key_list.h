// Key-list DMA descriptor, little-endian, one 4 KiB page.
// Walker contract: one PE configuration, n_keys results
// streamed back in key order.
#define NKL_MAGIC      0x4E4B4C31u /* "NKL1" */
#define NKL_MAX_KEYS   510u
#define NKL_PAGE_BYTES 4096u

struct nkl_key_list {
    uint32_t magic;    /* NKL_MAGIC                    */
    uint16_t n_keys;   /* 1 ..= NKL_MAX_KEYS           */
    uint16_t flags;    /* reserved, must be 0          */
    uint64_t reserved; /* must be 0                    */
    uint64_t key[];    /* n_keys packed LE keys,       */
                       /* strictly no duplicates       */
};
