//! Golden-file snapshots of the generated artifacts.
//!
//! The full toolflow (`ndp_core::generate`) runs on the repository's
//! reference specification (`ndp_workload::spec::PAPER_REF_SPEC`) and
//! the emitted Verilog (`ndp-hdl`) and C header (`ndp-swgen`) of both
//! reference PE configurations — the paper-tuple PE and the
//! reference-edge PE — are compared byte-for-byte against the files in
//! `tests/golden/`.
//!
//! These artifacts are contracts: the register offsets in the header
//! and the module interfaces in the RTL are what firmware and
//! integration partners build against, so *any* textual drift must be a
//! conscious decision. When an intentional generator change alters the
//! output, regenerate the snapshots with:
//!
//! ```text
//! BLESS=1 cargo test -p ndp-core --test golden
//! ```
//!
//! then review the diff of `crates/core/tests/golden/` like any other
//! code change before committing it.

use std::env;
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against the committed snapshot `name`, or rewrite
/// the snapshot when `BLESS` is set.
fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if env::var_os("BLESS").is_some() {
        fs::create_dir_all(golden_dir()).expect("create golden dir");
        fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             `BLESS=1 cargo test -p ndp-core --test golden`",
            path.display()
        )
    });
    if expected != actual {
        // Point at the first diverging line rather than dumping both
        // multi-thousand-line artifacts.
        let line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or(expected.lines().count().min(actual.lines().count()), |l| l);
        panic!(
            "{name} drifted from its golden snapshot at line {} \
             (expected {:?}, got {:?}).\n\
             If the change is intentional, regenerate with \
             `BLESS=1 cargo test -p ndp-core --test golden` and review the diff.",
            line + 1,
            expected.lines().nth(line).unwrap_or("<eof>"),
            actual.lines().nth(line).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn reference_pe_artifacts_match_goldens() {
    let arts = ndp_core::generate(ndp_workload::spec::PAPER_REF_SPEC).expect("reference spec");
    for pe_name in [ndp_workload::spec::PAPER_PE, ndp_workload::spec::REF_PE] {
        let pe = arts.pe(pe_name).expect("reference PE generated");
        check(&format!("{}.v", pe.file_stem()), &pe.verilog);
        check(&format!("{}.h", pe.file_stem()), &pe.c_header);
    }
}

#[test]
fn key_list_descriptor_layout_matches_golden() {
    // The batched-GET key-list descriptor (DESIGN.md §15) is part of
    // the same host-visible ABI as the register maps above: firmware
    // DMAs this page verbatim, so its layout gets the same golden
    // treatment as the generated headers.
    check("key_list.h", &cosmos_sim::KeyListDescriptor::layout());
}

#[test]
fn generation_is_deterministic() {
    // The snapshot test is only meaningful if generation itself is a
    // pure function of the spec.
    let a = ndp_core::generate(ndp_workload::spec::PAPER_REF_SPEC).expect("spec");
    let b = ndp_core::generate(ndp_workload::spec::PAPER_REF_SPEC).expect("spec");
    for (x, y) in a.pes.iter().zip(&b.pes) {
        assert_eq!(x.verilog, y.verilog);
        assert_eq!(x.c_header, y.c_header);
    }
}
