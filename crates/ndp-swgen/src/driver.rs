//! The Rust twin of the generated C interface.
//!
//! [`PeDriver`] performs exactly the register-level protocol that the
//! generated header's `filter_sync`/`filter_async`/`wait_until_done`
//! functions perform on the device, against any [`PeDevice`]. It also
//! counts every register access ([`IoStats`]) — the platform simulator
//! turns those counts into PS↔PL configuration time, which is what makes
//! the GET operation *not* profit from hardware in Fig. 7(a).
//!
//! The [`DriverProfile`] distinguishes the generated firmware protocol
//! (flexible lengths, 64-bit reference values, result-size readback) from
//! the leaner fixed-function protocol of \[1\].

use ndp_ir::AggOp;
use ndp_pe::oracle::FilterRule;
use ndp_pe::regs::{agg_offsets, offsets, perf_offsets};
use ndp_pe::{BlockResult, MemBus, PeDevice};

/// Which firmware register protocol to speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverProfile {
    /// This work: writes SRC_LEN, DST_CAPACITY and 64-bit reference
    /// values; reads back RESULT_BYTES (partial blocks have variable
    /// result sizes).
    Generated,
    /// \[1\]: fixed 32 KiB blocks — no length/capacity configuration, only
    /// 32-bit reference values, result size derived from the counter.
    Baseline,
}

/// One filtering job: a source block, a destination buffer, and the
/// predicate chain.
#[derive(Debug, Clone)]
pub struct FilterJob {
    pub src: u64,
    pub len: u32,
    pub dst: u64,
    pub capacity: u32,
    pub rules: Vec<FilterRule>,
    /// Optional aggregation `(op, lane)` computed over the passing
    /// tuples (requires a PE generated with `aggregate = {...}`).
    pub aggregate: Option<(AggOp, u32)>,
}

impl FilterJob {
    /// Point an existing job descriptor at a new source block, keeping
    /// rules/destination/capacity. Firmware reuses one descriptor per
    /// stream this way instead of rebuilding it per block, which is what
    /// keeps the driver's rule cache warm across a scan.
    pub fn retarget(&mut self, src: u64, len: u32) {
        self.src = src;
        self.len = len;
    }
}

/// Register-access counters (inputs to the platform timing model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    pub reg_writes: u64,
    pub reg_reads: u64,
}

/// An in-flight job started with [`PeDriver::launch`]. Consumed by
/// [`PeDriver::complete`]; carries the launch-time register-access cost
/// so the completed [`JobResult`] accounts for the whole job.
#[derive(Debug)]
#[must_use = "a launched job must be completed"]
pub struct JobHandle {
    launch_io: IoStats,
}

/// Result of a completed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobResult {
    /// The PE-level execution statistics.
    pub block: BlockResult,
    /// Result bytes as reported through the register interface.
    pub result_bytes: u32,
    /// Tuples that passed, as reported through the register interface.
    pub tuples_out: u32,
    /// Aggregation accumulator (None if no aggregate was requested).
    pub aggregate: Option<u64>,
    /// Register accesses this job cost (configuration + readback).
    pub io: IoStats,
}

/// Snapshot of the PE's hardware performance counters (the Rust twin of
/// the header's `<pe>_perf_counters_t` + `<pe>_read_perf_counters`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfReadout {
    pub tuples_in: u32,
    pub tuples_out: u32,
    pub in_stall: u32,
    pub out_stall: u32,
    pub active: u32,
    pub idle: u32,
    pub load_beats: u32,
    pub store_beats: u32,
    /// Tuples dropped per filtering stage, index = stage.
    pub stage_drops: Vec<u32>,
}

/// Driver for one PE instance.
pub struct PeDriver<P: PeDevice> {
    pe: P,
    profile: DriverProfile,
    /// Lifetime register-access counters.
    pub total_io: IoStats,
    /// Register accesses spent on perf-counter readback/reset, tracked
    /// separately so observability never changes job-path configuration
    /// costs (the timing model's CFG_WRITES/READS constants).
    pub perf_io: IoStats,
    /// Register accesses performed by the PL-side key-list walker during
    /// batched (keyed) invocations. The walker re-points the descriptor
    /// registers itself, PL→PL at fabric speed, so this traffic never
    /// crosses the PS↔PL bridge the timing model prices — it is tracked
    /// here, apart from the ARM job path in [`total_io`](Self::total_io).
    pub walker_io: IoStats,
    /// Rules written during the last configuration (dirty-tracking:
    /// reconfiguring identical filter rules is skipped, like firmware
    /// that caches its last configuration).
    last_rules: Option<Vec<FilterRule>>,
    /// Whether the last launched job requested an aggregate.
    last_job_aggregated: bool,
}

impl<P: PeDevice> PeDriver<P> {
    /// Wrap a PE device.
    pub fn new(pe: P, profile: DriverProfile) -> Self {
        Self {
            pe,
            profile,
            total_io: IoStats::default(),
            perf_io: IoStats::default(),
            walker_io: IoStats::default(),
            last_rules: None,
            last_job_aggregated: false,
        }
    }

    /// Access the wrapped device.
    pub fn device(&mut self) -> &mut P {
        &mut self.pe
    }

    /// Profile in use.
    pub fn profile(&self) -> DriverProfile {
        self.profile
    }

    fn write(&mut self, io: &mut IoStats, off: u32, val: u32) {
        self.pe.mmio_write(off, val);
        io.reg_writes += 1;
    }

    fn read(&mut self, io: &mut IoStats, off: u32) -> u32 {
        io.reg_reads += 1;
        self.pe.mmio_read(off)
    }

    /// Configure the filter stages (like the header's `set_filter`).
    fn configure_rules(&mut self, io: &mut IoStats, rules: &[FilterRule]) {
        assert!(
            rules.len() <= self.pe.stages() as usize,
            "job has {} rules but the PE provides {} stages",
            rules.len(),
            self.pe.stages()
        );
        if self.last_rules.as_deref() == Some(rules) {
            return; // unchanged configuration is not rewritten
        }
        for (s, r) in rules.iter().enumerate() {
            let group = offsets::STAGE_BASE + s as u32 * offsets::STAGE_STRIDE;
            self.write(io, group + offsets::STAGE_FIELD, r.lane);
            self.write(io, group + offsets::STAGE_OP, r.op_code);
            self.write(io, group + offsets::STAGE_VAL_LO, r.value as u32);
            if self.profile == DriverProfile::Generated {
                self.write(io, group + offsets::STAGE_VAL_HI, (r.value >> 32) as u32);
            }
        }
        // Unused stages pass everything (nop).
        for s in rules.len()..self.pe.stages() as usize {
            let group = offsets::STAGE_BASE + s as u32 * offsets::STAGE_STRIDE;
            self.write(io, group + offsets::STAGE_OP, 0);
        }
        self.last_rules = Some(rules.to_vec());
    }

    /// Launch a job asynchronously (the header's `filter_async`):
    /// configure everything and write START. Returns the register
    /// accesses spent so far.
    pub fn filter_async(&mut self, job: &FilterJob) -> IoStats {
        self.last_job_aggregated = job.aggregate.is_some();
        let mut io = IoStats::default();
        self.configure_rules(&mut io, &job.rules);
        self.write(&mut io, offsets::SRC_ADDR_LO, job.src as u32);
        self.write(&mut io, offsets::SRC_ADDR_HI, (job.src >> 32) as u32);
        self.write(&mut io, offsets::DST_ADDR_LO, job.dst as u32);
        self.write(&mut io, offsets::DST_ADDR_HI, (job.dst >> 32) as u32);
        if self.profile == DriverProfile::Generated {
            self.write(&mut io, offsets::SRC_LEN, job.len);
            self.write(&mut io, offsets::DST_CAPACITY, job.capacity);
        }
        if let Some((op, lane)) = job.aggregate {
            let fc = offsets::STAGE_BASE + self.pe.stages() * offsets::STAGE_STRIDE;
            self.write(&mut io, fc + agg_offsets::AGG_FIELD, lane);
            self.write(&mut io, fc + agg_offsets::AGG_OP, op.code());
        }
        self.write(&mut io, offsets::START, 1);
        io
    }

    /// Complete a previously launched job (the header's
    /// `wait_until_done` plus result readback). In simulation the PE
    /// executes here; on the device this would poll STATUS.
    pub fn wait_until_done(&mut self, mem: &mut dyn MemBus, launch_io: IoStats) -> JobResult {
        let mut io = launch_io;
        let block = self.pe.execute(mem);
        let fc = offsets::STAGE_BASE + self.pe.stages() * offsets::STAGE_STRIDE;
        let aggregate = if self.last_job_aggregated {
            let lo = u64::from(self.read(&mut io, fc + agg_offsets::AGG_RESULT_LO));
            let hi = u64::from(self.read(&mut io, fc + agg_offsets::AGG_RESULT_HI));
            Some(lo | (hi << 32))
        } else {
            None
        };
        let (result_bytes, tuples_out) = match self.profile {
            DriverProfile::Generated => {
                let rb = self.read(&mut io, offsets::RESULT_BYTES);
                let to = self.read(&mut io, offsets::TUPLES_OUT);
                (rb, to)
            }
            DriverProfile::Baseline => {
                // [1] derives the result size from the pass counter
                // (fixed-size tuples): one register read.
                let map_counter = offsets::STAGE_BASE + self.pe.stages() * offsets::STAGE_STRIDE;
                let count = self.read(&mut io, map_counter);
                (block.result_bytes, count)
            }
        };
        self.total_io.reg_writes += io.reg_writes;
        self.total_io.reg_reads += io.reg_reads;
        JobResult { block, result_bytes, tuples_out, aggregate, io }
    }

    /// Synchronous filtering (the header's `filter_sync`).
    pub fn filter_sync(&mut self, mem: &mut dyn MemBus, job: &FilterJob) -> JobResult {
        let io = self.filter_async(job);
        self.wait_until_done(mem, io)
    }

    /// Launch a job and hand back an opaque in-flight handle (typed
    /// wrapper over [`filter_async`](Self::filter_async)'s launch-cost
    /// accounting, so callers cannot mix up the launch IoStats of two
    /// overlapping jobs).
    pub fn launch(&mut self, job: &FilterJob) -> JobHandle {
        JobHandle { launch_io: self.filter_async(job) }
    }

    /// Complete a job previously started with [`launch`](Self::launch).
    pub fn complete(&mut self, mem: &mut dyn MemBus, handle: JobHandle) -> JobResult {
        self.wait_until_done(mem, handle.launch_io)
    }

    /// Forget the cached filter configuration (e.g. after device reset).
    pub fn invalidate_config_cache(&mut self) {
        self.last_rules = None;
    }

    /// Launch one key of a batched invocation. The datapath was fully
    /// configured by the batch's first (cold) key; for every subsequent
    /// key the PL-side key-list walker re-points the descriptor
    /// registers itself — stage-0 reference value plus the source/
    /// destination window — at fabric speed, charged to
    /// [`walker_io`](Self::walker_io). The ARM's job-path cost collapses
    /// to a single START strobe (`timing::BATCH_KEY_CFG_WRITES == 1`).
    pub fn launch_keyed(&mut self, job: &FilterJob) -> JobHandle {
        self.last_job_aggregated = job.aggregate.is_some();
        let mut wio = IoStats::default();
        if let Some(r0) = job.rules.first() {
            let group = offsets::STAGE_BASE;
            self.write(&mut wio, group + offsets::STAGE_FIELD, r0.lane);
            self.write(&mut wio, group + offsets::STAGE_OP, r0.op_code);
            self.write(&mut wio, group + offsets::STAGE_VAL_LO, r0.value as u32);
            if self.profile == DriverProfile::Generated {
                self.write(&mut wio, group + offsets::STAGE_VAL_HI, (r0.value >> 32) as u32);
            }
            // Keep the rule cache coherent with what is now in the
            // registers, so a later cold launch dirty-tracks correctly.
            if let Some(cached) = self.last_rules.as_mut().and_then(|c| c.first_mut()) {
                *cached = *r0;
            }
        }
        self.write(&mut wio, offsets::SRC_ADDR_LO, job.src as u32);
        self.write(&mut wio, offsets::SRC_ADDR_HI, (job.src >> 32) as u32);
        self.write(&mut wio, offsets::DST_ADDR_LO, job.dst as u32);
        self.write(&mut wio, offsets::DST_ADDR_HI, (job.dst >> 32) as u32);
        if self.profile == DriverProfile::Generated {
            self.write(&mut wio, offsets::SRC_LEN, job.len);
            self.write(&mut wio, offsets::DST_CAPACITY, job.capacity);
        }
        self.walker_io.reg_writes += wio.reg_writes;
        self.walker_io.reg_reads += wio.reg_reads;
        // ARM side: one START strobe, nothing else.
        let mut io = IoStats::default();
        self.write(&mut io, offsets::START, 1);
        JobHandle { launch_io: io }
    }

    /// Complete a keyed launch. Per-key result sizes ride the result
    /// stream itself (the walker prefixes each record with its length),
    /// so the ARM reads nothing back (`timing::BATCH_KEY_CFG_READS ==
    /// 0`); the walker's own readback is charged to
    /// [`walker_io`](Self::walker_io).
    pub fn complete_keyed(&mut self, mem: &mut dyn MemBus, handle: JobHandle) -> JobResult {
        let io = handle.launch_io;
        let block = self.pe.execute(mem);
        let fc = offsets::STAGE_BASE + self.pe.stages() * offsets::STAGE_STRIDE;
        let mut wio = IoStats::default();
        let aggregate = if self.last_job_aggregated {
            let lo = u64::from(self.read(&mut wio, fc + agg_offsets::AGG_RESULT_LO));
            let hi = u64::from(self.read(&mut wio, fc + agg_offsets::AGG_RESULT_HI));
            Some(lo | (hi << 32))
        } else {
            None
        };
        let (result_bytes, tuples_out) = match self.profile {
            DriverProfile::Generated => {
                let rb = self.read(&mut wio, offsets::RESULT_BYTES);
                let to = self.read(&mut wio, offsets::TUPLES_OUT);
                (rb, to)
            }
            DriverProfile::Baseline => {
                let map_counter = offsets::STAGE_BASE + self.pe.stages() * offsets::STAGE_STRIDE;
                let count = self.read(&mut wio, map_counter);
                (block.result_bytes, count)
            }
        };
        self.walker_io.reg_writes += wio.reg_writes;
        self.walker_io.reg_reads += wio.reg_reads;
        self.total_io.reg_writes += io.reg_writes;
        self.total_io.reg_reads += io.reg_reads;
        JobResult { block, result_bytes, tuples_out, aggregate, io }
    }

    /// Read the hardware performance counters (the header's
    /// `read_perf_counters`). Register accesses are charged to
    /// [`perf_io`](Self::perf_io), not the job path.
    pub fn read_perf_counters(&mut self) -> PerfReadout {
        let fc = offsets::STAGE_BASE + self.pe.stages() * offsets::STAGE_STRIDE;
        let mut io = IoStats::default();
        let rd = |drv: &mut Self, io: &mut IoStats, rel: u32| drv.read(io, fc + rel);
        let out = PerfReadout {
            tuples_in: rd(self, &mut io, perf_offsets::CNT_TUPLES_IN),
            tuples_out: rd(self, &mut io, perf_offsets::CNT_TUPLES_OUT),
            in_stall: rd(self, &mut io, perf_offsets::CNT_IN_STALL),
            out_stall: rd(self, &mut io, perf_offsets::CNT_OUT_STALL),
            active: rd(self, &mut io, perf_offsets::CNT_ACTIVE),
            idle: rd(self, &mut io, perf_offsets::CNT_IDLE),
            load_beats: rd(self, &mut io, perf_offsets::CNT_LOAD_BEATS),
            store_beats: rd(self, &mut io, perf_offsets::CNT_STORE_BEATS),
            stage_drops: (0..self.pe.stages())
                .map(|s| self.read(&mut io, fc + perf_offsets::CNT_STAGE_DROP_BASE + 4 * s))
                .collect(),
        };
        self.perf_io.reg_reads += io.reg_reads;
        self.perf_io.reg_writes += io.reg_writes;
        out
    }

    /// Clear the hardware performance counters (the header's
    /// `reset_perf_counters`: write-1-to-clear on CNT_CTRL).
    pub fn reset_perf_counters(&mut self) {
        let fc = offsets::STAGE_BASE + self.pe.stages() * offsets::STAGE_STRIDE;
        let mut io = IoStats::default();
        self.write(&mut io, fc + perf_offsets::CNT_CTRL, 1);
        self.perf_io.reg_writes += io.reg_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_ir::{elaborate, CmpOp};
    use ndp_pe::{BaselinePe, PeSim, VecMem};
    use ndp_spec::parse;

    const REFS: &str = "
        /* @autogen define parser RefPe with input = Ref, output = Ref */
        typedef struct { uint64_t src; uint64_t dst; uint32_t weight; } Ref;
    ";

    fn ref_block(n: u64) -> Vec<u8> {
        let mut v = Vec::new();
        for i in 0..n {
            v.extend_from_slice(&i.to_le_bytes());
            v.extend_from_slice(&(i * 2).to_le_bytes());
            v.extend_from_slice(&((i % 100) as u32).to_le_bytes());
        }
        v
    }

    fn setup() -> (PeDriver<PeSim>, VecMem, u32) {
        let cfg = elaborate(&parse(REFS).unwrap(), "RefPe").unwrap();
        let eq_ge = cfg.op_code("ge").unwrap();
        let pe = PeSim::new(cfg);
        let mut mem = VecMem::new(1 << 20);
        let data = ref_block(500);
        mem.write_bytes(0, &data);
        (PeDriver::new(pe, DriverProfile::Generated), mem, eq_ge)
    }

    #[test]
    fn filter_sync_runs_and_reports() {
        let (mut drv, mut mem, ge) = setup();
        let job = FilterJob {
            src: 0,
            len: 500 * 20,
            dst: 0x40000,
            capacity: 1 << 18,
            rules: vec![FilterRule { lane: 2, op_code: ge, value: 50 }],
            aggregate: None,
        };
        let res = drv.filter_sync(&mut mem, &job);
        assert_eq!(res.block.tuples_in, 500);
        assert_eq!(res.tuples_out, 250); // weight = i % 100 >= 50
        assert_eq!(res.result_bytes, 250 * 20);
        assert_eq!(res.result_bytes, res.block.result_bytes);
    }

    #[test]
    fn generated_profile_register_counts_match_timing_model() {
        // The cosmos-sim timing constants assume 11 writes + 2 reads for
        // a steady-state single-stage block under the generated firmware.
        let (mut drv, mut mem, ge) = setup();
        let job = FilterJob {
            src: 0,
            len: 100 * 20,
            dst: 0x40000,
            capacity: 1 << 18,
            rules: vec![FilterRule { lane: 2, op_code: ge, value: 50 }],
            aggregate: None,
        };
        let first = drv.filter_sync(&mut mem, &job);
        // First block: rules + addresses + start = 4 + 7 writes.
        assert_eq!(first.io.reg_writes, 11);
        assert_eq!(first.io.reg_reads, 2);
        // Steady state (same rules, next block): rules are cached, but
        // addresses, len, capacity and start are rewritten.
        let next = drv.filter_sync(&mut mem, &job);
        assert_eq!(next.io.reg_writes, 7);
        assert_eq!(next.io.reg_reads, 2);
    }

    #[test]
    fn baseline_profile_issues_fewer_register_accesses() {
        let cfg = elaborate(&parse(REFS).unwrap(), "RefPe").unwrap();
        let ge = cfg.op_code("ge").unwrap();
        let base = BaselinePe::new(cfg).unwrap();
        let mut drv = PeDriver::new(base, DriverProfile::Baseline);
        let mut mem = VecMem::new(1 << 20);
        let data = ref_block(1638); // ~one 32 KiB block of 20 B tuples
        mem.write_bytes(0, &data);
        let job = FilterJob {
            src: 0,
            len: 32768,
            dst: 0x40000,
            capacity: 1 << 18,
            rules: vec![FilterRule { lane: 2, op_code: ge, value: 50 }],
            aggregate: None,
        };
        let res = drv.filter_sync(&mut mem, &job);
        // 3 rule writes (no VAL_HI) + 4 addresses + start = 8 writes,
        // 1 counter read — matching cosmos-sim's BASE_CFG_* constants.
        assert_eq!(res.io.reg_writes, 8);
        assert_eq!(res.io.reg_reads, 1);
        assert!(res.tuples_out > 0);
    }

    #[test]
    fn async_then_wait_equals_sync() {
        let (mut drv, mut mem, ge) = setup();
        let job = FilterJob {
            src: 0,
            len: 200 * 20,
            dst: 0x40000,
            capacity: 1 << 18,
            rules: vec![FilterRule { lane: 2, op_code: ge, value: 10 }],
            aggregate: None,
        };
        let io = drv.filter_async(&job);
        let res = drv.wait_until_done(&mut mem, io);
        assert_eq!(res.block.tuples_in, 200);
        assert_eq!(res.tuples_out, 180);
    }

    #[test]
    fn keyed_invocation_costs_one_strobe_and_matches_cold_results() {
        let (mut drv, mut mem, ge) = setup();
        let cold = FilterJob {
            src: 0,
            len: 500 * 20,
            dst: 0x40000,
            capacity: 1 << 18,
            rules: vec![FilterRule { lane: 2, op_code: ge, value: 50 }],
            aggregate: None,
        };
        // The batch's first key configures the datapath the normal way.
        let first = drv.filter_sync(&mut mem, &cold);
        assert_eq!(first.io.reg_writes, 11);
        // Subsequent keys: the walker re-points the descriptor; the ARM
        // pays exactly BATCH_KEY_CFG_WRITES = 1 / BATCH_KEY_CFG_READS = 0.
        let keyed = FilterJob {
            rules: vec![FilterRule { lane: 2, op_code: ge, value: 90 }],
            ..cold.clone()
        };
        let walker_before = drv.walker_io;
        let handle = drv.launch_keyed(&keyed);
        let res = drv.complete_keyed(&mut mem, handle);
        assert_eq!((res.io.reg_writes, res.io.reg_reads), (1, 0));
        assert!(drv.walker_io.reg_writes > walker_before.reg_writes);
        assert!(drv.walker_io.reg_reads > walker_before.reg_reads);
        // Results are byte-for-byte what a cold launch would compute.
        let mut check = PeDriver::new(
            PeSim::new(elaborate(&parse(REFS).unwrap(), "RefPe").unwrap()),
            DriverProfile::Generated,
        );
        let reference = check.filter_sync(&mut mem, &keyed);
        assert_eq!(res.tuples_out, reference.tuples_out);
        assert_eq!(res.result_bytes, reference.result_bytes);
        // The rule cache stayed coherent: relaunching the keyed rules
        // cold skips reconfiguration (steady-state 7 writes).
        let steady = drv.filter_sync(&mut mem, &keyed);
        assert_eq!(steady.io.reg_writes, 7, "keyed launch kept last_rules in sync");
    }

    #[test]
    fn rule_cache_invalidation_rewrites_rules() {
        let (mut drv, mut mem, ge) = setup();
        let job = FilterJob {
            src: 0,
            len: 100 * 20,
            dst: 0x40000,
            capacity: 1 << 18,
            rules: vec![FilterRule { lane: 2, op_code: ge, value: 50 }],
            aggregate: None,
        };
        let _ = drv.filter_sync(&mut mem, &job);
        drv.invalidate_config_cache();
        let res = drv.filter_sync(&mut mem, &job);
        assert_eq!(res.io.reg_writes, 11, "invalidation forces full reconfiguration");
    }

    #[test]
    fn changing_rules_reconfigures_and_nops_unused_stages() {
        let src = "
            /* @autogen define parser R with input = T, output = T, stages = 2 */
            typedef struct { uint32_t v, w; } T;
        ";
        let cfg = elaborate(&parse(src).unwrap(), "R").unwrap();
        let lt = cfg.op_code("lt").unwrap();
        let pe = PeSim::new(cfg);
        let mut drv = PeDriver::new(pe, DriverProfile::Generated);
        let mut mem = VecMem::new(1 << 16);
        let mut data = Vec::new();
        for i in 0u32..10 {
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(&(100 - i).to_le_bytes());
        }
        mem.write_bytes(0, &data);
        // One rule on a two-stage PE: stage 1 must be set to nop.
        let job = FilterJob {
            src: 0,
            len: data.len() as u32,
            dst: 0x8000,
            capacity: 4096,
            rules: vec![FilterRule { lane: 0, op_code: lt, value: 5 }],
            aggregate: None,
        };
        let res = drv.filter_sync(&mut mem, &job);
        assert_eq!(res.tuples_out, 5);
        // Rewriting with a different predicate takes effect.
        let job2 = FilterJob { rules: vec![FilterRule { lane: 0, op_code: lt, value: 2 }], ..job };
        let res2 = drv.filter_sync(&mut mem, &job2);
        assert_eq!(res2.tuples_out, 2);
    }

    #[test]
    #[should_panic(expected = "rules")]
    fn too_many_rules_panics() {
        let (mut drv, mut mem, ge) = setup();
        let job = FilterJob {
            src: 0,
            len: 20,
            dst: 0x40000,
            capacity: 4096,
            rules: vec![
                FilterRule { lane: 0, op_code: ge, value: 0 },
                FilterRule { lane: 1, op_code: ge, value: 0 },
            ],
            aggregate: None,
        };
        let _ = drv.filter_sync(&mut mem, &job);
    }

    #[test]
    fn perf_readback_matches_job_and_leaves_job_io_untouched() {
        let (mut drv, mut mem, ge) = setup();
        let job = FilterJob {
            src: 0,
            len: 500 * 20,
            dst: 0x40000,
            capacity: 1 << 18,
            rules: vec![FilterRule { lane: 2, op_code: ge, value: 50 }],
            aggregate: None,
        };
        let res = drv.filter_sync(&mut mem, &job);
        let job_io = drv.total_io;
        let perf = drv.read_perf_counters();
        assert_eq!(perf.tuples_in, res.block.tuples_in);
        assert_eq!(perf.tuples_out, res.tuples_out);
        assert_eq!(perf.stage_drops, vec![res.block.tuples_in - res.tuples_out]);
        assert_eq!(perf.active + perf.idle, res.block.cycles as u32);
        // Observability cost is accounted separately from the job path.
        assert_eq!(drv.total_io, job_io);
        assert_eq!(drv.perf_io.reg_reads, 9);
        drv.reset_perf_counters();
        assert_eq!(drv.perf_io.reg_writes, 1);
        let cleared = drv.read_perf_counters();
        assert_eq!(cleared, PerfReadout { stage_drops: vec![0], ..PerfReadout::default() });
    }

    #[test]
    fn retargeted_job_reuses_the_descriptor_and_rule_cache() {
        let (mut drv, mut mem, ge) = setup();
        // Second block of refs further up in memory.
        let second = ref_block(300);
        mem.write_bytes(0x20000, &second);
        let mut job = FilterJob {
            src: 0,
            len: 500 * 20,
            dst: 0x40000,
            capacity: 1 << 18,
            rules: vec![FilterRule { lane: 2, op_code: ge, value: 50 }],
            aggregate: None,
        };
        let first = drv.filter_sync(&mut mem, &job);
        assert_eq!(first.block.tuples_in, 500);
        // Stream the next block through the same descriptor.
        job.retarget(0x20000, 300 * 20);
        let next = drv.filter_sync(&mut mem, &job);
        assert_eq!(next.block.tuples_in, 300);
        assert_eq!(next.tuples_out, 150);
        // Rules were cached: only addresses/len/capacity/start rewritten.
        assert_eq!(next.io.reg_writes, 7);
    }

    #[test]
    fn launch_complete_equals_filter_sync() {
        let (mut drv, mut mem, ge) = setup();
        let job = FilterJob {
            src: 0,
            len: 500 * 20,
            dst: 0x40000,
            capacity: 1 << 18,
            rules: vec![FilterRule { lane: 2, op_code: ge, value: 50 }],
            aggregate: None,
        };
        let handle = drv.launch(&job);
        let res = drv.complete(&mut mem, handle);
        drv.invalidate_config_cache();
        let sync = drv.filter_sync(&mut mem, &job);
        assert_eq!(res, sync);
    }

    #[test]
    fn nop_semantics_equal_cmp_nop() {
        // The driver's implicit nop for unused stages matches CmpOp::Nop.
        assert!(CmpOp::Nop.eval(ndp_spec::PrimTy::U32, 1, 2));
    }
}
