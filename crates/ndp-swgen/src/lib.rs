//! Automatic generation of the PE software interface.
//!
//! The paper's toolflow does not stop at the hardware: it also generates a
//! *header-only C library* for controlling the PEs (Sec. IV-C, Fig. 6),
//! built bottom-up — register address macros, register accessors, then
//! synchronous/asynchronous filtering calls and debug printers — so a
//! database engineer can drive the accelerator without knowing how it
//! works.
//!
//! Two artifacts come out of the same [`RegisterMap`]:
//!
//! * [`header::generate_header`] — the C header text (the inspectable
//!   artifact, snapshot-tested); and
//! * [`driver::PeDriver`] — the Rust twin of that header, which the `nkv`
//!   firmware layer actually uses to drive the simulated PEs. Because
//!   both render the same map, the register-level protocol exercised in
//!   simulation is the one the generated C code would perform on the
//!   device.

pub mod driver;
pub mod header;

pub use driver::{DriverProfile, FilterJob, IoStats, JobHandle, JobResult, PeDriver, PerfReadout};
pub use header::generate_header;
