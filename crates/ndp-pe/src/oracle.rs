//! Functional semantics of filtering and transformation.
//!
//! This module is the single definition of *what* a PE computes,
//! independent of *how long* it takes. It is used three ways:
//!
//! 1. as the reference oracle the cycle-level model is tested against,
//! 2. as the ARM **software NDP** implementation (the paper's SW bars in
//!    Fig. 7 run "the same general algorithm" on the device CPU), and
//! 3. as a fast bulk path for large simulations where per-cycle stepping
//!    would be wasteful (timing is then supplied by the validated
//!    analytic estimator).
//!
//! The byte-level implementation is allocation-free per tuple: filters
//! read lanes directly out of the packed bytes, and the transformation is
//! a precomputed list of byte-range copies — mirroring the generated
//! hardware, where both are pure routing.

use crate::tuple::{LayoutCodec, Slot};
use ndp_ir::{CmpOp, PeConfig};
use ndp_spec::PrimTy;
use std::collections::HashMap;
use std::sync::Arc;

/// One configured filtering stage: compare lane `lane` against `value`
/// under operator `op_code` (an encoding from the PE's operator set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterRule {
    pub lane: u32,
    pub op_code: u32,
    pub value: u64,
}

impl FilterRule {
    /// A rule that lets every tuple pass (operator `nop`).
    pub fn pass() -> Self {
        FilterRule { lane: 0, op_code: 0, value: 0 }
    }
}

/// Semantics of a custom comparator operation.
pub type CustomOpFn = Arc<dyn Fn(PrimTy, u64, u64) -> bool + Send + Sync>;

/// Operator-code dispatch table built from a PE configuration.
///
/// Standard codes evaluate via [`CmpOp::eval`]; custom codes dispatch to
/// registered closures (the paper's Verilog/VHDL extension hook). Codes
/// outside the set evaluate to *false*, matching the hardware's `default`
/// case.
#[derive(Clone)]
pub struct OpTable {
    standard: Vec<Option<CmpOp>>,
    custom: HashMap<u32, CustomOpFn>,
}

impl std::fmt::Debug for OpTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpTable")
            .field("standard", &self.standard)
            .field("custom_codes", &self.custom.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl OpTable {
    /// Build the table from the configuration's operator set. Custom
    /// operators start unbound; [`OpTable::bind_custom`] attaches their
    /// semantics.
    pub fn from_config(cfg: &PeConfig) -> Self {
        let max_code = cfg.operators.iter().map(|o| o.code).max().unwrap_or(0) as usize;
        let mut standard = vec![None; max_code + 1];
        for op in &cfg.operators {
            standard[op.code as usize] = op.op;
        }
        OpTable { standard, custom: HashMap::new() }
    }

    /// Bind the semantics of the custom operator named `name`.
    ///
    /// Returns `false` if the configuration has no such operator.
    pub fn bind_custom(
        &mut self,
        cfg: &PeConfig,
        name: &str,
        f: impl Fn(PrimTy, u64, u64) -> bool + Send + Sync + 'static,
    ) -> bool {
        match cfg.operators.iter().find(|o| o.name == name && o.op.is_none()) {
            Some(op) => {
                self.custom.insert(op.code, Arc::new(f));
                true
            }
            None => false,
        }
    }

    /// Human-readable symbol of operator `code` (explain/debug
    /// rendering). Encodings are per-configuration, so there is no
    /// global code→symbol map; unknown codes print as `op#N`.
    pub fn symbol(&self, code: u32) -> String {
        match self.standard.get(code as usize) {
            Some(Some(op)) => match op {
                CmpOp::Nop => "nop",
                CmpOp::Ne => "!=",
                CmpOp::Eq => "==",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
            }
            .to_string(),
            _ if self.custom.contains_key(&code) => format!("custom#{code}"),
            _ => format!("op#{code}"),
        }
    }

    /// Evaluate operator `code` on `(element, reference)` of type `prim`.
    pub fn eval(&self, code: u32, prim: PrimTy, element: u64, reference: u64) -> bool {
        if let Some(Some(op)) = self.standard.get(code as usize) {
            return op.eval(prim, element, reference);
        }
        if let Some(f) = self.custom.get(&code) {
            return f(prim, element, reference);
        }
        false
    }
}

/// Running reduction over the passing tuples of one or more blocks
/// (the Aggregation Unit's semantics, shared by the cycle-level model
/// and the ARM software path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggAccumulator {
    pub op: ndp_ir::AggOp,
    /// Lane feeding the reduction (ignored by `Count`).
    pub lane: u32,
    prim: PrimTy,
    state: u64,
    seen: bool,
}

impl AggAccumulator {
    /// Start an accumulator for `op` over `lane` of `bp`'s input layout.
    pub fn new(bp: &BlockProcessor, op: ndp_ir::AggOp, lane: u32) -> Option<Self> {
        let prim = bp.lane_prim(lane)?;
        Some(Self { op, lane, prim, state: 0, seen: false })
    }

    /// Fold one passing tuple's lane value in.
    pub fn update(&mut self, lane_value: u64) {
        use ndp_ir::AggOp;
        match self.op {
            AggOp::Count => self.state = self.state.wrapping_add(1),
            AggOp::Sum => self.state = self.state.wrapping_add(lane_value),
            AggOp::Min => {
                if !self.seen || CmpOp::Lt.eval(self.prim, lane_value, self.state) {
                    self.state = lane_value;
                }
            }
            AggOp::Max => {
                if !self.seen || CmpOp::Gt.eval(self.prim, lane_value, self.state) {
                    self.state = lane_value;
                }
            }
        }
        self.seen = true;
    }

    /// Current accumulator value (0 if nothing passed yet).
    pub fn value(&self) -> u64 {
        self.state
    }

    /// Whether any tuple has been folded in (distinguishes "min = 0"
    /// from "no rows").
    pub fn any(&self) -> bool {
        self.seen
    }
}

/// Statistics of one processed block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleStats {
    /// Complete tuples parsed from the input.
    pub tuples_in: u32,
    /// Tuples that passed every filtering stage.
    pub tuples_out: u32,
    /// Result bytes produced.
    pub bytes_out: u32,
    /// Trailing input bytes that did not form a complete tuple (dropped,
    /// like the hardware input buffer at end-of-block).
    pub trailing_bytes: u32,
}

/// Precompiled filter + transform executor for one PE configuration.
pub struct BlockProcessor {
    in_codec: LayoutCodec,
    /// Per lane: packed byte offset, length, primitive type.
    lane_slots: Vec<(usize, usize, PrimTy)>,
    /// Byte moves `(src_off, dst_off, len)` implementing the transform.
    byte_moves: Vec<(usize, usize, usize)>,
    out_tuple_bytes: usize,
}

impl BlockProcessor {
    /// Precompile for `cfg`.
    pub fn new(cfg: &PeConfig) -> Self {
        let in_codec = LayoutCodec::new(&cfg.input);
        let out_codec = LayoutCodec::new(&cfg.output);

        let mut lane_slots = vec![(0usize, 0usize, PrimTy::U8); in_codec.lanes()];
        for idx in 0..cfg.input.fields.len() {
            if let Slot::Lane { lane, prim } = in_codec.slot(idx) {
                let (off, len) = in_codec.field_range(idx);
                lane_slots[lane as usize] = (off, len, prim);
            }
        }

        let byte_moves = cfg
            .transform
            .moves
            .iter()
            .map(|mv| {
                let (src_off, len) = in_codec.field_range(mv.src);
                let (dst_off, dlen) = out_codec.field_range(mv.dst);
                debug_assert_eq!(len, dlen);
                (src_off, dst_off, len)
            })
            .collect();

        Self { in_codec, lane_slots, byte_moves, out_tuple_bytes: out_codec.tuple_bytes() }
    }

    /// Input tuple size in bytes.
    pub fn in_tuple_bytes(&self) -> usize {
        self.in_codec.tuple_bytes()
    }

    /// Number of comparator lanes of the input layout.
    pub fn lanes(&self) -> usize {
        self.lane_slots.len()
    }

    /// Output tuple size in bytes.
    pub fn out_tuple_bytes(&self) -> usize {
        self.out_tuple_bytes
    }

    /// Whether the transformation is the identity on the input layout:
    /// output tuples are byte-for-byte the input tuples. Post-PE
    /// (residual) predicate evaluation over the output stream is only
    /// meaningful in that case — the input lanes still exist there.
    pub fn identity_transform(&self) -> bool {
        if self.out_tuple_bytes != self.in_codec.tuple_bytes() {
            return false;
        }
        let mut covered = vec![false; self.out_tuple_bytes];
        for &(src, dst, len) in &self.byte_moves {
            if src != dst {
                return false;
            }
            for c in &mut covered[dst..dst + len] {
                *c = true;
            }
        }
        covered.iter().all(|&c| c)
    }

    /// Raw lane value of `tuple` (packed bytes), zero-extended like the
    /// hardware; `None` for out-of-range lanes.
    pub fn lane_value(&self, tuple: &[u8], lane: u32) -> Option<u64> {
        let &(off, len, _) = self.lane_slots.get(lane as usize)?;
        let mut v = 0u64;
        for (i, b) in tuple[off..off + len].iter().enumerate() {
            v |= u64::from(*b) << (8 * i);
        }
        Some(v)
    }

    /// Primitive type of a lane.
    pub fn lane_prim(&self, lane: u32) -> Option<PrimTy> {
        self.lane_slots.get(lane as usize).map(|&(_, _, p)| p)
    }

    /// Does `tuple` (packed input bytes) pass all `rules`?
    pub fn tuple_passes(&self, tuple: &[u8], rules: &[FilterRule], ops: &OpTable) -> bool {
        rules.iter().all(|r| {
            let Some(&(off, len, prim)) = self.lane_slots.get(r.lane as usize) else {
                // Out-of-range lane select: the hardware mux wraps; we
                // model the stricter behaviour of rejecting the tuple.
                return false;
            };
            let mut v = 0u64;
            for (i, b) in tuple[off..off + len].iter().enumerate() {
                v |= u64::from(*b) << (8 * i);
            }
            ops.eval(r.op_code, prim, v, r.value)
        })
    }

    /// Transform one passing tuple, appending its output bytes to `out`.
    pub fn transform_into(&self, tuple: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + self.out_tuple_bytes, 0);
        for &(src, dst, len) in &self.byte_moves {
            out[start + dst..start + dst + len].copy_from_slice(&tuple[src..src + len]);
        }
    }

    /// Process a whole block: filter every complete tuple, transform the
    /// survivors, append results to `out`.
    pub fn process_block(
        &self,
        input: &[u8],
        rules: &[FilterRule],
        ops: &OpTable,
        out: &mut Vec<u8>,
    ) -> OracleStats {
        let ts = self.in_tuple_bytes();
        let mut stats = OracleStats::default();
        let whole = input.len() / ts * ts;
        stats.trailing_bytes = (input.len() - whole) as u32;
        for tuple in input[..whole].chunks_exact(ts) {
            stats.tuples_in += 1;
            if self.tuple_passes(tuple, rules, ops) {
                stats.tuples_out += 1;
                self.transform_into(tuple, out);
            }
        }
        stats.bytes_out = (stats.tuples_out as usize * self.out_tuple_bytes) as u32;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_ir::{elaborate, elaborate_with_custom_ops};
    use ndp_spec::parse;

    const POINTS: &str = "
        /* @autogen define parser P with input = Point3D, output = Point2D,
           mapping = { output.x = input.y, output.y = input.z } */
        typedef struct { uint32_t x, y, z; } Point3D;
        typedef struct { uint32_t x, y; } Point2D;
    ";

    fn points_block(points: &[(u32, u32, u32)]) -> Vec<u8> {
        let mut v = Vec::new();
        for &(x, y, z) in points {
            v.extend_from_slice(&x.to_le_bytes());
            v.extend_from_slice(&y.to_le_bytes());
            v.extend_from_slice(&z.to_le_bytes());
        }
        v
    }

    #[test]
    fn filters_and_projects_points() {
        let cfg = elaborate(&parse(POINTS).unwrap(), "P").unwrap();
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let input = points_block(&[(1, 10, 100), (2, 20, 200), (3, 30, 300)]);
        // Keep points with x >= 2 (lane 0).
        let rules = [FilterRule { lane: 0, op_code: cfg.op_code("ge").unwrap(), value: 2 }];
        let mut out = Vec::new();
        let stats = bp.process_block(&input, &rules, &ops, &mut out);
        assert_eq!(stats.tuples_in, 3);
        assert_eq!(stats.tuples_out, 2);
        assert_eq!(stats.bytes_out, 16);
        // Survivors projected to (y, z).
        assert_eq!(&out[0..4], &20u32.to_le_bytes());
        assert_eq!(&out[4..8], &200u32.to_le_bytes());
        assert_eq!(&out[8..12], &30u32.to_le_bytes());
    }

    #[test]
    fn nop_rules_pass_everything() {
        let cfg = elaborate(&parse(POINTS).unwrap(), "P").unwrap();
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let input = points_block(&[(1, 2, 3), (4, 5, 6)]);
        let mut out = Vec::new();
        let stats = bp.process_block(&input, &[FilterRule::pass()], &ops, &mut out);
        assert_eq!(stats.tuples_out, 2);
    }

    #[test]
    fn multi_stage_rules_conjoin() {
        let cfg = elaborate(&parse(POINTS).unwrap(), "P").unwrap();
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let input = points_block(&[(1, 10, 100), (5, 10, 100), (5, 99, 100)]);
        // x >= 2 AND y < 50 — a 2-stage RANGE-style predicate.
        let ge = cfg.op_code("ge").unwrap();
        let lt = cfg.op_code("lt").unwrap();
        let rules = [
            FilterRule { lane: 0, op_code: ge, value: 2 },
            FilterRule { lane: 1, op_code: lt, value: 50 },
        ];
        let mut out = Vec::new();
        let stats = bp.process_block(&input, &rules, &ops, &mut out);
        assert_eq!(stats.tuples_out, 1);
        assert_eq!(&out[0..4], &10u32.to_le_bytes());
    }

    #[test]
    fn trailing_partial_tuple_is_dropped_and_counted() {
        let cfg = elaborate(&parse(POINTS).unwrap(), "P").unwrap();
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let mut input = points_block(&[(1, 2, 3)]);
        input.extend_from_slice(&[0xAA; 5]);
        let mut out = Vec::new();
        let stats = bp.process_block(&input, &[FilterRule::pass()], &ops, &mut out);
        assert_eq!(stats.tuples_in, 1);
        assert_eq!(stats.trailing_bytes, 5);
    }

    #[test]
    fn unknown_op_code_rejects_tuples() {
        let cfg = elaborate(&parse(POINTS).unwrap(), "P").unwrap();
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let input = points_block(&[(1, 2, 3)]);
        let rules = [FilterRule { lane: 0, op_code: 99, value: 0 }];
        let mut out = Vec::new();
        let stats = bp.process_block(&input, &rules, &ops, &mut out);
        assert_eq!(stats.tuples_out, 0);
    }

    #[test]
    fn out_of_range_lane_rejects_tuples() {
        let cfg = elaborate(&parse(POINTS).unwrap(), "P").unwrap();
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let input = points_block(&[(1, 2, 3)]);
        let rules = [FilterRule { lane: 7, op_code: cfg.op_code("eq").unwrap(), value: 1 }];
        let mut out = Vec::new();
        assert_eq!(bp.process_block(&input, &rules, &ops, &mut out).tuples_out, 0);
    }

    #[test]
    fn identity_transform_detects_projections() {
        // Point3D → Point2D drops a field: not the identity.
        let cfg = elaborate(&parse(POINTS).unwrap(), "P").unwrap();
        assert!(!BlockProcessor::new(&cfg).identity_transform());
        // A → A with the default mapping copies every byte in place.
        let id = "
            /* @autogen define parser I with input = A, output = A */
            typedef struct { uint32_t x, y; } A;
        ";
        let cfg = elaborate(&parse(id).unwrap(), "I").unwrap();
        assert!(BlockProcessor::new(&cfg).identity_transform());
    }

    #[test]
    fn op_symbols_render_per_configuration() {
        let cfg = elaborate(&parse(POINTS).unwrap(), "P").unwrap();
        let ops = OpTable::from_config(&cfg);
        assert_eq!(ops.symbol(cfg.op_code("nop").unwrap()), "nop");
        assert_eq!(ops.symbol(cfg.op_code("ge").unwrap()), ">=");
        assert_eq!(ops.symbol(cfg.op_code("eq").unwrap()), "==");
        assert_eq!(ops.symbol(999), "op#999");
    }

    #[test]
    fn custom_operator_binds_and_evaluates() {
        let src = "
            /* @autogen define parser F with input = A, output = A,
               operators = { eq, popcnt_ge } */
            typedef struct { uint32_t x; } A;
        ";
        let module = parse(src).unwrap();
        let cfg = elaborate_with_custom_ops(&module, "F", &["popcnt_ge"]).unwrap();
        let bp = BlockProcessor::new(&cfg);
        let mut ops = OpTable::from_config(&cfg);
        assert!(ops.bind_custom(&cfg, "popcnt_ge", |_, a, b| a.count_ones() >= b as u32));
        assert!(!ops.bind_custom(&cfg, "eq", |_, _, _| true), "standard ops are not rebindable");

        let code = cfg.op_code("popcnt_ge").unwrap();
        let mut input = Vec::new();
        input.extend_from_slice(&0b1011u32.to_le_bytes()); // popcount 3
        input.extend_from_slice(&0b0001u32.to_le_bytes()); // popcount 1
        let rules = [FilterRule { lane: 0, op_code: code, value: 2 }];
        let mut out = Vec::new();
        let stats = bp.process_block(&input, &rules, &ops, &mut out);
        assert_eq!(stats.tuples_out, 1);
        assert_eq!(&out[..], &0b1011u32.to_le_bytes());
    }

    #[test]
    fn unbound_custom_operator_rejects() {
        let src = "
            /* @autogen define parser F with input = A, output = A,
               operators = { eq, mystery } */
            typedef struct { uint32_t x; } A;
        ";
        let module = parse(src).unwrap();
        let cfg = elaborate_with_custom_ops(&module, "F", &["mystery"]).unwrap();
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg); // never bound
        let code = cfg.op_code("mystery").unwrap();
        let input = 5u32.to_le_bytes().to_vec();
        let rules = [FilterRule { lane: 0, op_code: code, value: 0 }];
        let mut out = Vec::new();
        assert_eq!(bp.process_block(&input, &rules, &ops, &mut out).tuples_out, 0);
    }

    #[test]
    fn signed_fields_filter_with_signed_semantics() {
        let src = "
            /* @autogen define parser F with input = A, output = A */
            typedef struct { int32_t t; } A;
        ";
        let cfg = elaborate(&parse(src).unwrap(), "F").unwrap();
        let bp = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let mut input = Vec::new();
        input.extend_from_slice(&(-5i32).to_le_bytes());
        input.extend_from_slice(&(3i32).to_le_bytes());
        // t < 0
        let rules = [FilterRule { lane: 0, op_code: cfg.op_code("lt").unwrap(), value: 0 }];
        let mut out = Vec::new();
        let stats = bp.process_block(&input, &rules, &ops, &mut out);
        assert_eq!(stats.tuples_out, 1);
        assert_eq!(&out[..], &(-5i32).to_le_bytes());
    }
}
