//! Tuples and the layout codec.
//!
//! The Tuple Input Buffer's job (paper, Sec. IV-B) is to turn the raw bit
//! sequence coming from memory into *processable structured data*: a
//! vector of padded comparator lanes plus a second vector carrying the
//! opaque string postfixes. [`LayoutCodec`] implements exactly that
//! conversion (and its inverse for the Output Buffer) for a given
//! [`TupleLayout`].

use ndp_ir::{TransformPlan, TupleLayout};
use ndp_spec::PrimTy;

/// A tuple in the padded internal representation that flows through the
/// filtering and transformation units.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tuple {
    /// One zero-extended value per comparator lane, in lane order.
    pub lanes: Vec<u64>,
    /// Concatenated opaque string-postfix bytes, in field order.
    pub postfix: Vec<u8>,
}

/// Where a layout field lives in the padded representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Lane index plus the primitive type used for comparisons.
    Lane { lane: u32, prim: PrimTy },
    /// Byte range within [`Tuple::postfix`].
    Postfix { offset: usize, len: usize },
}

/// Precomputed pack/unpack tables for one tuple layout.
///
/// All fields of the specification language are byte-aligned (primitives
/// are 1/2/4/8 bytes, postfixes are byte arrays), which the constructor
/// asserts; the codec therefore works on byte ranges, exactly like the
/// generated hardware's byte-enable based realignment network.
#[derive(Debug, Clone)]
pub struct LayoutCodec {
    /// Per layout-field: packed byte offset, byte length, destination slot.
    slots: Vec<(usize, usize, Slot)>,
    tuple_bytes: usize,
    lanes: usize,
    postfix_bytes: usize,
}

impl LayoutCodec {
    /// Build the codec for `layout`.
    pub fn new(layout: &TupleLayout) -> Self {
        let mut slots = Vec::with_capacity(layout.fields.len());
        let mut postfix_off = 0usize;
        for f in &layout.fields {
            assert_eq!(f.offset_bits % 8, 0, "field {} not byte aligned", f.path);
            assert_eq!(f.width_bits % 8, 0, "field {} not byte sized", f.path);
            let off = (f.offset_bits / 8) as usize;
            let len = (f.width_bits / 8) as usize;
            let slot = match (f.lane, f.prim) {
                (Some(lane), Some(prim)) => Slot::Lane { lane, prim },
                (None, None) => {
                    let s = Slot::Postfix { offset: postfix_off, len };
                    postfix_off += len;
                    s
                }
                _ => unreachable!("lane and prim are assigned together"),
            };
            slots.push((off, len, slot));
        }
        Self {
            slots,
            tuple_bytes: (layout.tuple_bits / 8) as usize,
            lanes: layout.lanes as usize,
            postfix_bytes: postfix_off,
        }
    }

    /// Packed tuple size in bytes.
    pub fn tuple_bytes(&self) -> usize {
        self.tuple_bytes
    }

    /// Number of comparator lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Total postfix bytes carried per tuple.
    pub fn postfix_bytes(&self) -> usize {
        self.postfix_bytes
    }

    /// Slot of layout field `idx`.
    pub fn slot(&self, idx: usize) -> Slot {
        self.slots[idx].2
    }

    /// Primitive type of comparator lane `lane`.
    pub fn lane_prim(&self, lane: u32) -> Option<PrimTy> {
        self.slots.iter().find_map(|(_, _, s)| match s {
            Slot::Lane { lane: l, prim } if *l == lane => Some(*prim),
            _ => None,
        })
    }

    /// Unpack one packed tuple (exactly [`Self::tuple_bytes`] long) into
    /// the padded representation.
    pub fn unpack(&self, bytes: &[u8]) -> Tuple {
        debug_assert_eq!(bytes.len(), self.tuple_bytes);
        let mut t = Tuple { lanes: vec![0; self.lanes], postfix: vec![0; self.postfix_bytes] };
        self.unpack_into(bytes, &mut t);
        t
    }

    /// Allocation-free variant of [`Self::unpack`] reusing `t`'s buffers.
    pub fn unpack_into(&self, bytes: &[u8], t: &mut Tuple) {
        t.lanes.resize(self.lanes, 0);
        t.postfix.resize(self.postfix_bytes, 0);
        for &(off, len, slot) in &self.slots {
            match slot {
                Slot::Lane { lane, .. } => {
                    let mut v = 0u64;
                    // Little-endian zero-extension into the 64-bit lane.
                    for (i, b) in bytes[off..off + len].iter().enumerate() {
                        v |= u64::from(*b) << (8 * i);
                    }
                    t.lanes[lane as usize] = v;
                }
                Slot::Postfix { offset, len: plen } => {
                    t.postfix[offset..offset + plen].copy_from_slice(&bytes[off..off + plen]);
                }
            }
        }
    }

    /// Pack the padded representation back to wire bytes, appending to
    /// `out` (Output Buffer direction).
    pub fn pack_into(&self, t: &Tuple, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + self.tuple_bytes, 0);
        let bytes = &mut out[start..];
        for &(off, len, slot) in &self.slots {
            match slot {
                Slot::Lane { lane, .. } => {
                    let v = t.lanes[lane as usize];
                    for i in 0..len {
                        bytes[off + i] = (v >> (8 * i)) as u8;
                    }
                }
                Slot::Postfix { offset, len: plen } => {
                    bytes[off..off + plen].copy_from_slice(&t.postfix[offset..offset + plen]);
                }
            }
        }
    }

    /// Extract the raw lane value of layout field `idx` directly from
    /// packed bytes (used by the zero-copy software oracle).
    pub fn read_field_raw(&self, bytes: &[u8], idx: usize) -> u64 {
        let (off, len, _) = self.slots[idx];
        let mut v = 0u64;
        for (i, b) in bytes[off..off + len.min(8)].iter().enumerate() {
            v |= u64::from(*b) << (8 * i);
        }
        v
    }

    /// Byte range of layout field `idx` in the packed representation.
    pub fn field_range(&self, idx: usize) -> (usize, usize) {
        let (off, len, _) = self.slots[idx];
        (off, len)
    }
}

/// Apply a [`TransformPlan`] to a padded tuple, producing the output
/// tuple under the output codec.
///
/// Lane moves copy lane values; postfix moves copy byte ranges. This is
/// the functional semantics of the Data Transformation Unit.
pub fn apply_transform(
    plan: &TransformPlan,
    in_codec: &LayoutCodec,
    out_codec: &LayoutCodec,
    input: &Tuple,
    output: &mut Tuple,
) {
    output.lanes.clear();
    output.lanes.resize(out_codec.lanes(), 0);
    output.postfix.clear();
    output.postfix.resize(out_codec.postfix_bytes(), 0);
    for mv in &plan.moves {
        match (out_codec.slot(mv.dst), in_codec.slot(mv.src)) {
            (Slot::Lane { lane: dl, .. }, Slot::Lane { lane: sl, .. }) => {
                output.lanes[dl as usize] = input.lanes[sl as usize];
            }
            (Slot::Postfix { offset: doff, len }, Slot::Postfix { offset: soff, len: slen }) => {
                debug_assert_eq!(len, slen, "mapping validation guarantees equal widths");
                output.postfix[doff..doff + len].copy_from_slice(&input.postfix[soff..soff + len]);
            }
            _ => unreachable!("mapping validation rejects lane/postfix mixes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_ir::elaborate;
    use ndp_spec::parse;

    fn cfg(src: &str, name: &str) -> ndp_ir::PeConfig {
        elaborate(&parse(src).unwrap(), name).unwrap()
    }

    const POINTS: &str = "
        /* @autogen define parser P with input = Point3D, output = Point2D,
           mapping = { output.x = input.y, output.y = input.z } */
        typedef struct { uint32_t x, y, z; } Point3D;
        typedef struct { uint32_t x, y; } Point2D;
    ";

    #[test]
    fn unpack_extracts_little_endian_lanes() {
        let c = cfg(POINTS, "P");
        let codec = LayoutCodec::new(&c.input);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&11u32.to_le_bytes());
        bytes.extend_from_slice(&13u32.to_le_bytes());
        let t = codec.unpack(&bytes);
        assert_eq!(t.lanes, vec![7, 11, 13]);
        assert!(t.postfix.is_empty());
    }

    #[test]
    fn pack_unpack_round_trip() {
        let c = cfg(POINTS, "P");
        let codec = LayoutCodec::new(&c.input);
        let bytes: Vec<u8> = (0..12).map(|i| i as u8 ^ 0x5A).collect();
        let t = codec.unpack(&bytes);
        let mut out = Vec::new();
        codec.pack_into(&t, &mut out);
        assert_eq!(out, bytes);
    }

    #[test]
    fn transform_projects_fields() {
        let c = cfg(POINTS, "P");
        let in_codec = LayoutCodec::new(&c.input);
        let out_codec = LayoutCodec::new(&c.output);
        let mut bytes = Vec::new();
        for v in [1u32, 2, 3] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let input = in_codec.unpack(&bytes);
        let mut output = Tuple::default();
        apply_transform(&c.transform, &in_codec, &out_codec, &input, &mut output);
        // output.x = input.y (2), output.y = input.z (3).
        assert_eq!(output.lanes, vec![2, 3]);
        let mut packed = Vec::new();
        out_codec.pack_into(&output, &mut packed);
        assert_eq!(&packed[..4], &2u32.to_le_bytes());
        assert_eq!(&packed[4..], &3u32.to_le_bytes());
    }

    const STRINGY: &str = "
        /* @autogen define parser S with input = Rec, output = Rec */
        typedef struct {
            uint64_t id;
            /* @string(prefix = 4) */ uint8_t name[12];
            uint16_t kind;
        } Rec;
    ";

    #[test]
    fn postfix_bytes_are_carried_opaque() {
        let c = cfg(STRINGY, "S");
        let codec = LayoutCodec::new(&c.input);
        assert_eq!(codec.tuple_bytes(), 8 + 12 + 2);
        assert_eq!(codec.lanes(), 3); // id, name.prefix, kind
        assert_eq!(codec.postfix_bytes(), 8);
        let mut bytes = vec![0u8; 22];
        bytes[8..20].copy_from_slice(b"rocksdb_sst!");
        let t = codec.unpack(&bytes);
        // Prefix "rock" little-endian in the lane.
        assert_eq!(t.lanes[1], u64::from(u32::from_le_bytes(*b"rock")));
        assert_eq!(&t.postfix, b"sdb_sst!");
        let mut out = Vec::new();
        codec.pack_into(&t, &mut out);
        assert_eq!(out, bytes);
    }

    #[test]
    fn identity_transform_preserves_everything() {
        let c = cfg(STRINGY, "S");
        let codec = LayoutCodec::new(&c.input);
        let bytes: Vec<u8> = (0..22u8).collect();
        let input = codec.unpack(&bytes);
        let mut output = Tuple::default();
        apply_transform(&c.transform, &codec, &codec, &input, &mut output);
        assert_eq!(output, input);
    }

    #[test]
    fn lane_prim_lookup() {
        let c = cfg(STRINGY, "S");
        let codec = LayoutCodec::new(&c.input);
        assert_eq!(codec.lane_prim(0), Some(PrimTy::U64));
        assert_eq!(codec.lane_prim(1), Some(PrimTy::U32));
        assert_eq!(codec.lane_prim(2), Some(PrimTy::U16));
        assert_eq!(codec.lane_prim(99), None);
    }

    #[test]
    fn read_field_raw_matches_unpack() {
        let c = cfg(STRINGY, "S");
        let codec = LayoutCodec::new(&c.input);
        let bytes: Vec<u8> = (0..22u8).map(|b| b.wrapping_mul(7)).collect();
        let t = codec.unpack(&bytes);
        assert_eq!(codec.read_field_raw(&bytes, 0), t.lanes[0]);
        assert_eq!(codec.read_field_raw(&bytes, 1), t.lanes[1]);
        assert_eq!(codec.read_field_raw(&bytes, 3), t.lanes[2]); // field 3 = kind (lane 2)
    }

    #[test]
    fn unpack_into_reuses_buffers() {
        let c = cfg(POINTS, "P");
        let codec = LayoutCodec::new(&c.input);
        let mut t = Tuple::default();
        let bytes = vec![0xFFu8; 12];
        codec.unpack_into(&bytes, &mut t);
        assert_eq!(t.lanes, vec![u64::from(u32::MAX); 3]);
        let bytes2 = vec![0u8; 12];
        codec.unpack_into(&bytes2, &mut t);
        assert_eq!(t.lanes, vec![0; 3]);
    }
}
