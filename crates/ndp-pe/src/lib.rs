//! The NDP processing element (PE): architectural template, cycle-level
//! model, hand-crafted baseline, and hardware elaboration.
//!
//! This crate realizes the paper's architectural template (Fig. 3):
//!
//! * **(a) control component** — a register file mapped into the ARM
//!   address space ([`regs`]);
//! * **(b) memory interface** — Load/Store units moving data between
//!   PS-DRAM and the PE at 64-bit granularity; *flexible* (partial-block)
//!   in this work, fixed 32 KiB blocks in the baseline of \[1\]
//!   ([`pipeline`]);
//! * **(c) accessor component** — Tuple Input/Output Buffers converting
//!   between the 64-bit memory interface and padded tuples ([`tuple`],
//!   [`pipeline`]);
//! * **(d) computation component** — a chain of 1..N Filtering Units
//!   (lane mux + Compare Unit, Fig. 5) followed by the Data
//!   Transformation Unit ([`pipeline`]).
//!
//! Two executable models are provided: a **cycle-level** simulator
//! ([`pipeline::PeSim`]) that models the elastic, latency-insensitive
//! pipeline tick by tick, and a byte-level **software oracle**
//! ([`oracle`]) defining the functional semantics (also reused as the
//! ARM software-NDP implementation by `nkv`). A validated **analytic
//! timing estimator** ([`pipeline::estimate_block_cycles`]) lets
//! large-scale simulations skip per-cycle stepping.
//!
//! [`template`] elaborates a PE configuration into an `ndp-hdl` design for
//! Verilog emission and resource estimation (Table I, Figs. 8/9).

pub mod baseline;
pub mod membus;
pub mod oracle;
pub mod pipeline;
pub mod regs;
pub mod template;
pub mod tuple;

pub use baseline::BaselinePe;
pub use membus::{MemBus, VecMem};
pub use oracle::{FilterRule, OracleStats};
pub use pipeline::{estimate_block_cycles, BlockResult, PeSim};
pub use regs::{Access, Mmio, PerfCounters, RegDef, RegisterMap};
pub use template::{
    pe_design, pe_design_opts, pe_report, pe_report_opts, pe_resources, pe_resources_opts,
    PeObservability, PeReport, PeVariant, SystemReport,
};
pub use tuple::{LayoutCodec, Tuple};

/// Anything that behaves like a PE from the firmware's point of view:
/// a control-register interface plus the ability to execute the
/// configured block against a memory.
pub trait PeDevice: Mmio {
    /// Execute the operation configured in the control registers
    /// (equivalent to the hardware running after `START` until `BUSY`
    /// deasserts), returning per-block statistics.
    fn execute(&mut self, mem: &mut dyn MemBus) -> BlockResult;

    /// Number of filtering stages this device provides.
    fn stages(&self) -> u32;
}

impl<T: Mmio + ?Sized> Mmio for Box<T> {
    fn mmio_read(&mut self, offset: u32) -> u32 {
        (**self).mmio_read(offset)
    }

    fn mmio_write(&mut self, offset: u32, value: u32) {
        (**self).mmio_write(offset, value)
    }
}

impl<T: PeDevice + ?Sized> PeDevice for Box<T> {
    fn execute(&mut self, mem: &mut dyn MemBus) -> BlockResult {
        (**self).execute(mem)
    }

    fn stages(&self) -> u32 {
        (**self).stages()
    }
}
