//! Memory bus abstraction.
//!
//! The PE's Load/Store units access PS-DRAM through an AXI4 Full port
//! (paper, Fig. 3b). This trait is the simulation-level equivalent: a
//! byte-addressable memory with bulk accessors. The platform simulator
//! (`cosmos-sim`) provides a DRAM implementation that additionally
//! accounts bandwidth and contention; [`VecMem`] is a plain in-process
//! memory for unit tests and examples.

/// A byte-addressable memory as seen by a PE's AXI master ports.
pub trait MemBus {
    /// Read `buf.len()` bytes starting at `addr`.
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]);

    /// Write `data` starting at `addr`.
    fn write_bytes(&mut self, addr: u64, data: &[u8]);
}

/// A simple `Vec<u8>`-backed memory.
///
/// Out-of-range accesses panic: in this simulation they indicate a PE
/// configuration bug (the hardware equivalent would be an AXI SLVERR).
#[derive(Debug, Clone, Default)]
pub struct VecMem {
    bytes: Vec<u8>,
}

impl VecMem {
    /// Create a zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        Self { bytes: vec![0; size] }
    }

    /// Create a memory initialized with `data`.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self { bytes: data }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Borrow the underlying bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutably borrow the underlying bytes.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes
    }
}

impl MemBus for VecMem {
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        let start = addr as usize;
        buf.copy_from_slice(&self.bytes[start..start + buf.len()]);
    }

    fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let start = addr as usize;
        self.bytes[start..start + data.len()].copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut m = VecMem::new(64);
        m.write_bytes(8, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read_bytes(8, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(m.len(), 64);
        assert!(!m.is_empty());
    }

    #[test]
    fn unwritten_regions_read_zero() {
        let mut m = VecMem::new(16);
        let mut buf = [0xAAu8; 16];
        m.read_bytes(0, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_access_panics() {
        let mut m = VecMem::new(8);
        let mut buf = [0u8; 4];
        m.read_bytes(6, &mut buf);
    }
}
