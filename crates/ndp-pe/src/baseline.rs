//! The hand-crafted baseline PEs of Vinçon et al. \[1\].
//!
//! The paper compares its generated accelerators against the manually
//! developed PEs of the original nKV work. Functionally those PEs compute
//! the same filter/transform, but the template differs in exactly the ways
//! the paper calls out:
//!
//! * the Load and Store units are **fully static**: they always move
//!   *complete* 32 KiB blocks, so `SRC_LEN` is ignored and every result
//!   block causes a full block of write traffic (higher memory
//!   contention);
//! * only a **single** filtering stage exists (predicate chaining "was
//!   not possible with the architecture in \[1\]");
//! * the **operator set is fixed** to the standard comparators (no custom
//!   operator hook);
//! * no BRAM is used (Table I note), and the hand-specialized tuple
//!   buffers are cheaper in logic — see `ndp-hdl`'s resource model.

use crate::membus::MemBus;
use crate::pipeline::{BlockResult, PeSim};
use crate::regs::{Mmio, RegisterMap};
use crate::PeDevice;
use ndp_ir::{IrError, IrResult, PeConfig};

/// A hand-crafted nKV baseline PE (functional + timing model).
pub struct BaselinePe {
    inner: PeSim,
}

impl BaselinePe {
    /// Build the baseline equivalent of `cfg`.
    ///
    /// Fails if `cfg` requests capabilities the \[1\] architecture does
    /// not have (multiple stages or custom operators).
    pub fn new(mut cfg: PeConfig) -> IrResult<Self> {
        if cfg.stages != 1 {
            return Err(IrError::UnsupportedByBaseline {
                parser: cfg.name.clone(),
                reason: format!("a chain of {} filtering stages", cfg.stages),
            });
        }
        if !cfg.aggregates.is_empty() {
            return Err(IrError::UnsupportedByBaseline {
                parser: cfg.name.clone(),
                reason: "an aggregation unit".into(),
            });
        }
        if let Some(custom) = cfg.operators.iter().find(|o| o.op.is_none()) {
            return Err(IrError::UnsupportedByBaseline {
                parser: cfg.name.clone(),
                reason: format!("the custom operator `{}`", custom.name),
            });
        }
        cfg.name = format!("{}_baseline", cfg.name);
        Ok(Self { inner: PeSim::with_flexibility(cfg, false) })
    }

    /// The underlying configuration.
    pub fn config(&self) -> &PeConfig {
        self.inner.config()
    }

    /// The baseline register map (single stage).
    pub fn register_map(&self) -> &RegisterMap {
        self.inner.register_map()
    }
}

impl Mmio for BaselinePe {
    fn mmio_read(&mut self, offset: u32) -> u32 {
        self.inner.mmio_read(offset)
    }

    fn mmio_write(&mut self, offset: u32, value: u32) {
        self.inner.mmio_write(offset, value)
    }
}

impl PeDevice for BaselinePe {
    fn execute(&mut self, mem: &mut dyn MemBus) -> BlockResult {
        self.inner.execute(mem)
    }

    fn stages(&self) -> u32 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membus::VecMem;
    use crate::regs::offsets;
    use ndp_ir::{elaborate, elaborate_with_custom_ops};
    use ndp_spec::parse;

    const REFS: &str = "
        /* @autogen define parser RefPe with input = Ref, output = Ref */
        typedef struct { uint64_t src; uint64_t dst; uint32_t weight; } Ref;
    ";

    #[test]
    fn baseline_matches_generated_results() {
        let cfg = elaborate(&parse(REFS).unwrap(), "RefPe").unwrap();
        let chunk = cfg.chunk_bytes;
        let mut gen = PeSim::new(cfg.clone());
        let mut base = BaselinePe::new(cfg.clone()).unwrap();

        // One full 32 KiB block of refs.
        let mut mem = VecMem::new(1 << 20);
        let mut bytes = Vec::new();
        let mut i = 0u64;
        while bytes.len() + 20 <= chunk as usize {
            bytes.extend_from_slice(&i.to_le_bytes());
            bytes.extend_from_slice(&(i * 3).to_le_bytes());
            bytes.extend_from_slice(&((i % 97) as u32).to_le_bytes());
            i += 1;
        }
        bytes.resize(chunk as usize, 0);
        mem.write_bytes(0, &bytes);

        let gt = cfg.op_code("gt").unwrap();
        let mut run = |pe: &mut dyn PeDevice, dst: u64| {
            use offsets::*;
            pe.mmio_write(SRC_ADDR_LO, 0);
            pe.mmio_write(SRC_LEN, chunk);
            pe.mmio_write(DST_ADDR_LO, dst as u32);
            pe.mmio_write(DST_ADDR_HI, (dst >> 32) as u32);
            pe.mmio_write(DST_CAPACITY, chunk);
            pe.mmio_write(STAGE_BASE + STAGE_FIELD, 2); // weight lane
            pe.mmio_write(STAGE_BASE + STAGE_OP, gt);
            pe.mmio_write(STAGE_BASE + STAGE_VAL_LO, 50);
            pe.mmio_write(START, 1);
            pe.execute(&mut mem)
        };
        let rg = run(&mut gen, 0x40000);
        let rb = run(&mut base, 0x80000);

        assert_eq!(rg.tuples_in, rb.tuples_in);
        assert_eq!(rg.tuples_out, rb.tuples_out);
        assert_eq!(rg.result_bytes, rb.result_bytes);
        // ... but the baseline causes more write traffic (full block).
        assert_eq!(rb.bytes_written, chunk);
        assert!(rg.bytes_written < rb.bytes_written);
    }

    #[test]
    fn baseline_rejects_multi_stage_configs() {
        let src = "
            /* @autogen define parser R with input = T, output = T, stages = 2 */
            typedef struct { uint32_t v; } T;
        ";
        let cfg = elaborate(&parse(src).unwrap(), "R").unwrap();
        assert!(BaselinePe::new(cfg).is_err());
    }

    #[test]
    fn baseline_rejects_custom_operators() {
        let src = "
            /* @autogen define parser R with input = T, output = T,
               operators = { eq, magic } */
            typedef struct { uint32_t v; } T;
        ";
        let m = parse(src).unwrap();
        let cfg = elaborate_with_custom_ops(&m, "R", &["magic"]).unwrap();
        assert!(BaselinePe::new(cfg).is_err());
    }

    #[test]
    fn baseline_name_is_tagged() {
        let cfg = elaborate(&parse(REFS).unwrap(), "RefPe").unwrap();
        let base = BaselinePe::new(cfg).unwrap();
        assert_eq!(base.config().name, "RefPe_baseline");
    }
}
