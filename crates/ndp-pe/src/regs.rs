//! The control register file (architectural template component (a)).
//!
//! The register map is *generated* from the PE configuration — the number
//! of filtering stages determines how many `FILTER_*` register groups
//! exist — and is the contract shared between the hardware model
//! ([`RegState`]) and the generated software interface (`ndp-swgen`
//! renders the same [`RegisterMap`] into the header-only C library of
//! the paper's Fig. 6).

use ndp_ir::PeConfig;

/// Register access class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read/write from the CPU.
    ReadWrite,
    /// Read-only status/result register.
    ReadOnly,
}

/// One 32-bit control register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegDef {
    /// Macro-style name (`FILTER_OP_0`).
    pub name: String,
    /// Byte offset within the PE's register window.
    pub offset: u32,
    pub access: Access,
    /// One-line description rendered into the generated header.
    pub doc: String,
}

/// The generated register map of one PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterMap {
    pub regs: Vec<RegDef>,
    /// Number of filtering stages the map was generated for.
    pub stages: u32,
}

/// Fixed register offsets (stage-independent part of the map).
pub mod offsets {
    /// Write 1 to start processing the configured block.
    pub const START: u32 = 0x00;
    /// Bit 0: BUSY; bit 1: DONE since last START.
    pub const STATUS: u32 = 0x04;
    pub const SRC_ADDR_LO: u32 = 0x08;
    pub const SRC_ADDR_HI: u32 = 0x0C;
    /// Bytes to load; flexible units honour any value up to the chunk
    /// size, the fixed units of [1] ignore it and always move 32 KiB.
    pub const SRC_LEN: u32 = 0x10;
    pub const DST_ADDR_LO: u32 = 0x14;
    pub const DST_ADDR_HI: u32 = 0x18;
    pub const DST_CAPACITY: u32 = 0x1C;
    /// Bytes of result actually produced (read-only).
    pub const RESULT_BYTES: u32 = 0x20;
    pub const TUPLES_IN: u32 = 0x24;
    pub const TUPLES_OUT: u32 = 0x28;
    pub const VERSION: u32 = 0x2C;
    /// First per-stage group; each group is [`STAGE_STRIDE`] bytes.
    pub const STAGE_BASE: u32 = 0x30;
    pub const STAGE_STRIDE: u32 = 0x10;
    /// Within a stage group: lane selector.
    pub const STAGE_FIELD: u32 = 0x0;
    /// Within a stage group: operator code.
    pub const STAGE_OP: u32 = 0x4;
    /// Within a stage group: reference value, low half.
    pub const STAGE_VAL_LO: u32 = 0x8;
    /// Within a stage group: reference value, high half.
    pub const STAGE_VAL_HI: u32 = 0xC;
}

/// Aggregation register offsets *relative to* `FILTER_COUNTER`
/// (present only when the configuration requests aggregates).
pub mod agg_offsets {
    /// Lane whose values feed the Aggregation Unit.
    pub const AGG_FIELD: u32 = 0x4;
    /// Reduction select (0 = disabled; see `ndp_ir::AggOp::code`).
    pub const AGG_OP: u32 = 0x8;
    /// Accumulator, low half (read-only).
    pub const AGG_RESULT_LO: u32 = 0xC;
    /// Accumulator, high half (read-only).
    pub const AGG_RESULT_HI: u32 = 0x10;
}

/// Value reported by the `VERSION` register of this template generation.
pub const TEMPLATE_VERSION: u32 = 0x0002_0001;

impl RegisterMap {
    /// Generate the register map for `cfg`.
    pub fn for_config(cfg: &PeConfig) -> Self {
        let mut map = Self::for_stages(cfg.stages);
        if !cfg.aggregates.is_empty() {
            let fc = map.filter_counter_offset();
            map.regs.push(RegDef {
                name: "AGG_FIELD".into(),
                offset: fc + agg_offsets::AGG_FIELD,
                access: Access::ReadWrite,
                doc: "Aggregation Unit: lane select".into(),
            });
            map.regs.push(RegDef {
                name: "AGG_OP".into(),
                offset: fc + agg_offsets::AGG_OP,
                access: Access::ReadWrite,
                doc: "Aggregation Unit: reduction select (0 = off)".into(),
            });
            map.regs.push(RegDef {
                name: "AGG_RESULT_LO".into(),
                offset: fc + agg_offsets::AGG_RESULT_LO,
                access: Access::ReadOnly,
                doc: "Aggregation accumulator, low 32 bit".into(),
            });
            map.regs.push(RegDef {
                name: "AGG_RESULT_HI".into(),
                offset: fc + agg_offsets::AGG_RESULT_HI,
                access: Access::ReadOnly,
                doc: "Aggregation accumulator, high 32 bit".into(),
            });
        }
        map
    }

    /// Generate a map for an explicit stage count.
    pub fn for_stages(stages: u32) -> Self {
        use offsets::*;
        let mut regs = vec![
            RegDef {
                name: "START".into(),
                offset: START,
                access: Access::ReadWrite,
                doc: "Write 1 to start processing the configured block".into(),
            },
            RegDef {
                name: "STATUS".into(),
                offset: STATUS,
                access: Access::ReadOnly,
                doc: "Bit 0: BUSY, bit 1: DONE".into(),
            },
            RegDef {
                name: "SRC_ADDR_LO".into(),
                offset: SRC_ADDR_LO,
                access: Access::ReadWrite,
                doc: "Source address in PS-DRAM, low 32 bit".into(),
            },
            RegDef {
                name: "SRC_ADDR_HI".into(),
                offset: SRC_ADDR_HI,
                access: Access::ReadWrite,
                doc: "Source address in PS-DRAM, high 32 bit".into(),
            },
            RegDef {
                name: "SRC_LEN".into(),
                offset: SRC_LEN,
                access: Access::ReadWrite,
                doc: "Bytes to load (partial blocks supported by this work)".into(),
            },
            RegDef {
                name: "DST_ADDR_LO".into(),
                offset: DST_ADDR_LO,
                access: Access::ReadWrite,
                doc: "Destination address in PS-DRAM, low 32 bit".into(),
            },
            RegDef {
                name: "DST_ADDR_HI".into(),
                offset: DST_ADDR_HI,
                access: Access::ReadWrite,
                doc: "Destination address in PS-DRAM, high 32 bit".into(),
            },
            RegDef {
                name: "DST_CAPACITY".into(),
                offset: DST_CAPACITY,
                access: Access::ReadWrite,
                doc: "Result buffer capacity in bytes".into(),
            },
            RegDef {
                name: "RESULT_BYTES".into(),
                offset: RESULT_BYTES,
                access: Access::ReadOnly,
                doc: "Bytes of result written back".into(),
            },
            RegDef {
                name: "TUPLES_IN".into(),
                offset: TUPLES_IN,
                access: Access::ReadOnly,
                doc: "Tuples parsed from the input stream".into(),
            },
            RegDef {
                name: "TUPLES_OUT".into(),
                offset: TUPLES_OUT,
                access: Access::ReadOnly,
                doc: "Tuples that passed all filter stages".into(),
            },
            RegDef {
                name: "VERSION".into(),
                offset: VERSION,
                access: Access::ReadOnly,
                doc: "Template generation version".into(),
            },
        ];
        for s in 0..stages {
            let base = STAGE_BASE + s * STAGE_STRIDE;
            regs.push(RegDef {
                name: format!("FILTER_FIELD_{s}"),
                offset: base + STAGE_FIELD,
                access: Access::ReadWrite,
                doc: format!("Stage {s}: comparator lane select"),
            });
            regs.push(RegDef {
                name: format!("FILTER_OP_{s}"),
                offset: base + STAGE_OP,
                access: Access::ReadWrite,
                doc: format!("Stage {s}: operator code (0 = nop)"),
            });
            regs.push(RegDef {
                name: format!("FILTER_VAL_LO_{s}"),
                offset: base + STAGE_VAL_LO,
                access: Access::ReadWrite,
                doc: format!("Stage {s}: reference value, low 32 bit"),
            });
            regs.push(RegDef {
                name: format!("FILTER_VAL_HI_{s}"),
                offset: base + STAGE_VAL_HI,
                access: Access::ReadWrite,
                doc: format!("Stage {s}: reference value, high 32 bit"),
            });
        }
        regs.push(RegDef {
            name: "FILTER_COUNTER".into(),
            offset: STAGE_BASE + stages * STAGE_STRIDE,
            access: Access::ReadOnly,
            doc: "Tuples that passed the final filtering stage".into(),
        });
        RegisterMap { regs, stages }
    }

    /// Number of registers (determines the generated RegFile size).
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True if the map has no registers (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Offset of the `FILTER_COUNTER` register.
    pub fn filter_counter_offset(&self) -> u32 {
        offsets::STAGE_BASE + self.stages * offsets::STAGE_STRIDE
    }

    /// Look up a register by name.
    pub fn by_name(&self, name: &str) -> Option<&RegDef> {
        self.regs.iter().find(|r| r.name == name)
    }
}

/// Memory-mapped I/O interface of a PE as seen from the ARM core.
pub trait Mmio {
    /// Read the 32-bit register at byte offset `offset`.
    fn mmio_read(&mut self, offset: u32) -> u32;

    /// Write the 32-bit register at byte offset `offset`.
    fn mmio_write(&mut self, offset: u32, value: u32);
}

/// Software-visible register state shared by the generated and the
/// baseline PE models.
#[derive(Debug, Clone)]
pub struct RegState {
    pub start_pending: bool,
    pub busy: bool,
    pub done: bool,
    pub src_addr: u64,
    pub src_len: u32,
    pub dst_addr: u64,
    pub dst_capacity: u32,
    pub result_bytes: u32,
    pub tuples_in: u32,
    pub tuples_out: u32,
    /// Per-stage (field, op, value) configuration.
    pub filters: Vec<(u32, u32, u64)>,
    pub filter_counter: u32,
    /// Aggregation configuration (lane, reduction code) and accumulator.
    pub agg_field: u32,
    pub agg_op: u32,
    pub agg_result: u64,
    /// Whether the aggregation registers exist on this PE.
    pub has_agg: bool,
    stages: u32,
}

impl RegState {
    /// Zero-initialized state for `stages` filtering stages. All filter
    /// ops start as `nop` (code 0), matching the hardware reset value.
    pub fn new(stages: u32) -> Self {
        Self {
            start_pending: false,
            busy: false,
            done: false,
            src_addr: 0,
            src_len: 0,
            dst_addr: 0,
            dst_capacity: 0,
            result_bytes: 0,
            tuples_in: 0,
            tuples_out: 0,
            filters: vec![(0, 0, 0); stages as usize],
            filter_counter: 0,
            agg_field: 0,
            agg_op: 0,
            agg_result: 0,
            has_agg: false,
            stages,
        }
    }

    fn stage_reg(&mut self, offset: u32) -> Option<(&mut (u32, u32, u64), u32)> {
        use offsets::*;
        if offset < STAGE_BASE {
            return None;
        }
        let rel = offset - STAGE_BASE;
        let stage = rel / STAGE_STRIDE;
        if stage >= self.stages {
            return None;
        }
        Some((&mut self.filters[stage as usize], rel % STAGE_STRIDE))
    }

    /// MMIO read dispatch (shared by both PE models).
    pub fn read(&mut self, offset: u32) -> u32 {
        use offsets::*;
        match offset {
            START => 0,
            STATUS => u32::from(self.busy) | (u32::from(self.done) << 1),
            SRC_ADDR_LO => self.src_addr as u32,
            SRC_ADDR_HI => (self.src_addr >> 32) as u32,
            SRC_LEN => self.src_len,
            DST_ADDR_LO => self.dst_addr as u32,
            DST_ADDR_HI => (self.dst_addr >> 32) as u32,
            DST_CAPACITY => self.dst_capacity,
            RESULT_BYTES => self.result_bytes,
            TUPLES_IN => self.tuples_in,
            TUPLES_OUT => self.tuples_out,
            VERSION => TEMPLATE_VERSION,
            _ => {
                let fc = STAGE_BASE + self.stages * STAGE_STRIDE;
                if offset == fc {
                    return self.filter_counter;
                }
                if self.has_agg {
                    match offset.checked_sub(fc) {
                        Some(crate::regs::agg_offsets::AGG_FIELD) => return self.agg_field,
                        Some(crate::regs::agg_offsets::AGG_OP) => return self.agg_op,
                        Some(crate::regs::agg_offsets::AGG_RESULT_LO) => {
                            return self.agg_result as u32
                        }
                        Some(crate::regs::agg_offsets::AGG_RESULT_HI) => {
                            return (self.agg_result >> 32) as u32
                        }
                        _ => {}
                    }
                }
                if let Some((f, field)) = self.stage_reg(offset) {
                    return match field {
                        STAGE_FIELD => f.0,
                        STAGE_OP => f.1,
                        STAGE_VAL_LO => f.2 as u32,
                        STAGE_VAL_HI => (f.2 >> 32) as u32,
                        _ => 0,
                    };
                }
                0
            }
        }
    }

    /// MMIO write dispatch (shared by both PE models).
    pub fn write(&mut self, offset: u32, value: u32) {
        use offsets::*;
        match offset {
            START => {
                if value & 1 != 0 {
                    self.start_pending = true;
                    self.done = false;
                }
            }
            SRC_ADDR_LO => {
                self.src_addr = (self.src_addr & !0xFFFF_FFFF) | u64::from(value);
            }
            SRC_ADDR_HI => {
                self.src_addr = (self.src_addr & 0xFFFF_FFFF) | (u64::from(value) << 32);
            }
            SRC_LEN => self.src_len = value,
            DST_ADDR_LO => {
                self.dst_addr = (self.dst_addr & !0xFFFF_FFFF) | u64::from(value);
            }
            DST_ADDR_HI => {
                self.dst_addr = (self.dst_addr & 0xFFFF_FFFF) | (u64::from(value) << 32);
            }
            DST_CAPACITY => self.dst_capacity = value,
            _ => {
                let fc = STAGE_BASE + self.stages * STAGE_STRIDE;
                if self.has_agg {
                    match offset.checked_sub(fc) {
                        Some(crate::regs::agg_offsets::AGG_FIELD) => {
                            self.agg_field = value;
                            return;
                        }
                        Some(crate::regs::agg_offsets::AGG_OP) => {
                            self.agg_op = value;
                            return;
                        }
                        _ => {}
                    }
                }
                if let Some((f, field)) = self.stage_reg(offset) {
                    match field {
                        STAGE_FIELD => f.0 = value,
                        STAGE_OP => f.1 = value,
                        STAGE_VAL_LO => f.2 = (f.2 & !0xFFFF_FFFF) | u64::from(value),
                        STAGE_VAL_HI => f.2 = (f.2 & 0xFFFF_FFFF) | (u64::from(value) << 32),
                        _ => {}
                    }
                }
                // Writes to read-only or unmapped registers are ignored,
                // matching AXI-Lite slaves that OKAY but discard.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_has_fixed_plus_per_stage_registers() {
        let m1 = RegisterMap::for_stages(1);
        let m3 = RegisterMap::for_stages(3);
        assert_eq!(m1.len(), 12 + 4 + 1);
        assert_eq!(m3.len(), 12 + 12 + 1);
        assert_eq!(m3.by_name("FILTER_VAL_HI_2").unwrap().offset, 0x30 + 2 * 0x10 + 0xC);
    }

    #[test]
    fn filter_counter_sits_after_last_stage_group() {
        let m = RegisterMap::for_stages(2);
        assert_eq!(m.filter_counter_offset(), 0x30 + 2 * 0x10);
        assert_eq!(m.by_name("FILTER_COUNTER").unwrap().offset, m.filter_counter_offset());
    }

    #[test]
    fn offsets_are_unique_and_word_aligned() {
        let m = RegisterMap::for_stages(5);
        let mut seen = std::collections::HashSet::new();
        for r in &m.regs {
            assert_eq!(r.offset % 4, 0, "{} not word aligned", r.name);
            assert!(seen.insert(r.offset), "duplicate offset {:#x}", r.offset);
        }
    }

    #[test]
    fn state_addr_halves_combine() {
        let mut s = RegState::new(1);
        s.write(offsets::SRC_ADDR_LO, 0xDEAD_BEEF);
        s.write(offsets::SRC_ADDR_HI, 0x1);
        assert_eq!(s.src_addr, 0x1_DEAD_BEEF);
        assert_eq!(s.read(offsets::SRC_ADDR_LO), 0xDEAD_BEEF);
        assert_eq!(s.read(offsets::SRC_ADDR_HI), 0x1);
    }

    #[test]
    fn filter_value_halves_combine() {
        let mut s = RegState::new(2);
        let base = offsets::STAGE_BASE + offsets::STAGE_STRIDE; // stage 1
        s.write(base + offsets::STAGE_VAL_LO, 0x3333_2222);
        s.write(base + offsets::STAGE_VAL_HI, 0x0000_1111);
        assert_eq!(s.filters[1].2, 0x0000_1111_3333_2222);
        assert_eq!(s.filters[0].2, 0);
    }

    #[test]
    fn start_sets_pending_and_clears_done() {
        let mut s = RegState::new(1);
        s.done = true;
        s.write(offsets::START, 1);
        assert!(s.start_pending);
        assert!(!s.done);
        // Writing 0 does nothing.
        let mut s2 = RegState::new(1);
        s2.write(offsets::START, 0);
        assert!(!s2.start_pending);
    }

    #[test]
    fn status_encodes_busy_and_done() {
        let mut s = RegState::new(1);
        s.busy = true;
        assert_eq!(s.read(offsets::STATUS), 1);
        s.busy = false;
        s.done = true;
        assert_eq!(s.read(offsets::STATUS), 2);
    }

    #[test]
    fn out_of_range_stage_registers_are_inert() {
        let mut s = RegState::new(1);
        let beyond = offsets::STAGE_BASE + 7 * offsets::STAGE_STRIDE;
        s.write(beyond, 0xFFFF);
        assert_eq!(s.read(beyond), 0);
    }

    #[test]
    fn read_only_registers_ignore_writes() {
        let mut s = RegState::new(1);
        s.tuples_in = 42;
        s.write(offsets::TUPLES_IN, 7);
        assert_eq!(s.read(offsets::TUPLES_IN), 42);
    }

    #[test]
    fn version_register_reports_template_generation() {
        let mut s = RegState::new(1);
        assert_eq!(s.read(offsets::VERSION), TEMPLATE_VERSION);
    }

    #[test]
    fn reset_filters_are_nop() {
        let s = RegState::new(3);
        assert!(s.filters.iter().all(|&(_, op, _)| op == 0));
    }
}
