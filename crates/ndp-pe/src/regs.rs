//! The control register file (architectural template component (a)).
//!
//! The register map is *generated* from the PE configuration — the number
//! of filtering stages determines how many `FILTER_*` register groups
//! exist — and is the contract shared between the hardware model
//! ([`RegState`]) and the generated software interface (`ndp-swgen`
//! renders the same [`RegisterMap`] into the header-only C library of
//! the paper's Fig. 6).

use ndp_ir::PeConfig;

/// Register access class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read/write from the CPU.
    ReadWrite,
    /// Read-only status/result register.
    ReadOnly,
}

/// One 32-bit control register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegDef {
    /// Macro-style name (`FILTER_OP_0`).
    pub name: String,
    /// Byte offset within the PE's register window.
    pub offset: u32,
    pub access: Access,
    /// One-line description rendered into the generated header.
    pub doc: String,
}

/// The generated register map of one PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterMap {
    pub regs: Vec<RegDef>,
    /// Number of filtering stages the map was generated for.
    pub stages: u32,
    /// Number of trailing performance-counter registers (0 for the
    /// baseline maps of \[1\], which have no observability bank).
    pub perf_regs: usize,
}

/// Fixed register offsets (stage-independent part of the map).
pub mod offsets {
    /// Write 1 to start processing the configured block.
    pub const START: u32 = 0x00;
    /// Bit 0: BUSY; bit 1: DONE since last START.
    pub const STATUS: u32 = 0x04;
    pub const SRC_ADDR_LO: u32 = 0x08;
    pub const SRC_ADDR_HI: u32 = 0x0C;
    /// Bytes to load; flexible units honour any value up to the chunk
    /// size, the fixed units of [1] ignore it and always move 32 KiB.
    pub const SRC_LEN: u32 = 0x10;
    pub const DST_ADDR_LO: u32 = 0x14;
    pub const DST_ADDR_HI: u32 = 0x18;
    pub const DST_CAPACITY: u32 = 0x1C;
    /// Bytes of result actually produced (read-only).
    pub const RESULT_BYTES: u32 = 0x20;
    pub const TUPLES_IN: u32 = 0x24;
    pub const TUPLES_OUT: u32 = 0x28;
    pub const VERSION: u32 = 0x2C;
    /// First per-stage group; each group is [`STAGE_STRIDE`] bytes.
    pub const STAGE_BASE: u32 = 0x30;
    pub const STAGE_STRIDE: u32 = 0x10;
    /// Within a stage group: lane selector.
    pub const STAGE_FIELD: u32 = 0x0;
    /// Within a stage group: operator code.
    pub const STAGE_OP: u32 = 0x4;
    /// Within a stage group: reference value, low half.
    pub const STAGE_VAL_LO: u32 = 0x8;
    /// Within a stage group: reference value, high half.
    pub const STAGE_VAL_HI: u32 = 0xC;
}

/// Aggregation register offsets *relative to* `FILTER_COUNTER`
/// (present only when the configuration requests aggregates).
pub mod agg_offsets {
    /// Lane whose values feed the Aggregation Unit.
    pub const AGG_FIELD: u32 = 0x4;
    /// Reduction select (0 = disabled; see `ndp_ir::AggOp::code`).
    pub const AGG_OP: u32 = 0x8;
    /// Accumulator, low half (read-only).
    pub const AGG_RESULT_LO: u32 = 0xC;
    /// Accumulator, high half (read-only).
    pub const AGG_RESULT_HI: u32 = 0x10;
}

/// Performance-counter register offsets *relative to* `FILTER_COUNTER`.
/// The bank sits after the aggregation window (which is reserved even on
/// PEs without an Aggregation Unit), so its placement depends only on the
/// stage count. All counters are read-only, cumulative across blocks,
/// and cleared together by writing 1 to `CNT_CTRL`. Hardware counters
/// are 32 bit and wrap; the simulator tracks 64 bit internally and
/// exposes the low word, which is what a wrapping counter would show.
pub mod perf_offsets {
    /// Write 1 to clear every performance counter. Reads as 0.
    pub const CNT_CTRL: u32 = 0x14;
    /// Tuples parsed from the input stream since the last clear.
    pub const CNT_TUPLES_IN: u32 = 0x18;
    /// Tuples that passed the final filtering stage since the last clear.
    pub const CNT_TUPLES_OUT: u32 = 0x1C;
    /// Cycles the Load Unit had a beat ready but the input buffer was full.
    pub const CNT_IN_STALL: u32 = 0x20;
    /// Cycles a transformed tuple waited for room in the output buffer.
    pub const CNT_OUT_STALL: u32 = 0x24;
    /// Cycles in which at least one pipeline unit made progress.
    pub const CNT_ACTIVE: u32 = 0x28;
    /// Cycles in which no unit made progress (AXI latency, drain bubbles).
    pub const CNT_IDLE: u32 = 0x2C;
    /// 64-bit beats fetched by the Load Unit.
    pub const CNT_LOAD_BEATS: u32 = 0x30;
    /// 64-bit beats written by the Store Unit.
    pub const CNT_STORE_BEATS: u32 = 0x34;
    /// First per-stage drop counter; one 32-bit word per filtering stage.
    pub const CNT_STAGE_DROP_BASE: u32 = 0x38;
}

/// Value reported by the `VERSION` register of this template generation
/// (minor bump 1 → 2: the performance-counter bank joined the contract).
pub const TEMPLATE_VERSION: u32 = 0x0002_0002;

impl RegisterMap {
    /// Generate the register map for `cfg`.
    pub fn for_config(cfg: &PeConfig) -> Self {
        let mut map = Self::for_stages(cfg.stages);
        if !cfg.aggregates.is_empty() {
            let fc = map.filter_counter_offset();
            map.regs.push(RegDef {
                name: "AGG_FIELD".into(),
                offset: fc + agg_offsets::AGG_FIELD,
                access: Access::ReadWrite,
                doc: "Aggregation Unit: lane select".into(),
            });
            map.regs.push(RegDef {
                name: "AGG_OP".into(),
                offset: fc + agg_offsets::AGG_OP,
                access: Access::ReadWrite,
                doc: "Aggregation Unit: reduction select (0 = off)".into(),
            });
            map.regs.push(RegDef {
                name: "AGG_RESULT_LO".into(),
                offset: fc + agg_offsets::AGG_RESULT_LO,
                access: Access::ReadOnly,
                doc: "Aggregation accumulator, low 32 bit".into(),
            });
            map.regs.push(RegDef {
                name: "AGG_RESULT_HI".into(),
                offset: fc + agg_offsets::AGG_RESULT_HI,
                access: Access::ReadOnly,
                doc: "Aggregation accumulator, high 32 bit".into(),
            });
        }
        map.push_perf_bank();
        map
    }

    /// Append the performance-counter bank (generated PEs only; the
    /// hand-crafted PEs of \[1\] keep the bare [`Self::for_stages`] map).
    fn push_perf_bank(&mut self) {
        use perf_offsets::*;
        let fc = self.filter_counter_offset();
        let before = self.regs.len();
        self.regs.push(RegDef {
            name: "CNT_CTRL".into(),
            offset: fc + CNT_CTRL,
            access: Access::ReadWrite,
            doc: "Write 1 to clear all performance counters".into(),
        });
        let counters: [(&str, u32, &str); 8] = [
            ("CNT_TUPLES_IN", CNT_TUPLES_IN, "Perf: tuples parsed since last clear"),
            ("CNT_TUPLES_OUT", CNT_TUPLES_OUT, "Perf: tuples that passed all stages"),
            ("CNT_IN_STALL", CNT_IN_STALL, "Perf: cycles the Load Unit stalled on a full buffer"),
            ("CNT_OUT_STALL", CNT_OUT_STALL, "Perf: cycles a tuple waited on the output buffer"),
            ("CNT_ACTIVE", CNT_ACTIVE, "Perf: cycles with pipeline progress"),
            ("CNT_IDLE", CNT_IDLE, "Perf: cycles without pipeline progress"),
            ("CNT_LOAD_BEATS", CNT_LOAD_BEATS, "Perf: 64-bit beats loaded from DRAM"),
            ("CNT_STORE_BEATS", CNT_STORE_BEATS, "Perf: 64-bit beats stored to DRAM"),
        ];
        for (name, off, doc) in counters {
            self.regs.push(RegDef {
                name: name.into(),
                offset: fc + off,
                access: Access::ReadOnly,
                doc: doc.into(),
            });
        }
        for s in 0..self.stages {
            self.regs.push(RegDef {
                name: format!("CNT_STAGE_DROP_{s}"),
                offset: fc + CNT_STAGE_DROP_BASE + 4 * s,
                access: Access::ReadOnly,
                doc: format!("Perf: tuples dropped by filtering stage {s}"),
            });
        }
        self.perf_regs = self.regs.len() - before;
    }

    /// Generate a map for an explicit stage count.
    pub fn for_stages(stages: u32) -> Self {
        use offsets::*;
        let mut regs = vec![
            RegDef {
                name: "START".into(),
                offset: START,
                access: Access::ReadWrite,
                doc: "Write 1 to start processing the configured block".into(),
            },
            RegDef {
                name: "STATUS".into(),
                offset: STATUS,
                access: Access::ReadOnly,
                doc: "Bit 0: BUSY, bit 1: DONE".into(),
            },
            RegDef {
                name: "SRC_ADDR_LO".into(),
                offset: SRC_ADDR_LO,
                access: Access::ReadWrite,
                doc: "Source address in PS-DRAM, low 32 bit".into(),
            },
            RegDef {
                name: "SRC_ADDR_HI".into(),
                offset: SRC_ADDR_HI,
                access: Access::ReadWrite,
                doc: "Source address in PS-DRAM, high 32 bit".into(),
            },
            RegDef {
                name: "SRC_LEN".into(),
                offset: SRC_LEN,
                access: Access::ReadWrite,
                doc: "Bytes to load (partial blocks supported by this work)".into(),
            },
            RegDef {
                name: "DST_ADDR_LO".into(),
                offset: DST_ADDR_LO,
                access: Access::ReadWrite,
                doc: "Destination address in PS-DRAM, low 32 bit".into(),
            },
            RegDef {
                name: "DST_ADDR_HI".into(),
                offset: DST_ADDR_HI,
                access: Access::ReadWrite,
                doc: "Destination address in PS-DRAM, high 32 bit".into(),
            },
            RegDef {
                name: "DST_CAPACITY".into(),
                offset: DST_CAPACITY,
                access: Access::ReadWrite,
                doc: "Result buffer capacity in bytes".into(),
            },
            RegDef {
                name: "RESULT_BYTES".into(),
                offset: RESULT_BYTES,
                access: Access::ReadOnly,
                doc: "Bytes of result written back".into(),
            },
            RegDef {
                name: "TUPLES_IN".into(),
                offset: TUPLES_IN,
                access: Access::ReadOnly,
                doc: "Tuples parsed from the input stream".into(),
            },
            RegDef {
                name: "TUPLES_OUT".into(),
                offset: TUPLES_OUT,
                access: Access::ReadOnly,
                doc: "Tuples that passed all filter stages".into(),
            },
            RegDef {
                name: "VERSION".into(),
                offset: VERSION,
                access: Access::ReadOnly,
                doc: "Template generation version".into(),
            },
        ];
        for s in 0..stages {
            let base = STAGE_BASE + s * STAGE_STRIDE;
            regs.push(RegDef {
                name: format!("FILTER_FIELD_{s}"),
                offset: base + STAGE_FIELD,
                access: Access::ReadWrite,
                doc: format!("Stage {s}: comparator lane select"),
            });
            regs.push(RegDef {
                name: format!("FILTER_OP_{s}"),
                offset: base + STAGE_OP,
                access: Access::ReadWrite,
                doc: format!("Stage {s}: operator code (0 = nop)"),
            });
            regs.push(RegDef {
                name: format!("FILTER_VAL_LO_{s}"),
                offset: base + STAGE_VAL_LO,
                access: Access::ReadWrite,
                doc: format!("Stage {s}: reference value, low 32 bit"),
            });
            regs.push(RegDef {
                name: format!("FILTER_VAL_HI_{s}"),
                offset: base + STAGE_VAL_HI,
                access: Access::ReadWrite,
                doc: format!("Stage {s}: reference value, high 32 bit"),
            });
        }
        regs.push(RegDef {
            name: "FILTER_COUNTER".into(),
            offset: STAGE_BASE + stages * STAGE_STRIDE,
            access: Access::ReadOnly,
            doc: "Tuples that passed the final filtering stage".into(),
        });
        RegisterMap { regs, stages, perf_regs: 0 }
    }

    /// Number of registers (determines the generated RegFile size).
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True if the map has no registers (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Offset of the `FILTER_COUNTER` register.
    pub fn filter_counter_offset(&self) -> u32 {
        offsets::STAGE_BASE + self.stages * offsets::STAGE_STRIDE
    }

    /// Look up a register by name.
    pub fn by_name(&self, name: &str) -> Option<&RegDef> {
        self.regs.iter().find(|r| r.name == name)
    }
}

/// Memory-mapped I/O interface of a PE as seen from the ARM core.
pub trait Mmio {
    /// Read the 32-bit register at byte offset `offset`.
    fn mmio_read(&mut self, offset: u32) -> u32;

    /// Write the 32-bit register at byte offset `offset`.
    fn mmio_write(&mut self, offset: u32, value: u32);
}

/// Cumulative hardware performance counters, cleared together through
/// `CNT_CTRL`. Tracked as `u64` so the simulator never loses precision;
/// the register interface exposes the low 32 bits (wrap semantics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfCounters {
    pub tuples_in: u64,
    pub tuples_out: u64,
    /// Cycles the Load Unit stalled on a full input buffer.
    pub in_stall: u64,
    /// Cycles a transformed tuple stalled on a full output buffer.
    pub out_stall: u64,
    /// Cycles with pipeline progress in at least one unit.
    pub active: u64,
    /// Cycles without any pipeline progress.
    pub idle: u64,
    /// 64-bit beats loaded from DRAM.
    pub load_beats: u64,
    /// 64-bit beats stored to DRAM.
    pub store_beats: u64,
    /// Tuples dropped per filtering stage.
    pub stage_drops: Vec<u64>,
}

impl PerfCounters {
    /// Zeroed counters for a PE with `stages` filtering stages.
    pub fn new(stages: u32) -> Self {
        Self { stage_drops: vec![0; stages as usize], ..Self::default() }
    }

    /// Clear every counter (the `CNT_CTRL` write-1 action).
    pub fn reset(&mut self) {
        let stages = self.stage_drops.len();
        *self = Self { stage_drops: vec![0; stages], ..Self::default() };
    }

    /// Tuples dropped across all stages.
    pub fn dropped_total(&self) -> u64 {
        self.stage_drops.iter().sum()
    }
}

/// Software-visible register state shared by the generated and the
/// baseline PE models.
#[derive(Debug, Clone)]
pub struct RegState {
    pub start_pending: bool,
    pub busy: bool,
    pub done: bool,
    pub src_addr: u64,
    pub src_len: u32,
    pub dst_addr: u64,
    pub dst_capacity: u32,
    pub result_bytes: u32,
    pub tuples_in: u32,
    pub tuples_out: u32,
    /// Per-stage (field, op, value) configuration.
    pub filters: Vec<(u32, u32, u64)>,
    pub filter_counter: u32,
    /// Aggregation configuration (lane, reduction code) and accumulator.
    pub agg_field: u32,
    pub agg_op: u32,
    pub agg_result: u64,
    /// Whether the aggregation registers exist on this PE.
    pub has_agg: bool,
    /// Whether the performance-counter bank exists on this PE (generated
    /// template only; the hand-crafted PEs of \[1\] have no counters).
    pub has_perf: bool,
    /// Cumulative performance counters behind the `CNT_*` registers.
    pub perf: PerfCounters,
    stages: u32,
}

impl RegState {
    /// Zero-initialized state for `stages` filtering stages. All filter
    /// ops start as `nop` (code 0), matching the hardware reset value.
    pub fn new(stages: u32) -> Self {
        Self {
            start_pending: false,
            busy: false,
            done: false,
            src_addr: 0,
            src_len: 0,
            dst_addr: 0,
            dst_capacity: 0,
            result_bytes: 0,
            tuples_in: 0,
            tuples_out: 0,
            filters: vec![(0, 0, 0); stages as usize],
            filter_counter: 0,
            agg_field: 0,
            agg_op: 0,
            agg_result: 0,
            has_agg: false,
            has_perf: false,
            perf: PerfCounters::new(stages),
            stages,
        }
    }

    /// Dispatch a read of the performance-counter bank (`None` if the
    /// offset does not belong to it).
    fn perf_read(&self, rel: u32) -> Option<u32> {
        use perf_offsets::*;
        let v = match rel {
            CNT_CTRL => 0,
            CNT_TUPLES_IN => self.perf.tuples_in,
            CNT_TUPLES_OUT => self.perf.tuples_out,
            CNT_IN_STALL => self.perf.in_stall,
            CNT_OUT_STALL => self.perf.out_stall,
            CNT_ACTIVE => self.perf.active,
            CNT_IDLE => self.perf.idle,
            CNT_LOAD_BEATS => self.perf.load_beats,
            CNT_STORE_BEATS => self.perf.store_beats,
            _ => {
                if rel < CNT_STAGE_DROP_BASE || !rel.is_multiple_of(4) {
                    return None;
                }
                let s = ((rel - CNT_STAGE_DROP_BASE) / 4) as usize;
                *self.perf.stage_drops.get(s)?
            }
        };
        Some(v as u32)
    }

    fn stage_reg(&mut self, offset: u32) -> Option<(&mut (u32, u32, u64), u32)> {
        use offsets::*;
        if offset < STAGE_BASE {
            return None;
        }
        let rel = offset - STAGE_BASE;
        let stage = rel / STAGE_STRIDE;
        if stage >= self.stages {
            return None;
        }
        Some((&mut self.filters[stage as usize], rel % STAGE_STRIDE))
    }

    /// MMIO read dispatch (shared by both PE models).
    pub fn read(&mut self, offset: u32) -> u32 {
        use offsets::*;
        match offset {
            START => 0,
            STATUS => u32::from(self.busy) | (u32::from(self.done) << 1),
            SRC_ADDR_LO => self.src_addr as u32,
            SRC_ADDR_HI => (self.src_addr >> 32) as u32,
            SRC_LEN => self.src_len,
            DST_ADDR_LO => self.dst_addr as u32,
            DST_ADDR_HI => (self.dst_addr >> 32) as u32,
            DST_CAPACITY => self.dst_capacity,
            RESULT_BYTES => self.result_bytes,
            TUPLES_IN => self.tuples_in,
            TUPLES_OUT => self.tuples_out,
            VERSION => TEMPLATE_VERSION,
            _ => {
                let fc = STAGE_BASE + self.stages * STAGE_STRIDE;
                if offset == fc {
                    return self.filter_counter;
                }
                if self.has_agg {
                    match offset.checked_sub(fc) {
                        Some(crate::regs::agg_offsets::AGG_FIELD) => return self.agg_field,
                        Some(crate::regs::agg_offsets::AGG_OP) => return self.agg_op,
                        Some(crate::regs::agg_offsets::AGG_RESULT_LO) => {
                            return self.agg_result as u32
                        }
                        Some(crate::regs::agg_offsets::AGG_RESULT_HI) => {
                            return (self.agg_result >> 32) as u32
                        }
                        _ => {}
                    }
                }
                if self.has_perf {
                    if let Some(v) = offset.checked_sub(fc).and_then(|rel| self.perf_read(rel)) {
                        return v;
                    }
                }
                if let Some((f, field)) = self.stage_reg(offset) {
                    return match field {
                        STAGE_FIELD => f.0,
                        STAGE_OP => f.1,
                        STAGE_VAL_LO => f.2 as u32,
                        STAGE_VAL_HI => (f.2 >> 32) as u32,
                        _ => 0,
                    };
                }
                0
            }
        }
    }

    /// MMIO write dispatch (shared by both PE models).
    pub fn write(&mut self, offset: u32, value: u32) {
        use offsets::*;
        match offset {
            START => {
                if value & 1 != 0 {
                    self.start_pending = true;
                    self.done = false;
                }
            }
            SRC_ADDR_LO => {
                self.src_addr = (self.src_addr & !0xFFFF_FFFF) | u64::from(value);
            }
            SRC_ADDR_HI => {
                self.src_addr = (self.src_addr & 0xFFFF_FFFF) | (u64::from(value) << 32);
            }
            SRC_LEN => self.src_len = value,
            DST_ADDR_LO => {
                self.dst_addr = (self.dst_addr & !0xFFFF_FFFF) | u64::from(value);
            }
            DST_ADDR_HI => {
                self.dst_addr = (self.dst_addr & 0xFFFF_FFFF) | (u64::from(value) << 32);
            }
            DST_CAPACITY => self.dst_capacity = value,
            _ => {
                let fc = STAGE_BASE + self.stages * STAGE_STRIDE;
                if self.has_agg {
                    match offset.checked_sub(fc) {
                        Some(crate::regs::agg_offsets::AGG_FIELD) => {
                            self.agg_field = value;
                            return;
                        }
                        Some(crate::regs::agg_offsets::AGG_OP) => {
                            self.agg_op = value;
                            return;
                        }
                        _ => {}
                    }
                }
                if self.has_perf
                    && offset.checked_sub(fc) == Some(perf_offsets::CNT_CTRL)
                    && value & 1 != 0
                {
                    self.perf.reset();
                    return;
                }
                if let Some((f, field)) = self.stage_reg(offset) {
                    match field {
                        STAGE_FIELD => f.0 = value,
                        STAGE_OP => f.1 = value,
                        STAGE_VAL_LO => f.2 = (f.2 & !0xFFFF_FFFF) | u64::from(value),
                        STAGE_VAL_HI => f.2 = (f.2 & 0xFFFF_FFFF) | (u64::from(value) << 32),
                        _ => {}
                    }
                }
                // Writes to read-only or unmapped registers are ignored,
                // matching AXI-Lite slaves that OKAY but discard.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_has_fixed_plus_per_stage_registers() {
        let m1 = RegisterMap::for_stages(1);
        let m3 = RegisterMap::for_stages(3);
        assert_eq!(m1.len(), 12 + 4 + 1);
        assert_eq!(m3.len(), 12 + 12 + 1);
        assert_eq!(m3.by_name("FILTER_VAL_HI_2").unwrap().offset, 0x30 + 2 * 0x10 + 0xC);
    }

    #[test]
    fn filter_counter_sits_after_last_stage_group() {
        let m = RegisterMap::for_stages(2);
        assert_eq!(m.filter_counter_offset(), 0x30 + 2 * 0x10);
        assert_eq!(m.by_name("FILTER_COUNTER").unwrap().offset, m.filter_counter_offset());
    }

    #[test]
    fn offsets_are_unique_and_word_aligned() {
        let m = RegisterMap::for_stages(5);
        let mut seen = std::collections::HashSet::new();
        for r in &m.regs {
            assert_eq!(r.offset % 4, 0, "{} not word aligned", r.name);
            assert!(seen.insert(r.offset), "duplicate offset {:#x}", r.offset);
        }
    }

    #[test]
    fn state_addr_halves_combine() {
        let mut s = RegState::new(1);
        s.write(offsets::SRC_ADDR_LO, 0xDEAD_BEEF);
        s.write(offsets::SRC_ADDR_HI, 0x1);
        assert_eq!(s.src_addr, 0x1_DEAD_BEEF);
        assert_eq!(s.read(offsets::SRC_ADDR_LO), 0xDEAD_BEEF);
        assert_eq!(s.read(offsets::SRC_ADDR_HI), 0x1);
    }

    #[test]
    fn filter_value_halves_combine() {
        let mut s = RegState::new(2);
        let base = offsets::STAGE_BASE + offsets::STAGE_STRIDE; // stage 1
        s.write(base + offsets::STAGE_VAL_LO, 0x3333_2222);
        s.write(base + offsets::STAGE_VAL_HI, 0x0000_1111);
        assert_eq!(s.filters[1].2, 0x0000_1111_3333_2222);
        assert_eq!(s.filters[0].2, 0);
    }

    #[test]
    fn start_sets_pending_and_clears_done() {
        let mut s = RegState::new(1);
        s.done = true;
        s.write(offsets::START, 1);
        assert!(s.start_pending);
        assert!(!s.done);
        // Writing 0 does nothing.
        let mut s2 = RegState::new(1);
        s2.write(offsets::START, 0);
        assert!(!s2.start_pending);
    }

    #[test]
    fn status_encodes_busy_and_done() {
        let mut s = RegState::new(1);
        s.busy = true;
        assert_eq!(s.read(offsets::STATUS), 1);
        s.busy = false;
        s.done = true;
        assert_eq!(s.read(offsets::STATUS), 2);
    }

    #[test]
    fn out_of_range_stage_registers_are_inert() {
        let mut s = RegState::new(1);
        let beyond = offsets::STAGE_BASE + 7 * offsets::STAGE_STRIDE;
        s.write(beyond, 0xFFFF);
        assert_eq!(s.read(beyond), 0);
    }

    #[test]
    fn read_only_registers_ignore_writes() {
        let mut s = RegState::new(1);
        s.tuples_in = 42;
        s.write(offsets::TUPLES_IN, 7);
        assert_eq!(s.read(offsets::TUPLES_IN), 42);
    }

    #[test]
    fn version_register_reports_template_generation() {
        let mut s = RegState::new(1);
        assert_eq!(s.read(offsets::VERSION), TEMPLATE_VERSION);
    }

    #[test]
    fn reset_filters_are_nop() {
        let s = RegState::new(3);
        assert!(s.filters.iter().all(|&(_, op, _)| op == 0));
    }

    fn cfg(src: &str, name: &str) -> PeConfig {
        ndp_ir::elaborate(&ndp_spec::parse(src).unwrap(), name).unwrap()
    }

    const TWO_STAGE: &str = "
        /* @autogen define parser P with input = T, output = T, stages = 2 */
        typedef struct { uint32_t v; uint32_t w; } T;
    ";

    #[test]
    fn generated_map_appends_perf_bank_after_agg_window() {
        let m = RegisterMap::for_config(&cfg(TWO_STAGE, "P"));
        // 12 fixed + 2 * 4 stage regs + FILTER_COUNTER + (CNT_CTRL + 8
        // counters + 2 stage-drop counters).
        assert_eq!(m.perf_regs, 11);
        assert_eq!(m.len(), 12 + 8 + 1 + 11);
        let fc = m.filter_counter_offset();
        assert_eq!(m.by_name("CNT_CTRL").unwrap().offset, fc + perf_offsets::CNT_CTRL);
        assert_eq!(m.by_name("CNT_ACTIVE").unwrap().offset, fc + perf_offsets::CNT_ACTIVE);
        assert_eq!(
            m.by_name("CNT_STAGE_DROP_1").unwrap().offset,
            fc + perf_offsets::CNT_STAGE_DROP_BASE + 4
        );
        assert!(m.by_name("CNT_CTRL").unwrap().access == Access::ReadWrite);
        assert!(m.by_name("CNT_TUPLES_IN").unwrap().access == Access::ReadOnly);
    }

    #[test]
    fn baseline_map_has_no_perf_bank() {
        let m = RegisterMap::for_stages(1);
        assert_eq!(m.perf_regs, 0);
        assert!(m.by_name("CNT_CTRL").is_none());
    }

    #[test]
    fn generated_map_offsets_are_unique_and_word_aligned() {
        // Full map including aggregation *and* perf registers.
        let src = "
            /* @autogen define parser A with input = T, output = T, stages = 3,
               aggregate = { sum } */
            typedef struct { uint64_t k; uint32_t v; } T;
        ";
        let m = RegisterMap::for_config(&cfg(src, "A"));
        let mut seen = std::collections::HashSet::new();
        for r in &m.regs {
            assert_eq!(r.offset % 4, 0, "{} not word aligned", r.name);
            assert!(seen.insert(r.offset), "duplicate offset {:#x} ({})", r.offset, r.name);
        }
    }

    fn perf_state() -> RegState {
        let mut s = RegState::new(2);
        s.has_perf = true;
        s.perf.tuples_in = 10;
        s.perf.tuples_out = 7;
        s.perf.stage_drops = vec![2, 1];
        s.perf.active = 40;
        s.perf.idle = 8;
        s
    }

    #[test]
    fn perf_counters_read_back_and_clear_via_cnt_ctrl() {
        let mut s = perf_state();
        let fc = offsets::STAGE_BASE + 2 * offsets::STAGE_STRIDE;
        assert_eq!(s.read(fc + perf_offsets::CNT_TUPLES_IN), 10);
        assert_eq!(s.read(fc + perf_offsets::CNT_TUPLES_OUT), 7);
        assert_eq!(s.read(fc + perf_offsets::CNT_STAGE_DROP_BASE), 2);
        assert_eq!(s.read(fc + perf_offsets::CNT_STAGE_DROP_BASE + 4), 1);
        assert_eq!(s.read(fc + perf_offsets::CNT_ACTIVE), 40);
        // Writes to the read-only counters are discarded.
        s.write(fc + perf_offsets::CNT_TUPLES_IN, 99);
        assert_eq!(s.read(fc + perf_offsets::CNT_TUPLES_IN), 10);
        // Writing 0 to CNT_CTRL is a no-op; writing 1 clears everything.
        s.write(fc + perf_offsets::CNT_CTRL, 0);
        assert_eq!(s.read(fc + perf_offsets::CNT_TUPLES_IN), 10);
        s.write(fc + perf_offsets::CNT_CTRL, 1);
        assert_eq!(s.read(fc + perf_offsets::CNT_TUPLES_IN), 0);
        assert_eq!(s.read(fc + perf_offsets::CNT_STAGE_DROP_BASE), 0);
        assert_eq!(s.perf.stage_drops.len(), 2, "stage layout survives the clear");
    }

    #[test]
    fn perf_counters_expose_low_32_bits() {
        let mut s = perf_state();
        s.perf.active = (1u64 << 32) + 5;
        let fc = offsets::STAGE_BASE + 2 * offsets::STAGE_STRIDE;
        assert_eq!(s.read(fc + perf_offsets::CNT_ACTIVE), 5, "wraps like a 32-bit counter");
    }

    #[test]
    fn perf_bank_is_inert_without_has_perf() {
        let mut s = perf_state();
        s.has_perf = false;
        let fc = offsets::STAGE_BASE + 2 * offsets::STAGE_STRIDE;
        assert_eq!(s.read(fc + perf_offsets::CNT_TUPLES_IN), 0);
        s.write(fc + perf_offsets::CNT_CTRL, 1);
        assert_eq!(s.perf.tuples_in, 10, "no perf bank, no clear");
    }
}
