//! Cycle-level model of the generated PE pipeline.
//!
//! The template's units are *latency-insensitive*: every unit talks to its
//! neighbours through elastic FIFOs with ready/valid semantics, so they can
//! simply be wired up in sequence (paper, Sec. IV-B "Composition"). The
//! simulator mirrors that structure: bounded queues between stage structs,
//! one `tick` per 100 MHz PL clock cycle, downstream stages ticked first so
//! back-pressure propagates exactly like combinational ready signals.
//!
//! Steady-state throughput is `min(8 bytes/cycle memory, 1 tuple/cycle
//! compute)` — which is why the paper's multi-stage filters add only
//! marginal latency (each stage is one extra pipeline register) and why a
//! PE at 100 MHz (800 MB/s) is never the bottleneck behind ~200 MB/s of
//! flash.

use crate::membus::MemBus;
use crate::oracle::{BlockProcessor, FilterRule, OpTable};
use crate::regs::{offsets, Mmio, RegState, RegisterMap};
use crate::PeDevice;
use ndp_ir::PeConfig;
use std::collections::VecDeque;

/// Initial AXI read latency in PL cycles before the first beat arrives.
pub const MEM_LATENCY_CYCLES: u64 = 24;
/// Queue capacity (tuples) of the elastic FIFOs between units.
const FIFO_TUPLES: usize = 4;
/// Byte capacity of the word-side staging buffers.
const BYTE_BUF: usize = 64;

/// Per-block execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockResult {
    /// PL cycles from START to DONE.
    pub cycles: u64,
    /// Complete tuples parsed.
    pub tuples_in: u32,
    /// Tuples that passed all filtering stages.
    pub tuples_out: u32,
    /// Bytes read from DRAM.
    pub bytes_read: u32,
    /// Bytes written to DRAM (the fixed-block baseline always writes the
    /// full 32 KiB, so this can exceed `result_bytes`).
    pub bytes_written: u32,
    /// Result payload bytes.
    pub result_bytes: u32,
}

/// Analytic estimate of [`BlockResult::cycles`] for a block with the given
/// traffic, validated against the cycle-level model (see tests): the
/// elastic pipeline is limited by the slowest of the three streaming rates
/// plus fill/drain latency.
pub fn estimate_block_cycles(
    bytes_in: u64,
    tuples_in: u64,
    bytes_written: u64,
    stages: u32,
) -> u64 {
    let stream = (bytes_in.div_ceil(8)).max(tuples_in).max(bytes_written.div_ceil(8));
    MEM_LATENCY_CYCLES + stream + u64::from(stages) + 4
}

/// Cycle-level PE simulator (the generated, flexible variant; the
/// fixed-block behaviour of \[1\] is selected by `flexible = false` and is
/// wrapped by [`crate::BaselinePe`]).
pub struct PeSim {
    cfg: PeConfig,
    map: RegisterMap,
    regs: RegState,
    ops: OpTable,
    processor: BlockProcessor,
    flexible: bool,
    /// Cumulative statistics across blocks (for debugging/reporting).
    pub total: TotalStats,
}

/// Lifetime statistics of one PE instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TotalStats {
    pub blocks: u64,
    pub cycles: u64,
    pub tuples_in: u64,
    pub tuples_out: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

impl PeSim {
    /// Build a generated (flexible) PE from its configuration.
    pub fn new(cfg: PeConfig) -> Self {
        Self::with_flexibility(cfg, true)
    }

    /// Build with explicit flexibility (false = fixed 32 KiB blocks, the
    /// behaviour of the hand-crafted units of \[1\]).
    pub fn with_flexibility(cfg: PeConfig, flexible: bool) -> Self {
        let map = if flexible { RegisterMap::for_config(&cfg) } else { RegisterMap::for_stages(1) };
        let mut regs = RegState::new(cfg.stages);
        regs.has_agg = !cfg.aggregates.is_empty();
        // Only the generated template carries the observability bank; the
        // hand-crafted PEs of [1] expose no performance counters.
        regs.has_perf = flexible;
        let ops = OpTable::from_config(&cfg);
        let processor = BlockProcessor::new(&cfg);
        Self { cfg, map, regs, ops, processor, flexible, total: TotalStats::default() }
    }

    /// The PE's configuration.
    pub fn config(&self) -> &PeConfig {
        &self.cfg
    }

    /// The generated register map.
    pub fn register_map(&self) -> &RegisterMap {
        &self.map
    }

    /// Bind a custom comparator operator by name (must be declared in the
    /// configuration's operator set). Returns false if unknown.
    pub fn bind_custom_op(
        &mut self,
        name: &str,
        f: impl Fn(ndp_spec::PrimTy, u64, u64) -> bool + Send + Sync + 'static,
    ) -> bool {
        let cfg = self.cfg.clone();
        self.ops.bind_custom(&cfg, name, f)
    }

    /// Current filter rules as configured through the register file.
    fn rules(&self) -> Vec<FilterRule> {
        self.regs
            .filters
            .iter()
            .map(|&(lane, op_code, value)| FilterRule { lane, op_code, value })
            .collect()
    }

    /// Run the configured block cycle by cycle against `mem`.
    fn run_block(&mut self, mem: &mut dyn MemBus) -> BlockResult {
        let in_tuple = self.processor.in_tuple_bytes();
        let out_tuple = self.processor.out_tuple_bytes();
        let rules = self.rules();
        let stages = self.cfg.stages as usize;
        // Aggregation Unit configuration: active only if the op is valid,
        // the hardware supports it, and the lane exists.
        let mut agg = if self.regs.has_agg {
            ndp_ir::AggOp::from_code(self.regs.agg_op)
                .filter(|op| self.cfg.supports_aggregate(*op))
                .and_then(|op| {
                    crate::oracle::AggAccumulator::new(&self.processor, op, self.regs.agg_field)
                })
        } else {
            None
        };

        // Effective transfer length: flexible units honour SRC_LEN,
        // fixed units always move whole chunks.
        let src_len = if self.flexible {
            self.regs.src_len.min(self.cfg.chunk_bytes)
        } else {
            self.cfg.chunk_bytes
        };

        // Unit state. The word-side staging buffers must hold at least
        // one whole tuple plus a beat, or wide-tuple pipelines would
        // stall forever waiting for a complete tuple to assemble.
        let in_buf_cap = BYTE_BUF.max(in_tuple + 8);
        let mut load_remaining = u64::from(src_len);
        let mut load_addr = self.regs.src_addr;
        let mut in_bytes: VecDeque<u8> = VecDeque::with_capacity(in_buf_cap);
        // Parsed tuples are carried as packed byte vectors: the oracle's
        // byte-level semantics apply directly and stage hand-off is a move.
        let mut parsed: VecDeque<Vec<u8>> = VecDeque::with_capacity(FIFO_TUPLES);
        let mut stage_q: Vec<VecDeque<Vec<u8>>> =
            (0..stages).map(|_| VecDeque::with_capacity(FIFO_TUPLES)).collect();
        let mut transformed: VecDeque<Vec<u8>> = VecDeque::with_capacity(FIFO_TUPLES);
        let mut out_bytes: VecDeque<u8> = VecDeque::with_capacity(BYTE_BUF);
        let mut store_addr = self.regs.dst_addr;
        let mut capacity_left = u64::from(self.regs.dst_capacity);

        let mut res = BlockResult::default();
        let mut cycles: u64 = 0;
        let mut tmp = [0u8; 8];
        // Hardware performance counters, accumulated cycle-accurately
        // alongside the pipeline (folded into the cumulative `CNT_*`
        // registers when the block completes).
        let mut stage_drops = vec![0u64; stages];
        let (mut in_stall, mut out_stall) = (0u64, 0u64);
        let (mut load_beats, mut store_beats) = (0u64, 0u64);
        let mut active = 0u64;

        loop {
            cycles += 1;
            let mut did_work = false;
            let upstream_empty = |stage_q: &Vec<VecDeque<Vec<u8>>>, parsed: &VecDeque<Vec<u8>>| {
                parsed.is_empty() && stage_q.iter().all(VecDeque::is_empty)
            };

            // --- Store Unit: drain up to one 64-bit beat per cycle.
            let flushing = load_remaining == 0
                && in_bytes.len() < in_tuple
                && upstream_empty(&stage_q, &parsed)
                && transformed.is_empty();
            if out_bytes.len() >= 8 || (flushing && !out_bytes.is_empty()) {
                let n = out_bytes.len().min(8).min(capacity_left as usize);
                if n > 0 {
                    for b in tmp.iter_mut().take(n) {
                        *b = out_bytes.pop_front().unwrap();
                    }
                    mem.write_bytes(store_addr, &tmp[..n]);
                    store_addr += n as u64;
                    capacity_left -= n as u64;
                    res.bytes_written += n as u32;
                    res.result_bytes += n as u32;
                    store_beats += 1;
                    did_work = true;
                } else if capacity_left == 0 {
                    // Result buffer full: drop the remainder (an AXI
                    // master would raise an IRQ; firmware sizes buffers
                    // so this only happens under fault injection).
                    out_bytes.clear();
                    did_work = true;
                }
            }

            // --- Tuple Output Buffer: serialize one tuple per cycle.
            if transformed.front().is_some() {
                if out_bytes.len() + out_tuple <= BYTE_BUF.max(out_tuple + 8) {
                    let t = transformed.pop_front().unwrap();
                    out_bytes.extend(t.iter());
                    did_work = true;
                } else {
                    out_stall += 1;
                }
            }

            // --- Data Transformation Unit: one tuple per cycle.
            let last_q_has_room = transformed.len() < FIFO_TUPLES;
            if last_q_has_room {
                let src = if stages == 0 { &mut parsed } else { stage_q.last_mut().unwrap() };
                if let Some(tuple) = src.pop_front() {
                    let mut out = Vec::with_capacity(out_tuple);
                    self.processor.transform_into(&tuple, &mut out);
                    transformed.push_back(out);
                    did_work = true;
                }
            }

            // --- Filtering Units, last stage first (back-pressure).
            for s in (0..stages).rev() {
                let dst_has_room = stage_q[s].len() < FIFO_TUPLES;
                if !dst_has_room {
                    continue;
                }
                let tuple = if s == 0 {
                    parsed.pop_front()
                } else {
                    let (left, right) = stage_q.split_at_mut(s);
                    let _ = &right;
                    left[s - 1].pop_front()
                };
                if let Some(tuple) = tuple {
                    did_work = true;
                    let rule = rules[s];
                    if self.processor.tuple_passes(&tuple, std::slice::from_ref(&rule), &self.ops) {
                        if s == stages - 1 {
                            res.tuples_out += 1;
                            if let Some(acc) = agg.as_mut() {
                                if let Some(v) = self.processor.lane_value(&tuple, acc.lane) {
                                    acc.update(v);
                                }
                            }
                        }
                        stage_q[s].push_back(tuple);
                    } else {
                        // Failing tuples are discarded (not enqueued).
                        stage_drops[s] += 1;
                    }
                }
            }

            // --- Tuple Input Buffer: assemble one tuple per cycle.
            if in_bytes.len() >= in_tuple && parsed.len() < FIFO_TUPLES {
                let mut tuple = Vec::with_capacity(in_tuple);
                for _ in 0..in_tuple {
                    tuple.push(in_bytes.pop_front().unwrap());
                }
                res.tuples_in += 1;
                parsed.push_back(tuple);
                did_work = true;
            }

            // --- Load Unit: one 64-bit beat per cycle after the initial
            // AXI latency.
            if cycles > MEM_LATENCY_CYCLES && load_remaining > 0 {
                if in_bytes.len() + 8 <= in_buf_cap {
                    let n = load_remaining.min(8) as usize;
                    mem.read_bytes(load_addr, &mut tmp[..n]);
                    in_bytes.extend(tmp[..n].iter());
                    load_addr += n as u64;
                    load_remaining -= n as u64;
                    res.bytes_read += n as u32;
                    load_beats += 1;
                    did_work = true;
                } else {
                    in_stall += 1;
                }
            }

            if did_work {
                active += 1;
            }

            // --- Termination: everything drained.
            if load_remaining == 0
                && in_bytes.len() < in_tuple
                && upstream_empty(&stage_q, &parsed)
                && transformed.is_empty()
                && out_bytes.is_empty()
            {
                break;
            }
        }

        // Fixed-block baseline: the Store Unit always writes back a whole
        // block; pad the remainder with zeros (pure memory traffic).
        if !self.flexible {
            let pad = u64::from(self.cfg.chunk_bytes).saturating_sub(u64::from(res.bytes_written));
            let pad = pad.min(capacity_left);
            if pad > 0 {
                let zeros = [0u8; 64];
                let mut left = pad;
                let mut addr = store_addr;
                while left > 0 {
                    let n = left.min(64) as usize;
                    mem.write_bytes(addr, &zeros[..n]);
                    addr += n as u64;
                    left -= n as u64;
                }
                res.bytes_written += pad as u32;
                // One beat per cycle for the padding traffic.
                cycles += pad.div_ceil(8);
                store_beats += pad.div_ceil(8);
                active += pad.div_ceil(8);
            }
        }

        if let Some(acc) = agg {
            self.regs.agg_result = acc.value();
        }
        res.cycles = cycles;

        // Fold the per-block measurements into the cumulative counter
        // registers. `active + idle == cycles` holds by construction.
        let p = &mut self.regs.perf;
        p.tuples_in += u64::from(res.tuples_in);
        p.tuples_out += u64::from(res.tuples_out);
        p.in_stall += in_stall;
        p.out_stall += out_stall;
        p.active += active;
        p.idle += cycles - active;
        p.load_beats += load_beats;
        p.store_beats += store_beats;
        for (acc, d) in p.stage_drops.iter_mut().zip(&stage_drops) {
            *acc += *d;
        }
        res
    }

    /// Snapshot of the cumulative hardware performance counters (the
    /// `CNT_*` registers, without the register-interface truncation).
    pub fn perf(&self) -> &crate::regs::PerfCounters {
        &self.regs.perf
    }

    /// Clear the performance counters (the `CNT_CTRL` write-1 action).
    pub fn reset_perf(&mut self) {
        self.regs.perf.reset();
    }
}

impl Mmio for PeSim {
    fn mmio_read(&mut self, offset: u32) -> u32 {
        self.regs.read(offset)
    }

    fn mmio_write(&mut self, offset: u32, value: u32) {
        // The fixed-block baseline ignores transfer-length configuration.
        if !self.flexible && offset == offsets::SRC_LEN {
            return;
        }
        self.regs.write(offset, value);
    }
}

impl PeDevice for PeSim {
    fn execute(&mut self, mem: &mut dyn MemBus) -> BlockResult {
        if !self.regs.start_pending {
            return BlockResult::default();
        }
        self.regs.start_pending = false;
        self.regs.busy = true;
        let res = self.run_block(mem);
        self.regs.busy = false;
        self.regs.done = true;
        self.regs.result_bytes = res.result_bytes;
        self.regs.tuples_in = res.tuples_in;
        self.regs.tuples_out = res.tuples_out;
        self.regs.filter_counter = res.tuples_out;
        self.total.blocks += 1;
        self.total.cycles += res.cycles;
        self.total.tuples_in += u64::from(res.tuples_in);
        self.total.tuples_out += u64::from(res.tuples_out);
        self.total.bytes_read += u64::from(res.bytes_read);
        self.total.bytes_written += u64::from(res.bytes_written);
        res
    }

    fn stages(&self) -> u32 {
        self.cfg.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membus::VecMem;
    use ndp_ir::elaborate;
    use ndp_spec::parse;

    const POINTS: &str = "
        /* @autogen define parser P with input = Point3D, output = Point2D,
           mapping = { output.x = input.y, output.y = input.z } */
        typedef struct { uint32_t x, y, z; } Point3D;
        typedef struct { uint32_t x, y; } Point2D;
    ";

    fn make_pe(src: &str, name: &str) -> PeSim {
        PeSim::new(elaborate(&parse(src).unwrap(), name).unwrap())
    }

    fn write_points(mem: &mut VecMem, base: u64, pts: &[(u32, u32, u32)]) -> u32 {
        let mut bytes = Vec::new();
        for &(x, y, z) in pts {
            bytes.extend_from_slice(&x.to_le_bytes());
            bytes.extend_from_slice(&y.to_le_bytes());
            bytes.extend_from_slice(&z.to_le_bytes());
        }
        mem.write_bytes(base, &bytes);
        bytes.len() as u32
    }

    /// Configure src/dst/filters and run one block.
    fn run(
        pe: &mut PeSim,
        mem: &mut VecMem,
        src: u64,
        len: u32,
        dst: u64,
        cap: u32,
        rules: &[(u32, u32, u64)],
    ) -> BlockResult {
        use offsets::*;
        pe.mmio_write(SRC_ADDR_LO, src as u32);
        pe.mmio_write(SRC_ADDR_HI, (src >> 32) as u32);
        pe.mmio_write(SRC_LEN, len);
        pe.mmio_write(DST_ADDR_LO, dst as u32);
        pe.mmio_write(DST_ADDR_HI, (dst >> 32) as u32);
        pe.mmio_write(DST_CAPACITY, cap);
        for (i, &(lane, op, val)) in rules.iter().enumerate() {
            let base = STAGE_BASE + i as u32 * STAGE_STRIDE;
            pe.mmio_write(base + STAGE_FIELD, lane);
            pe.mmio_write(base + STAGE_OP, op);
            pe.mmio_write(base + STAGE_VAL_LO, val as u32);
            pe.mmio_write(base + STAGE_VAL_HI, (val >> 32) as u32);
        }
        pe.mmio_write(START, 1);
        pe.execute(mem)
    }

    #[test]
    fn end_to_end_filter_and_project() {
        let mut pe = make_pe(POINTS, "P");
        let mut mem = VecMem::new(1 << 16);
        let ge = pe.config().op_code("ge").unwrap();
        let len = write_points(&mut mem, 0, &[(1, 10, 100), (5, 50, 500), (9, 90, 900)]);
        let res = run(&mut pe, &mut mem, 0, len, 0x8000, 4096, &[(0, ge, 5)]);
        assert_eq!(res.tuples_in, 3);
        assert_eq!(res.tuples_out, 2);
        assert_eq!(res.result_bytes, 16);
        let mut out = vec![0u8; 16];
        mem.read_bytes(0x8000, &mut out);
        assert_eq!(&out[0..4], &50u32.to_le_bytes());
        assert_eq!(&out[4..8], &500u32.to_le_bytes());
        assert_eq!(&out[8..12], &90u32.to_le_bytes());
        assert_eq!(&out[12..16], &900u32.to_le_bytes());
    }

    #[test]
    fn status_registers_reflect_run() {
        let mut pe = make_pe(POINTS, "P");
        let mut mem = VecMem::new(1 << 16);
        let len = write_points(&mut mem, 0, &[(1, 2, 3)]);
        assert_eq!(pe.mmio_read(offsets::STATUS), 0);
        let _ = run(&mut pe, &mut mem, 0, len, 0x8000, 4096, &[]);
        assert_eq!(pe.mmio_read(offsets::STATUS), 2, "DONE after run");
        assert_eq!(pe.mmio_read(offsets::TUPLES_IN), 1);
        assert_eq!(pe.mmio_read(offsets::TUPLES_OUT), 1);
        assert_eq!(pe.mmio_read(offsets::RESULT_BYTES), 8);
        assert_eq!(pe.mmio_read(pe.register_map().filter_counter_offset()), 1);
    }

    #[test]
    fn execute_without_start_is_a_no_op() {
        let mut pe = make_pe(POINTS, "P");
        let mut mem = VecMem::new(1024);
        let res = pe.execute(&mut mem);
        assert_eq!(res, BlockResult::default());
    }

    #[test]
    fn cycle_model_matches_oracle_semantics() {
        // Cross-validate the tick-based pipeline against the byte-level
        // oracle on a randomized block (local SplitMix64; the workspace
        // builds offline with no external rand crate).
        struct Rng(u64);
        impl Rng {
            fn next_u64(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
            fn gen_u32(&mut self, bound: u32) -> u32 {
                ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u32
            }
        }
        let mut rng = Rng(0xC0FFEE);
        let cfg = elaborate(&parse(POINTS).unwrap(), "P").unwrap();
        let mut pe = PeSim::new(cfg.clone());
        let bp = crate::oracle::BlockProcessor::new(&cfg);
        let ops = crate::oracle::OpTable::from_config(&cfg);

        let pts: Vec<(u32, u32, u32)> = (0..257)
            .map(|_| (rng.gen_u32(100), rng.next_u64() as u32, rng.next_u64() as u32))
            .collect();
        let mut mem = VecMem::new(1 << 16);
        let len = write_points(&mut mem, 0, &pts);
        let lt = cfg.op_code("lt").unwrap();
        let res = run(&mut pe, &mut mem, 0, len, 0x8000, 8192, &[(0, lt, 50)]);

        let mut input = vec![0u8; len as usize];
        mem.read_bytes(0, &mut input);
        let mut expected = Vec::new();
        let stats = bp.process_block(
            &input,
            &[FilterRule { lane: 0, op_code: lt, value: 50 }],
            &ops,
            &mut expected,
        );
        assert_eq!(res.tuples_in, stats.tuples_in);
        assert_eq!(res.tuples_out, stats.tuples_out);
        assert_eq!(res.result_bytes, stats.bytes_out);
        let mut got = vec![0u8; expected.len()];
        mem.read_bytes(0x8000, &mut got);
        assert_eq!(got, expected);
    }

    #[test]
    fn throughput_is_one_tuple_per_cycle_when_compute_bound() {
        // 12-byte tuples: loading needs 1.5 cycles/tuple (12/8), so the
        // pipeline is load-bound at 1.5 cycles per tuple; with an
        // all-pass filter the output stream (8 B/tuple) is no bottleneck.
        let mut pe = make_pe(POINTS, "P");
        let mut mem = VecMem::new(1 << 20);
        let n = 2000u32;
        let pts: Vec<(u32, u32, u32)> = (0..n).map(|i| (i, i, i)).collect();
        let len = write_points(&mut mem, 0, &pts);
        let res = run(&mut pe, &mut mem, 0, len, 0x40000, 1 << 18, &[]);
        let cycles_per_tuple = res.cycles as f64 / f64::from(n);
        assert!(
            (1.4..1.7).contains(&cycles_per_tuple),
            "expected ~1.5 cycles/tuple, got {cycles_per_tuple}"
        );
    }

    #[test]
    fn analytic_estimate_tracks_cycle_model() {
        let mut pe = make_pe(POINTS, "P");
        let mut mem = VecMem::new(1 << 20);
        for n in [1u32, 7, 64, 500] {
            let pts: Vec<(u32, u32, u32)> = (0..n).map(|i| (i, i, i)).collect();
            let len = write_points(&mut mem, 0, &pts);
            let res = run(&mut pe, &mut mem, 0, len, 0x40000, 1 << 18, &[]);
            let est = estimate_block_cycles(
                u64::from(len),
                u64::from(n),
                u64::from(res.bytes_written),
                pe.stages(),
            );
            let err = (res.cycles as f64 - est as f64).abs() / res.cycles as f64;
            assert!(
                err < 0.12,
                "estimate {est} vs measured {} for n={n} (err {err:.3})",
                res.cycles
            );
        }
    }

    #[test]
    fn multi_stage_pipeline_conjoins_predicates() {
        let src = "
            /* @autogen define parser R with input = T, output = T, stages = 2 */
            typedef struct { uint32_t v; uint32_t w; } T;
        ";
        let mut pe = make_pe(src, "R");
        let mut mem = VecMem::new(1 << 16);
        let mut bytes = Vec::new();
        for (v, w) in [(5u32, 1u32), (15, 1), (25, 1), (15, 9)] {
            bytes.extend_from_slice(&v.to_le_bytes());
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        mem.write_bytes(0, &bytes);
        let ge = pe.config().op_code("ge").unwrap();
        let lt = pe.config().op_code("lt").unwrap();
        // RANGE_SCAN: 10 <= v < 20, plus w arbitrary — stage 0 and 1.
        let res = run(
            &mut pe,
            &mut mem,
            0,
            bytes.len() as u32,
            0x8000,
            4096,
            &[(0, ge, 10), (0, lt, 20)],
        );
        assert_eq!(res.tuples_in, 4);
        assert_eq!(res.tuples_out, 2); // (15,1) and (15,9)
    }

    #[test]
    fn extra_stage_adds_only_marginal_cycles() {
        // The paper: "additional filtering stages will only add very small
        // increases to the overall execution times".
        let one = "
            /* @autogen define parser F with input = T, output = T, stages = 1 */
            typedef struct { uint64_t a, b; } T;
        ";
        let five = "
            /* @autogen define parser F with input = T, output = T, stages = 5 */
            typedef struct { uint64_t a, b; } T;
        ";
        let mut mem = VecMem::new(1 << 20);
        let n = 1000u64;
        let mut bytes = Vec::new();
        for i in 0..n {
            bytes.extend_from_slice(&i.to_le_bytes());
            bytes.extend_from_slice(&i.to_le_bytes());
        }
        mem.write_bytes(0, &bytes);
        let mut res = Vec::new();
        for src in [one, five] {
            let mut pe = make_pe(src, "F");
            res.push(run(&mut pe, &mut mem, 0, bytes.len() as u32, 0x80000, 1 << 18, &[]));
        }
        let delta = res[1].cycles as i64 - res[0].cycles as i64;
        assert!((0..=8).contains(&delta), "5-stage pipeline cost {delta} extra cycles");
    }

    #[test]
    fn wide_tuples_flow_through_the_cycle_model() {
        // Regression: tuples wider than the 64-byte staging buffer used
        // to deadlock the pipeline (the buffer must fit a whole tuple).
        let src = "
            /* @autogen define parser W with input = T, output = T */
            typedef struct { uint64_t a, b, c, d, e, f, g, h; uint64_t i, j, k, l; } T;
        ";
        let mut pe = make_pe(src, "W");
        assert_eq!(pe.config().input.tuple_bytes(), 96);
        let mut mem = VecMem::new(1 << 16);
        let mut bytes = Vec::new();
        for v in 0..24u64 {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        mem.write_bytes(0, &bytes);
        let res = run(&mut pe, &mut mem, 0, bytes.len() as u32, 0x8000, 4096, &[]);
        assert_eq!(res.tuples_in, 2);
        assert_eq!(res.tuples_out, 2);
        assert_eq!(res.result_bytes, 192);
    }

    #[test]
    fn baseline_mode_ignores_src_len_and_pads_output() {
        let cfg = elaborate(&parse(POINTS).unwrap(), "P").unwrap();
        let chunk = cfg.chunk_bytes;
        let mut pe = PeSim::with_flexibility(cfg, false);
        let mut mem = VecMem::new(1 << 20);
        let _ = write_points(&mut mem, 0, &[(1, 2, 3)]);
        // Ask for 12 bytes; the fixed unit reads the whole 32 KiB chunk
        // and writes a whole chunk back.
        let res = run(&mut pe, &mut mem, 0, 12, 0x80000, chunk, &[]);
        assert_eq!(res.bytes_read, chunk);
        assert_eq!(res.bytes_written, chunk);
        // Tuples: whole chunk of 12-byte tuples (zeros also pass nop).
        assert_eq!(res.tuples_in, chunk / 12);
    }

    #[test]
    fn capacity_overflow_drops_excess_but_keeps_counts() {
        let mut pe = make_pe(POINTS, "P");
        let mut mem = VecMem::new(1 << 16);
        let len = write_points(&mut mem, 0, &[(1, 1, 1), (2, 2, 2), (3, 3, 3)]);
        // Capacity for only one 8-byte output tuple.
        let res = run(&mut pe, &mut mem, 0, len, 0x8000, 8, &[]);
        assert_eq!(res.tuples_out, 3, "filter counter counts passes, not stores");
        assert_eq!(res.result_bytes, 8);
    }

    #[test]
    fn total_stats_accumulate_across_blocks() {
        let mut pe = make_pe(POINTS, "P");
        let mut mem = VecMem::new(1 << 16);
        let len = write_points(&mut mem, 0, &[(1, 2, 3), (4, 5, 6)]);
        for _ in 0..3 {
            let _ = run(&mut pe, &mut mem, 0, len, 0x8000, 4096, &[]);
        }
        assert_eq!(pe.total.blocks, 3);
        assert_eq!(pe.total.tuples_in, 6);
    }
}
