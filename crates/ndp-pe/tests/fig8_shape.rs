//! Shape check for Fig. 8: out-of-context slices vs tuple size, "Full"
//! (all 32-bit fields relevant) vs "Half" (half the data discarded via
//! string prefixing).

use ndp_ir::elaborate;
use ndp_pe::template::{pe_report, PeVariant};
use ndp_spec::parse;

fn full_spec(bits: u32) -> String {
    let n = bits / 32;
    let fields: Vec<String> = (0..n).map(|i| format!("uint32_t f{i};")).collect();
    format!(
        "/* @autogen define parser F with input = T, output = T */
         typedef struct {{ {} }} T;",
        fields.join(" ")
    )
}

fn half_spec(bits: u32) -> String {
    // Same total tuple size as the Full variant, but only half the data is
    // relevant: (bits/64 - 1) u32 fields plus a 4-byte string prefix; the
    // string postfix makes up the discarded half.
    let n = bits / 64 - 1;
    let string_len = bits / 16 + 4; // bytes: 4 prefix + bits/16 postfix
    let fields: Vec<String> = (0..n).map(|i| format!("uint32_t f{i};")).collect();
    format!(
        "/* @autogen define parser F with input = T, output = T */
         typedef struct {{ {} /* @string(prefix = 4) */ uint8_t s[{}]; }} T;",
        fields.join(" "),
        string_len
    )
}

fn ooc(spec: &str) -> f64 {
    let m = parse(spec).unwrap();
    let cfg = elaborate(&m, "F").unwrap();
    pe_report(&cfg, PeVariant::Generated).slices_out_of_context as f64
}

#[test]
fn fig8_shape_holds() {
    let sizes = [64u32, 128, 256, 512, 1024];
    let mut rows = Vec::new();
    for &s in &sizes {
        let f = ooc(&full_spec(s));
        let h = ooc(&half_spec(s));
        rows.push((s, f, h));
        println!("size {s:5}: full {f:8.0}  half {h:8.0}  half/full {:.3}", h / f);
    }
    // Monotonic growth.
    for w in rows.windows(2) {
        assert!(w[1].1 > w[0].1 && w[1].2 > w[0].2);
    }
    // Half costs more at the smallest size...
    assert!(rows[0].2 > rows[0].1, "Half should exceed Full at 64 bit");
    // ...and the ratio declines with size (prefixing pays off for large tuples).
    let r0 = rows[0].2 / rows[0].1;
    let r4 = rows[4].2 / rows[4].1;
    assert!(r4 < r0, "Half/Full ratio should decline: {r0:.3} -> {r4:.3}");
}
