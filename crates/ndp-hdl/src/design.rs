//! Structural design representation.
//!
//! A [`Design`] is a tree of module instances whose leaves are
//! [`Primitive`]s — the hardware building blocks the architectural
//! template (Fig. 3 of the paper) is composed from. The tree is what both
//! the Verilog emitter and the resource model consume.

/// Ceiling base-2 logarithm, with `clog2(0..=1) == 1` (a register always
/// needs at least one bit).
pub fn clog2(n: u64) -> u32 {
    64 - n.max(2).saturating_sub(1).leading_zeros()
}

/// Leaf hardware building blocks with their elaboration parameters.
///
/// The set mirrors the components of the paper's architectural template
/// (Fig. 3): the control register file (a), the memory interface (b),
/// the tuple buffers (c) and the computation units (d), plus the generic
/// FIFOs, muxes and counters they are built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Primitive {
    /// AXI4-Lite control register file mapped into the ARM address space.
    RegFile {
        /// Number of 32-bit registers.
        n_regs: u32,
    },
    /// AXI4 Full master read channel (the Load Unit).
    ///
    /// `flexible` units (this work) support configurable partial-block
    /// lengths; fixed units ([1]) always move whole 32 KiB blocks.
    AxiLoad {
        /// Datapath width in bits (64 on Zynq-7000 HP ports).
        data_bits: u32,
        /// Configurable transfer length (ours) vs. fixed blocks ([1]).
        flexible: bool,
    },
    /// AXI4 Full master write channel (the Store Unit).
    AxiStore { data_bits: u32, flexible: bool },
    /// Block buffer between the memory interface and the tuple buffers.
    /// Generated PEs back this with block RAM (the paper notes each
    /// generated accelerator uses a single BRAM, unlike [1]).
    BlockBuffer {
        /// Buffered bytes.
        bytes: u32,
        /// True → RAMB36-backed; false → distributed LUT RAM ([1]).
        bram: bool,
    },
    /// Tuple Input Buffer: groups the 64-bit memory words into complete
    /// tuples and splits them into padded comparator lanes plus the
    /// opaque string-postfix vector.
    TupleUnpack {
        /// Memory word width (64).
        word_bits: u32,
        /// Packed tuple width in bits.
        tuple_bits: u32,
        /// Number of padded lanes produced.
        lanes: u32,
        /// Lane width in bits.
        lane_bits: u32,
        /// Carried opaque postfix width in bits.
        postfix_bits: u32,
        /// True for the generic generated realignment network (this
        /// work); false for the hand-specialized schedule of [1].
        generated: bool,
    },
    /// Tuple Output Buffer: reverse of [`Primitive::TupleUnpack`].
    TuplePack {
        word_bits: u32,
        tuple_bits: u32,
        lanes: u32,
        lane_bits: u32,
        postfix_bits: u32,
        /// See [`Primitive::TupleUnpack::generated`].
        generated: bool,
    },
    /// Elastic FIFO carrying whole padded tuples between pipeline stages.
    Fifo {
        /// Payload width in bits.
        width: u32,
        /// Depth in entries.
        depth: u32,
    },
    /// Lane-select multiplexer feeding the Compare Unit (Fig. 5).
    LaneMux {
        /// Number of selectable lanes.
        lanes: u32,
        /// Lane width in bits.
        lane_bits: u32,
    },
    /// The Compare Unit: evaluates the selected lane against the
    /// reference value under the operator chosen by `operator_select`.
    CompareUnit {
        /// Operand width in bits.
        lane_bits: u32,
        /// Number of selectable operations (incl. `nop`).
        n_ops: u32,
        /// Whether any lane is signed (adds sign-aware compare logic).
        signed: bool,
        /// Whether any lane is floating-point (adds FP compare logic).
        float: bool,
    },
    /// The Data Transformation Unit's routing network: moves input lanes
    /// and postfix bytes to their output positions.
    TransformRoute {
        /// Number of routed output fields.
        moves: u32,
        /// Lane width in bits.
        lane_bits: u32,
        /// Routed postfix width in bits.
        postfix_bits: u32,
    },
    /// Status/result counter (e.g. `FILTER_COUNTER`).
    Counter { width: u32 },
    /// The Aggregation Unit (extension): a lane mux feeding an adder and
    /// a type-aware min/max comparator with a 64-bit accumulator.
    AggregateUnit {
        /// Operand width in bits.
        lane_bits: u32,
        /// Number of selectable reductions (count/sum/min/max subsets).
        n_ops: u32,
        /// Lanes the unit can select from.
        lanes: u32,
    },
    /// Control finite-state machine sequencing one unit.
    ControlFsm { states: u32 },
    /// Fixed platform macro with externally known resource counts
    /// (NVMe core, Tiger4 flash controller, PS interconnect, ...).
    /// `slices`/`brams` are taken from the Cosmos+ baseline reports.
    PlatformMacro { name: &'static str, slices: u32, brams: u32 },
}

impl Primitive {
    /// A short type name used for Verilog module naming.
    pub fn type_name(&self) -> &'static str {
        match self {
            Primitive::RegFile { .. } => "ctrl_regfile",
            Primitive::AxiLoad { .. } => "axi_load_unit",
            Primitive::AxiStore { .. } => "axi_store_unit",
            Primitive::BlockBuffer { .. } => "block_buffer",
            Primitive::TupleUnpack { .. } => "tuple_input_buffer",
            Primitive::TuplePack { .. } => "tuple_output_buffer",
            Primitive::Fifo { .. } => "elastic_fifo",
            Primitive::LaneMux { .. } => "lane_mux",
            Primitive::CompareUnit { .. } => "compare_unit",
            Primitive::TransformRoute { .. } => "transform_route",
            Primitive::Counter { .. } => "counter",
            Primitive::AggregateUnit { .. } => "aggregate_unit",
            Primitive::ControlFsm { .. } => "control_fsm",
            Primitive::PlatformMacro { .. } => "platform_macro",
        }
    }
}

/// A named child within a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Child {
    /// Instance name (unique within the parent).
    pub inst_name: String,
    pub node: Node,
}

/// Either a leaf primitive or a nested module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    Prim(Primitive),
    Module(Module),
}

/// A composite module: a named collection of instances.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    pub name: String,
    pub children: Vec<Child>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), children: Vec::new() }
    }

    /// Add a primitive instance; returns `self` for chaining.
    pub fn prim(mut self, inst_name: impl Into<String>, p: Primitive) -> Self {
        self.children.push(Child { inst_name: inst_name.into(), node: Node::Prim(p) });
        self
    }

    /// Add a nested module instance; returns `self` for chaining.
    pub fn module(mut self, inst_name: impl Into<String>, m: Module) -> Self {
        self.children.push(Child { inst_name: inst_name.into(), node: Node::Module(m) });
        self
    }

    /// Depth-first iteration over all primitives in the subtree.
    pub fn primitives(&self) -> Vec<&Primitive> {
        let mut out = Vec::new();
        self.collect_prims(&mut out);
        out
    }

    fn collect_prims<'a>(&'a self, out: &mut Vec<&'a Primitive>) {
        for c in &self.children {
            match &c.node {
                Node::Prim(p) => out.push(p),
                Node::Module(m) => m.collect_prims(out),
            }
        }
    }

    /// Count instances (primitive leaves) in the subtree.
    pub fn leaf_count(&self) -> usize {
        self.primitives().len()
    }
}

/// A complete elaborated design with a single top module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    pub top: Module,
}

impl Design {
    /// Wrap a module as a design.
    pub fn new(top: Module) -> Self {
        Self { top }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(0), 1);
        assert_eq!(clog2(1), 1);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(4), 2);
        assert_eq!(clog2(5), 3);
        assert_eq!(clog2(1024), 10);
        assert_eq!(clog2(1025), 11);
    }

    fn sample() -> Module {
        Module::new("pe").prim("regs", Primitive::RegFile { n_regs: 16 }).module(
            "filter0",
            Module::new("filter_unit")
                .prim("mux", Primitive::LaneMux { lanes: 3, lane_bits: 64 })
                .prim(
                    "cmp",
                    Primitive::CompareUnit { lane_bits: 64, n_ops: 7, signed: false, float: false },
                ),
        )
    }

    #[test]
    fn builder_nests_and_counts() {
        let m = sample();
        assert_eq!(m.children.len(), 2);
        assert_eq!(m.leaf_count(), 3);
        let prims = m.primitives();
        assert!(matches!(prims[0], Primitive::RegFile { n_regs: 16 }));
        assert!(matches!(prims[2], Primitive::CompareUnit { .. }));
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(Primitive::Fifo { width: 8, depth: 2 }.type_name(), "elastic_fifo");
        assert_eq!(
            Primitive::PlatformMacro { name: "nvme", slices: 1, brams: 0 }.type_name(),
            "platform_macro"
        );
    }

    #[test]
    fn design_wraps_top() {
        let d = Design::new(sample());
        assert_eq!(d.top.name, "pe");
    }
}
