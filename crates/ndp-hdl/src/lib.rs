//! Hardware construction library for the NDP accelerator generator.
//!
//! The paper implements its accelerators with the Chisel3 hardware
//! construction framework and synthesizes them with Vivado for the
//! Zynq-7000 (XC7Z045) on the Cosmos+ OpenSSD. Neither Chisel nor an FPGA
//! toolchain is available in this reproduction, so this crate provides the
//! two facilities the toolflow actually needs:
//!
//! * a **structural design representation** ([`Design`], [`Module`],
//!   [`Primitive`]) from which parameterized, synthesizable-style
//!   **Verilog** is emitted ([`verilog`]), mirroring Chisel's
//!   elaborate-then-emit flow; and
//! * a **resource estimation model** ([`resources`]) that maps the
//!   elaborated structure to 7-series LUT/FF/BRAM counts and then to
//!   *slices*, with distinct packing factors for in-context and
//!   out-of-context synthesis — the quantity the paper's entire hardware
//!   evaluation (Table I, Figs. 8 and 9) is expressed in.
//!
//! The model's coefficients are calibrated against the paper's Table I
//! anchors (see `resources`); Figures 8 and 9 are then predictions of the
//! same model. See DESIGN.md for the substitution argument.

pub mod design;
pub mod resources;
pub mod verilog;

pub use design::{Child, Design, Module, Node, Primitive};
pub use resources::{Resources, SliceModel, XC7Z045};
