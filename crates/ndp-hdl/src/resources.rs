//! FPGA resource estimation.
//!
//! The paper's hardware evaluation reports *slice* utilization on the
//! Zynq-7000 XC7Z045 (54,650 slices), for full-design (in-context, Table I)
//! and out-of-context syntheses (Figs. 8 and 9). This module maps an
//! elaborated [`Design`](crate::Design) to LUT/FF/BRAM counts via
//! structural per-primitive formulas and converts LUTs to slices with a
//! packing factor that differs between in-context (dense) and
//! out-of-context ("without very dense packing", paper Sec. V) synthesis.
//!
//! ## Calibration
//!
//! Absolute slice counts of a real Vivado run cannot be predicted from
//! structure alone, so a handful of coefficients ([`calib`]) are fitted to
//! the four per-PE anchors of the paper's Table I (paper-PE and ref-PE,
//! hand-crafted \[1\] and generated). Everything else — Figs. 8/9 shapes,
//! the overall/percent rows, the Half-vs-Full crossover — is then a
//! *prediction* of the fitted model. The key structural distinction the
//! fit exposed: the *generated* tuple buffers instantiate a generic
//! any-offset realignment network (quadratic in tuple width), while the
//! hand-crafted buffers of \[1\] use a schedule specialized to the known
//! tuple size (linear in tuple width); the flexible load/store units of
//! this work add a small constant on top.

use crate::design::{clog2, Module, Node, Primitive};

/// Device data for the Xilinx Zynq-7000 XC7Z045 (as used on Cosmos+).
pub struct XC7Z045;

impl XC7Z045 {
    /// Total slices available (paper, Table I "Available" row).
    pub const SLICES: u32 = 54_650;
    /// LUT6 count (4 per slice).
    pub const LUTS: u32 = 218_600;
    /// Flip-flop count (8 per slice).
    pub const FFS: u32 = 437_200;
    /// RAMB36E1 blocks.
    pub const BRAMS: u32 = 545;
}

/// Calibration coefficients (see module docs).
pub mod calib {
    /// Quadratic realignment-network coefficient shared by both tuple
    /// buffer variants, in LUTs per (tuple bit)², split 60 % input /
    /// 40 % output: moving a T-bit tuple across 64-bit word boundaries
    /// needs a T-wide mux layer selecting among O(T/64) word positions.
    pub const ALIGN_QUAD_LUTS_PER_BIT2: f64 = 0.039_224;
    /// Additional per-level cost of the *generated* buffers' generic
    /// any-offset network, in LUTs per (tuple bit)² per mux level
    /// (clog2 of the words per tuple). The hand-crafted buffers of [1]
    /// collapse these levels into a single specialized layer because the
    /// tuple size is a compile-time constant for them.
    pub const GEN_ALIGN_DEPTH_LUTS_PER_BIT2: f64 = 0.005_921_1;
    /// Extra LUTs in a flexible (partial-block capable) Load or Store
    /// unit compared to the fixed-block units of \[1\].
    pub const FLEX_AXI_EXTRA_LUTS: f64 = 31.4;
    /// Miscellaneous per-PE glue (reset trees, AXI adapters, debug):
    /// fitted residual, identical for both variants.
    pub const PE_GLUE_LUTS: f64 = 41.9;
    /// In-context packing: fraction of a slice's 4 LUTs usable when Vivado
    /// packs the full design densely.
    pub const PACKING_IN_CONTEXT: f64 = 0.50;
    /// Out-of-context packing (paper: OOC results represent the logic
    /// "without very dense packing").
    pub const PACKING_OUT_OF_CONTEXT: f64 = 0.40;
    /// Fixed platform slice budget: NVMe core, two Tiger4 flash
    /// controllers, PS interconnect and infrastructure of the Cosmos+
    /// baseline design.
    pub const PLATFORM_SLICES: f64 = 15_000.0;
    /// Per-PE interconnect cost of the \[1\] system composition.
    pub const INTERCONNECT_BASE_SLICES: f64 = 925.25;
    /// Per-PE interconnect cost of our refined template (paper: "more
    /// efficient use of interconnects in our refined architecture
    /// template").
    pub const INTERCONNECT_OURS_SLICES: f64 = 308.0;
    /// BRAM bits per RAMB36E1.
    pub const BRAM_BITS: u64 = 36_864;
}

/// Aggregated resource counts. LUTs/FFs are tracked as `f64` because the
/// calibrated coefficients are fractional; slice conversion rounds once at
/// the end.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Resources {
    pub luts: f64,
    pub ffs: f64,
    pub brams: u32,
    /// Slices contributed directly by fixed platform macros (bypassing
    /// the LUT→slice conversion; their counts come from vendor reports).
    pub macro_slices: f64,
}

impl Resources {
    /// Elementwise sum.
    pub fn add(&mut self, other: Resources) {
        self.luts += other.luts;
        self.ffs += other.ffs;
        self.brams += other.brams;
        self.macro_slices += other.macro_slices;
    }

    /// A LUT/FF-only contribution.
    pub fn logic(luts: f64, ffs: f64) -> Self {
        Resources { luts, ffs, ..Default::default() }
    }
}

/// Slice-conversion model (in-context vs out-of-context packing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceModel {
    /// Full-design synthesis with dense packing (Table I).
    InContext,
    /// Out-of-context synthesis of a single PE (Figs. 8, 9).
    OutOfContext,
}

impl SliceModel {
    fn packing(self) -> f64 {
        match self {
            SliceModel::InContext => calib::PACKING_IN_CONTEXT,
            SliceModel::OutOfContext => calib::PACKING_OUT_OF_CONTEXT,
        }
    }

    /// Convert aggregated resources to occupied slices.
    ///
    /// The generated designs are LUT-bound (FFs are plentiful at 8 per
    /// slice), so slices = LUTs / (4 × packing) + macro slices.
    pub fn slices(self, r: &Resources) -> f64 {
        r.luts / (4.0 * self.packing()) + r.macro_slices
    }

    /// Slices as a rounded integer, the way the paper tabulates them.
    pub fn slices_rounded(self, r: &Resources) -> u32 {
        self.slices(r).round() as u32
    }

    /// Utilization percentage of the XC7Z045.
    pub fn utilization_pct(self, r: &Resources) -> f64 {
        self.slices(r) / f64::from(XC7Z045::SLICES) * 100.0
    }
}

/// Estimate the resources of one primitive.
pub fn primitive_resources(p: &Primitive) -> Resources {
    match *p {
        Primitive::RegFile { n_regs } => {
            let n = f64::from(n_regs);
            Resources::logic(8.0 * n + 24.0, 32.0 * n + 48.0)
        }
        Primitive::AxiLoad { data_bits, flexible } => {
            let w = f64::from(data_bits);
            let flex = if flexible { calib::FLEX_AXI_EXTRA_LUTS } else { 0.0 };
            Resources::logic(3.0 * w + 88.0 + flex, 4.0 * w + 160.0 + flex)
        }
        Primitive::AxiStore { data_bits, flexible } => {
            let w = f64::from(data_bits);
            let flex = if flexible { calib::FLEX_AXI_EXTRA_LUTS } else { 0.0 };
            Resources::logic(3.0 * w + 68.0 + flex, 4.0 * w + 120.0 + flex)
        }
        Primitive::BlockBuffer { bytes, bram } => {
            if bram {
                let brams = ((u64::from(bytes) * 8).div_ceil(calib::BRAM_BITS)).max(1) as u32;
                Resources { luts: 76.0, ffs: 90.0, brams, macro_slices: 0.0 }
            } else {
                Resources::logic(f64::from(bytes) / 8.0 + 40.0, 80.0)
            }
        }
        Primitive::TupleUnpack {
            word_bits,
            tuple_bits,
            lanes,
            lane_bits,
            postfix_bits,
            generated,
        } => tuple_buffer(word_bits, tuple_bits, lanes, lane_bits, postfix_bits, 0.6, generated),
        Primitive::TuplePack {
            word_bits,
            tuple_bits,
            lanes,
            lane_bits,
            postfix_bits,
            generated,
        } => tuple_buffer(word_bits, tuple_bits, lanes, lane_bits, postfix_bits, 0.4, generated),
        Primitive::Fifo { width, depth } => {
            let w = f64::from(width);
            let srl_stages = f64::from(depth.div_ceil(32).max(1));
            Resources::logic(w / 2.0 * srl_stages + 16.0, w + 24.0)
        }
        Primitive::LaneMux { lanes, lane_bits } => {
            let per_bit = f64::from(lanes.saturating_sub(1).div_ceil(3));
            Resources::logic(
                f64::from(lane_bits) * per_bit + 8.0,
                f64::from(clog2(u64::from(lanes))) + 4.0,
            )
        }
        Primitive::CompareUnit { lane_bits, n_ops, signed, float } => {
            let w = f64::from(lane_bits);
            let mut luts = w / 2.0 + 2.0 * f64::from(n_ops) + 10.0;
            if signed {
                luts += w / 8.0;
            }
            if float {
                luts += w / 2.0;
            }
            Resources::logic(luts, 2.0 * w + 8.0)
        }
        Primitive::TransformRoute { moves, lane_bits, postfix_bits } => Resources::logic(
            2.0 * f64::from(moves) + f64::from(postfix_bits) / 8.0 + 10.0,
            f64::from(lane_bits) / 4.0 + 8.0,
        ),
        Primitive::Counter { width } => Resources::logic(f64::from(width), f64::from(width)),
        Primitive::AggregateUnit { lane_bits, n_ops, lanes } => {
            let w = f64::from(lane_bits);
            // Lane mux + 64-bit adder (carry chain) + compare + op decode
            // + accumulator register.
            let mux = w * f64::from(lanes.saturating_sub(1).div_ceil(3));
            Resources::logic(
                mux + w / 2.0 + w / 2.0 + 2.0 * f64::from(n_ops) + 16.0,
                2.0 * w + 16.0,
            )
        }
        Primitive::ControlFsm { states } => {
            Resources::logic(5.0 * f64::from(states) + 12.0, f64::from(states) + 8.0)
        }
        Primitive::PlatformMacro { slices, brams, .. } => {
            Resources { luts: 0.0, ffs: 0.0, brams, macro_slices: f64::from(slices) }
        }
    }
}

/// Shared cost model of the tuple input/output buffers.
///
/// `share` splits the realignment network 60/40 between input and output
/// side; `generated` selects the generic quadratic network (this work) vs
/// the hand-specialized linear schedule of \[1\]. The [`Primitive`] enum
/// does not carry a variant flag: hand-crafted designs are composed via
/// [`baseline_tuple_buffer`] instead.
fn tuple_buffer(
    word_bits: u32,
    tuple_bits: u32,
    lanes: u32,
    lane_bits: u32,
    postfix_bits: u32,
    share: f64,
    generated: bool,
) -> Resources {
    let t = f64::from(tuple_bits);
    let words = u64::from(tuple_bits.div_ceil(word_bits.max(1)));
    let mut align = calib::ALIGN_QUAD_LUTS_PER_BIT2 * t * t;
    if generated {
        align += calib::GEN_ALIGN_DEPTH_LUTS_PER_BIT2 * t * t * f64::from(clog2(words));
    }
    let align = align * share;
    let lane_routing = f64::from(lanes) * f64::from(lane_bits) / 8.0;
    let postfix = if postfix_bits > 0 { f64::from(postfix_bits) / 4.0 + 60.0 } else { 0.0 };
    let ctrl = 30.0;
    let ffs = t + f64::from(word_bits) + f64::from(lanes * lane_bits + postfix_bits);
    Resources::logic(align + lane_routing + postfix + ctrl, ffs)
}

/// Resource estimate of a *hand-crafted* tuple buffer as used by the
/// baseline designs of \[1\] (linear realignment schedule).
pub fn baseline_tuple_buffer(
    word_bits: u32,
    tuple_bits: u32,
    lanes: u32,
    lane_bits: u32,
    postfix_bits: u32,
    input_side: bool,
) -> Resources {
    let share = if input_side { 0.6 } else { 0.4 };
    tuple_buffer(word_bits, tuple_bits, lanes, lane_bits, postfix_bits, share, false)
}

/// Per-PE glue as plain LUT/FF logic (see [`calib::PE_GLUE_LUTS`]).
pub fn glue_resources() -> Resources {
    pe_glue()
}

/// Per-PE glue contribution (see [`calib::PE_GLUE_LUTS`]).
pub fn pe_glue() -> Resources {
    Resources::logic(calib::PE_GLUE_LUTS, calib::PE_GLUE_LUTS)
}

/// Sum the resources of a whole module subtree (primitives only; glue and
/// baseline substitutions are added by the composing crate).
pub fn module_resources(m: &Module) -> Resources {
    let mut total = Resources::default();
    for c in &m.children {
        match &c.node {
            Node::Prim(p) => total.add(primitive_resources(p)),
            Node::Module(sub) => total.add(module_resources(sub)),
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Module;

    #[test]
    fn regfile_scales_with_register_count() {
        let small = primitive_resources(&Primitive::RegFile { n_regs: 8 });
        let large = primitive_resources(&Primitive::RegFile { n_regs: 32 });
        assert!(large.luts > small.luts);
        assert_eq!(large.ffs - small.ffs, 24.0 * 32.0);
    }

    #[test]
    fn flexible_axi_units_cost_more() {
        let fixed = primitive_resources(&Primitive::AxiLoad { data_bits: 64, flexible: false });
        let flex = primitive_resources(&Primitive::AxiLoad { data_bits: 64, flexible: true });
        assert!((flex.luts - fixed.luts - calib::FLEX_AXI_EXTRA_LUTS).abs() < 1e-9);
    }

    #[test]
    fn bram_buffer_uses_bram_not_luts() {
        let bram = primitive_resources(&Primitive::BlockBuffer { bytes: 4096, bram: true });
        let lutram = primitive_resources(&Primitive::BlockBuffer { bytes: 4096, bram: false });
        assert_eq!(bram.brams, 1);
        assert_eq!(lutram.brams, 0);
        assert!(lutram.luts > bram.luts);
    }

    #[test]
    fn one_ramb36_per_36kbit() {
        let r = primitive_resources(&Primitive::BlockBuffer { bytes: 8192, bram: true });
        assert_eq!(r.brams, 2); // 65536 bits > 36864
    }

    #[test]
    fn generated_unpack_grows_quadratically() {
        let mk = |bits: u32| {
            primitive_resources(&Primitive::TupleUnpack {
                word_bits: 64,
                tuple_bits: bits,
                lanes: bits / 32,
                lane_bits: 32,
                postfix_bits: 0,
                generated: true,
            })
        };
        let (s, m, l) = (mk(64), mk(128), mk(256));
        // Quadratic: doubling width should much more than double the
        // alignment-dominated cost at large sizes.
        assert!((l.luts - m.luts) > 2.0 * (m.luts - s.luts) * 0.8);
        assert!(l.luts > 2.5 * m.luts * 0.8);
    }

    #[test]
    fn baseline_tuple_buffer_is_cheaper_than_generated() {
        // The hand-specialized schedule of [1] skips the generic network's
        // extra mux levels, so it costs strictly less at every size.
        for bits in [64u32, 160, 256, 640, 1024] {
            let base = baseline_tuple_buffer(64, bits, bits / 32, 32, 0, true);
            let gen = primitive_resources(&Primitive::TupleUnpack {
                word_bits: 64,
                tuple_bits: bits,
                lanes: bits / 32,
                lane_bits: 32,
                postfix_bits: 0,
                generated: true,
            });
            assert!(base.luts < gen.luts, "baseline not cheaper at {bits} bits");
        }
    }

    #[test]
    fn lane_mux_cost_increases_stepwise_with_lanes() {
        let mk =
            |lanes: u32| primitive_resources(&Primitive::LaneMux { lanes, lane_bits: 32 }).luts;
        assert_eq!(mk(1), 8.0); // pass-through
        assert_eq!(mk(4), 32.0 + 8.0);
        assert_eq!(mk(7), 64.0 + 8.0);
        assert!(mk(16) > mk(7));
    }

    #[test]
    fn compare_unit_feature_costs() {
        let plain = primitive_resources(&Primitive::CompareUnit {
            lane_bits: 64,
            n_ops: 7,
            signed: false,
            float: false,
        });
        let signed = primitive_resources(&Primitive::CompareUnit {
            lane_bits: 64,
            n_ops: 7,
            signed: true,
            float: false,
        });
        let float = primitive_resources(&Primitive::CompareUnit {
            lane_bits: 64,
            n_ops: 7,
            signed: true,
            float: true,
        });
        assert!(plain.luts < signed.luts && signed.luts < float.luts);
    }

    #[test]
    fn slice_models_differ_by_packing() {
        let r = Resources::logic(4000.0, 1000.0);
        let ic = SliceModel::InContext.slices(&r);
        let ooc = SliceModel::OutOfContext.slices(&r);
        assert!((ic - 2000.0).abs() < 1e-9);
        assert!((ooc - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn platform_macros_bypass_packing() {
        let r = primitive_resources(&Primitive::PlatformMacro {
            name: "nvme",
            slices: 4200,
            brams: 24,
        });
        assert_eq!(SliceModel::InContext.slices_rounded(&r), 4200);
        assert_eq!(SliceModel::OutOfContext.slices_rounded(&r), 4200);
        assert_eq!(r.brams, 24);
    }

    #[test]
    fn module_resources_sum_children() {
        let m = Module::new("m")
            .prim("a", Primitive::Counter { width: 32 })
            .module("sub", Module::new("s").prim("b", Primitive::Counter { width: 16 }));
        let r = module_resources(&m);
        assert_eq!(r.luts, 48.0);
    }

    #[test]
    fn utilization_pct_is_relative_to_device() {
        let r = Resources { macro_slices: 5465.0, ..Default::default() };
        assert!((SliceModel::InContext.utilization_pct(&r) - 10.0).abs() < 1e-9);
    }
}
