//! Beyond-paper figure: closed-loop multi-client load through the NVMe
//! queue engine.
//!
//! The paper evaluates one operation at a time; its motivation ("data
//! lakes … millions of users") is a throughput story. This figure
//! sweeps the client count over the same device and dataset and reports
//! sustained ops/s plus latency percentiles per point: throughput
//! scales while independent commands land on disjoint flash LUNs and
//! PEs, then saturates on the hottest shared resource (the paper's
//! flash bottleneck, reached from the queue engine instead of a single
//! streaming SCAN).
//!
//! Every run is seeded: client scripts come from `SplitMix64` streams,
//! so a `(seed, scale, clients, depth, ops)` tuple reproduces
//! byte-identical tables (used by `scripts/check.sh`'s smoke diff).

use crate::dataset::{build_db, paper_records, paper_table_config, DbKind};
use crate::json::{json_num, json_str};
use cosmos_sim::{chrome_trace_json_cluster, ns_to_secs};
use ndp_pe::oracle::FilterRule;
use ndp_pe::template::PeVariant;
use ndp_workload::spec::{paper_lanes, ref_lanes};
use ndp_workload::{PaperGen, PubGraphConfig, SplitMix64};
use nkv::queue::{ClientScript, Priority, QueueRunConfig, QueuedOp};
use nkv::{ClusterConfig, ExecMode, LatencyHistogram, NkvCluster};

/// Parameters of one loadgen sweep. `PartialEq` backs the `repro`
/// binary's overwrite guard: a non-default configuration refuses to
/// clobber an existing `--json` artifact without `--json-force`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Dataset scale (1.0 = the paper's full volume).
    pub scale: f64,
    /// Client counts to sweep, one figure row each.
    pub clients: Vec<u32>,
    /// Per-client window of in-flight commands.
    pub depth: u32,
    /// Commands each client issues.
    pub ops_per_client: u32,
    /// Workload seed (scripts are derived per client from this).
    pub seed: u64,
    /// Device-DRAM block-cache budget for the cache sweep, MiB. `0`
    /// (the default) skips the sweep entirely and leaves the cache off,
    /// so the smoke table stays byte-identical to the pre-cache output.
    pub cache_mb: usize,
    /// Device counts for the clients x devices cluster matrix. Empty
    /// (the default) skips the matrix entirely, so the smoke table
    /// stays byte-identical to the pre-cluster output.
    pub devices: Vec<usize>,
    /// Max keys per batched-GET key list for the batched-GET sweep.
    /// `1` (the default) skips the sweep entirely and keeps every
    /// queued run on the legacy per-key path, so the smoke table stays
    /// byte-identical to the pre-batching output.
    pub batch: u32,
    /// Run the mixed-priority QoS sweep (bulk scan flood vs
    /// latency-sensitive GETs, FIFO baseline vs priority dispatch).
    /// `false` (the default) skips the sweep entirely, so the smoke
    /// table stays byte-identical to the pre-QoS output.
    pub qos: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            scale: 1.0 / 256.0,
            clients: vec![1, 2, 4, 8, 16, 32],
            depth: 8,
            ops_per_client: 64,
            seed: 42,
            cache_mb: 0,
            devices: Vec::new(),
            batch: 1,
            qos: false,
        }
    }
}

/// One row of the figure.
#[derive(Debug, Clone)]
pub struct LoadgenPoint {
    pub clients: u32,
    /// Commands completed.
    pub ops: u64,
    /// Simulated wall time of the run, seconds.
    pub span_s: f64,
    /// Sustained throughput over the run.
    pub ops_per_sec: f64,
    /// `LatencyHistogram::tail_summary` of submit→complete times
    /// (p50/p95/p99/p99.9/max).
    pub latency: String,
    /// Full-queue admission stalls across all pairs.
    pub full_stalls: u64,
    /// High-water mark of in-flight commands on any single pair.
    pub max_inflight: u64,
}

/// One row of the parallel-PE scan sweep (`streams == 0` is the legacy
/// serial dispatch).
#[derive(Debug, Clone)]
pub struct ParallelSweepPoint {
    pub streams: usize,
    /// Simulated device time of one full-table SCAN, milliseconds.
    pub scan_ms: f64,
    /// Records matched (identical across rows — asserted).
    pub matched: u64,
    /// Speedup relative to the 1-stream row (`t_1 / t_self`).
    pub speedup: f64,
}

/// One row of the DRAM block-cache sweep (`budget_mb == 0` is the
/// cache-off baseline every other row must match byte-for-byte).
#[derive(Debug, Clone)]
pub struct CacheSweepPoint {
    /// Cache budget, MiB (0 = cache disabled).
    pub budget_mb: usize,
    /// Hit rate over the whole repeated-scan run, `hits / lookups`.
    pub hit_rate: f64,
    /// Median per-scan simulated device time, milliseconds.
    pub p50_ms: f64,
    /// p99 per-scan simulated device time, milliseconds (the cold
    /// first scan lands here, so it stays near the uncached p50).
    pub p99_ms: f64,
}

/// One row of the batched-GET sweep (`batch == 1` is the legacy
/// per-key queue path every other row must match record-for-record).
#[derive(Debug, Clone)]
pub struct BatchedSweepPoint {
    /// Max keys folded into one key-list descriptor.
    pub batch: u32,
    /// Commands completed (identical across rows — asserted).
    pub ops: u64,
    /// Simulated wall time of the run, seconds.
    pub span_s: f64,
    /// Sustained GET throughput over the run.
    pub ops_per_sec: f64,
    /// Doorbell MMIOs the coalescer saved across the run.
    pub coalesced_doorbells: u64,
    /// `LatencyHistogram::tail_summary` of submit→complete times.
    pub latency: String,
    /// Throughput relative to the batch-1 row (`self / t_1`).
    pub speedup: f64,
}

/// One row of the mixed-priority QoS sweep: the same seeded workload
/// (a bulk scan flood plus one latency-sensitive GET client) run once
/// with every client at [`Priority::Normal`] (the FIFO baseline) and
/// once with QoS classes attached (`fifo` vs `priority` rows).
#[derive(Debug, Clone)]
pub struct QosSweepPoint {
    /// Dispatch mode: `"fifo"` (all-Normal baseline) or `"priority"`.
    pub mode: &'static str,
    /// Commands completed (identical across rows — asserted).
    pub ops: u64,
    /// Simulated wall time of the run, seconds.
    pub span_s: f64,
    /// Sustained throughput over the run.
    pub ops_per_sec: f64,
    /// p99 submit→complete latency of the GET client, milliseconds —
    /// the number the priority heap exists to shrink.
    pub get_p99_ms: f64,
    /// `LatencyHistogram::tail_summary` across all commands.
    pub latency: String,
}

/// One cell of the clients x devices cluster matrix: the same seeded
/// client scripts pushed through an [`NkvCluster`] of `devices`
/// hash-sharded Cosmos+ instances.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMatrixPoint {
    pub clients: u32,
    pub devices: usize,
    /// Logical commands issued across all clients.
    pub ops: u64,
    /// Simulated wall time of the run (slowest shard), seconds.
    pub span_s: f64,
    /// Sustained cluster throughput over the run.
    pub ops_per_sec: f64,
    /// `LatencyHistogram::tail_summary` of submit→complete times,
    /// merged across shards.
    pub latency: String,
}

/// The whole sweep.
#[derive(Debug, Clone)]
pub struct LoadgenFigure {
    pub cfg: LoadgenConfig,
    pub points: Vec<LoadgenPoint>,
    /// Parallel-PE scan sweep over the refs table (the paper's "1..N
    /// filtering units"), same scale and dataset as the client sweep.
    pub sweep: Vec<ParallelSweepPoint>,
    /// DRAM block-cache sweep; empty unless `cfg.cache_mb > 0`.
    pub cache: Vec<CacheSweepPoint>,
    /// Clients x devices cluster matrix; empty unless `cfg.devices` is
    /// non-empty.
    pub cluster: Vec<ClusterMatrixPoint>,
    /// Batched-GET sweep; empty unless `cfg.batch > 1`.
    pub batched: Vec<BatchedSweepPoint>,
    /// Mixed-priority QoS sweep; empty unless `cfg.qos` is set.
    pub qos: Vec<QosSweepPoint>,
}

/// Build the seeded script for one client: ~90 % GET, ~8 % PUT
/// (re-writes of existing papers), ~2 % selective SCAN.
pub fn client_script(cfg: &PubGraphConfig, seed: u64, client: u32, ops: u32) -> ClientScript {
    let mut rng = SplitMix64::for_record(seed, 0x10ad + u64::from(client), 0);
    let mut script = ClientScript::default();
    for _ in 0..ops {
        let roll = rng.gen_u32(100);
        let idx = rng.gen_u64(cfg.papers);
        let op = if roll < 90 {
            QueuedOp::Get { key: PaperGen::paper_at(cfg, idx).id }
        } else if roll < 98 {
            let p = PaperGen::paper_at(cfg, idx);
            let mut rec = Vec::with_capacity(80);
            p.encode_into(&mut rec);
            QueuedOp::Put { record: rec }
        } else {
            QueuedOp::Scan {
                rules: vec![FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2015 }],
            }
        };
        script.ops.push(op);
    }
    script
}

/// Run the sweep: one freshly built device per client count (so points
/// are independent and each run starts from the identical bulk-loaded
/// state), hardware execution mode throughout.
pub fn loadgen(cfg: &LoadgenConfig) -> LoadgenFigure {
    loadgen_traced(cfg, false).0
}

/// [`loadgen`] plus the optional merged cluster trace from
/// [`cluster_matrix_traced`] (requires a non-empty `cfg.devices`).
pub fn loadgen_traced(cfg: &LoadgenConfig, trace: bool) -> (LoadgenFigure, Option<String>) {
    let mut points = Vec::with_capacity(cfg.clients.len());
    for &n in &cfg.clients {
        let mut ds = build_db(cfg.scale, DbKind::Ours);
        let scripts: Vec<ClientScript> =
            (0..n).map(|c| client_script(&ds.cfg, cfg.seed, c, cfg.ops_per_client)).collect();
        let run_cfg = QueueRunConfig { depth: cfg.depth, ..QueueRunConfig::default() };
        let report = ds.db.run_queued("papers", &scripts, &run_cfg).expect("queued run succeeds");
        let queue = report.queue;
        points.push(LoadgenPoint {
            clients: n,
            ops: report.ops(),
            span_s: ns_to_secs(report.finished_ns - report.started_ns),
            ops_per_sec: report.throughput_ops_per_sec(),
            latency: report.latency.tail_summary(),
            full_stalls: queue.full_stalls,
            max_inflight: queue.max_inflight,
        });
    }
    let sweep = parallel_sweep(cfg.scale, &[0, 1, 2, 4]);
    let cache = if cfg.cache_mb > 0 { cache_sweep(cfg.scale, cfg.cache_mb) } else { Vec::new() };
    let (cluster, trace_json) = cluster_matrix_traced(cfg, trace);
    let batched = if cfg.batch > 1 { batched_get_sweep(cfg) } else { Vec::new() };
    let qos = if cfg.qos { qos_sweep(cfg) } else { Vec::new() };
    (LoadgenFigure { cfg: cfg.clone(), points, sweep, cache, cluster, batched, qos }, trace_json)
}

/// Run the clients x devices cluster matrix: for every `(clients,
/// devices)` cell, bulk-load the papers table into a fresh
/// [`NkvCluster`] of that many hash-sharded devices and push the same
/// seeded client scripts through [`NkvCluster::run_queued`] (the router
/// partitions each script by key, so the per-op order every device sees
/// is deterministic). Empty `cfg.devices` skips the matrix — the default
/// loadgen output must stay byte-identical to the single-device table.
pub fn cluster_matrix(cfg: &LoadgenConfig) -> Vec<ClusterMatrixPoint> {
    cluster_matrix_traced(cfg, false).0
}

/// [`cluster_matrix`] plus an optional merged Chrome trace: when
/// `trace` is on, the *last* cell (largest device count of the last
/// client row — the most interesting flame graph) runs with cluster
/// observability enabled, and its merged multi-device trace JSON is
/// returned alongside the rows. Tracing is timing-invisible, so every
/// cell's numbers are byte-identical either way.
pub fn cluster_matrix_traced(
    cfg: &LoadgenConfig,
    trace: bool,
) -> (Vec<ClusterMatrixPoint>, Option<String>) {
    let mut rows = Vec::new();
    if cfg.devices.is_empty() {
        return (rows, None);
    }
    let papers_cfg = paper_table_config(PeVariant::Generated);
    let pub_cfg = PubGraphConfig::scaled(cfg.scale);
    let records = paper_records(pub_cfg);
    let cells = cfg.clients.len() * cfg.devices.len();
    let mut trace_json = None;
    for (i, &n) in cfg.clients.iter().enumerate() {
        let scripts: Vec<ClientScript> =
            (0..n).map(|c| client_script(&pub_cfg, cfg.seed, c, cfg.ops_per_client)).collect();
        for (j, &d) in cfg.devices.iter().enumerate() {
            let mut cluster =
                NkvCluster::new(ClusterConfig { devices: d, ..ClusterConfig::default() })
                    .expect("cluster config is valid");
            let last_cell = i * cfg.devices.len() + j + 1 == cells;
            cluster.create_table("papers", papers_cfg.clone()).expect("table config is valid");
            cluster.bulk_load("papers", records.clone()).expect("bulk load succeeds");
            cluster.persist().expect("persist succeeds");
            // Enable after the load so the flame graph shows the queued
            // run, not a million bulk-load flash programs.
            if trace && last_cell {
                cluster.enable_observability(1 << 20);
            }
            let run_cfg = QueueRunConfig { depth: cfg.depth, ..QueueRunConfig::default() };
            let report =
                cluster.run_queued("papers", &scripts, &run_cfg).expect("queued run succeeds");
            rows.push(ClusterMatrixPoint {
                clients: n,
                devices: d,
                ops: report.logical_ops,
                span_s: ns_to_secs(report.span_ns),
                ops_per_sec: report.throughput_ops_per_sec(),
                latency: report.latency.tail_summary(),
            });
            if trace && last_cell {
                let (devices, router) = cluster.take_cluster_trace();
                trace_json = Some(chrome_trace_json_cluster(&devices, &router));
            }
        }
    }
    (rows, trace_json)
}

/// Per-client queue depth of the batched-GET sweep: fixed across rows
/// (the fold needs `depth >= batch` same-time commands in flight, and
/// varying depth with batch would conflate queueing with batching).
const BATCHED_SWEEP_DEPTH: u32 = 16;
/// Clients in the batched-GET sweep.
const BATCHED_SWEEP_CLIENTS: u32 = 2;

/// Build the seeded GET-only script for one batched-sweep client.
pub fn get_script(cfg: &PubGraphConfig, seed: u64, client: u32, ops: u32) -> ClientScript {
    let mut rng = SplitMix64::for_record(seed, 0xba7c4 + u64::from(client), 0);
    let mut script = ClientScript::default();
    for _ in 0..ops {
        let idx = rng.gen_u64(cfg.papers);
        script.ops.push(QueuedOp::Get { key: PaperGen::paper_at(cfg, idx).id });
    }
    script
}

/// Sweep the batched-GET key-list size over the same seeded GET-only
/// workload on a freshly built, churned device per row (churn gives the
/// LSM overlapping C1 SSTs, the shape whose index-page walks batching
/// amortizes). Batching must never change *what* a GET returns — every
/// row's completions are asserted record-identical to the batch-1
/// baseline — only how many PE configurations and doorbells it costs.
pub fn batched_get_sweep(cfg: &LoadgenConfig) -> Vec<BatchedSweepPoint> {
    let batches: Vec<u32> =
        [1, 2, 4, 8, 16].iter().copied().filter(|&b| b == 1 || b <= cfg.batch).collect();
    let mut rows = Vec::with_capacity(batches.len());
    let mut baseline: Option<Vec<(u32, u32, Vec<u8>)>> = None;
    for &b in &batches {
        let mut ds = build_db(cfg.scale, DbKind::Ours);
        crate::figures::churn_c1(&mut ds, 7);
        let scripts: Vec<ClientScript> = (0..BATCHED_SWEEP_CLIENTS)
            .map(|c| get_script(&ds.cfg, cfg.seed, c, cfg.ops_per_client))
            .collect();
        let run_cfg =
            QueueRunConfig { depth: BATCHED_SWEEP_DEPTH, batch: b, ..QueueRunConfig::default() };
        let report = ds.db.run_queued("papers", &scripts, &run_cfg).expect("queued run succeeds");
        let mut records: Vec<(u32, u32, Vec<u8>)> =
            report.completions.iter().map(|c| (c.client, c.seq, c.payload.clone())).collect();
        records.sort_unstable();
        match &baseline {
            None => baseline = Some(records),
            Some(base) => assert_eq!(
                *base, records,
                "batch {b} must return the batch-1 records byte-for-byte"
            ),
        }
        rows.push(BatchedSweepPoint {
            batch: b,
            ops: report.ops(),
            span_s: ns_to_secs(report.finished_ns - report.started_ns),
            ops_per_sec: report.throughput_ops_per_sec(),
            coalesced_doorbells: report.queue.coalesced_doorbells,
            latency: report.latency.tail_summary(),
            speedup: 0.0,
        });
    }
    let t1 = rows.first().map(|r| r.ops_per_sec);
    for r in &mut rows {
        r.speedup = t1.map_or(0.0, |t| r.ops_per_sec / t);
    }
    rows
}

/// Bulk clients flooding whole-table scans in the QoS sweep.
const QOS_SWEEP_BULK_CLIENTS: u32 = 3;
/// Whole-table scans each bulk client issues.
const QOS_SWEEP_SCANS: u32 = 3;
/// Point lookups the latency-sensitive client issues: one window's
/// worth, all submitted at t=0 alongside the scan flood — the instant
/// where the priority heap actually re-orders dispatch (refilled
/// commands submit at distinct times and never tie).
const QOS_SWEEP_GETS: u32 = 4;
/// Per-client window for the QoS sweep: small enough that the GETs
/// genuinely contend with the scan flood for dispatch slots.
const QOS_SWEEP_DEPTH: u32 = 4;

/// Build the QoS-sweep scripts: [`QOS_SWEEP_BULK_CLIENTS`] clients each
/// issuing [`QOS_SWEEP_SCANS`] whole-table scans, plus one client of
/// [`QOS_SWEEP_GETS`] seeded point lookups. `prioritized` attaches the
/// QoS classes (scans [`Priority::Bulk`], GETs [`Priority::High`]);
/// off, every client stays [`Priority::Normal`] — the FIFO baseline.
fn qos_scripts(cfg: &PubGraphConfig, seed: u64, prioritized: bool) -> Vec<ClientScript> {
    let mut scripts = Vec::with_capacity(QOS_SWEEP_BULK_CLIENTS as usize + 1);
    for _ in 0..QOS_SWEEP_BULK_CLIENTS {
        let mut s = ClientScript::default();
        for _ in 0..QOS_SWEEP_SCANS {
            s.ops.push(QueuedOp::Scan {
                rules: vec![FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 0 }],
            });
        }
        if prioritized {
            s.priority = Priority::Bulk;
        }
        scripts.push(s);
    }
    let mut gets = get_script(cfg, seed, QOS_SWEEP_BULK_CLIENTS, QOS_SWEEP_GETS);
    if prioritized {
        gets.priority = Priority::High;
    }
    scripts.push(gets);
    scripts
}

/// Run the mixed-priority QoS sweep: the same seeded scan-flood + GET
/// workload on a freshly built device per row, once FIFO (all-Normal)
/// and once with priority classes. Priorities must never change *what*
/// a command returns — the rows are asserted record-identical — only
/// *when* the latency-sensitive GETs get dispatched, which the GET-p99
/// column makes visible (and `scripts/check.sh` gates on).
pub fn qos_sweep(cfg: &LoadgenConfig) -> Vec<QosSweepPoint> {
    let mut rows = Vec::with_capacity(2);
    let mut baseline: Option<Vec<(u32, u32, Vec<u8>)>> = None;
    for (mode, prioritized) in [("fifo", false), ("priority", true)] {
        let mut ds = build_db(cfg.scale, DbKind::Ours);
        let scripts = qos_scripts(&ds.cfg, cfg.seed, prioritized);
        let run_cfg = QueueRunConfig { depth: QOS_SWEEP_DEPTH, ..QueueRunConfig::default() };
        let report = ds.db.run_queued("papers", &scripts, &run_cfg).expect("queued run succeeds");
        let mut records: Vec<(u32, u32, Vec<u8>)> =
            report.completions.iter().map(|c| (c.client, c.seq, c.payload.clone())).collect();
        records.sort_unstable();
        match &baseline {
            None => baseline = Some(records),
            Some(base) => assert_eq!(
                *base, records,
                "priority dispatch must return the FIFO records byte-for-byte"
            ),
        }
        let mut get_hist = LatencyHistogram::new();
        for c in report.completions.iter().filter(|c| c.client == QOS_SWEEP_BULK_CLIENTS) {
            get_hist.record(c.complete_ns - c.submit_ns);
        }
        rows.push(QosSweepPoint {
            mode,
            ops: report.ops(),
            span_s: ns_to_secs(report.finished_ns - report.started_ns),
            ops_per_sec: report.throughput_ops_per_sec(),
            get_p99_ms: get_hist.quantile(0.99) as f64 / 1e6,
            latency: report.latency.tail_summary(),
        });
    }
    rows
}

/// Sweep the refs-table SCAN over parallel PE job-stream counts on one
/// freshly built device (0 = the legacy serial dispatch). Every row must
/// match the same records — the plans only reshape the DES timeline —
/// and that invariant is asserted here, so the smoke diff doubles as an
/// equivalence gate.
pub fn parallel_sweep(scale: f64, streams: &[usize]) -> Vec<ParallelSweepPoint> {
    let mut ds = build_db(scale, DbKind::Ours);
    let rules = [FilterRule { lane: ref_lanes::YEAR, op_code: 4 /* ge */, value: 2000 }];
    let mut rows = Vec::with_capacity(streams.len());
    let mut baseline: Option<Vec<u8>> = None;
    for &s in streams {
        ds.db.set_parallel_pes("refs", s).expect("refs has enough PEs");
        let summary = ds.db.scan("refs", &rules, ExecMode::Hardware).expect("scan succeeds");
        match &baseline {
            None => baseline = Some(summary.records.clone()),
            Some(b) => assert_eq!(
                *b, summary.records,
                "parallel plans must match the serial records byte-for-byte"
            ),
        }
        rows.push(ParallelSweepPoint {
            streams: s,
            scan_ms: summary.report.sim_ns as f64 / 1e6,
            matched: summary.count,
            speedup: 0.0,
        });
    }
    ds.db.set_parallel_pes("refs", 0).expect("reset to serial");
    let t1 = rows.iter().find(|r| r.streams == 1).map(|r| r.scan_ms);
    for r in &mut rows {
        r.speedup = t1.map_or(0.0, |t| t / r.scan_ms);
    }
    rows
}

/// Repeated scans per cache-sweep point: enough for the warm scans to
/// dominate the p50 while the cold first scan sets p99.
const CACHE_SWEEP_SCANS: usize = 6;

/// Sweep the device-DRAM block cache budget from off to `cache_mb` MiB,
/// running the same selective refs SCAN [`CACHE_SWEEP_SCANS`] times per
/// point on a freshly built device. The cache must never change *what*
/// a scan returns — every row is asserted byte-identical to the
/// cache-off baseline — only *when* flash is touched, which the hit
/// rate and the p50/p99 split make visible.
pub fn cache_sweep(scale: f64, cache_mb: usize) -> Vec<CacheSweepPoint> {
    let mut budgets = vec![0, cache_mb / 4, cache_mb / 2, cache_mb];
    budgets.sort_unstable();
    budgets.dedup();
    let rules = [FilterRule { lane: ref_lanes::YEAR, op_code: 4 /* ge */, value: 2000 }];
    let mut rows = Vec::with_capacity(budgets.len());
    let mut baseline: Option<Vec<u8>> = None;
    for budget_mb in budgets {
        let mut ds = build_db(scale, DbKind::Ours);
        if budget_mb > 0 {
            ds.db.enable_cache(budget_mb << 20);
        }
        let mut hist = LatencyHistogram::new();
        for _ in 0..CACHE_SWEEP_SCANS {
            let summary = ds.db.scan("refs", &rules, ExecMode::Hardware).expect("scan succeeds");
            hist.record(summary.report.sim_ns);
            match &baseline {
                None => baseline = Some(summary.records.clone()),
                Some(b) => assert_eq!(
                    *b, summary.records,
                    "the cache must be invisible to results (budget {budget_mb} MiB)"
                ),
            }
        }
        let hit_rate = ds.db.cache_stats().map_or(0.0, |s| s.hit_rate());
        rows.push(CacheSweepPoint {
            budget_mb,
            hit_rate,
            p50_ms: hist.quantile(0.50) as f64 / 1e6,
            p99_ms: hist.quantile(0.99) as f64 / 1e6,
        });
    }
    rows
}

/// Render the figure as the stable text table the `repro` binary prints
/// (and the smoke test diffs).
pub fn render(fig: &LoadgenFigure) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let c = &fig.cfg;
    let _ = writeln!(
        out,
        "  depth={} ops/client={} seed={} scale={:.8}",
        c.depth, c.ops_per_client, c.seed, c.scale
    );
    let _ = writeln!(out, "  clients      ops   span(ms)      ops/s   stalls  latency");
    for p in &fig.points {
        let _ = writeln!(
            out,
            "  {:7} {:8} {:10.3} {:10.1} {:8}  {}",
            p.clients,
            p.ops,
            p.span_s * 1e3,
            p.ops_per_sec,
            p.full_stalls,
            p.latency
        );
    }
    if !fig.sweep.is_empty() {
        let _ = writeln!(out, "  parallel-PE sweep (refs SCAN, year >= 2000):");
        let _ = writeln!(out, "  streams   scan(ms)   matched   speedup");
        for r in &fig.sweep {
            let label = if r.streams == 0 { "serial".to_string() } else { r.streams.to_string() };
            let _ = writeln!(
                out,
                "  {:>7} {:10.3} {:9} {:8.2}x",
                label, r.scan_ms, r.matched, r.speedup
            );
        }
    }
    if !fig.cache.is_empty() {
        let _ = writeln!(out, "  DRAM cache sweep (refs SCAN x{CACHE_SWEEP_SCANS}, year >= 2000):");
        let _ = writeln!(out, "  budget(MB)   hit%    p50(ms)    p99(ms)");
        for r in &fig.cache {
            let label = if r.budget_mb == 0 { "off".to_string() } else { r.budget_mb.to_string() };
            let _ = writeln!(
                out,
                "  {:>10} {:6.1} {:10.3} {:10.3}",
                label,
                r.hit_rate * 100.0,
                r.p50_ms,
                r.p99_ms
            );
        }
    }
    if !fig.batched.is_empty() {
        let _ = writeln!(
            out,
            "  batched-GET sweep (GET-only, {BATCHED_SWEEP_CLIENTS} clients, \
             depth {BATCHED_SWEEP_DEPTH}):"
        );
        let _ =
            writeln!(out, "    batch      ops   span(ms)      ops/s  coalesced  speedup  latency");
        for r in &fig.batched {
            let _ = writeln!(
                out,
                "  {:7} {:8} {:10.3} {:10.1} {:10} {:7.2}x  {}",
                r.batch,
                r.ops,
                r.span_s * 1e3,
                r.ops_per_sec,
                r.coalesced_doorbells,
                r.speedup,
                r.latency
            );
        }
    }
    if !fig.qos.is_empty() {
        let _ = writeln!(
            out,
            "  QoS sweep ({QOS_SWEEP_BULK_CLIENTS} bulk scan clients + \
             {QOS_SWEEP_GETS} high-priority GETs, depth {QOS_SWEEP_DEPTH}):"
        );
        let _ = writeln!(out, "      mode      ops   span(ms)      ops/s  get-p99(ms)  latency");
        for r in &fig.qos {
            let _ = writeln!(
                out,
                "  {:>8} {:8} {:10.3} {:10.1} {:12.3}  {}",
                r.mode,
                r.ops,
                r.span_s * 1e3,
                r.ops_per_sec,
                r.get_p99_ms,
                r.latency
            );
        }
    }
    if !fig.cluster.is_empty() {
        let _ = writeln!(out, "  cluster matrix (clients x devices, hash-sharded):");
        let _ = writeln!(out, "  clients  devices      ops   span(ms)      ops/s  latency");
        for r in &fig.cluster {
            let _ = writeln!(
                out,
                "  {:7} {:8} {:8} {:10.3} {:10.1}  {}",
                r.clients,
                r.devices,
                r.ops,
                r.span_s * 1e3,
                r.ops_per_sec,
                r.latency
            );
        }
    }
    out
}

/// Render the figure as machine-readable JSON (`BENCH_loadgen.json` in
/// `scripts/check.sh`). Hand-rolled through [`crate::json`] — the
/// workspace carries no serde — and stable: same seed, same bytes, keys
/// always present (empty sweeps are empty arrays, not missing keys).
/// Schema v2 added the top-level `seed` stamp every `BENCH_*.json`
/// carries; v3 added the `batch` config knob and the always-present
/// `batched_sweep` section; v4 added the `qos` config knob and the
/// always-present `qos_sweep` section.
pub fn bench_json(fig: &LoadgenFigure) -> String {
    use std::fmt::Write as _;
    let join = |items: Vec<String>| items.join(", ");
    let c = &fig.cfg;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"nkv-bench-loadgen/4\",");
    let _ = writeln!(out, "  \"seed\": {},", c.seed);
    let _ = writeln!(out, "  \"config\": {{");
    let _ = writeln!(out, "    \"scale\": {},", json_num(c.scale));
    let _ = writeln!(
        out,
        "    \"clients\": [{}],",
        join(c.clients.iter().map(u32::to_string).collect())
    );
    let _ = writeln!(out, "    \"depth\": {},", c.depth);
    let _ = writeln!(out, "    \"ops_per_client\": {},", c.ops_per_client);
    let _ = writeln!(out, "    \"seed\": {},", c.seed);
    let _ = writeln!(out, "    \"cache_mb\": {},", c.cache_mb);
    let _ = writeln!(
        out,
        "    \"devices\": [{}],",
        join(c.devices.iter().map(usize::to_string).collect())
    );
    let _ = writeln!(out, "    \"batch\": {},", c.batch);
    let _ = writeln!(out, "    \"qos\": {}", c.qos);
    let _ = writeln!(out, "  }},");
    let points = fig
        .points
        .iter()
        .map(|p| {
            format!(
                "    {{\"clients\": {}, \"ops\": {}, \"span_ms\": {}, \"ops_per_sec\": {}, \
                 \"full_stalls\": {}, \"max_inflight\": {}, \"latency\": {}}}",
                p.clients,
                p.ops,
                json_num(p.span_s * 1e3),
                json_num(p.ops_per_sec),
                p.full_stalls,
                p.max_inflight,
                json_str(&p.latency)
            )
        })
        .collect::<Vec<_>>();
    let _ = writeln!(out, "  \"points\": [\n{}\n  ],", points.join(",\n"));
    let sweep = fig
        .sweep
        .iter()
        .map(|r| {
            format!(
                "    {{\"streams\": {}, \"scan_ms\": {}, \"matched\": {}, \"speedup\": {}}}",
                r.streams,
                json_num(r.scan_ms),
                r.matched,
                json_num(r.speedup)
            )
        })
        .collect::<Vec<_>>();
    if sweep.is_empty() {
        let _ = writeln!(out, "  \"parallel_sweep\": [],");
    } else {
        let _ = writeln!(out, "  \"parallel_sweep\": [\n{}\n  ],", sweep.join(",\n"));
    }
    let cache = fig
        .cache
        .iter()
        .map(|r| {
            format!(
                "    {{\"budget_mb\": {}, \"hit_rate\": {}, \"p50_ms\": {}, \"p99_ms\": {}}}",
                r.budget_mb,
                json_num(r.hit_rate),
                json_num(r.p50_ms),
                json_num(r.p99_ms)
            )
        })
        .collect::<Vec<_>>();
    if cache.is_empty() {
        let _ = writeln!(out, "  \"cache_sweep\": [],");
    } else {
        let _ = writeln!(out, "  \"cache_sweep\": [\n{}\n  ],", cache.join(",\n"));
    }
    let cluster = fig
        .cluster
        .iter()
        .map(|r| {
            format!(
                "    {{\"clients\": {}, \"devices\": {}, \"ops\": {}, \"span_ms\": {}, \
                 \"ops_per_sec\": {}, \"latency\": {}}}",
                r.clients,
                r.devices,
                r.ops,
                json_num(r.span_s * 1e3),
                json_num(r.ops_per_sec),
                json_str(&r.latency)
            )
        })
        .collect::<Vec<_>>();
    if cluster.is_empty() {
        let _ = writeln!(out, "  \"cluster_matrix\": [],");
    } else {
        let _ = writeln!(out, "  \"cluster_matrix\": [\n{}\n  ],", cluster.join(",\n"));
    }
    let batched = fig
        .batched
        .iter()
        .map(|r| {
            format!(
                "    {{\"batch\": {}, \"ops\": {}, \"span_ms\": {}, \"ops_per_sec\": {}, \
                 \"coalesced_doorbells\": {}, \"speedup\": {}, \"latency\": {}}}",
                r.batch,
                r.ops,
                json_num(r.span_s * 1e3),
                json_num(r.ops_per_sec),
                r.coalesced_doorbells,
                json_num(r.speedup),
                json_str(&r.latency)
            )
        })
        .collect::<Vec<_>>();
    if batched.is_empty() {
        let _ = writeln!(out, "  \"batched_sweep\": [],");
    } else {
        let _ = writeln!(out, "  \"batched_sweep\": [\n{}\n  ],", batched.join(",\n"));
    }
    let qos = fig
        .qos
        .iter()
        .map(|r| {
            format!(
                "    {{\"mode\": {}, \"ops\": {}, \"span_ms\": {}, \"ops_per_sec\": {}, \
                 \"get_p99_ms\": {}, \"latency\": {}}}",
                json_str(r.mode),
                r.ops,
                json_num(r.span_s * 1e3),
                json_num(r.ops_per_sec),
                json_num(r.get_p99_ms),
                json_str(&r.latency)
            )
        })
        .collect::<Vec<_>>();
    if qos.is_empty() {
        let _ = writeln!(out, "  \"qos_sweep\": []");
    } else {
        let _ = writeln!(out, "  \"qos_sweep\": [\n{}\n  ]", qos.join(",\n"));
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 1.0 / 2048.0;

    #[test]
    fn scripts_are_seed_deterministic_and_mixed() {
        let cfg = PubGraphConfig::scaled(SCALE);
        let a = client_script(&cfg, 7, 3, 200);
        let b = client_script(&cfg, 7, 3, 200);
        assert_eq!(a.ops.len(), b.ops.len());
        let kind = |o: &QueuedOp| match o {
            QueuedOp::Get { .. } => 0,
            QueuedOp::Put { .. } => 1,
            QueuedOp::Scan { .. } => 2,
        };
        let ka: Vec<u8> = a.ops.iter().map(kind).collect();
        let kb: Vec<u8> = b.ops.iter().map(kind).collect();
        assert_eq!(ka, kb, "same seed, same script");
        assert!(ka.contains(&0) && ka.contains(&1) && ka.contains(&2), "all op kinds present");
        let c = client_script(&cfg, 7, 4, 200);
        let kc: Vec<u8> = c.ops.iter().map(kind).collect();
        assert_ne!(ka, kc, "clients draw from distinct streams");
    }

    #[test]
    fn throughput_scales_then_saturates() {
        // The acceptance criterion: GET/SCAN throughput grows with the
        // client count until the flash LUNs / PE pool saturate. Depth 1
        // isolates the client-count axis — each client is strictly
        // closed-loop, so added throughput can only come from commands
        // of *different* clients overlapping on disjoint resources.
        let fig = loadgen(&LoadgenConfig {
            scale: SCALE,
            clients: vec![1, 8, 32],
            depth: 1,
            ops_per_client: 48,
            seed: 42,
            cache_mb: 0,
            devices: Vec::new(),
            batch: 1,
            qos: false,
        });
        let t: Vec<f64> = fig.points.iter().map(|p| p.ops_per_sec).collect();
        assert!(t[1] > 1.5 * t[0], "8 clients should clearly out-run 1 client: {t:?}");
        assert!(t[2] < 1.5 * t[1], "by 32 clients the shared flash/PE resources saturate: {t:?}");
        assert!(t[2] > 0.7 * t[1], "saturation is a plateau, not a collapse: {t:?}");
    }

    #[test]
    fn render_is_byte_stable_for_a_seed() {
        let cfg = LoadgenConfig {
            scale: SCALE,
            clients: vec![1, 2],
            depth: 4,
            ops_per_client: 8,
            seed: 7,
            cache_mb: 0,
            devices: Vec::new(),
            batch: 1,
            qos: false,
        };
        let a = render(&loadgen(&cfg));
        let b = render(&loadgen(&cfg));
        assert_eq!(a, b);
        assert!(a.contains("clients"), "{a}");
        assert!(a.contains("p99.9="), "latency column reports the p99.9 tail: {a}");
        assert!(a.contains("parallel-PE sweep"), "{a}");
        assert!(
            !a.contains("DRAM cache sweep"),
            "cache_mb=0 must leave the table byte-identical to the pre-cache output: {a}"
        );
        assert!(
            !a.contains("cluster matrix"),
            "an empty devices list must leave the table byte-identical to the \
             pre-cluster output: {a}"
        );
        assert!(
            !a.contains("batched-GET sweep"),
            "batch=1 must leave the table byte-identical to the pre-batching output: {a}"
        );
        assert!(
            !a.contains("QoS sweep"),
            "qos=false must leave the table byte-identical to the pre-QoS output: {a}"
        );
    }

    #[test]
    fn qos_sweep_shrinks_the_get_tail_without_changing_records() {
        let rows = qos_sweep(&LoadgenConfig { scale: SCALE, seed: 42, ..LoadgenConfig::default() });
        assert_eq!(rows.len(), 2);
        let fifo = &rows[0];
        let qos = &rows[1];
        assert_eq!(fifo.mode, "fifo");
        assert_eq!(qos.mode, "priority");
        // Record equality across modes is asserted inside qos_sweep;
        // here we gate the latency win the priority heap exists for.
        assert_eq!(fifo.ops, qos.ops, "both modes complete the same commands");
        assert!(
            qos.get_p99_ms < fifo.get_p99_ms,
            "high-priority GETs must beat the FIFO tail: {:.3} ms vs {:.3} ms",
            qos.get_p99_ms,
            fifo.get_p99_ms
        );
        // Seeded determinism: rerunning reproduces the rows bit for bit.
        let again =
            qos_sweep(&LoadgenConfig { scale: SCALE, seed: 42, ..LoadgenConfig::default() });
        assert_eq!(rows[1].get_p99_ms, again[1].get_p99_ms);
        assert_eq!(rows[1].latency, again[1].latency);
    }

    #[test]
    fn cluster_matrix_scales_with_devices() {
        let cfg = LoadgenConfig {
            scale: SCALE,
            clients: vec![2],
            depth: 4,
            ops_per_client: 32,
            seed: 42,
            cache_mb: 0,
            devices: vec![1, 4],
            batch: 1,
            qos: false,
        };
        let rows = cluster_matrix(&cfg);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].devices, 1);
        assert_eq!(rows[1].devices, 4);
        assert_eq!(rows[0].ops, rows[1].ops, "every cell issues the same logical work");
        assert!(
            rows[1].ops_per_sec >= 2.5 * rows[0].ops_per_sec,
            "4 hash shards must clearly out-run 1 device: {:.1} vs {:.1} ops/s",
            rows[1].ops_per_sec,
            rows[0].ops_per_sec
        );
        assert!(cluster_matrix(&LoadgenConfig::default()).is_empty(), "no devices, no matrix");
    }

    #[test]
    fn traced_matrix_matches_untraced_rows_and_emits_a_merged_trace() {
        let cfg = LoadgenConfig {
            scale: SCALE,
            clients: vec![2],
            depth: 4,
            ops_per_client: 24,
            seed: 42,
            cache_mb: 0,
            devices: vec![1, 2],
            batch: 1,
            qos: false,
        };
        let (rows, trace) = cluster_matrix_traced(&cfg, true);
        // Observability is timing-invisible: the traced rows are the
        // untraced rows.
        assert_eq!(rows, cluster_matrix(&cfg), "tracing must not move the numbers");
        let json = trace.expect("last cell traced");
        // Both devices of the 2-shard cell appear in their own pid
        // namespaces, and the router narrates the fan-out.
        assert!(json.contains(&format!("\"pid\":{}", cosmos_sim::DEVICE_PID_STRIDE + 100)));
        assert!(json.contains(&format!("\"pid\":{}", cosmos_sim::ROUTER_PID)));
        assert!(json.contains("router_fanout"), "{}", &json[..json.len().min(400)]);
        assert!(json.contains("router_merge"));
        assert!(cluster_matrix_traced(&cfg, false).1.is_none(), "no trace unless asked");
    }

    #[test]
    fn bench_json_is_wellformed_and_carries_every_section() {
        let cfg = LoadgenConfig {
            scale: SCALE,
            clients: vec![1],
            depth: 2,
            ops_per_client: 8,
            seed: 7,
            cache_mb: 0,
            devices: vec![1, 2],
            batch: 1,
            qos: false,
        };
        let json = bench_json(&loadgen(&cfg));
        for key in [
            "\"schema\"",
            "\"seed\"",
            "\"config\"",
            "\"points\"",
            "\"parallel_sweep\"",
            "\"cache_sweep\"",
            "\"cluster_matrix\"",
            "\"batched_sweep\"",
            "\"qos_sweep\"",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        assert!(json.contains("\"nkv-bench-loadgen/4\""), "{json}");
        assert!(json.contains("\"batched_sweep\": []"), "batch off is an empty array: {json}");
        assert!(json.contains("\"qos_sweep\": []"), "qos off is an empty array: {json}");
        assert!(json.contains("\"seed\": 7,"), "{json}");
        assert!(json.contains("\"devices\": [1, 2]"), "{json}");
        assert!(json.contains("\"cache_sweep\": []"), "cache off is an empty array: {json}");
        // Structural sanity without a JSON parser in the workspace: the
        // document is one balanced object, every bracket closes, and no
        // non-finite float leaked through.
        let depth_ok = |open: char, close: char| {
            let mut depth = 0i64;
            let mut in_str = false;
            for c in json.chars() {
                if c == '"' {
                    in_str = !in_str;
                }
                if in_str {
                    continue;
                }
                if c == open {
                    depth += 1;
                }
                if c == close {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced {open}{close}: {json}");
                }
            }
            depth == 0
        };
        assert!(depth_ok('{', '}'), "unbalanced braces: {json}");
        assert!(depth_ok('[', ']'), "unbalanced brackets: {json}");
        for bad in [": NaN", ": inf", ": -inf"] {
            assert!(!json.contains(bad), "non-finite float leaked into JSON: {json}");
        }
        let again = bench_json(&loadgen(&cfg));
        assert_eq!(json, again, "same seed, same bytes");
    }

    #[test]
    fn cache_sweep_hits_and_speeds_up_warm_scans() {
        let rows = cache_sweep(SCALE, 8);
        let off = rows.first().expect("budget 0 row");
        let full = rows.last().expect("full-budget row");
        assert_eq!(off.budget_mb, 0);
        assert_eq!(full.budget_mb, 8);
        assert!(off.hit_rate == 0.0, "cache off cannot hit: {:?}", off);
        assert!(
            full.hit_rate >= 0.5,
            "repeated scans must warm the cache past the acceptance bar: {:?}",
            full
        );
        assert!(
            full.p50_ms < off.p50_ms,
            "warm DRAM reads must beat flash on the median scan: {:.3} ms vs {:.3} ms",
            full.p50_ms,
            off.p50_ms
        );
        assert!(
            full.p99_ms > full.p50_ms,
            "the cold first scan should stretch the tail: {:?}",
            full
        );
    }

    #[test]
    fn parallel_sweep_speeds_up_and_matches_serial() {
        let rows = parallel_sweep(SCALE, &[0, 1, 4]);
        assert_eq!(rows.len(), 3);
        let serial = &rows[0];
        let one = &rows[1];
        let four = &rows[2];
        assert_eq!(serial.matched, one.matched, "plans only reshape the timeline");
        assert_eq!(serial.matched, four.matched);
        assert!(
            four.scan_ms < 0.8 * one.scan_ms,
            "4 job streams must clearly beat 1: {:.3} ms vs {:.3} ms",
            four.scan_ms,
            one.scan_ms
        );
        assert!(four.speedup > 1.25, "speedup column is t1/t: {}", four.speedup);
        assert!((one.speedup - 1.0).abs() < 1e-9);
    }
}
