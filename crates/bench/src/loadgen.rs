//! Beyond-paper figure: closed-loop multi-client load through the NVMe
//! queue engine.
//!
//! The paper evaluates one operation at a time; its motivation ("data
//! lakes … millions of users") is a throughput story. This figure
//! sweeps the client count over the same device and dataset and reports
//! sustained ops/s plus latency percentiles per point: throughput
//! scales while independent commands land on disjoint flash LUNs and
//! PEs, then saturates on the hottest shared resource (the paper's
//! flash bottleneck, reached from the queue engine instead of a single
//! streaming SCAN).
//!
//! Every run is seeded: client scripts come from `SplitMix64` streams,
//! so a `(seed, scale, clients, depth, ops)` tuple reproduces
//! byte-identical tables (used by `scripts/check.sh`'s smoke diff).

use crate::dataset::{build_db, DbKind};
use cosmos_sim::ns_to_secs;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::paper_lanes;
use ndp_workload::{PaperGen, PubGraphConfig, SplitMix64};
use nkv::queue::{ClientScript, QueueRunConfig, QueuedOp};

/// Parameters of one loadgen sweep.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Dataset scale (1.0 = the paper's full volume).
    pub scale: f64,
    /// Client counts to sweep, one figure row each.
    pub clients: Vec<u32>,
    /// Per-client window of in-flight commands.
    pub depth: u32,
    /// Commands each client issues.
    pub ops_per_client: u32,
    /// Workload seed (scripts are derived per client from this).
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            scale: 1.0 / 256.0,
            clients: vec![1, 2, 4, 8, 16, 32],
            depth: 8,
            ops_per_client: 64,
            seed: 42,
        }
    }
}

/// One row of the figure.
#[derive(Debug, Clone)]
pub struct LoadgenPoint {
    pub clients: u32,
    /// Commands completed.
    pub ops: u64,
    /// Simulated wall time of the run, seconds.
    pub span_s: f64,
    /// Sustained throughput over the run.
    pub ops_per_sec: f64,
    /// `LatencyHistogram::percentile_summary` of submit→complete times.
    pub latency: String,
    /// Full-queue admission stalls across all pairs.
    pub full_stalls: u64,
    /// High-water mark of in-flight commands on any single pair.
    pub max_inflight: u64,
}

/// The whole sweep.
#[derive(Debug, Clone)]
pub struct LoadgenFigure {
    pub cfg: LoadgenConfig,
    pub points: Vec<LoadgenPoint>,
}

/// Build the seeded script for one client: ~90 % GET, ~8 % PUT
/// (re-writes of existing papers), ~2 % selective SCAN.
pub fn client_script(cfg: &PubGraphConfig, seed: u64, client: u32, ops: u32) -> ClientScript {
    let mut rng = SplitMix64::for_record(seed, 0x10ad + u64::from(client), 0);
    let mut script = ClientScript::default();
    for _ in 0..ops {
        let roll = rng.gen_u32(100);
        let idx = rng.gen_u64(cfg.papers);
        let op = if roll < 90 {
            QueuedOp::Get { key: PaperGen::paper_at(cfg, idx).id }
        } else if roll < 98 {
            let p = PaperGen::paper_at(cfg, idx);
            let mut rec = Vec::with_capacity(80);
            p.encode_into(&mut rec);
            QueuedOp::Put { record: rec }
        } else {
            QueuedOp::Scan {
                rules: vec![FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2015 }],
            }
        };
        script.ops.push(op);
    }
    script
}

/// Run the sweep: one freshly built device per client count (so points
/// are independent and each run starts from the identical bulk-loaded
/// state), hardware execution mode throughout.
pub fn loadgen(cfg: &LoadgenConfig) -> LoadgenFigure {
    let mut points = Vec::with_capacity(cfg.clients.len());
    for &n in &cfg.clients {
        let mut ds = build_db(cfg.scale, DbKind::Ours);
        let scripts: Vec<ClientScript> =
            (0..n).map(|c| client_script(&ds.cfg, cfg.seed, c, cfg.ops_per_client)).collect();
        let run_cfg = QueueRunConfig { depth: cfg.depth, ..QueueRunConfig::default() };
        let report = ds.db.run_queued("papers", &scripts, &run_cfg).expect("queued run succeeds");
        let queue = report.queue;
        points.push(LoadgenPoint {
            clients: n,
            ops: report.ops(),
            span_s: ns_to_secs(report.finished_ns - report.started_ns),
            ops_per_sec: report.throughput_ops_per_sec(),
            latency: report.latency.percentile_summary(),
            full_stalls: queue.full_stalls,
            max_inflight: queue.max_inflight,
        });
    }
    LoadgenFigure { cfg: cfg.clone(), points }
}

/// Render the figure as the stable text table the `repro` binary prints
/// (and the smoke test diffs).
pub fn render(fig: &LoadgenFigure) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let c = &fig.cfg;
    let _ = writeln!(
        out,
        "  depth={} ops/client={} seed={} scale={:.8}",
        c.depth, c.ops_per_client, c.seed, c.scale
    );
    let _ = writeln!(out, "  clients      ops   span(ms)      ops/s   stalls  latency");
    for p in &fig.points {
        let _ = writeln!(
            out,
            "  {:7} {:8} {:10.3} {:10.1} {:8}  {}",
            p.clients,
            p.ops,
            p.span_s * 1e3,
            p.ops_per_sec,
            p.full_stalls,
            p.latency
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 1.0 / 2048.0;

    #[test]
    fn scripts_are_seed_deterministic_and_mixed() {
        let cfg = PubGraphConfig::scaled(SCALE);
        let a = client_script(&cfg, 7, 3, 200);
        let b = client_script(&cfg, 7, 3, 200);
        assert_eq!(a.ops.len(), b.ops.len());
        let kind = |o: &QueuedOp| match o {
            QueuedOp::Get { .. } => 0,
            QueuedOp::Put { .. } => 1,
            QueuedOp::Scan { .. } => 2,
        };
        let ka: Vec<u8> = a.ops.iter().map(kind).collect();
        let kb: Vec<u8> = b.ops.iter().map(kind).collect();
        assert_eq!(ka, kb, "same seed, same script");
        assert!(ka.contains(&0) && ka.contains(&1) && ka.contains(&2), "all op kinds present");
        let c = client_script(&cfg, 7, 4, 200);
        let kc: Vec<u8> = c.ops.iter().map(kind).collect();
        assert_ne!(ka, kc, "clients draw from distinct streams");
    }

    #[test]
    fn throughput_scales_then_saturates() {
        // The acceptance criterion: GET/SCAN throughput grows with the
        // client count until the flash LUNs / PE pool saturate. Depth 1
        // isolates the client-count axis — each client is strictly
        // closed-loop, so added throughput can only come from commands
        // of *different* clients overlapping on disjoint resources.
        let fig = loadgen(&LoadgenConfig {
            scale: SCALE,
            clients: vec![1, 8, 32],
            depth: 1,
            ops_per_client: 48,
            seed: 42,
        });
        let t: Vec<f64> = fig.points.iter().map(|p| p.ops_per_sec).collect();
        assert!(t[1] > 1.5 * t[0], "8 clients should clearly out-run 1 client: {t:?}");
        assert!(t[2] < 1.5 * t[1], "by 32 clients the shared flash/PE resources saturate: {t:?}");
        assert!(t[2] > 0.7 * t[1], "saturation is a plateau, not a collapse: {t:?}");
    }

    #[test]
    fn render_is_byte_stable_for_a_seed() {
        let cfg = LoadgenConfig {
            scale: SCALE,
            clients: vec![1, 2],
            depth: 4,
            ops_per_client: 8,
            seed: 7,
        };
        let a = render(&loadgen(&cfg));
        let b = render(&loadgen(&cfg));
        assert_eq!(a, b);
        assert!(a.contains("clients"), "{a}");
    }
}
