//! `repro explain`: render the planner's EXPLAIN for a query.
//!
//! Lowering only reads a table's *capabilities* (stage count, lanes,
//! PE pool, parallel streams), so this builds the paper's device with
//! empty tables — no bulk load — and asks [`nkv::NkvDb::explain`] for
//! the rendering. The refs table is configured with 4 parallel PE job
//! streams to show the fan-out a scan plan picks up.
//!
//! Query grammar (one op per invocation):
//!
//! * `get <key>` — point lookup;
//! * `range <lo>..<hi>` — key-range scan (`lo <= key < hi`);
//! * one or more predicates `lane<op>value` with ops `>=ge` `<lt`
//!   `==eq` `!=ne`, e.g. `year>=2010 venue==3` — a conjunctive SCAN.
//!
//! Lane names are per table: papers has `id year venue n_cits n_refs
//! title_prefix`, refs has `src dst year`.

use ndp_ir::elaborate;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, ref_lanes, PAPER_PE, PAPER_REF_SPEC, REF_PE};
use nkv::{Backend, LogicalOp, NkvDb, TableConfig};

/// Streams the refs table's scan plans fan out to in the explain device
/// (and the device the README example builds).
pub const EXPLAIN_REF_STREAMS: usize = 4;

/// Build the paper's device shape (1 paper-PE, 7 ref-PEs) with empty
/// tables — capabilities only, no data. A nonzero `cache_mb` turns on
/// the device-DRAM block cache so plans advertise it.
fn explain_db(cache_mb: usize) -> NkvDb {
    let module = ndp_spec::parse(PAPER_REF_SPEC).expect("bundled spec parses");
    let paper_pe = elaborate(&module, PAPER_PE).expect("bundled spec elaborates");
    let ref_pe = elaborate(&module, REF_PE).expect("bundled spec elaborates");
    let mut db = NkvDb::default_db();
    let mut papers_cfg = TableConfig::new(paper_pe);
    papers_cfg.n_pes = 1;
    db.create_table("papers", papers_cfg).expect("table config is valid");
    let mut refs_cfg = TableConfig::new(ref_pe);
    refs_cfg.n_pes = 7;
    refs_cfg.unique_keys = false;
    refs_cfg.parallel_pes = EXPLAIN_REF_STREAMS;
    db.create_table("refs", refs_cfg).expect("table config is valid");
    if cache_mb > 0 {
        db.enable_cache(cache_mb << 20);
    }
    db
}

fn lane_of(table: &str, name: &str) -> Option<u32> {
    match table {
        "papers" => Some(match name {
            "id" => paper_lanes::ID,
            "year" => paper_lanes::YEAR,
            "venue" => paper_lanes::VENUE,
            "n_cits" => paper_lanes::N_CITS,
            "n_refs" => paper_lanes::N_REFS,
            "title_prefix" => paper_lanes::TITLE_PREFIX,
            _ => return None,
        }),
        "refs" => Some(match name {
            "src" => ref_lanes::SRC,
            "dst" => ref_lanes::DST,
            "year" => ref_lanes::YEAR,
            _ => return None,
        }),
        _ => None,
    }
}

fn parse_predicate(table: &str, token: &str) -> Result<FilterRule, String> {
    // Two-char operators first so `>=` does not parse as `>`.
    for (sym, code) in [(">=", 4u32), ("==", 2), ("!=", 1), ("<", 5)] {
        if let Some((name, val)) = token.split_once(sym) {
            let lane = lane_of(table, name)
                .ok_or_else(|| format!("unknown lane `{name}` on table `{table}`"))?;
            let value =
                val.parse().map_err(|_| format!("predicate `{token}` needs an integer value"))?;
            return Ok(FilterRule { lane, op_code: code, value });
        }
    }
    Err(format!("cannot parse predicate `{token}` (want lane>=N, lane<N, lane==N or lane!=N)"))
}

fn parse_query(table: &str, query: &[String]) -> Result<LogicalOp, String> {
    match query.first().map(String::as_str) {
        None => Err("explain needs a query (predicates, `get <key>` or `range <lo>..<hi>`)".into()),
        Some("get") => {
            let key =
                query.get(1).and_then(|k| k.parse().ok()).ok_or("`get` needs an integer key")?;
            Ok(LogicalOp::Get { key })
        }
        Some("range") => {
            let span = query.get(1).ok_or("`range` needs <lo>..<hi>")?;
            let (lo, hi) = span.split_once("..").ok_or("`range` needs <lo>..<hi>")?;
            let lo = lo.parse().map_err(|_| "`range` bounds must be integers".to_string())?;
            let hi = hi.parse().map_err(|_| "`range` bounds must be integers".to_string())?;
            Ok(LogicalOp::RangeScan { lo, hi })
        }
        Some(_) => {
            let rules =
                query.iter().map(|t| parse_predicate(table, t)).collect::<Result<Vec<_>, _>>()?;
            Ok(LogicalOp::Scan { rules })
        }
    }
}

/// Parse and render: the whole subcommand behind `repro explain`.
/// `cache_mb > 0` plans against a device with that much block cache.
pub fn explain(
    table: &str,
    query: &[String],
    backend: &str,
    cache_mb: usize,
) -> Result<String, String> {
    let backend = match backend {
        "sw" => Some(Backend::Software),
        "hw" => Some(Backend::Hardware),
        "hybrid" => Some(Backend::Hybrid),
        // Cost-based tier selection: the plan renders with the chosen
        // tier plus the per-tier estimates that drove the choice.
        "adaptive" => None,
        other => {
            return Err(format!("unknown backend `{other}` (want sw, hw, hybrid or adaptive)"))
        }
    };
    if table != "papers" && table != "refs" {
        return Err(format!("unknown table `{table}` (the explain device has: papers, refs)"));
    }
    let op = parse_query(table, query)?;
    let db = explain_db(cache_mb);
    match backend {
        Some(b) => db.explain(table, &op, b).map_err(|e| e.to_string()),
        None => db.explain_adaptive(table, &op).map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(table: &str, query: &[&str], backend: &str) -> String {
        let q: Vec<String> = query.iter().map(|s| s.to_string()).collect();
        explain(table, &q, backend, 0).unwrap()
    }

    #[test]
    fn snapshot_parallel_hardware_scan() {
        assert_eq!(
            run("refs", &["year>=2010"], "hw"),
            "PLAN SCAN ON refs (backend: hardware)\n\
             \x20 pushed -> PE filtering stages:\n\
             \x20   [0] lane2 >= 2010\n\
             \x20 dispatch: 4 parallel PE job stream(s) over flash-channel groups, \
             merged in (component, block) order\n\
             \x20 then: version reconciliation + NVMe result transfer\n"
        );
    }

    #[test]
    fn snapshot_hybrid_residual_split() {
        // The paper-PE has one filtering stage: the second predicate
        // stays on the ARM as a residual post-filter.
        assert_eq!(
            run("papers", &["year>=2010", "venue==3"], "hybrid"),
            "PLAN SCAN ON papers (backend: hybrid)\n\
             \x20 pushed -> PE filtering stages:\n\
             \x20   [0] lane1 >= 2010\n\
             \x20 residual -> ARM post-filter over PE output:\n\
             \x20   [1] lane2 == 3\n\
             \x20 dispatch: serial block stream (legacy)\n\
             \x20 then: version reconciliation + NVMe result transfer\n"
        );
    }

    #[test]
    fn snapshot_get_and_range() {
        assert_eq!(
            run("papers", &["get", "42"], "hw"),
            "PLAN GET ON papers (backend: hardware)\n\
             \x20 memtable probe -> bloom-pruned index walk -> one block search\n\
             \x20 pushed -> PE 0 stage: lane0 == 42\n"
        );
        let range = run("refs", &["range", "100..200"], "sw");
        assert!(range.starts_with("PLAN SCAN ON refs (backend: software)\n"), "{range}");
        assert!(range.contains("[0] lane0 >= 100\n"), "{range}");
        assert!(range.contains("[1] lane0 < 200\n"), "{range}");
    }

    #[test]
    fn snapshot_cache_line_appears_only_with_a_budget() {
        let q = vec!["year>=2010".to_string()];
        let cached = explain("refs", &q, "hw", 8).unwrap();
        assert!(
            cached.contains("  cache=device-DRAM segmented-LRU, budget 8192 KiB\n"),
            "{cached}"
        );
        let plain = explain("refs", &q, "hw", 0).unwrap();
        assert!(!plain.contains("cache="), "{plain}");
        // Everything but the cache line is the budget-independent plan.
        assert_eq!(
            cached.replace("  cache=device-DRAM segmented-LRU, budget 8192 KiB\n", ""),
            plain
        );
    }

    #[test]
    fn snapshot_adaptive_renders_tier_and_costs() {
        // The explain device's tables are empty (capabilities only), so
        // the cost model sees zero flash blocks and keeps the scan on
        // the ARM path — rendered with the per-tier estimates.
        let text = run("refs", &["year>=2010"], "adaptive");
        assert!(text.starts_with("PLAN SCAN ON refs (backend: software)\n"), "{text}");
        assert!(text.contains("  cost: software "), "{text}");
        assert!(text.contains(", hardware "), "{text}");
        assert!(text.contains(", hybrid "), "{text}");
        assert!(
            text.ends_with("  adaptive: chose software (scan cold after 0 sightings)\n"),
            "{text}"
        );
        // A GET prices all three tiers too, and stays typed on errors.
        let get = run("papers", &["get", "42"], "adaptive");
        assert!(get.contains("adaptive: chose "), "{get}");
    }

    #[test]
    fn bad_inputs_are_reported_not_panicked() {
        let q = |s: &str| vec![s.to_string()];
        assert!(explain("papers", &q("nope>=1"), "hw", 0).unwrap_err().contains("unknown lane"));
        assert!(explain("nope", &q("year>=1"), "hw", 0).unwrap_err().contains("unknown table"));
        assert!(explain("papers", &q("year>=x"), "hw", 0).unwrap_err().contains("integer"));
        assert!(explain("papers", &q("year>=1"), "warp", 0).unwrap_err().contains("backend"));
        assert!(explain("papers", &[], "hw", 0).is_err());
        // Planner errors surface as text too: a 2-rule chain cannot run
        // purely in the paper-PE's single hardware stage.
        let long: Vec<String> = ["year>=2010", "venue==3"].iter().map(|s| s.to_string()).collect();
        let err = explain("papers", &long, "hw", 0).unwrap_err();
        assert!(err.contains("filtering stage"), "{err}");
    }
}
