//! Dataset construction: load the publication graph into an nKV device.

use cosmos_sim::{CosmosConfig, FirmwareEra};
use ndp_ir::elaborate;
use ndp_pe::template::PeVariant;
use ndp_workload::spec::{PAPER_PE, PAPER_REF_SPEC, REF_PE};
use ndp_workload::{PaperGen, PubGraphConfig, RefGen};
use nkv::{NkvDb, TableConfig};

/// Which system composition to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbKind {
    /// This work: generated PEs, updated firmware.
    Ours,
    /// Vinçon et al. \[1\]: hand-crafted PEs, original firmware.
    Baseline,
}

/// A loaded device: the database plus the workload configuration.
pub struct Dataset {
    pub db: NkvDb,
    pub cfg: PubGraphConfig,
    /// Scale factor relative to the paper's full dataset.
    pub scale: f64,
}

/// The papers table's configuration (1 paper-PE, the paper's C1 churn
/// shape) — shared between the single-device builder and the cluster
/// experiments so every experiment runs the identical table.
pub fn paper_table_config(variant: PeVariant) -> TableConfig {
    let module = ndp_spec::parse(PAPER_REF_SPEC).expect("bundled spec parses");
    let paper_pe = elaborate(&module, PAPER_PE).expect("bundled spec elaborates");
    let mut cfg = TableConfig::new(paper_pe);
    cfg.n_pes = 1;
    cfg.variant = variant;
    // Keep C1 shaped like the paper's system under churn: several
    // overlapping SSTs before compaction kicks in.
    cfg.lsm.c1_sst_limit = 12;
    cfg
}

/// The refs table's configuration (7 ref-PEs, duplicate source keys).
pub fn ref_table_config(variant: PeVariant) -> TableConfig {
    let module = ndp_spec::parse(PAPER_REF_SPEC).expect("bundled spec parses");
    let ref_pe = elaborate(&module, REF_PE).expect("bundled spec elaborates");
    let mut cfg = TableConfig::new(ref_pe);
    cfg.n_pes = 7;
    cfg.variant = variant;
    cfg.unique_keys = false; // edge table keyed by source id
    cfg
}

/// Every paper record at `cfg`'s scale, encoded and in bulk-load order.
/// For experiments that load the same dataset repeatedly (the cluster
/// matrix builds one fleet per cell); the single-device builder streams
/// instead.
pub fn paper_records(cfg: PubGraphConfig) -> Vec<Vec<u8>> {
    PaperGen::new(cfg)
        .map(|p| {
            let mut buf = Vec::with_capacity(80);
            p.encode_into(&mut buf);
            buf
        })
        .collect()
}

/// Build a device with the paper's PE population (1 paper-PE, 7 ref-PEs)
/// and bulk-load the publication graph at `scale` (1.0 = the paper's
/// 3.78 M papers / 40.1 M refs ≈ 1.10 GB).
///
/// Generation runs in a producer thread feeding the bulk loader through a
/// bounded channel, so multi-gigabyte datasets stream without
/// materialization.
pub fn build_db(scale: f64, kind: DbKind) -> Dataset {
    let (variant, firmware) = match kind {
        DbKind::Ours => (PeVariant::Generated, FirmwareEra::Updated),
        DbKind::Baseline => (PeVariant::HandCrafted, FirmwareEra::Original),
    };
    let mut db = NkvDb::new(CosmosConfig { firmware, ..CosmosConfig::default() });
    db.create_table("papers", paper_table_config(variant)).expect("table config is valid");
    db.create_table("refs", ref_table_config(variant)).expect("table config is valid");

    let cfg = PubGraphConfig::scaled(scale);
    load_streaming(&mut db, "papers", cfg, true);
    load_streaming(&mut db, "refs", cfg, false);
    Dataset { db, cfg, scale }
}

/// Stream-generate and bulk-load one table through a bounded channel.
fn load_streaming(db: &mut NkvDb, table: &str, cfg: PubGraphConfig, papers: bool) {
    let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<u8>>(4096);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            if papers {
                let mut buf = Vec::with_capacity(80);
                for p in PaperGen::new(cfg) {
                    buf.clear();
                    p.encode_into(&mut buf);
                    if tx.send(buf.clone()).is_err() {
                        return;
                    }
                }
            } else {
                let mut buf = Vec::with_capacity(20);
                for r in RefGen::new(cfg) {
                    buf.clear();
                    r.encode_into(&mut buf);
                    if tx.send(buf.clone()).is_err() {
                        return;
                    }
                }
            }
        });
        let n = db.bulk_load(table, rx).expect("bulk load succeeds");
        let expected = if papers { cfg.papers } else { cfg.refs };
        assert_eq!(n, expected, "loader must ingest the whole stream");
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_pe::oracle::FilterRule;
    use ndp_workload::spec::paper_lanes;
    use nkv::ExecMode;

    #[test]
    fn tiny_dataset_builds_and_scans() {
        let mut ds = build_db(1.0 / 4096.0, DbKind::Ours);
        assert!(ds.cfg.papers > 500);
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2000 }];
        let s = ds.db.scan("papers", &rules, ExecMode::Hardware).unwrap();
        let expected = PaperGen::new(ds.cfg).filter(|p| p.year >= 2000).count() as u64;
        assert_eq!(s.count, expected);
    }

    #[test]
    fn baseline_and_ours_hold_identical_data() {
        let mut a = build_db(1.0 / 8192.0, DbKind::Ours);
        let mut b = build_db(1.0 / 8192.0, DbKind::Baseline);
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 1990 }];
        let ra = a.db.scan("papers", &rules, ExecMode::Software).unwrap();
        let rb = b.db.scan("papers", &rules, ExecMode::Software).unwrap();
        assert_eq!(ra.records, rb.records);
    }

    #[test]
    fn refs_table_accepts_duplicate_source_keys() {
        let mut ds = build_db(1.0 / 4096.0, DbKind::Ours);
        // Average out-degree > 1 at any scale, so duplicate keys exist.
        assert!(ds.cfg.refs > ds.cfg.papers);
        let s = ds
            .db
            .scan(
                "refs",
                &[FilterRule { lane: 2, op_code: 4 /* ge */, value: 2000 }],
                ExecMode::Hardware,
            )
            .unwrap();
        assert!(s.count > 0);
    }
}
