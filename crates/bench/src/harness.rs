//! Minimal wall-clock benchmark harness with a Criterion-shaped API.
//!
//! The workspace builds in hermetic environments with no crates.io
//! access, so the `benches/` files run on this self-contained harness
//! instead of the external `criterion` crate. It implements exactly the
//! subset the bench files use — `bench_function`, `benchmark_group`,
//! `sample_size`, `throughput`, `bench_with_input`, `Bencher::iter` —
//! with median-of-samples reporting. It does not do statistical
//! outlier analysis; the simulated device times the benches print are
//! the paper-facing numbers, the wall-clock medians are a sanity check.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark; keeps a full `cargo bench` short.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Top-level driver, one per process (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 50, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string(), samples: 50, throughput: None }
    }
}

/// Throughput annotation: reported as MB/s or Melem/s next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark id (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// Id carrying only a parameter value.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        Self { param: p.to_string() }
    }
}

/// A group of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<S: Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.samples, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.param);
        run_one(&name, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility; prints nothing).
    pub fn finish(&mut self) {}
}

/// Per-sample timing context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: grow the per-sample iteration count until one sample
    // costs ≥ ~1 ms, so Instant overhead is negligible for fast bodies.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break b.elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    };

    // Sampling under a total time budget.
    let budget_start = Instant::now();
    let mut ns_per_iter: Vec<f64> = Vec::with_capacity(samples);
    ns_per_iter.push(per_iter);
    while ns_per_iter.len() < samples && budget_start.elapsed() < TIME_BUDGET {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        ns_per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    ns_per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = ns_per_iter[ns_per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MB/s)", n as f64 / median * 1e9 / 1e6)
        }
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / median * 1e9 / 1e6)
        }
        None => String::new(),
    };
    println!("bench {name:<40} {:>12}/iter  [{} samples]{rate}", fmt_ns(median), ns_per_iter.len());
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Build the group runner function (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Build `main` from group runners (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
