//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Sec. V).
//!
//! Each experiment has a pure function here (consumed by the `repro`
//! binary, the Criterion benches and the integration tests):
//!
//! * [`figures::fig7a`] — GET runtimes, SW/HW × \[1\]/ours;
//! * [`figures::fig7b`] — SCAN runtimes, SW/HW × \[1\]/ours;
//! * [`figures::table1`] — full-design slice utilization;
//! * [`figures::fig8`] — out-of-context slices vs tuple size (Full/Half);
//! * [`figures::fig9`] — out-of-context slice % vs filtering stages;
//! * [`figures::ablations`] — design-choice ablations called out in
//!   DESIGN.md (PE count sweep, flexible vs fixed store units);
//! * [`loadgen::loadgen`] — beyond-paper: closed-loop multi-client
//!   throughput/latency sweep through the NVMe queue engine, plus the
//!   parallel-PE scan sweep;
//! * [`explain::explain`] — the `repro explain` subcommand: parse a
//!   query, lower it through the planner, render the physical plan.
//!
//! Simulated times come from the calibrated `cosmos-sim` platform; see
//! EXPERIMENTS.md for the paper-vs-measured record.

pub mod dataset;
pub mod explain;
pub mod figures;
pub mod harness;
pub mod json;
pub mod loadgen;

pub use dataset::{build_db, Dataset, DbKind};
pub use loadgen::{LoadgenConfig, LoadgenFigure, LoadgenPoint, ParallelSweepPoint};
