//! Experiment implementations, one per table/figure of the paper.

use crate::dataset::{build_db, paper_records, paper_table_config, Dataset, DbKind};
use cosmos_sim::ns_to_secs;
use ndp_ir::elaborate;
use ndp_pe::oracle::FilterRule;
use ndp_pe::template::{pe_report, system_report, PePopulation, PeVariant, SystemReport};
use ndp_workload::spec::{paper_lanes, ref_lanes, PAPER_PE, PAPER_REF_SPEC, REF_PE};
use ndp_workload::PaperGen;
use nkv::ExecMode;

/// Operator codes of the standard set (ndp-ir encodings).
pub mod ops {
    pub const EQ: u32 = 2;
    pub const GE: u32 = 4;
    pub const LT: u32 = 5;
}

// ---------------------------------------------------------------- Fig. 7a

/// GET runtimes (milliseconds, averaged over `n_gets` point lookups).
#[derive(Debug, Clone, Copy)]
pub struct Fig7a {
    pub base_sw_ms: f64,
    pub base_hw_ms: f64,
    pub ours_sw_ms: f64,
    pub ours_hw_ms: f64,
    pub n_gets: u32,
}

/// Run the GET experiment at `scale` (dataset size barely affects GET —
/// it reads a fixed number of index/data blocks).
///
/// The LSM is first churned into the shape the paper describes: several
/// overlapping `C1` SSTs on top of the bulk-loaded deeper level, so every
/// GET traverses "all index blocks of every SST from C1 ... followed by a
/// single index block in the remaining components" (Sec. III-A).
pub fn fig7a(scale: f64, n_gets: u32) -> Fig7a {
    let mut base = build_db(scale, DbKind::Baseline);
    let mut ours = build_db(scale, DbKind::Ours);
    for ds in [&mut base, &mut ours] {
        churn_c1(ds, 7);
    }
    let run = |ds: &mut Dataset, mode: ExecMode| -> f64 {
        let mut total_ns = 0u64;
        for i in 0..n_gets {
            // Deterministic existing keys spread over the table.
            let idx = (u64::from(i) * 7919) % ds.cfg.papers;
            let p = PaperGen::paper_at(&ds.cfg, idx);
            let (rec, rep) = ds.db.get("papers", p.id, mode).expect("get succeeds");
            assert!(rec.is_some(), "key {} must exist", p.id);
            total_ns += rep.sim_ns;
        }
        total_ns as f64 / f64::from(n_gets) / 1e6
    };
    Fig7a {
        base_sw_ms: run(&mut base, ExecMode::Software),
        base_hw_ms: run(&mut base, ExecMode::Hardware),
        ours_sw_ms: run(&mut ours, ExecMode::Software),
        ours_hw_ms: run(&mut ours, ExecMode::Hardware),
        n_gets,
    }
}

/// Create `n` overlapping C1 SSTs by re-putting key-range-spanning
/// updates and flushing (no compaction happens on flush, per the paper).
pub(crate) fn churn_c1(ds: &mut Dataset, n: usize) {
    let span = ds.cfg.papers;
    for round in 0..n {
        for j in 0..16u64 {
            // Keys spanning the whole range (both endpoints included) so
            // each C1 SST's key range covers every GET, forcing its index
            // block to be read.
            let _ = round;
            let idx = j * (span - 1) / 15;
            let p = PaperGen::paper_at(&ds.cfg, idx);
            let mut rec = Vec::with_capacity(80);
            p.encode_into(&mut rec);
            ds.db.put("papers", rec).expect("churn put");
        }
        ds.db.flush("papers").expect("churn flush");
    }
}

// ---------------------------------------------------------------- Fig. 7b

/// SCAN runtimes in simulated seconds **at the measured scale**
/// (`scale = 1.0` reproduces the paper's absolute numbers; smaller scales
/// are proportional in the streaming terms but keep the constant per-op
/// overheads, so naive division over-extrapolates them — the repro
/// binary documents this next to its output).
#[derive(Debug, Clone, Copy)]
pub struct Fig7b {
    pub base_sw_s: f64,
    pub base_hw_s: f64,
    pub ours_sw_s: f64,
    pub ours_hw_s: f64,
    /// Scale the measurement ran at (1.0 = full).
    pub scale: f64,
    /// Records matched by the predicate (ours, HW run).
    pub matched: u64,
}

/// The evaluation SCAN: a value predicate over both tables
/// (papers published in 2019 or later plus the references made in 1980),
/// executed by 1 paper-PE and 7 ref-PEs as in the paper's system.
pub fn fig7b(scale: f64) -> Fig7b {
    let mut base = build_db(scale, DbKind::Baseline);
    let mut ours = build_db(scale, DbKind::Ours);
    let run = |ds: &mut Dataset, mode: ExecMode| -> (f64, u64) {
        let papers = ds
            .db
            .scan(
                "papers",
                &[FilterRule { lane: paper_lanes::YEAR, op_code: ops::GE, value: 2019 }],
                mode,
            )
            .expect("papers scan succeeds");
        let refs = ds
            .db
            .scan(
                "refs",
                &[FilterRule { lane: ref_lanes::YEAR, op_code: ops::EQ, value: 1980 }],
                mode,
            )
            .expect("refs scan succeeds");
        // The device executes the two table scans back-to-back and both
        // saturate the aggregate flash bandwidth, so the sum equals the
        // overlapped full-dataset scan.
        let total = papers.report.sim_ns + refs.report.sim_ns;
        (ns_to_secs(total), papers.count + refs.count)
    };
    let (base_sw_s, _) = run(&mut base, ExecMode::Software);
    let (base_hw_s, _) = run(&mut base, ExecMode::Hardware);
    let (ours_sw_s, _) = run(&mut ours, ExecMode::Software);
    let (ours_hw_s, matched) = run(&mut ours, ExecMode::Hardware);
    Fig7b { base_sw_s, base_hw_s, ours_sw_s, ours_hw_s, scale, matched }
}

// ---------------------------------------------------------------- Table I

/// Both system compositions of Table I.
#[derive(Debug, Clone)]
pub struct Table1 {
    pub ours: SystemReport,
    pub base: SystemReport,
    /// Per-PE rows: (name, \[1\] slices, ours slices).
    pub pe_rows: Vec<(String, u32, u32)>,
}

/// Compute Table I: the complete Cosmos+ design with 1 paper-PE and
/// 7 ref-PEs, hand-crafted vs generated.
pub fn table1() -> Table1 {
    let module = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let paper = elaborate(&module, PAPER_PE).unwrap();
    let r#ref = elaborate(&module, REF_PE).unwrap();
    let mk = |variant| {
        system_report(&[
            PePopulation { cfg: paper.clone(), variant, count: 1 },
            PePopulation { cfg: r#ref.clone(), variant, count: 7 },
        ])
    };
    let ours = mk(PeVariant::Generated);
    let base = mk(PeVariant::HandCrafted);
    let pe_rows = vec![
        (
            "paper-PE".to_string(),
            pe_report(&paper, PeVariant::HandCrafted).slices_in_context,
            pe_report(&paper, PeVariant::Generated).slices_in_context,
        ),
        (
            "ref-PE".to_string(),
            pe_report(&r#ref, PeVariant::HandCrafted).slices_in_context,
            pe_report(&r#ref, PeVariant::Generated).slices_in_context,
        ),
    ];
    Table1 { ours, base, pe_rows }
}

// ---------------------------------------------------------------- Fig. 8

/// One Fig. 8 point: tuple width and OOC slices for Full and Half.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    pub tuple_bits: u32,
    pub full_slices: u32,
    pub half_slices: u32,
}

/// Specification text of a Fig. 8 "Full" PE (all-u32 struct).
pub fn fig8_full_spec(bits: u32) -> String {
    let fields: Vec<String> = (0..bits / 32).map(|i| format!("uint32_t f{i};")).collect();
    format!(
        "/* @autogen define parser F with input = T, output = T */
         typedef struct {{ {} }} T;",
        fields.join(" ")
    )
}

/// Specification text of a Fig. 8 "Half" PE: same tuple size, half the
/// data discarded through a string prefix.
pub fn fig8_half_spec(bits: u32) -> String {
    let n = bits / 64 - 1;
    let string_len = bits / 16 + 4;
    let fields: Vec<String> = (0..n).map(|i| format!("uint32_t f{i};")).collect();
    format!(
        "/* @autogen define parser F with input = T, output = T */
         typedef struct {{ {} /* @string(prefix = 4) */ uint8_t s[{}]; }} T;",
        fields.join(" "),
        string_len
    )
}

/// Out-of-context slice utilization vs tuple size, 64..1024 bit
/// (paper's Fig. 8).
pub fn fig8() -> Vec<Fig8Row> {
    [64u32, 128, 256, 512, 1024]
        .iter()
        .map(|&bits| {
            let full = elaborate(&ndp_spec::parse(&fig8_full_spec(bits)).unwrap(), "F").unwrap();
            let half = elaborate(&ndp_spec::parse(&fig8_half_spec(bits)).unwrap(), "F").unwrap();
            Fig8Row {
                tuple_bits: bits,
                full_slices: pe_report(&full, PeVariant::Generated).slices_out_of_context,
                half_slices: pe_report(&half, PeVariant::Generated).slices_out_of_context,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 9

/// One Fig. 9 point: stage count and OOC utilization percentage.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    pub stages: u32,
    pub full_pct: f64,
    pub half_pct: f64,
}

/// OOC slice percentage vs number of filtering stages (256-bit struct,
/// Full and Half variants; paper's Fig. 9).
pub fn fig9() -> Vec<Fig9Row> {
    let available = f64::from(ndp_hdl::XC7Z045::SLICES);
    (1..=5)
        .map(|stages| {
            let mk = |spec: &str| {
                let spec = spec.replace(
                    "define parser F with",
                    &format!("define parser F with stages = {stages},"),
                );
                let cfg = elaborate(&ndp_spec::parse(&spec).unwrap(), "F").unwrap();
                f64::from(pe_report(&cfg, PeVariant::Generated).slices_out_of_context) / available
                    * 100.0
            };
            Fig9Row {
                stages,
                full_pct: mk(&fig8_full_spec(256)),
                half_pct: mk(&fig8_half_spec(256)),
            }
        })
        .collect()
}

// --------------------------------------------------------------- Profile

/// Output of the observability demo (`repro -- profile`): op metrics,
/// per-op time breakdowns and the flash-occupancy measurement, all from
/// the device's own counters/trace rather than external bookkeeping.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The device's own stats snapshot (histograms + health).
    pub stats: nkv::DeviceStats,
    /// GETs profiled.
    pub n_gets: u32,
    /// Fraction of the SCAN's wall time the flash-controller DMA stage
    /// was busy (averaged over the controllers); ≈1.0 when flash-bound.
    pub scan_flash_occupancy: f64,
    /// Spans captured device-wide.
    pub trace_events: usize,
    /// The captured spans, exported as Chrome `trace_event` JSON.
    pub trace_json: String,
}

/// Run the profiling demo: a churned GET workload plus one full SCAN on
/// the refs table, with the whole observability stack enabled (metrics,
/// tracing, PE perf counters are all orthogonal to timing). `scale` is
/// capped like the ablations — profiling needs shape, not volume.
pub fn profile(scale: f64, n_gets: u32) -> Profile {
    let scale = scale.min(1.0 / 64.0);
    let mut ds = build_db(scale, DbKind::Ours);
    churn_c1(&mut ds, 7);
    ds.db.enable_observability(1 << 20);

    for i in 0..n_gets {
        let idx = (u64::from(i) * 7919) % ds.cfg.papers;
        let p = PaperGen::paper_at(&ds.cfg, idx);
        let (rec, _) = ds.db.get("papers", p.id, ExecMode::Hardware).expect("get succeeds");
        assert!(rec.is_some(), "key {} must exist", p.id);
    }

    let busy0 = ds.db.platform_mut().flash.controller_busy_ns();
    let scan = ds
        .db
        .scan(
            "refs",
            &[FilterRule { lane: ref_lanes::YEAR, op_code: ops::EQ, value: 1980 }],
            ExecMode::Hardware,
        )
        .expect("refs scan succeeds");
    let busy1 = ds.db.platform_mut().flash.controller_busy_ns();
    let controllers = u64::from(ds.db.platform_mut().flash.config().controllers);
    let scan_flash_occupancy = (busy1 - busy0) as f64 / (scan.report.sim_ns * controllers) as f64;

    let stats = ds.db.device_stats();
    let trace = ds.db.take_trace();
    let trace_json = cosmos_sim::chrome_trace_json(&trace);
    Profile { stats, n_gets, scan_flash_occupancy, trace_events: trace.len(), trace_json }
}

/// The profiling GET schedule's keys, deduplicated in first-seen order
/// (a key list rejects duplicates, and the unbatched profile GETs the
/// same record twice without noticing).
fn profile_get_keys(cfg: &ndp_workload::PubGraphConfig, n_gets: u32) -> Vec<u64> {
    let mut keys = Vec::new();
    for i in 0..n_gets {
        let idx = (u64::from(i) * 7919) % cfg.papers;
        let key = PaperGen::paper_at(cfg, idx).id;
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys
}

/// The batched counterpart of [`profile`]'s GET measurement: the same
/// churned database and deterministic key schedule, but the keys go
/// through `multi_get` in `batch`-sized key lists, so one PE
/// configuration (plus per-key START strobes) serves the whole list.
#[derive(Debug, Clone, Copy)]
pub struct BatchedTax {
    /// Keys per key-list descriptor.
    pub batch: u32,
    /// Keys actually issued (the profile schedule, deduplicated).
    pub n_gets: u32,
    /// `cfg_ns / nvme_ns` over the batched run — the same metric as the
    /// unbatched `config_tax_ratio`, directly comparable.
    pub config_tax_ratio: f64,
    /// Config-register busy time per key, microseconds.
    pub cfg_us_per_get: f64,
    /// Result/descriptor NVMe transfer busy time per key, microseconds.
    pub nvme_us_per_get: f64,
    /// Flash busy time per key, microseconds (the shared-index-page win
    /// shows up here, not in the config column).
    pub flash_us_per_get: f64,
    /// Mean simulated device time per key, microseconds.
    pub us_per_get: f64,
}

/// Measure the batched GET config tax: same dataset, churn and key
/// schedule as [`profile`], issued as `batch`-sized key lists.
pub fn profile_batched_tax(scale: f64, n_gets: u32, batch: u32) -> BatchedTax {
    let scale = scale.min(1.0 / 64.0);
    let mut ds = build_db(scale, DbKind::Ours);
    churn_c1(&mut ds, 7);
    ds.db.enable_observability(1 << 20);
    let keys = profile_get_keys(&ds.cfg, n_gets);
    let mut total_ns = 0u64;
    for chunk in keys.chunks(batch.max(1) as usize) {
        let (results, report) =
            ds.db.multi_get("papers", chunk, ExecMode::Hardware).expect("batched get succeeds");
        total_ns += report.sim_ns;
        for r in results {
            assert!(r.expect("per-key get succeeds").is_some(), "profiled keys must exist");
        }
    }
    let n = keys.len() as u32;
    let stats = ds.db.device_stats();
    let get = stats.metrics.op(nkv::OpKind::Get);
    let per_get = |ns: u64| ns as f64 / f64::from(n) / 1e3;
    BatchedTax {
        batch,
        n_gets: n,
        config_tax_ratio: get.breakdown.cfg_ns as f64 / get.breakdown.nvme_ns.max(1) as f64,
        cfg_us_per_get: per_get(get.breakdown.cfg_ns),
        nvme_us_per_get: per_get(get.breakdown.nvme_ns),
        flash_us_per_get: per_get(get.breakdown.flash_ns),
        us_per_get: total_ns as f64 / f64::from(n) / 1e3,
    }
}

/// Fleet-scope profile (`repro profile --devices N`): the same GET+SCAN
/// workload pushed through an N-device hash-sharded cluster with the
/// fleet observability stack on, returning the folded [`ClusterStats`]
/// and the merged multi-device Chrome trace.
#[derive(Debug, Clone)]
pub struct ClusterProfile {
    pub devices: usize,
    pub stats: nkv::ClusterStats,
    /// Merged Chrome `trace_event` export: per-device pid namespaces
    /// plus the router's synthetic fan-out/wait/merge spans.
    pub trace_json: String,
}

/// Run the fleet profiling demo: bulk-load the papers table into an
/// N-device cluster, enable observability *after* the load (the flame
/// graph should show the foreground ops, not a million bulk-load flash
/// programs), issue `n_gets` GETs plus one fleet-wide SCAN, and fold.
pub fn cluster_profile(scale: f64, n_gets: u32, devices: usize) -> ClusterProfile {
    use nkv::Backend;
    let scale = scale.min(1.0 / 64.0);
    let pub_cfg = ndp_workload::PubGraphConfig::scaled(scale);
    let mut cluster =
        nkv::NkvCluster::new(nkv::ClusterConfig { devices, ..nkv::ClusterConfig::default() })
            .expect("cluster config is valid");
    cluster
        .create_table("papers", paper_table_config(PeVariant::Generated))
        .expect("table config is valid");
    cluster.bulk_load("papers", paper_records(pub_cfg)).expect("bulk load succeeds");
    cluster.persist().expect("persist succeeds");
    cluster.enable_observability(1 << 20);

    for i in 0..n_gets {
        let idx = (u64::from(i) * 7919) % pub_cfg.papers;
        let p = PaperGen::paper_at(&pub_cfg, idx);
        let got = cluster.get("papers", p.id, Backend::Hardware).expect("get succeeds");
        assert!(got.record.is_some(), "key {} must exist", p.id);
    }
    cluster
        .scan(
            "papers",
            &[FilterRule { lane: paper_lanes::YEAR, op_code: ops::GE, value: 2019 }],
            Backend::Hardware,
        )
        .expect("fleet scan succeeds");

    let stats = cluster.cluster_stats();
    let (devs, router) = cluster.take_cluster_trace();
    let trace_json = cosmos_sim::chrome_trace_json_cluster(&devs, &router);
    ClusterProfile { devices, stats, trace_json }
}

/// The `BENCH_profile.json` measurements: one number per question the
/// perf journal tracks. All from fixed-seed runs, so the artifact is
/// byte-stable until an intentional performance change moves it.
#[derive(Debug, Clone)]
pub struct ProfileBench {
    pub seed: u64,
    pub scale: f64,
    pub devices: usize,
    pub n_gets: u32,
    /// GET config-register busy time over result-transfer busy time
    /// (Fig. 7a's "why GET gains nothing from HW", measured).
    pub config_tax_ratio: f64,
    /// Keys per key-list descriptor in the batched-GET measurement.
    pub batch: u32,
    /// The same ratio with the GETs issued through `batch`-sized key
    /// lists — one PE configuration plus per-key START strobes. The
    /// perf journal gates this at ≤ `config_tax_ratio` / 5.
    pub config_tax_batched: f64,
    /// Mean simulated device time per key, unbatched (batch-1 key
    /// lists fold to the legacy point-lookup path), microseconds.
    pub get_us_unbatched: f64,
    /// Mean simulated device time per key at `batch` keys per list,
    /// microseconds.
    pub get_us_batched: f64,
    /// GET throughput win from batching alone: `get_us_unbatched /
    /// get_us_batched` (same device, same key schedule, one knob). The
    /// perf journal gates this at ≥ 5.
    pub batched_get_speedup: f64,
    /// Flash-controller DMA occupancy of the profiling SCAN (≈1.0 when
    /// flash-bound, the paper's stated bottleneck).
    pub flash_occupancy: f64,
    /// Full-budget row of the DRAM block-cache sweep.
    pub cache_hit_rate: f64,
    /// Cluster throughput scaling factor: 4-device ops/s over 1-device
    /// ops/s for the fixed-seed queued matrix cell.
    pub cluster_scaling: f64,
    /// The fleet snapshot behind the scaling number.
    pub cluster: nkv::ClusterStats,
}

/// Assemble the perf-journal measurements from their owning
/// experiments: [`profile`] (config tax + flash occupancy),
/// [`crate::loadgen::cache_sweep`] (hit rate),
/// [`crate::loadgen::cluster_matrix`] (scaling factor) and
/// [`cluster_profile`] (the fleet snapshot).
pub fn profile_bench(scale: f64, seed: u64, devices: usize) -> ProfileBench {
    let n_gets = 16;
    // Floor the single-device profile's scale: below ~1/512 the scan is
    // too short for constant per-op overheads, and the occupancy number
    // stops measuring the flash-bandwidth bottleneck it journals.
    let p = profile(scale.max(1.0 / 512.0), n_gets);
    let get = p.stats.metrics.op(nkv::OpKind::Get);
    let config_tax_ratio = get.breakdown.cfg_ns as f64 / get.breakdown.nvme_ns.max(1) as f64;

    // The journal's canonical batched measurement: the same schedule as
    // one batch-of-16 key list, with a batch-1 run (the legacy per-key
    // path, via the singleton fold) as the speedup denominator.
    let batch = 16;
    let batched = profile_batched_tax(scale.max(1.0 / 512.0), n_gets, batch);
    let unbatched = profile_batched_tax(scale.max(1.0 / 512.0), n_gets, 1);

    let cache = crate::loadgen::cache_sweep(scale, 8);
    let cache_hit_rate = cache.last().map_or(0.0, |r| r.hit_rate);

    let matrix = crate::loadgen::cluster_matrix(&crate::loadgen::LoadgenConfig {
        scale,
        clients: vec![2],
        depth: 4,
        ops_per_client: 32,
        seed,
        cache_mb: 0,
        devices: vec![1, devices.max(2)],
        batch: 1,
        qos: false,
    });
    let cluster_scaling = matrix[1].ops_per_sec / matrix[0].ops_per_sec;

    let fleet = cluster_profile(scale, n_gets, devices);
    ProfileBench {
        seed,
        scale,
        devices,
        n_gets,
        config_tax_ratio,
        batch,
        config_tax_batched: batched.config_tax_ratio,
        get_us_unbatched: unbatched.us_per_get,
        get_us_batched: batched.us_per_get,
        batched_get_speedup: unbatched.us_per_get / batched.us_per_get.max(f64::MIN_POSITIVE),
        flash_occupancy: p.scan_flash_occupancy,
        cache_hit_rate,
        cluster_scaling,
        cluster: fleet.stats,
    }
}

// ------------------------------------------------------------- Ablations

/// SCAN time (extrapolated to full scale) vs ref-PE count.
pub fn ablation_pe_count(scale: f64, counts: &[usize]) -> Vec<(usize, f64)> {
    counts
        .iter()
        .map(|&n| {
            let module = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
            let ref_pe = elaborate(&module, REF_PE).unwrap();
            let mut db = nkv::NkvDb::default_db();
            let mut cfg = nkv::TableConfig::new(ref_pe);
            cfg.n_pes = n;
            cfg.unique_keys = false;
            db.create_table("refs", cfg).unwrap();
            let gen_cfg = ndp_workload::PubGraphConfig::scaled(scale);
            let mut buf = Vec::new();
            db.bulk_load(
                "refs",
                ndp_workload::RefGen::new(gen_cfg).map(|r| {
                    buf.clear();
                    r.encode_into(&mut buf);
                    buf.clone()
                }),
            )
            .unwrap();
            let s = db
                .scan(
                    "refs",
                    &[FilterRule { lane: ref_lanes::YEAR, op_code: ops::EQ, value: 1980 }],
                    ExecMode::Hardware,
                )
                .unwrap();
            (n, ns_to_secs(s.report.sim_ns) / scale)
        })
        .collect()
}

/// DRAM write traffic (bytes, at scale) of flexible vs fixed Store
/// Units — the Table-I growth justification ("reducing the number of
/// memory accesses will improve the performance").
pub fn ablation_store_traffic(scale: f64) -> (u64, u64) {
    let run = |kind: DbKind| -> u64 {
        let mut ds = build_db(scale, kind);
        ds.db
            .scan(
                "refs",
                &[FilterRule { lane: ref_lanes::YEAR, op_code: ops::EQ, value: 1980 }],
                ExecMode::Hardware,
            )
            .unwrap();
        ds.db.platform_mut().dram.traffic_of(cosmos_sim::dram::DramClient::PeStore)
    };
    (run(DbKind::Ours), run(DbKind::Baseline))
}

/// Aggregate pushdown (the paper's future-work direction, implemented):
/// host bytes moved by a filtering SCAN vs an on-device aggregate SCAN
/// answering the same analytical question ("how many references were made
/// in 1980?"). Returns `(scan_result_bytes, aggregate_result_bytes,
/// scan_s, aggregate_s)` at the given scale.
pub fn ablation_aggregate_pushdown(scale: f64) -> (u64, u64, f64, f64) {
    use ndp_ir::AggOp;
    let module = ndp_spec::parse(
        "/* @autogen define parser RefAgg with chunksize = 32,
            input = Ref, output = Ref, aggregate = { count, sum, min, max } */
         typedef struct { uint64_t src; uint64_t dst; uint32_t year; } Ref;",
    )
    .unwrap();
    let pe = elaborate(&module, "RefAgg").unwrap();
    let mut db = nkv::NkvDb::default_db();
    let mut cfg = nkv::TableConfig::new(pe);
    cfg.n_pes = 7;
    cfg.unique_keys = false;
    db.create_table("refs", cfg).unwrap();
    let gen_cfg = ndp_workload::PubGraphConfig::scaled(scale);
    let mut buf = Vec::new();
    db.bulk_load(
        "refs",
        ndp_workload::RefGen::new(gen_cfg).map(|r| {
            buf.clear();
            r.encode_into(&mut buf);
            buf.clone()
        }),
    )
    .unwrap();
    let rules = [FilterRule { lane: ref_lanes::YEAR, op_code: ops::EQ, value: 1980 }];
    let full = db.scan("refs", &rules, ExecMode::Hardware).unwrap();
    let (count, _, agg_rep) =
        db.scan_aggregate("refs", &rules, AggOp::Count, 0, ExecMode::Hardware).unwrap();
    assert_eq!(count, full.count, "both answers must agree");
    (
        full.report.result_bytes,
        agg_rep.result_bytes,
        ns_to_secs(full.report.sim_ns),
        ns_to_secs(agg_rep.sim_ns),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 1.0 / 2048.0;

    #[test]
    fn fig7a_shape_hw_near_sw_and_ours_slower_than_base() {
        let f = fig7a(SCALE, 6);
        // HW does not profit on GET (both compositions).
        assert!((0.7..1.6).contains(&(f.base_hw_ms / f.base_sw_ms)), "{f:?}");
        assert!((0.7..1.6).contains(&(f.ours_hw_ms / f.ours_sw_ms)), "{f:?}");
        // Updated firmware makes ours ~10% slower than [1].
        let ratio = f.ours_sw_ms / f.base_sw_ms;
        assert!((1.02..1.35).contains(&ratio), "firmware tax ratio {ratio} out of band");
    }

    #[test]
    fn fig7b_shape_hw_beats_sw_and_delta_is_small() {
        let f = fig7b(SCALE);
        assert!(f.ours_hw_s < f.ours_sw_s, "{f:?}");
        assert!(f.base_hw_s < f.base_sw_s, "{f:?}");
        // Generated and hand-crafted PEs perform at parity (the paper's
        // headline: +0.018 s on 5.512 s). At this tiny test scale the
        // constant overheads of both variants (firmware per-op cost vs
        // software tail-block handling) dominate the delta, so only
        // near-parity is asserted here; the repro binary at realistic
        // scales shows ours marginally slower, matching the paper.
        let delta = (f.ours_hw_s - f.base_hw_s).abs() / f.base_hw_s;
        assert!(delta < 0.25, "{f:?}");
    }

    #[test]
    fn table1_matches_paper_anchors() {
        let t = table1();
        assert_eq!(t.pe_rows[0].1, 9480, "paper-PE [1]");
        assert!((i64::from(t.pe_rows[0].2) - 14348).abs() <= 90, "paper-PE ours");
        assert_eq!(t.pe_rows[1].1, 1277, "ref-PE [1]");
        assert!((i64::from(t.pe_rows[1].2) - 1446).abs() <= 15, "ref-PE ours");
        assert!((i64::from(t.ours.overall_slices) - 41934).abs() <= 300);
        assert!((i64::from(t.base.overall_slices) - 40821).abs() <= 300);
    }

    #[test]
    fn fig8_grows_and_half_converges() {
        let rows = fig8();
        assert!(rows.windows(2).all(|w| w[1].full_slices > w[0].full_slices));
        let first = f64::from(rows[0].half_slices) / f64::from(rows[0].full_slices);
        let last = f64::from(rows[4].half_slices) / f64::from(rows[4].full_slices);
        assert!(first > 1.0, "Half costs more at 64 bit");
        assert!(last < first, "prefixing pays off with size");
    }

    #[test]
    fn fig9_is_linear_with_small_slope() {
        let rows = fig9();
        let deltas: Vec<f64> = rows.windows(2).map(|w| w[1].full_pct - w[0].full_pct).collect();
        let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
        for d in &deltas {
            assert!((d - mean).abs() / mean < 0.05, "non-linear: {deltas:?}");
        }
        assert!(mean / rows[0].full_pct < 0.25, "stage cost must be small vs fixed part");
        // Half has only minor impact (paper, Fig. 9 caption).
        for r in &rows {
            assert!((r.half_pct - r.full_pct).abs() / r.full_pct < 0.10);
        }
    }

    #[test]
    fn profile_shows_get_config_tax_and_flash_bound_scan() {
        let p = profile(1.0 / 512.0, 4);
        let get = p.stats.metrics.op(nkv::OpKind::Get);
        assert_eq!(get.ops, 4);
        // Fig. 7(a)'s explanation, measured from the device's own
        // breakdown: GET spends more time on PE config registers than
        // moving its result data.
        assert!(
            get.breakdown.cfg_ns >= get.breakdown.nvme_ns,
            "cfg {} < data {}",
            get.breakdown.cfg_ns,
            get.breakdown.nvme_ns
        );
        // The SCAN is flash-bound: controller DMA busy ≈ the whole scan.
        assert!(
            (0.90..=1.01).contains(&p.scan_flash_occupancy),
            "occupancy {}",
            p.scan_flash_occupancy
        );
        assert!(p.trace_events > 0);
        assert!(p.trace_json.starts_with("{\"traceEvents\":["));
        assert!(p.stats.metrics.op(nkv::OpKind::Scan).breakdown.pe_ns > 0);
    }

    #[test]
    fn profile_bench_collects_the_journal_numbers() {
        let b = profile_bench(SCALE, 42, 4);
        // Fig. 7a's config tax: register writes dominate result bytes.
        assert!(b.config_tax_ratio > 1.0, "{b:?}");
        // Key lists amortize the configuration away: the batched ratio
        // must clear the journal's 5x bar with margin.
        assert_eq!(b.batch, 16);
        assert!(b.config_tax_batched <= b.config_tax_ratio / 5.0, "{b:?}");
        // And the per-key device time drops at least 5x with it.
        assert!(b.batched_get_speedup >= 5.0, "{b:?}");
        // The profiling SCAN stays flash-bound.
        assert!((0.90..=1.01).contains(&b.flash_occupancy), "{b:?}");
        // Full-budget cache row clears the check.sh acceptance rate.
        assert!(b.cache_hit_rate >= 0.5, "{b:?}");
        // 4 hash shards must clearly out-run 1 device.
        assert!(b.cluster_scaling >= 2.5, "{b:?}");
        assert_eq!(b.cluster.shards.len(), 4);
        assert!(b.cluster.total_ops() > 0, "fleet profile must record its ops");
    }

    #[test]
    fn cluster_profile_folds_stats_and_merges_the_trace() {
        let p = cluster_profile(SCALE, 8, 2);
        assert_eq!(p.stats.shards.len(), 2);
        assert_eq!(p.stats.merged.op(nkv::OpKind::Get).ops, 8);
        // The fleet SCAN fans out to both shards.
        assert_eq!(p.stats.merged.op(nkv::OpKind::Scan).ops, 2);
        assert!(p.trace_json.contains(&format!("\"pid\":{}", cosmos_sim::DEVICE_PID_STRIDE + 100)));
        assert!(p.trace_json.contains(&format!("\"pid\":{}", cosmos_sim::ROUTER_PID)));
        assert!(p.trace_json.contains("router_merge"));
    }

    #[test]
    fn more_ref_pes_do_not_speed_up_a_flash_bound_scan() {
        // The paper: the main bottleneck is the available flash bandwidth.
        let pts = ablation_pe_count(SCALE, &[1, 7]);
        let (t1, t7) = (pts[0].1, pts[1].1);
        assert!((t1 - t7).abs() / t1 < 0.05, "scan is flash-bound: {t1} vs {t7}");
    }

    #[test]
    fn aggregate_pushdown_moves_only_the_accumulator() {
        let (scan_bytes, agg_bytes, _, _) = ablation_aggregate_pushdown(SCALE);
        assert_eq!(agg_bytes, 8);
        assert!(scan_bytes > 100 * 20, "the filtering scan moves records");
    }

    #[test]
    fn flexible_store_units_reduce_dram_traffic() {
        let (ours, base) = ablation_store_traffic(SCALE);
        assert!(
            ours < base / 2,
            "partial-block stores must cut write traffic (ours {ours} vs base {base})"
        );
    }
}
