//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- all [--scale 0.125 | --full]
//! cargo run --release -p bench --bin repro -- fig7a fig7b table1   # any subset, in order
//! cargo run --release -p bench --bin repro -- loadgen [--clients 1,4,16] \
//!     [--depth D] [--ops N] [--seed S] [--scale F] [--cache-mb M] \
//!     [--devices 1,2,4] [--batch B] [--qos] [--json out.json] \
//!     [--json-force] [--trace t.json]
//! cargo run --release -p bench --bin repro -- profile [--devices 4] \
//!     [--json BENCH_profile.json] [--trace t.json]
//! cargo run --release -p bench --bin repro -- explain refs year>=2010 --backend adaptive
//! ```
//!
//! Simulated device times come from the calibrated `cosmos-sim` model;
//! paper reference values are printed next to each measurement. Run with
//! `--full` to simulate the paper's complete 1.10 GB dataset (needs a few
//! GiB of RAM and a couple of minutes); the default scale of 1/8 keeps
//! the streaming terms proportional while constant per-operation
//! overheads (sub-millisecond) are unaffected.
//!
//! `loadgen` is the beyond-paper figure: a closed-loop multi-client
//! sweep through the NVMe queue engine (it defaults to its own smaller
//! scale of 1/256 because it builds one database per client count).
//!
//! Unknown subcommands and unknown flags both exit nonzero with usage.

use bench::figures;
use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("explain") {
        return explain(&args[1..]);
    }
    let mut cmds: Vec<&str> = Vec::new();
    let mut scale = 1.0 / 8.0;
    let mut scale_set = false;
    let mut lg = bench::LoadgenConfig::default();
    let mut json_path: Option<String> = None;
    let mut json_force = false;
    let mut trace_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if !a.starts_with("--") {
            cmds.push(a.as_str());
            continue;
        }
        let mut value = |flag: &str| {
            iter.next().map(String::as_str).unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--full" => {
                scale = 1.0;
                scale_set = true;
            }
            "--scale" => {
                scale = value("--scale").parse().unwrap_or_else(|_| die("--scale needs a number"));
                scale_set = true;
            }
            "--clients" => {
                lg.clients = value("--clients")
                    .split(',')
                    .map(|c| c.parse().unwrap_or_else(|_| die("--clients needs n[,n...]")))
                    .collect();
            }
            "--depth" => {
                lg.depth =
                    value("--depth").parse().unwrap_or_else(|_| die("--depth needs an integer"));
            }
            "--ops" => {
                lg.ops_per_client =
                    value("--ops").parse().unwrap_or_else(|_| die("--ops needs an integer"));
            }
            "--seed" => {
                lg.seed =
                    value("--seed").parse().unwrap_or_else(|_| die("--seed needs an integer"));
            }
            "--cache-mb" => {
                lg.cache_mb = value("--cache-mb")
                    .parse()
                    .unwrap_or_else(|_| die("--cache-mb needs an integer (MiB)"));
            }
            "--devices" => {
                lg.devices = value("--devices")
                    .split(',')
                    .map(|d| match d.parse() {
                        Ok(n) if n >= 1 => n,
                        _ => die("--devices needs n[,n...] with every n >= 1"),
                    })
                    .collect();
            }
            "--batch" => {
                // No upper bound: folds beyond one key-list DMA page
                // (510 keys) split into multiple descriptors.
                lg.batch = match value("--batch").parse::<u32>() {
                    Ok(n) if n >= 1 => n,
                    _ => die("--batch needs an integer >= 1"),
                };
            }
            "--qos" => {
                lg.qos = true;
            }
            "--json" => {
                json_path = Some(value("--json").to_string());
            }
            "--json-force" => {
                json_force = true;
            }
            "--trace" => {
                trace_path = Some(value("--trace").to_string());
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    if scale_set {
        lg.scale = scale;
    }
    if cmds.is_empty() {
        cmds.push("all");
    }
    // Validate every subcommand up front so a typo in the third one
    // doesn't waste the first two's simulation time.
    const KNOWN: [&str; 9] =
        ["all", "fig7a", "fig7b", "table1", "fig8", "fig9", "ablations", "profile", "loadgen"];
    if let Some(bad) = cmds.iter().find(|c| !KNOWN.contains(c)) {
        die(&format!("unknown experiment `{bad}`"));
    }
    // A non-default configuration refuses to clobber an existing --json
    // artifact (the committed references are fixed-seed smoke runs);
    // --json-force overrides for intentional regeneration.
    let non_default = scale_set || lg != bench::LoadgenConfig::default();
    if let Some(path) = &trace_path {
        if !cmds.iter().any(|c| matches!(*c, "loadgen" | "profile")) {
            die("--trace only applies to the loadgen and profile experiments");
        }
        if cmds.contains(&"loadgen") && lg.devices.is_empty() {
            die("loadgen --trace needs --devices (the merged trace comes from the cluster run)");
        }
        // Probe writability up front so a bad path fails before the
        // simulation time is spent, not after.
        std::fs::File::create(path)
            .unwrap_or_else(|e| die(&format!("cannot write --trace file {path}: {e}")));
    }

    for cmd in cmds {
        match cmd {
            "all" => {
                table1();
                fig8();
                fig9();
                fig7a(scale);
                fig7b(scale);
                ablations(scale);
            }
            "fig7a" => fig7a(scale),
            "fig7b" => fig7b(scale),
            "table1" => table1(),
            "fig8" => fig8(),
            "fig9" => fig9(),
            "ablations" => ablations(scale),
            "profile" => profile(
                scale,
                &lg,
                json_path.as_deref(),
                trace_path.as_deref(),
                non_default,
                json_force,
            ),
            "loadgen" => {
                loadgen(&lg, json_path.as_deref(), trace_path.as_deref(), non_default, json_force)
            }
            _ => unreachable!(),
        }
    }
}

/// `repro explain <table> <query...> [--backend sw|hw|hybrid]
/// [--cache-mb M]` — no dataset, no simulation: lower the query and
/// print the plan (against a cache-equipped device when M > 0).
fn explain(args: &[String]) {
    let mut backend = "hw".to_string();
    let mut cache_mb = 0usize;
    let mut pos: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--backend" {
            backend = iter.next().cloned().unwrap_or_else(|| die("--backend needs a value"));
        } else if a == "--cache-mb" {
            cache_mb = iter
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--cache-mb needs an integer (MiB)"));
        } else if a.starts_with("--") {
            die(&format!("unknown flag `{a}`"));
        } else {
            pos.push(a.clone());
        }
    }
    if pos.is_empty() {
        die("explain needs a table: explain <table> <query...>");
    }
    let table = pos.remove(0);
    match bench::explain::explain(&table, &pos, &backend, cache_mb) {
        Ok(text) => print!("{text}"),
        Err(e) => die(&e),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro [all|fig7a|fig7b|table1|fig8|fig9|ablations|profile|loadgen]\n\
         \x20            [--scale F | --full]\n\
         \x20            [--clients n[,n...]] [--depth D] [--ops N] [--seed S]\n\
         \x20            [--cache-mb M] [--devices n[,n...]] [--batch B] [--qos]\n\
         \x20            [--json PATH] [--json-force] [--trace PATH]  (loadgen, profile)\n\
         \x20            loadgen --devices ... --trace t.json writes the merged cluster\n\
         \x20            trace; profile --devices N adds the fleet ClusterStats fold;\n\
         \x20            loadgen --qos adds the mixed-priority FIFO-vs-QoS sweep\n\
         \x20      repro explain <table> <query...> [--backend sw|hw|hybrid|adaptive]\n\
         \x20            [--cache-mb M]\n\
         \x20            e.g. explain refs year>=2010 --backend adaptive; explain papers get 42"
    );
    std::process::exit(2)
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn fig7a(scale: f64) {
    header(&format!("Fig. 7(a) — GET runtimes (scale {scale})"));
    println!("building databases and churning C1 ...");
    let f = figures::fig7a(scale, 16);
    println!("  averaged over {} GETs (simulated device time):", f.n_gets);
    println!("    [1]  SW: {:8.3} ms    HW: {:8.3} ms", f.base_sw_ms, f.base_hw_ms);
    println!("    ours SW: {:8.3} ms    HW: {:8.3} ms", f.ours_sw_ms, f.ours_hw_ms);
    println!(
        "  shape checks: HW/SW (ours) = {:.2} (paper: no HW benefit on GET);",
        f.ours_hw_ms / f.ours_sw_ms
    );
    println!(
        "                ours/[1] (SW) = {:.2} (paper: ca. 10% firmware tax)",
        f.ours_sw_ms / f.base_sw_ms
    );
}

fn fig7b(scale: f64) {
    header(&format!("Fig. 7(b) — SCAN runtimes (scale {scale})"));
    println!("building databases ({} MB of records) ...", (1104.6 * scale) as u64);
    let f = figures::fig7b(scale);
    let x = 1.0 / scale;
    println!("  simulated device time at scale, (linear full-volume extrapolation):");
    println!(
        "    [1]  SW: {:8.3} s ({:6.3} s)    HW: {:8.3} s ({:6.3} s)   paper HW: 5.512 s",
        f.base_sw_s,
        f.base_sw_s * x,
        f.base_hw_s,
        f.base_hw_s * x
    );
    println!(
        "    ours SW: {:8.3} s ({:6.3} s)    HW: {:8.3} s ({:6.3} s)   paper HW: 5.530 s",
        f.ours_sw_s,
        f.ours_sw_s * x,
        f.ours_hw_s,
        f.ours_hw_s * x
    );
    println!(
        "  matched records: {}; HW speedup over SW (ours): {:.2}x",
        f.matched,
        f.ours_sw_s / f.ours_hw_s
    );
    if scale < 1.0 {
        println!(
            "  note: extrapolation also multiplies constant per-op overheads\n\
             \x20       (~0.6 ms total); run with --full for exact absolute numbers."
        );
    }
}

fn table1() {
    header("Table I — FPGA slice utilization (1 paper-PE + 7 ref-PEs)");
    let t = figures::table1();
    println!("               [1]            Our Work        (paper: [1] / ours)");
    println!(
        "  Overall    {:6} {:5.2}%   {:6} {:5.2}%   (40821 74.70% / 41934 76.73%)",
        t.base.overall_slices, t.base.overall_pct, t.ours.overall_slices, t.ours.overall_pct
    );
    for (name, base, ours) in &t.pe_rows {
        let reference = match name.as_str() {
            "paper-PE" => "( 9480 17.35% / 14348 26.25%)",
            _ => "( 1277  1.41% /  1446  2.65%)",
        };
        println!(
            "  {:9}  {:6} {:5.2}%   {:6} {:5.2}%   {}",
            name,
            base,
            f64::from(*base) / 546.50,
            ours,
            f64::from(*ours) / 546.50,
            reference
        );
    }
    println!("  Available  {:6} 100.00%  {:6} 100.00%", t.base.available, t.ours.available);
    println!(
        "  BRAM: ours uses {} ({} platform + 8 PEs), [1] uses {} (platform only)",
        t.ours.brams,
        t.ours.brams - 8,
        t.base.brams
    );
}

fn fig8() {
    header("Fig. 8 — Out-of-context slices vs tuple size");
    println!("  tuple bits   Full (slices)   Half (slices)   Half/Full");
    for r in figures::fig8() {
        println!(
            "  {:10}   {:13}   {:13}   {:9.3}",
            r.tuple_bits,
            r.full_slices,
            r.half_slices,
            f64::from(r.half_slices) / f64::from(r.full_slices)
        );
    }
    println!("  (paper: growth with tuple size; prefixing costs extra on small tuples)");
}

fn fig9() {
    header("Fig. 9 — Out-of-context slice % vs filtering stages (256-bit tuples)");
    println!("  stages   Full (%)   Half (%)");
    let rows = figures::fig9();
    for r in &rows {
        println!("  {:6}   {:8.3}   {:8.3}", r.stages, r.full_pct, r.half_pct);
    }
    let slope = (rows[4].full_pct - rows[0].full_pct) / 4.0;
    println!(
        "  linear growth: ~{:.3}% per stage vs {:.3}% fixed template overhead",
        slope, rows[0].full_pct
    );
}

fn profile(
    scale: f64,
    lg: &bench::LoadgenConfig,
    json_path: Option<&str>,
    trace_path: Option<&str>,
    non_default: bool,
    json_force: bool,
) {
    header("Profile — where the device time goes (observability stack)");
    println!("building the database with metrics + tracing enabled ...");
    let p = figures::profile(scale, 16);
    let get = p.stats.metrics.op(nkv::OpKind::Get);
    let scan = p.stats.metrics.op(nkv::OpKind::Scan);
    let per_get = |ns: u64| ns as f64 / f64::from(p.n_gets) / 1e3;
    println!("  GET (HW, {} ops) — busy time per op from the device trace:", p.n_gets);
    println!(
        "    flash: {:8.2} us   dram: {:6.2} us   pe: {:6.2} us   \
         config regs: {:6.2} us   result data: {:6.2} us",
        per_get(get.breakdown.flash_ns),
        per_get(get.breakdown.dram_ns),
        per_get(get.breakdown.pe_ns),
        per_get(get.breakdown.cfg_ns),
        per_get(get.breakdown.nvme_ns),
    );
    let tax_before = get.breakdown.cfg_ns as f64 / get.breakdown.nvme_ns.max(1) as f64;
    println!(
        "    => config-register traffic costs {tax_before:.0}x the result transfer \
         (Fig. 7a: why GET gains nothing from HW)"
    );
    // Before/after config tax: the same GET schedule re-issued through
    // batched key lists (one PE configuration + per-key START strobes).
    let batch = if lg.batch > 1 { lg.batch } else { 16 };
    let bt = figures::profile_batched_tax(scale, p.n_gets, batch);
    println!("  batched GET (key-list descriptors, {} keys/batch) — config tax:", bt.batch);
    println!("               cfg(us/get)  result(us/get)  cfg/result");
    println!(
        "    per-key   {:10.2} {:14.2} {:10.0}x",
        per_get(get.breakdown.cfg_ns),
        per_get(get.breakdown.nvme_ns),
        tax_before
    );
    println!(
        "    batched   {:10.2} {:14.2} {:10.1}x",
        bt.cfg_us_per_get, bt.nvme_us_per_get, bt.config_tax_ratio
    );
    let unbatched = figures::profile_batched_tax(scale, p.n_gets, 1);
    println!(
        "    => key lists cut the config tax {:.0}x (flash {:.2} -> {:.2} us/get \
         from shared index pages)",
        tax_before / bt.config_tax_ratio.max(f64::MIN_POSITIVE),
        per_get(get.breakdown.flash_ns),
        bt.flash_us_per_get
    );
    println!(
        "    => per-key device time {:.1} -> {:.1} us: {:.1}x GET throughput at batch {}",
        unbatched.us_per_get,
        bt.us_per_get,
        unbatched.us_per_get / bt.us_per_get.max(f64::MIN_POSITIVE),
        bt.batch
    );
    println!(
        "  SCAN (HW): flash-controller occupancy {:.1}% of wall time \
         (the paper's flash-bandwidth bottleneck)",
        p.scan_flash_occupancy * 100.0
    );
    println!(
        "    busy time: flash {:.2} ms, dram {:.2} ms, pe {:.2} ms, \
         cfg {:.3} ms, nvme {:.3} ms",
        scan.breakdown.flash_ns as f64 / 1e6,
        scan.breakdown.dram_ns as f64 / 1e6,
        scan.breakdown.pe_ns as f64 / 1e6,
        scan.breakdown.cfg_ns as f64 / 1e6,
        scan.breakdown.nvme_ns as f64 / 1e6,
    );
    println!("  {}", p.stats.to_string().replace('\n', "\n  "));
    println!(
        "  trace: {} spans captured ({} bytes of Chrome trace_event JSON; \
         see examples/profiling.rs to export)",
        p.trace_events,
        p.trace_json.len()
    );

    // Fleet-scope profile: the same workload over an N-device cluster,
    // folded through ClusterStats and the merged multi-device trace.
    let fleet_devices = lg.devices.iter().copied().max();
    let mut fleet_trace = None;
    if let Some(d) = fleet_devices {
        println!("\n  --- fleet profile ({d} hash-sharded devices) ---");
        let fp = figures::cluster_profile(scale, 16, d);
        println!("  {}", fp.stats.to_string().replace('\n', "\n  "));
        fleet_trace = Some(fp.trace_json);
    }
    if let Some(path) = trace_path {
        // With --devices the merged cluster flame graph wins; without,
        // the single-device trace is exported directly.
        let json = fleet_trace.as_deref().unwrap_or(&p.trace_json);
        std::fs::write(path, json)
            .unwrap_or_else(|e| die(&format!("cannot write --trace file {path}: {e}")));
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = json_path {
        let b = figures::profile_bench(scale, lg.seed, fleet_devices.unwrap_or(4));
        write_artifact(path, &bench::json::profile_bench_json(&b), non_default, json_force);
    }
}

fn loadgen(
    cfg: &bench::LoadgenConfig,
    json_path: Option<&str>,
    trace_path: Option<&str>,
    non_default: bool,
    json_force: bool,
) {
    header("Loadgen — closed-loop multi-client throughput (beyond-paper)");
    println!("building one database per client count ...");
    let (fig, trace) = bench::loadgen::loadgen_traced(cfg, trace_path.is_some());
    print!("{}", bench::loadgen::render(&fig));
    if let Some(path) = json_path {
        write_artifact(path, &bench::loadgen::bench_json(&fig), non_default, json_force);
    }
    if let (Some(path), Some(json)) = (trace_path, trace) {
        std::fs::write(path, json)
            .unwrap_or_else(|e| die(&format!("cannot write --trace file {path}: {e}")));
        eprintln!("wrote merged cluster trace to {path}");
    }
}

/// Write a `BENCH_*.json` artifact, refusing to clobber an existing file
/// from a non-default configuration unless `--json-force` was given —
/// the committed references must not silently pick up numbers from a
/// non-smoke run.
fn write_artifact(path: &str, json: &str, non_default: bool, force: bool) {
    if non_default && !force && std::path::Path::new(path).exists() {
        die(&format!(
            "refusing to overwrite existing {path} with a non-default configuration's \
             results; pass --json-force to replace it"
        ));
    }
    std::fs::write(path, json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    eprintln!("wrote machine-readable results to {path}");
}

fn ablations(scale: f64) {
    let scale = scale.min(1.0 / 64.0); // ablations don't need volume
    header(&format!("Ablations (scale {scale})"));
    println!("  [A1] SCAN time vs ref-PE count (flash-bound => flat):");
    for (n, t) in figures::ablation_pe_count(scale, &[1, 2, 4, 7]) {
        println!("    {n} PE(s): {:8.4} s (full-volume equivalent)", t);
    }
    let (ours, base) = figures::ablation_store_traffic(scale);
    println!("  [A2] PE store-unit DRAM write traffic during a selective scan:");
    println!(
        "    flexible (ours): {:9} bytes; fixed 32 KiB blocks [1]: {:9} bytes ({:.1}x)",
        ours,
        base,
        base as f64 / ours as f64
    );
    let (scan_b, agg_b, scan_s, agg_s) = figures::ablation_aggregate_pushdown(scale);
    println!("  [A3] aggregate pushdown (extension; the paper's future work):");
    println!(
        "    filtering SCAN moves {scan_b} result bytes in {scan_s:.4} s; \
         on-device COUNT moves {agg_b} bytes in {agg_s:.4} s"
    );
}
