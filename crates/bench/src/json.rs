//! Hand-rolled JSON emission for the `BENCH_*.json` artifacts.
//!
//! The workspace carries no serde, so every machine-readable artifact
//! (`BENCH_loadgen.json`, `BENCH_profile.json`) is emitted through the
//! two primitives here: [`json_str`] (escaping) and [`json_num`]
//! (finite-only floats). Emitters are stable by construction — same
//! inputs, same bytes — because `scripts/check.sh` diffs and
//! regression-compares the artifacts across runs. Every artifact
//! carries a top-level `schema` (versioned name) and `seed` field so a
//! reader can tell what produced it.

use std::fmt::Write as _;

/// Escape a string for a JSON literal (the latency summaries only carry
/// ASCII, but stay safe anyway).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number (`null` for the non-finite values
/// JSON cannot carry).
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Emit a [`nkv::ClusterStats`] snapshot as a JSON object (no trailing
/// newline; meant to nest inside a `BENCH_*.json` document).
pub fn cluster_stats_json(stats: &nkv::ClusterStats) -> String {
    let shards = stats
        .shards
        .iter()
        .map(|row| {
            let b = row.stats.metrics.total_breakdown();
            format!(
                "      {{\"shard\": {}, \"state\": {}, \"ops\": {}, \"busy_ns\": {}, \
                 \"flash_ns\": {}, \"dram_ns\": {}, \"pe_ns\": {}, \"cfg_ns\": {}, \
                 \"nvme_ns\": {}, \"dropped_spans\": {}}}",
                row.shard,
                json_str(&row.state.to_string()),
                row.stats.metrics.total_ops(),
                b.total(),
                b.flash_ns,
                b.dram_ns,
                b.pe_ns,
                b.cfg_ns,
                b.nvme_ns,
                row.stats.dropped_spans,
            )
        })
        .collect::<Vec<_>>();
    format!(
        "{{\n    \"total_ops\": {},\n    \"busy_skew\": {},\n    \"cache_hit_rate\": {},\n    \
         \"dropped_spans\": {},\n    \"router_retries\": {},\n    \"router_backoff_ns\": {},\n    \
         \"shards\": [\n{}\n    ]\n  }}",
        stats.total_ops(),
        json_num(stats.busy_skew),
        json_num(stats.cache_hit_rate()),
        stats.dropped_spans,
        stats.router_retries,
        stats.router_backoff_ns,
        shards.join(",\n"),
    )
}

/// Render `BENCH_profile.json`, the perf journal's machine-readable
/// snapshot (schema `nkv-bench-profile/2`; v2 added the batched-GET
/// config-tax measurement). Fixed-seed inputs make the document
/// byte-stable, so `scripts/check.sh` can regression-compare it
/// against the committed reference with tolerance thresholds.
pub fn profile_bench_json(p: &crate::figures::ProfileBench) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"nkv-bench-profile/2\",");
    let _ = writeln!(out, "  \"seed\": {},", p.seed);
    let _ = writeln!(
        out,
        "  \"config\": {{\"scale\": {}, \"devices\": {}, \"n_gets\": {}, \"batch\": {}}},",
        json_num(p.scale),
        p.devices,
        p.n_gets,
        p.batch
    );
    let _ = writeln!(out, "  \"config_tax_ratio\": {},", json_num(p.config_tax_ratio));
    let _ = writeln!(out, "  \"config_tax_batched\": {},", json_num(p.config_tax_batched));
    let _ = writeln!(out, "  \"get_us_unbatched\": {},", json_num(p.get_us_unbatched));
    let _ = writeln!(out, "  \"get_us_batched\": {},", json_num(p.get_us_batched));
    let _ = writeln!(out, "  \"batched_get_speedup\": {},", json_num(p.batched_get_speedup));
    let _ = writeln!(out, "  \"flash_occupancy\": {},", json_num(p.flash_occupancy));
    let _ = writeln!(out, "  \"cache_hit_rate\": {},", json_num(p.cache_hit_rate));
    let _ = writeln!(out, "  \"cluster_scaling\": {},", json_num(p.cluster_scaling));
    let _ = writeln!(out, "  \"cluster\": {}", cluster_stats_json(&p.cluster));
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb\tc"), "\"a\\u000ab\\u0009c\"");
        assert_eq!(json_str(""), "\"\"");
        // Non-ASCII passes through as UTF-8 (JSON allows it raw).
        assert_eq!(json_str("µs"), "\"µs\"");
    }

    #[test]
    fn numbers_render_finite_values_and_null_otherwise() {
        assert_eq!(json_num(0.0), "0");
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(-2.25), "-2.25");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(f64::NEG_INFINITY), "null");
        // No exponent surprises for the magnitudes the benches emit.
        assert_eq!(json_num(123456.789), "123456.789");
    }

    #[test]
    fn profile_bench_json_carries_every_key_and_stamps() {
        let p = crate::figures::ProfileBench {
            seed: 7,
            scale: 1.0 / 2048.0,
            devices: 4,
            n_gets: 16,
            config_tax_ratio: 45.0,
            batch: 16,
            config_tax_batched: 4.5,
            get_us_unbatched: 2200.0,
            get_us_batched: 210.0,
            batched_get_speedup: 10.5,
            flash_occupancy: 0.97,
            cache_hit_rate: 0.5,
            cluster_scaling: f64::NAN,
            cluster: nkv::NkvCluster::new(nkv::ClusterConfig::default())
                .expect("default cluster config is valid")
                .cluster_stats(),
        };
        let json = profile_bench_json(&p);
        for key in [
            "\"schema\": \"nkv-bench-profile/2\"",
            "\"seed\": 7",
            "\"config\"",
            "\"batch\": 16",
            "\"config_tax_ratio\": 45",
            "\"config_tax_batched\": 4.5",
            "\"get_us_unbatched\": 2200",
            "\"get_us_batched\": 210",
            "\"batched_get_speedup\": 10.5",
            "\"flash_occupancy\": 0.97",
            "\"cache_hit_rate\": 0.5",
            "\"cluster_scaling\": null",
            "\"cluster\"",
            "\"shards\"",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    }

    #[test]
    fn cluster_stats_emit_every_key_and_balance() {
        let stats = nkv::NkvCluster::new(nkv::ClusterConfig::default())
            .expect("default cluster config is valid")
            .cluster_stats();
        let json = cluster_stats_json(&stats);
        for key in [
            "\"total_ops\"",
            "\"busy_skew\"",
            "\"cache_hit_rate\"",
            "\"dropped_spans\"",
            "\"router_retries\"",
            "\"router_backoff_ns\"",
            "\"shards\"",
            "\"state\": \"healthy\"",
            "\"busy_ns\"",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces: {json}");
    }
}
