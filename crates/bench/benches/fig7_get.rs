//! Fig. 7(a) — GET operation, software vs hardware NDP, [1] vs ours.
//!
//! Criterion measures the wall-clock cost of simulating one GET; the
//! figure's *simulated device times* are printed once per configuration
//! so a bench run also regenerates the figure's data points.

use bench::harness::Criterion;
use bench::{build_db, DbKind};
use bench::{criterion_group, criterion_main};
use ndp_workload::PaperGen;
use nkv::ExecMode;
use std::hint::black_box;

const SCALE: f64 = 1.0 / 512.0;

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_get");
    group.sample_size(20);
    for (kind, kname) in [(DbKind::Baseline, "base"), (DbKind::Ours, "ours")] {
        let mut ds = build_db(SCALE, kind);
        for (mode, mname) in [(ExecMode::Software, "sw"), (ExecMode::Hardware, "hw")] {
            // Report the simulated device time once (the figure's value).
            let p = PaperGen::paper_at(&ds.cfg, ds.cfg.papers / 2);
            let (_, rep) = ds.db.get("papers", p.id, mode).unwrap();
            println!("fig7a[{kname}/{mname}]: simulated {:.3} ms/GET", rep.sim_ns as f64 / 1e6);

            let mut i = 0u64;
            group.bench_function(format!("{kname}_{mname}"), |b| {
                b.iter(|| {
                    i = (i + 7919) % ds.cfg.papers;
                    let p = PaperGen::paper_at(&ds.cfg, i);
                    let (rec, _) = ds.db.get("papers", black_box(p.id), mode).unwrap();
                    black_box(rec)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_get);
criterion_main!(benches);
