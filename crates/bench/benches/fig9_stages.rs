//! Fig. 9 — generated-PE resources vs number of filtering stages.
//!
//! Prints the figure's data points and benches the multi-stage PE's
//! cycle-level simulator to confirm that extra stages add only marginal
//! execution time (the paper's elastic-pipeline claim).

use bench::figures::fig9;
use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use ndp_pe::regs::offsets;
use ndp_pe::{MemBus, Mmio, PeDevice, PeSim, VecMem};
use std::hint::black_box;

fn stage_spec(stages: u32) -> String {
    format!(
        "/* @autogen define parser F with input = T, output = T, stages = {stages} */
         typedef struct {{ uint32_t a, b, c, d, e, f, g, h; }} T;"
    )
}

fn bench_fig9(c: &mut Criterion) {
    for row in fig9() {
        println!(
            "fig9[{} stage(s)]: full {:.3}% / half {:.3}% OOC",
            row.stages, row.full_pct, row.half_pct
        );
    }

    // Cycle-level block processing time vs stage count (paper: "additional
    // filtering stages will only add very small increases").
    let mut group = c.benchmark_group("fig9_block_cycles_vs_stages");
    group.sample_size(20);
    for stages in [1u32, 3, 5] {
        let arts = ndp_core::generate(&stage_spec(stages)).unwrap();
        let mut pe = PeSim::new(arts.pes[0].config.clone());
        let mut mem = VecMem::new(1 << 20);
        let data: Vec<u8> = (0..32 * 1024u32).map(|i| i as u8).collect();
        mem.write_bytes(0, &data);
        pe.mmio_write(offsets::SRC_LEN, 32 * 1024);
        pe.mmio_write(offsets::DST_ADDR_LO, 0x80000);
        pe.mmio_write(offsets::DST_CAPACITY, 1 << 18);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| {
                pe.mmio_write(offsets::START, 1);
                let res = pe.execute(&mut mem);
                black_box(res.cycles)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
