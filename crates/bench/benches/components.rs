//! Component micro-benchmarks: the hot paths of the toolflow and the
//! substrates (frontend, oracle filtering, cycle-level PE, memtable,
//! bloom filter, CRC).

use bench::harness::{Criterion, Throughput};
use bench::{criterion_group, criterion_main};
use ndp_ir::elaborate;
use ndp_pe::oracle::{BlockProcessor, FilterRule, OpTable};
use ndp_workload::spec::{PAPER_REF_SPEC, REF_PE};
use ndp_workload::{PubGraphConfig, RefGen};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("spec_parse_and_elaborate", |b| {
        b.iter(|| {
            let m = ndp_spec::parse(black_box(PAPER_REF_SPEC)).unwrap();
            black_box(ndp_ir::elaborate_all(&m).unwrap())
        });
    });
}

fn bench_oracle(c: &mut Criterion) {
    let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
    let cfg = elaborate(&m, REF_PE).unwrap();
    let bp = BlockProcessor::new(&cfg);
    let ops = OpTable::from_config(&cfg);
    let mut block = Vec::with_capacity(32 * 1024);
    for r in RefGen::new(PubGraphConfig { papers: 200, refs: 1638, seed: 1 }) {
        r.encode_into(&mut block);
    }
    let rules = [FilterRule { lane: 2, op_code: 4, value: 1990 }];
    let mut group = c.benchmark_group("oracle_block_filter");
    group.throughput(Throughput::Bytes(block.len() as u64));
    group.bench_function("ref_block_32k", |b| {
        let mut out = Vec::with_capacity(block.len());
        b.iter(|| {
            out.clear();
            black_box(bp.process_block(black_box(&block), &rules, &ops, &mut out))
        });
    });
    group.finish();
}

fn bench_memtable(c: &mut Criterion) {
    c.bench_function("memtable_insert_10k", |b| {
        b.iter(|| {
            let mut m = nkv::memtable::MemTable::new(7);
            for k in 0..10_000u64 {
                m.put(black_box(k * 2654435761 % 1_000_003), vec![0u8; 20]);
            }
            black_box(m.len())
        });
    });
}

fn bench_bloom(c: &mut Criterion) {
    let mut bloom = nkv::util::Bloom::new(100_000, 10);
    for k in 0..100_000u64 {
        bloom.insert(k * 3 + 1);
    }
    c.bench_function("bloom_lookup", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(982_451_653);
            black_box(bloom.may_contain(black_box(k)))
        });
    });
}

fn bench_crc(c: &mut Criterion) {
    let data = vec![0xA5u8; 32 * 1024];
    let mut group = c.benchmark_group("crc32c");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("block_32k", |b| {
        b.iter(|| black_box(nkv::util::crc32c(black_box(&data))));
    });
    group.finish();
}

criterion_group!(benches, bench_frontend, bench_oracle, bench_memtable, bench_bloom, bench_crc);
criterion_main!(benches);
