//! Fig. 7(b) — SCAN operation, software vs hardware NDP, [1] vs ours.
//!
//! Criterion measures the harness cost of a scaled SCAN simulation; the
//! simulated device times (the figure's values) print once per case.

use bench::harness::Criterion;
use bench::{build_db, DbKind};
use bench::{criterion_group, criterion_main};
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, ref_lanes};
use nkv::ExecMode;
use std::hint::black_box;

const SCALE: f64 = 1.0 / 512.0;

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b_scan");
    group.sample_size(10);
    for (kind, kname) in [(DbKind::Baseline, "base"), (DbKind::Ours, "ours")] {
        let mut ds = build_db(SCALE, kind);
        for (mode, mname) in [(ExecMode::Software, "sw"), (ExecMode::Hardware, "hw")] {
            let paper_rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2019 }];
            let ref_rules = [FilterRule { lane: ref_lanes::YEAR, op_code: 2, value: 1980 }];
            let p = ds.db.scan("papers", &paper_rules, mode).unwrap();
            let r = ds.db.scan("refs", &ref_rules, mode).unwrap();
            println!(
                "fig7b[{kname}/{mname}]: simulated {:.4} s at scale 1/512 \
                 ({} + {} matches)",
                (p.report.sim_ns + r.report.sim_ns) as f64 / 1e9,
                p.count,
                r.count
            );
            group.bench_function(format!("{kname}_{mname}"), |b| {
                b.iter(|| {
                    let s = ds.db.scan("refs", black_box(&ref_rules), mode).unwrap();
                    black_box(s.count)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
