//! Table I — resource-utilization model over the full system composition.
//!
//! Prints the table's values and benches the elaborate→estimate pipeline
//! (the cost a user pays per design-space point when exploring formats).

use bench::figures::table1;
use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let t = table1();
    println!(
        "table1: overall [1] {} ({:.2}%) vs ours {} ({:.2}%)",
        t.base.overall_slices, t.base.overall_pct, t.ours.overall_slices, t.ours.overall_pct
    );
    for (name, base, ours) in &t.pe_rows {
        println!("table1: {name}: [1] {base} vs ours {ours} slices");
    }
    c.bench_function("table1_system_report", |b| {
        b.iter(|| black_box(table1()));
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
