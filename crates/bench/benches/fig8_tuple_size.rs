//! Fig. 8 — generated-PE resources vs tuple size (Full vs Half).
//!
//! Prints the figure's data points and benches the full generation
//! pipeline (parse → elaborate → compose → estimate) per tuple size.

use bench::figures::{fig8, fig8_full_spec};
use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    for row in fig8() {
        println!(
            "fig8[{} bit]: full {} / half {} OOC slices",
            row.tuple_bits, row.full_slices, row.half_slices
        );
    }
    let mut group = c.benchmark_group("fig8_generate_pipeline");
    for bits in [64u32, 256, 1024] {
        let spec = fig8_full_spec(bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &spec, |b, spec| {
            b.iter(|| {
                let arts = ndp_core::generate(black_box(spec)).unwrap();
                black_box(arts.pes[0].report.slices_out_of_context)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
