//! Derivation of the Data Transformation Unit's field mapping.
//!
//! The paper distinguishes three cases (Sec. IV-B, "Data Transformation
//! Unit"):
//!
//! 1. input and output are the same struct type → tuples pass through;
//! 2. every output field also exists in the input → the mapping is derived
//!    automatically by path;
//! 3. the output contains fields absent from the input → the user must
//!    provide explicit `mapping = { output.a = input.b, ... }` annotations.
//!
//! The derived [`TransformPlan`] is a list of field moves executed by the
//! generated transformation hardware (and by its software twin).

use crate::error::{IrError, IrResult};
use crate::layout::TupleLayout;
use ndp_spec::MappingEntry;

/// One output-field assignment: `output.fields[dst] = input.fields[src]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldMove {
    /// Index into the *output* layout's `fields`.
    pub dst: usize,
    /// Index into the *input* layout's `fields`.
    pub src: usize,
}

/// A complete, validated transformation: every output field is covered
/// exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformPlan {
    /// Field moves in output wire order.
    pub moves: Vec<FieldMove>,
    /// True if this is the paper's case 1 (identity pass-through).
    pub identity: bool,
}

impl TransformPlan {
    /// Number of output fields produced.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// True if the plan contains no moves (impossible for valid layouts,
    /// which always have at least one field).
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Derive the transformation plan from input/output layouts plus the
/// user-provided mapping entries.
pub fn derive_transform(
    parser: &str,
    input: &TupleLayout,
    output: &TupleLayout,
    user_mapping: &[MappingEntry],
) -> IrResult<TransformPlan> {
    // Case 1: identical struct type → pure pass-through. Explicit user
    // mappings still override individual fields if given.
    if input.name == output.name && user_mapping.is_empty() {
        let moves = (0..output.fields.len()).map(|i| FieldMove { dst: i, src: i }).collect();
        return Ok(TransformPlan { moves, identity: true });
    }

    // Index user mappings by output path, rejecting duplicates up front.
    let mut explicit: Vec<(usize, usize)> = Vec::with_capacity(user_mapping.len());
    for entry in user_mapping {
        let out_path = entry.output.dotted();
        let in_path = entry.input.dotted();
        let dst = output.field_index(&out_path).ok_or_else(|| IrError::UnknownFieldPath {
            parser: parser.into(),
            path: out_path.clone(),
            side: "output",
        })?;
        let src = input.field_index(&in_path).ok_or_else(|| IrError::UnknownFieldPath {
            parser: parser.into(),
            path: in_path.clone(),
            side: "input",
        })?;
        if explicit.iter().any(|&(d, _)| d == dst) {
            return Err(IrError::DuplicateMapping { parser: parser.into(), field: out_path });
        }
        let (of, inf) = (&output.fields[dst], &input.fields[src]);
        if of.prim.is_none() {
            return Err(IrError::MappingTargetsPostfix { parser: parser.into(), field: out_path });
        }
        if of.width_bits != inf.width_bits {
            return Err(IrError::WidthMismatch {
                parser: parser.into(),
                output: out_path,
                input: in_path,
                out_bits: of.width_bits,
                in_bits: inf.width_bits,
            });
        }
        explicit.push((dst, src));
    }

    // Cases 2 and 3: walk output fields, preferring explicit entries, then
    // automatic by-path matching.
    let mut moves = Vec::with_capacity(output.fields.len());
    for (dst, of) in output.fields.iter().enumerate() {
        let src = if let Some(&(_, s)) = explicit.iter().find(|&&(d, _)| d == dst) {
            s
        } else if let Some(s) = input.field_index(&of.path) {
            let inf = &input.fields[s];
            if inf.width_bits != of.width_bits {
                return Err(IrError::WidthMismatch {
                    parser: parser.into(),
                    output: of.path.clone(),
                    input: inf.path.clone(),
                    out_bits: of.width_bits,
                    in_bits: inf.width_bits,
                });
            }
            s
        } else {
            return Err(IrError::UnmappedOutputField {
                parser: parser.into(),
                field: of.path.clone(),
            });
        };
        moves.push(FieldMove { dst, src });
    }

    let identity = input.name == output.name
        && moves.iter().all(|m| m.dst == m.src)
        && moves.len() == input.fields.len();
    Ok(TransformPlan { moves, identity })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::compute_layout;
    use crate::passes::{resolve_strings, scalarize};
    use crate::tree::build_tree;
    use ndp_spec::{parse, SpecModule};

    fn layouts(src: &str, a: &str, b: &str) -> (SpecModule, TupleLayout, TupleLayout) {
        let m = parse(src).unwrap();
        let la = compute_layout(a, &scalarize(resolve_strings(build_tree(&m, a, "t").unwrap())))
            .unwrap();
        let lb = compute_layout(b, &scalarize(resolve_strings(build_tree(&m, b, "t").unwrap())))
            .unwrap();
        (m, la, lb)
    }

    #[test]
    fn case1_identity_pass_through() {
        let (_, a, b) = layouts("typedef struct { uint32_t x, y; } A;", "A", "A");
        let plan = derive_transform("p", &a, &b, &[]).unwrap();
        assert!(plan.identity);
        assert_eq!(plan.moves, vec![FieldMove { dst: 0, src: 0 }, FieldMove { dst: 1, src: 1 }]);
    }

    #[test]
    fn case2_automatic_subset_projection() {
        let src = "
            typedef struct { uint32_t x, y, z; } A;
            typedef struct { uint32_t z, x; } B;
        ";
        let (_, a, b) = layouts(src, "A", "B");
        let plan = derive_transform("p", &a, &b, &[]).unwrap();
        assert!(!plan.identity);
        // Output order: z (from input lane 2), x (from input lane 0).
        assert_eq!(plan.moves, vec![FieldMove { dst: 0, src: 2 }, FieldMove { dst: 1, src: 0 }]);
    }

    #[test]
    fn case3_requires_user_mapping() {
        let src = "
            typedef struct { uint32_t x, y, z; } Point3D;
            typedef struct { uint32_t u, v; } Point2D;
        ";
        let (_, a, b) = layouts(src, "Point3D", "Point2D");
        let err = derive_transform("p", &a, &b, &[]).unwrap_err();
        assert!(matches!(err, IrError::UnmappedOutputField { ref field, .. } if field == "u"));
    }

    #[test]
    fn paper_fig4_mapping_resolves() {
        // Fig. 4: Point3D {x,y,z} → Point2D {x,y} with output.x = input.y,
        // output.y = input.z (projection discarding x).
        let src = "
            /* @autogen define parser Point3DTo2D with chunksize = 32,
               input = Point3D, output = Point2D,
               mapping = { output.x = input.y, output.y = input.z } */
            typedef struct { uint32_t x, y, z; } Point3D;
            typedef struct { uint32_t x, y; } Point2D;
        ";
        let (m, a, b) = layouts(src, "Point3D", "Point2D");
        let plan = derive_transform("Point3DTo2D", &a, &b, &m.parsers[0].mapping).unwrap();
        assert_eq!(plan.moves, vec![FieldMove { dst: 0, src: 1 }, FieldMove { dst: 1, src: 2 }]);
        assert!(!plan.identity);
    }

    #[test]
    fn fig4_without_mapping_defaults_to_case2_by_name() {
        // The paper: "Without a mapping, the toolflow would default to the
        // second case and use x and y for the projection."
        let src = "
            typedef struct { uint32_t x, y, z; } Point3D;
            typedef struct { uint32_t x, y; } Point2D;
        ";
        let (_, a, b) = layouts(src, "Point3D", "Point2D");
        let plan = derive_transform("p", &a, &b, &[]).unwrap();
        assert_eq!(plan.moves, vec![FieldMove { dst: 0, src: 0 }, FieldMove { dst: 1, src: 1 }]);
    }

    #[test]
    fn explicit_mapping_overrides_name_match() {
        let src = "
            /* @autogen define parser P with input = A, output = B,
               mapping = { output.x = input.y } */
            typedef struct { uint32_t x, y; } A;
            typedef struct { uint32_t x; } B;
        ";
        let (m, a, b) = layouts(src, "A", "B");
        let plan = derive_transform("P", &a, &b, &m.parsers[0].mapping).unwrap();
        assert_eq!(plan.moves, vec![FieldMove { dst: 0, src: 1 }]);
    }

    #[test]
    fn width_mismatch_rejected_for_explicit_mapping() {
        let src = "
            /* @autogen define parser P with input = A, output = B,
               mapping = { output.w = input.n } */
            typedef struct { uint8_t n; } A;
            typedef struct { uint64_t w; } B;
        ";
        let (m, a, b) = layouts(src, "A", "B");
        let err = derive_transform("P", &a, &b, &m.parsers[0].mapping).unwrap_err();
        assert!(matches!(err, IrError::WidthMismatch { out_bits: 64, in_bits: 8, .. }));
    }

    #[test]
    fn width_mismatch_rejected_for_automatic_match() {
        let src = "
            typedef struct { uint8_t x; } A;
            typedef struct { uint64_t x; } B;
        ";
        let (_, a, b) = layouts(src, "A", "B");
        let err = derive_transform("p", &a, &b, &[]).unwrap_err();
        assert!(matches!(err, IrError::WidthMismatch { .. }));
    }

    #[test]
    fn duplicate_output_mapping_rejected() {
        let src = "
            /* @autogen define parser P with input = A, output = B,
               mapping = { output.x = input.a, output.x = input.b } */
            typedef struct { uint32_t a, b; } A;
            typedef struct { uint32_t x; } B;
        ";
        let (m, a, b) = layouts(src, "A", "B");
        let err = derive_transform("P", &a, &b, &m.parsers[0].mapping).unwrap_err();
        assert!(matches!(err, IrError::DuplicateMapping { .. }));
    }

    #[test]
    fn unknown_paths_rejected_with_side() {
        let src = "
            /* @autogen define parser P with input = A, output = B,
               mapping = { output.nope = input.a } */
            typedef struct { uint32_t a; } A;
            typedef struct { uint32_t x; } B;
        ";
        let (m, a, b) = layouts(src, "A", "B");
        let err = derive_transform("P", &a, &b, &m.parsers[0].mapping).unwrap_err();
        assert!(matches!(err, IrError::UnknownFieldPath { side: "output", .. }));
    }

    #[test]
    fn postfix_fields_auto_map_by_path() {
        // Transform that keeps the string (prefix + postfix) and drops a
        // meta-data field — the paper's "discarding RocksDB meta-data" use.
        let src = "
            typedef struct { uint64_t meta; /* @string(prefix = 4) */ uint8_t s[12]; } A;
            typedef struct { /* @string(prefix = 4) */ uint8_t s[12]; } B;
        ";
        let (_, a, b) = layouts(src, "A", "B");
        let plan = derive_transform("p", &a, &b, &[]).unwrap();
        // Output fields: s.prefix, s.postfix — mapped from input indices 1, 2.
        assert_eq!(plan.moves, vec![FieldMove { dst: 0, src: 1 }, FieldMove { dst: 1, src: 2 }]);
    }

    #[test]
    fn mapping_cannot_target_postfix() {
        let src = "
            /* @autogen define parser P with input = A, output = B,
               mapping = { output.s.postfix = input.s.postfix } */
            typedef struct { /* @string(prefix = 4) */ uint8_t s[12]; } A;
            typedef struct { /* @string(prefix = 4) */ uint8_t s[12]; } B;
        ";
        let (m, a, b) = layouts(src, "A", "B");
        let err = derive_transform("P", &a, &b, &m.parsers[0].mapping).unwrap_err();
        assert!(matches!(err, IrError::MappingTargetsPostfix { .. }));
    }
}
