//! Contextual analysis for the NDP accelerator generator.
//!
//! This crate implements the paper's "Contextual Analysis" phase
//! (Sec. IV-B): starting from the parsed struct typedefs it
//!
//! 1. builds *type trees* ([`tree::TypeNode`]) with nested structs/arrays,
//! 2. resolves `@string`-annotated byte arrays into a filterable *prefix*
//!    field plus an opaque *postfix* ([`passes::resolve_strings`]),
//! 3. *scalarizes* arrays into structs of element fields
//!    (`uint32_t v[2]` → `{ v_0, v_1 }`, [`passes::scalarize`]),
//! 4. determines the largest *relevant* (filterable) field and computes the
//!    padded data layout so every relevant field fits one comparator lane
//!    ([`layout::TupleLayout`]), and
//! 5. derives the input→output field mapping for the Data Transformation
//!    Unit, covering the paper's three cases (identity, automatic by-name
//!    matching, explicit user mapping) ([`mapping::TransformPlan`]).
//!
//! The result is a [`PeConfig`]: everything the hardware template
//! (`ndp-pe`), the HDL backend (`ndp-hdl` via `ndp-pe`) and the software
//! interface generator (`ndp-swgen`) need.

pub mod config;
pub mod error;
pub mod layout;
pub mod mapping;
pub mod passes;
pub mod tree;

pub use config::{
    elaborate, elaborate_all, elaborate_with_custom_ops, AggOp, CmpOp, OpSpec, PeConfig,
};
pub use error::{IrError, IrResult};
pub use layout::{FieldLayout, TupleLayout};
pub use mapping::{FieldMove, TransformPlan};
pub use tree::TypeNode;
