//! Transformation passes over type trees.
//!
//! The paper's contextual analysis runs three tree transformations in
//! order: string resolution, array scalarization, and padding analysis
//! (the last one lives in [`crate::layout`] because it produces the final
//! flat layout rather than another tree).

use crate::tree::TypeNode;

/// Pass 1 — resolve `@string` byte arrays into a struct of a regular
/// prefix field followed by an opaque postfix (paper: "arrays that are
/// annotated to represent strings are transformed into structs, which
/// contain a prefix-field followed by an array which contains the rest of
/// the string").
///
/// A prefix covering the entire array degenerates to just the prefix field.
pub fn resolve_strings(node: TypeNode) -> TypeNode {
    match node {
        TypeNode::StrArray { prefix_bytes, total_bytes } => {
            let prefix_prim = prim_for_bytes(prefix_bytes);
            let postfix = total_bytes.saturating_sub(prefix_bytes as usize);
            if postfix == 0 {
                TypeNode::Struct(vec![("prefix".into(), TypeNode::Prim(prefix_prim))])
            } else {
                TypeNode::Struct(vec![
                    ("prefix".into(), TypeNode::Prim(prefix_prim)),
                    ("postfix".into(), TypeNode::Postfix { bytes: postfix }),
                ])
            }
        }
        TypeNode::Struct(fields) => {
            TypeNode::Struct(fields.into_iter().map(|(n, t)| (n, resolve_strings(t))).collect())
        }
        TypeNode::Array(elem, n) => TypeNode::Array(Box::new(resolve_strings(*elem)), n),
        leaf @ (TypeNode::Prim(_) | TypeNode::Postfix { .. }) => leaf,
    }
}

/// Pass 2 — scalarize arrays: `uint32_t v[2]` becomes
/// `struct { uint32_t v_0, v_1; }` with an identical data layout
/// (paper: "removes arrays completely from the tree, by flattening them
/// into structs with a corresponding sequence of scalar element fields").
///
/// Because element naming happens at the *field* level (the array's name
/// combines with the element index), this pass operates on struct nodes;
/// the root of a type tree is always a struct.
pub fn scalarize(node: TypeNode) -> TypeNode {
    match node {
        TypeNode::Struct(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (name, child) in fields {
                scalarize_field(name, child, &mut out);
            }
            TypeNode::Struct(out)
        }
        other => other,
    }
}

fn scalarize_field(name: String, node: TypeNode, out: &mut Vec<(String, TypeNode)>) {
    match node {
        TypeNode::Array(elem, n) => {
            for i in 0..n {
                scalarize_field(format!("{name}_{i}"), (*elem).clone(), out);
            }
        }
        TypeNode::Struct(fields) => {
            let mut inner = Vec::with_capacity(fields.len());
            for (fname, child) in fields {
                scalarize_field(fname, child, &mut inner);
            }
            out.push((name, TypeNode::Struct(inner)));
        }
        leaf => out.push((name, leaf)),
    }
}

/// Select the unsigned primitive matching a string-prefix byte width.
fn prim_for_bytes(bytes: u32) -> ndp_spec::PrimTy {
    use ndp_spec::PrimTy;
    match bytes {
        1 => PrimTy::U8,
        2 => PrimTy::U16,
        4 => PrimTy::U32,
        8 => PrimTy::U64,
        other => unreachable!("parser enforces prefix in {{1,2,4,8}}, got {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_spec::PrimTy;

    fn prim(p: PrimTy) -> TypeNode {
        TypeNode::Prim(p)
    }

    #[test]
    fn string_resolution_splits_prefix_postfix() {
        let t = TypeNode::Struct(vec![(
            "title".into(),
            TypeNode::StrArray { prefix_bytes: 4, total_bytes: 32 },
        )]);
        let r = resolve_strings(t.clone());
        let TypeNode::Struct(fields) = &r else { panic!() };
        let TypeNode::Struct(inner) = &fields[0].1 else { panic!() };
        assert_eq!(inner[0], ("prefix".into(), prim(PrimTy::U32)));
        assert_eq!(inner[1], ("postfix".into(), TypeNode::Postfix { bytes: 28 }));
        // Layout-preserving: same total width.
        assert_eq!(r.packed_bits(), t.packed_bits());
    }

    #[test]
    fn full_width_prefix_degenerates_to_plain_field() {
        let t = TypeNode::StrArray { prefix_bytes: 8, total_bytes: 8 };
        let r = resolve_strings(t);
        let TypeNode::Struct(fields) = &r else { panic!() };
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].1, prim(PrimTy::U64));
    }

    #[test]
    fn scalarize_flattens_1d_array() {
        let t =
            TypeNode::Struct(vec![("v".into(), TypeNode::Array(Box::new(prim(PrimTy::U32)), 2))]);
        let r = scalarize(t.clone());
        assert_eq!(
            r,
            TypeNode::Struct(vec![
                ("v_0".into(), prim(PrimTy::U32)),
                ("v_1".into(), prim(PrimTy::U32)),
            ])
        );
        assert_eq!(r.packed_bits(), t.packed_bits());
        assert!(!r.contains_array());
    }

    #[test]
    fn scalarize_flattens_multi_dim_row_major() {
        let t = TypeNode::Struct(vec![(
            "m".into(),
            TypeNode::Array(Box::new(TypeNode::Array(Box::new(prim(PrimTy::U8)), 2)), 3),
        )]);
        let r = scalarize(t);
        let TypeNode::Struct(fields) = &r else { panic!() };
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["m_0_0", "m_0_1", "m_1_0", "m_1_1", "m_2_0", "m_2_1"]);
    }

    #[test]
    fn scalarize_array_of_structs_keeps_nesting() {
        let pt = TypeNode::Struct(vec![
            ("x".into(), prim(PrimTy::U32)),
            ("y".into(), prim(PrimTy::U32)),
        ]);
        let t = TypeNode::Struct(vec![("pts".into(), TypeNode::Array(Box::new(pt.clone()), 2))]);
        let r = scalarize(t);
        let TypeNode::Struct(fields) = &r else { panic!() };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "pts_0");
        assert_eq!(fields[0].1, pt);
        assert_eq!(fields[1].0, "pts_1");
    }

    #[test]
    fn passes_are_idempotent_on_clean_trees() {
        let t = TypeNode::Struct(vec![
            ("a".into(), prim(PrimTy::U64)),
            ("b".into(), TypeNode::Postfix { bytes: 12 }),
        ]);
        assert_eq!(resolve_strings(t.clone()), t);
        assert_eq!(scalarize(t.clone()), t);
    }

    #[test]
    fn string_inside_array_is_resolved() {
        // An array of annotated strings: resolve first, then scalarize.
        let t = TypeNode::Struct(vec![(
            "tags".into(),
            TypeNode::Array(Box::new(TypeNode::StrArray { prefix_bytes: 2, total_bytes: 8 }), 2),
        )]);
        let r = scalarize(resolve_strings(t));
        let TypeNode::Struct(fields) = &r else { panic!() };
        assert_eq!(fields.len(), 2);
        let TypeNode::Struct(inner) = &fields[0].1 else { panic!() };
        assert_eq!(inner[0].1, prim(PrimTy::U16));
        assert_eq!(inner[1].1, TypeNode::Postfix { bytes: 6 });
    }
}
