//! Padded tuple layouts.
//!
//! The final contextual-analysis step (paper, Sec. IV-B): determine the
//! largest *relevant* field — a field usable in filter predicates, i.e.
//! every primitive leaf except string postfixes — and pad all relevant
//! fields to that width so a single comparator unit can process any of
//! them. The layout records, for every leaf,
//!
//! * its **packed** position (the wire format in DRAM/flash: packed
//!   little-endian concatenation, as produced by the application writing
//!   `__attribute__((packed))` structs into the KV-store), and
//! * its **lane** in the padded internal representation that flows between
//!   the Tuple Input Buffer, the Filtering Units and the Data
//!   Transformation Unit. Relevant fields occupy one comparator-width lane
//!   each; postfixes are carried in a separate opaque vector (paper: "a
//!   second vector contains all of the disregarded string-postfixes").

use crate::error::{IrError, IrResult};
use crate::tree::TypeNode;
use ndp_spec::PrimTy;

/// One leaf of the flattened tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    /// Dotted, scalarized path (`pos.x`, `coords_1`, `title.prefix`).
    pub path: String,
    /// Primitive type; `None` for opaque string postfixes.
    pub prim: Option<PrimTy>,
    /// Bit offset in the packed wire format.
    pub offset_bits: u64,
    /// Width in bits in the packed wire format.
    pub width_bits: u32,
    /// Comparator lane index; `None` for postfixes.
    pub lane: Option<u32>,
}

impl FieldLayout {
    /// True if the field can be used in filter predicates.
    pub fn relevant(&self) -> bool {
        self.lane.is_some()
    }
}

/// The complete layout of one tuple type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleLayout {
    /// Name of the originating struct type.
    pub name: String,
    /// All leaves in wire order.
    pub fields: Vec<FieldLayout>,
    /// Packed tuple width in bits (= bytes × 8; always byte-aligned).
    pub tuple_bits: u64,
    /// Comparator lane width: the width of the largest relevant field,
    /// to which all relevant fields are padded.
    pub lane_bits: u32,
    /// Number of comparator lanes (= number of relevant fields).
    pub lanes: u32,
    /// Total bits of opaque postfix payload carried alongside the lanes.
    pub postfix_bits: u64,
}

impl TupleLayout {
    /// Packed tuple size in bytes.
    pub fn tuple_bytes(&self) -> u64 {
        self.tuple_bits / 8
    }

    /// Width of the padded internal representation in bits:
    /// `lanes × lane_bits` plus the carried postfix payload.
    pub fn padded_bits(&self) -> u64 {
        u64::from(self.lanes) * u64::from(self.lane_bits) + self.postfix_bits
    }

    /// Look up a field by its dotted path.
    pub fn field(&self, path: &str) -> Option<&FieldLayout> {
        self.fields.iter().find(|f| f.path == path)
    }

    /// Index of a field by its dotted path.
    pub fn field_index(&self, path: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.path == path)
    }

    /// Iterate over the relevant (filterable) fields in lane order.
    ///
    /// Lanes are assigned in wire order, so this equals declaration order.
    pub fn relevant_fields(&self) -> impl Iterator<Item = &FieldLayout> {
        self.fields.iter().filter(|f| f.relevant())
    }
}

/// Compute the padded layout of a fully resolved, scalarized tree.
///
/// `node` must be the root struct after `resolve_strings` and `scalarize`
/// (no `Array`/`StrArray` nodes remain); this is an internal contract of
/// the elaboration pipeline, violated only by a pipeline bug.
pub fn compute_layout(name: &str, node: &TypeNode) -> IrResult<TupleLayout> {
    debug_assert!(!node.contains_array(), "layout requires a scalarized tree");
    debug_assert!(!node.contains_str_array(), "layout requires resolved strings");

    let mut fields = Vec::new();
    let mut offset = 0u64;
    flatten(node, String::new(), &mut offset, &mut fields);

    let lane_bits = fields
        .iter()
        .filter_map(|f| f.prim.map(PrimTy::bits))
        .max()
        .ok_or_else(|| IrError::NoRelevantFields { strct: name.to_string() })?;

    let mut lanes = 0u32;
    let mut postfix_bits = 0u64;
    for f in &mut fields {
        if f.prim.is_some() {
            f.lane = Some(lanes);
            lanes += 1;
        } else {
            postfix_bits += u64::from(f.width_bits);
        }
    }

    Ok(TupleLayout {
        name: name.to_string(),
        fields,
        tuple_bits: offset,
        lane_bits,
        lanes,
        postfix_bits,
    })
}

fn flatten(node: &TypeNode, prefix: String, offset: &mut u64, out: &mut Vec<FieldLayout>) {
    match node {
        TypeNode::Struct(children) => {
            for (fname, child) in children {
                let path =
                    if prefix.is_empty() { fname.clone() } else { format!("{prefix}.{fname}") };
                flatten(child, path, offset, out);
            }
        }
        TypeNode::Prim(p) => {
            out.push(FieldLayout {
                path: prefix,
                prim: Some(*p),
                offset_bits: *offset,
                width_bits: p.bits(),
                lane: None,
            });
            *offset += u64::from(p.bits());
        }
        TypeNode::Postfix { bytes } => {
            let bits = (*bytes as u64 * 8) as u32;
            out.push(FieldLayout {
                path: prefix,
                prim: None,
                offset_bits: *offset,
                width_bits: bits,
                lane: None,
            });
            *offset += u64::from(bits);
        }
        TypeNode::Array(..) | TypeNode::StrArray { .. } => {
            unreachable!("layout requires a scalarized, string-resolved tree")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{resolve_strings, scalarize};
    use crate::tree::build_tree;
    use ndp_spec::parse;

    fn layout(src: &str, name: &str) -> TupleLayout {
        let m = parse(src).unwrap();
        let t = scalarize(resolve_strings(build_tree(&m, name, "test").unwrap()));
        compute_layout(name, &t).unwrap()
    }

    #[test]
    fn paper_point_example_layout() {
        // The paper's running example: x, y, z as 32-bit integers; the
        // hardware knows the first 32 bits encode x, the next 32 y, etc.
        let l = layout("typedef struct { uint32_t x, y, z; } Point;", "Point");
        assert_eq!(l.tuple_bits, 96);
        assert_eq!(l.lane_bits, 32);
        assert_eq!(l.lanes, 3);
        assert_eq!(l.postfix_bits, 0);
        assert_eq!(l.field("x").unwrap().offset_bits, 0);
        assert_eq!(l.field("y").unwrap().offset_bits, 32);
        assert_eq!(l.field("z").unwrap().offset_bits, 64);
        assert_eq!(l.padded_bits(), 96);
    }

    #[test]
    fn mixed_widths_pad_to_largest_relevant() {
        let l = layout("typedef struct { uint64_t id; uint8_t tag; uint16_t kind; } R;", "R");
        assert_eq!(l.lane_bits, 64);
        assert_eq!(l.lanes, 3);
        // Padded representation: 3 lanes of 64 bit although the packed
        // tuple is only 88 bits.
        assert_eq!(l.tuple_bits, 88);
        assert_eq!(l.padded_bits(), 192);
    }

    #[test]
    fn string_postfix_is_not_a_lane_and_not_padded() {
        let src = "typedef struct {
            uint64_t id;
            /* @string(prefix = 4) */ uint8_t title[36];
        } Paper;";
        let l = layout(src, "Paper");
        // Leaves: id, title.prefix (u32), title.postfix (32 bytes opaque).
        assert_eq!(l.lanes, 2);
        assert_eq!(l.lane_bits, 64);
        assert_eq!(l.postfix_bits, 32 * 8);
        assert_eq!(l.tuple_bits, 64 + 32 + 256);
        assert_eq!(l.padded_bits(), 2 * 64 + 256);
        let post = l.field("title.postfix").unwrap();
        assert!(!post.relevant());
        assert_eq!(post.offset_bits, 96);
    }

    #[test]
    fn lanes_are_assigned_in_wire_order() {
        let l = layout("typedef struct { uint8_t a; uint32_t b; uint8_t c; } T;", "T");
        let lanes: Vec<(String, u32)> =
            l.relevant_fields().map(|f| (f.path.clone(), f.lane.unwrap())).collect();
        assert_eq!(lanes, vec![("a".into(), 0), ("b".into(), 1), ("c".into(), 2)]);
    }

    #[test]
    fn scalarized_array_fields_get_individual_lanes() {
        let l = layout("typedef struct { uint32_t v[4]; } V;", "V");
        assert_eq!(l.lanes, 4);
        assert_eq!(l.field("v_2").unwrap().offset_bits, 64);
    }

    #[test]
    fn nested_struct_paths_are_dotted() {
        let src = "
            typedef struct { uint32_t x, y; } Pt;
            typedef struct { Pt pos; uint64_t id; } Node;
        ";
        let l = layout(src, "Node");
        assert!(l.field("pos.x").is_some());
        assert!(l.field("pos.y").is_some());
        assert_eq!(l.field("id").unwrap().offset_bits, 64);
        assert_eq!(l.lane_bits, 64);
    }

    #[test]
    fn offsets_are_contiguous_and_non_overlapping() {
        let src = "typedef struct {
            uint8_t a; uint16_t b; uint32_t c; uint64_t d;
            /* @string(prefix = 2) */ uint8_t s[10];
        } T;";
        let l = layout(src, "T");
        let mut expected = 0u64;
        for f in &l.fields {
            assert_eq!(f.offset_bits, expected, "field {} misplaced", f.path);
            expected += u64::from(f.width_bits);
        }
        assert_eq!(expected, l.tuple_bits);
    }

    #[test]
    fn postfix_only_struct_is_rejected() {
        // Construct directly: a struct whose only leaf is a postfix cannot
        // come from the parser (prefix >= 1 always), so build the tree by
        // hand to cover the error path.
        let t = TypeNode::Struct(vec![("s".into(), TypeNode::Postfix { bytes: 16 })]);
        let err = compute_layout("T", &t).unwrap_err();
        assert!(matches!(err, IrError::NoRelevantFields { .. }));
    }

    #[test]
    fn field_index_matches_field() {
        let l = layout("typedef struct { uint32_t x, y; } P;", "P");
        assert_eq!(l.field_index("y"), Some(1));
        assert_eq!(l.field_index("nope"), None);
    }
}
