//! Elaborated processing-element configurations.
//!
//! [`elaborate`] runs the full contextual-analysis pipeline for one
//! `@autogen define parser` annotation and produces a [`PeConfig`] — the
//! single source of truth consumed by the hardware template (`ndp-pe`),
//! the resource/HDL backend (`ndp-hdl`) and the software-interface
//! generator (`ndp-swgen`).

use crate::error::{IrError, IrResult};
use crate::layout::{compute_layout, TupleLayout};
use crate::mapping::{derive_transform, TransformPlan};
use crate::passes::{resolve_strings, scalarize};
use crate::tree::build_tree;
use ndp_spec::{PrimTy, SpecModule};

/// The comparator operations of the paper's standard set
/// (`≠, ==, >, >=, <, <=, nop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Always pass (predicate disabled).
    Nop,
    Ne,
    Eq,
    Gt,
    Ge,
    Lt,
    Le,
}

impl CmpOp {
    /// All standard operators with their canonical names and register
    /// encodings. `nop` is code 0 so a zero-initialized control register
    /// file lets every tuple pass.
    pub const STANDARD: [(CmpOp, &'static str); 7] = [
        (CmpOp::Nop, "nop"),
        (CmpOp::Ne, "ne"),
        (CmpOp::Eq, "eq"),
        (CmpOp::Gt, "gt"),
        (CmpOp::Ge, "ge"),
        (CmpOp::Lt, "lt"),
        (CmpOp::Le, "le"),
    ];

    /// Canonical textual name (as used in `operators = {...}` sets).
    pub fn name(self) -> &'static str {
        Self::STANDARD.iter().find(|(op, _)| *op == self).map(|(_, n)| n).unwrap()
    }

    /// Parse a canonical name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::STANDARD.iter().find(|(_, n)| *n == name).map(|(op, _)| *op)
    }

    /// Evaluate the comparison on raw field bits, interpreted according to
    /// the field's primitive type. `a` is the tuple element, `b` the
    /// reference value from the control register (both zero-extended into
    /// 64-bit words, exactly like the hardware lanes).
    ///
    /// This is the *semantic definition* shared by the generated hardware
    /// model and the ARM software fallback, so the two can never diverge.
    pub fn eval(self, prim: PrimTy, a: u64, b: u64) -> bool {
        use std::cmp::Ordering;
        let ord = match prim {
            PrimTy::U8 | PrimTy::U16 | PrimTy::U32 | PrimTy::U64 => a.cmp(&b),
            PrimTy::I8 => (a as u8 as i8).cmp(&(b as u8 as i8)),
            PrimTy::I16 => (a as u16 as i16).cmp(&(b as u16 as i16)),
            PrimTy::I32 => (a as u32 as i32).cmp(&(b as u32 as i32)),
            PrimTy::I64 => (a as i64).cmp(&(b as i64)),
            PrimTy::F32 => {
                let (fa, fb) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
                match fa.partial_cmp(&fb) {
                    Some(o) => o,
                    // NaN never satisfies an ordered predicate; `!=` with a
                    // NaN operand is true, which `Ordering::Greater` vs
                    // `Less` cannot express — handle NaN explicitly.
                    None => return matches!(self, CmpOp::Ne | CmpOp::Nop),
                }
            }
            PrimTy::F64 => {
                let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
                match fa.partial_cmp(&fb) {
                    Some(o) => o,
                    None => return matches!(self, CmpOp::Ne | CmpOp::Nop),
                }
            }
        };
        match self {
            CmpOp::Nop => true,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
        }
    }
}

/// Aggregation reductions the generated Aggregation Unit can compute
/// over a selected lane of the *passing* tuples (extension implementing
/// the paper's outlook: "leverage the data-parallelism of the
/// architecture to perform more compute-intensive tasks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Count passing tuples.
    Count,
    /// Wrapping 64-bit sum of the selected lane.
    Sum,
    /// Minimum of the selected lane (type-aware ordering).
    Min,
    /// Maximum of the selected lane (type-aware ordering).
    Max,
}

impl AggOp {
    /// Register encoding (`AGG_OP`); 0 means aggregation disabled.
    pub fn code(self) -> u32 {
        match self {
            AggOp::Count => 1,
            AggOp::Sum => 2,
            AggOp::Min => 3,
            AggOp::Max => 4,
        }
    }

    /// Decode a register value.
    pub fn from_code(code: u32) -> Option<Self> {
        Some(match code {
            1 => AggOp::Count,
            2 => AggOp::Sum,
            3 => AggOp::Min,
            4 => AggOp::Max,
            _ => return None,
        })
    }

    /// Canonical annotation spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Count => "count",
            AggOp::Sum => "sum",
            AggOp::Min => "min",
            AggOp::Max => "max",
        }
    }

    /// Parse an annotation spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "count" => AggOp::Count,
            "sum" => AggOp::Sum,
            "min" => AggOp::Min,
            "max" => AggOp::Max,
            _ => return None,
        })
    }

    /// Neutral accumulator start value (Min/Max orderings are resolved
    /// lazily on the first element, so 0 suffices for all).
    pub fn identity(self) -> u64 {
        0
    }
}

/// One operator available to the generated Compare Unit: either a standard
/// [`CmpOp`] or a user-registered custom operation (the paper's
/// extensibility hook realized as Verilog/VHDL interfacing in Chisel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSpec {
    /// Operator name as written in the annotation.
    pub name: String,
    /// Encoding written into the `FILTER_OP_i` control register.
    pub code: u32,
    /// `Some` for standard operators; `None` for custom ones whose
    /// semantics are supplied at PE-construction time.
    pub op: Option<CmpOp>,
}

/// A fully elaborated processing-element configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PeConfig {
    /// PE name from the annotation.
    pub name: String,
    /// Input tuple layout (what the Tuple Input Buffer parses).
    pub input: TupleLayout,
    /// Output tuple layout (what the Tuple Output Buffer serializes).
    pub output: TupleLayout,
    /// Field moves implementing the Data Transformation Unit.
    pub transform: TransformPlan,
    /// Number of chained filtering units.
    pub stages: u32,
    /// Operator set of every Compare Unit, in encoding order.
    pub operators: Vec<OpSpec>,
    /// Aggregation reductions the PE's Aggregation Unit supports
    /// (empty = no aggregation hardware generated).
    pub aggregates: Vec<AggOp>,
    /// Processing-block granularity in bytes (32 KiB in the paper).
    pub chunk_bytes: u32,
}

impl PeConfig {
    /// How many whole input tuples fit one processing block.
    pub fn tuples_per_chunk(&self) -> u64 {
        u64::from(self.chunk_bytes) / self.input.tuple_bytes().max(1)
    }

    /// Look up an operator encoding by name.
    pub fn op_code(&self, name: &str) -> Option<u32> {
        self.operators.iter().find(|o| o.name == name).map(|o| o.code)
    }

    /// Look up an operator by its register encoding.
    pub fn op_by_code(&self, code: u32) -> Option<&OpSpec> {
        self.operators.iter().find(|o| o.code == code)
    }

    /// The `nop` encoding (always present; 0 by construction).
    pub fn nop_code(&self) -> u32 {
        self.op_code("nop").expect("nop is always in the operator set")
    }

    /// Does this PE include the given aggregation reduction?
    pub fn supports_aggregate(&self, op: AggOp) -> bool {
        self.aggregates.contains(&op)
    }
}

/// Elaborate the parser named `parser_name` from `module`, using only the
/// standard operator set (custom names in the annotation are rejected).
pub fn elaborate(module: &SpecModule, parser_name: &str) -> IrResult<PeConfig> {
    elaborate_with_custom_ops(module, parser_name, &[])
}

/// Elaborate every parser defined in `module`.
pub fn elaborate_all(module: &SpecModule) -> IrResult<Vec<PeConfig>> {
    module.parsers.iter().map(|p| elaborate(module, &p.name)).collect()
}

/// Elaborate with additional user-registered custom operator names
/// (their semantics are bound later, at PE-construction time).
pub fn elaborate_with_custom_ops(
    module: &SpecModule,
    parser_name: &str,
    custom_ops: &[&str],
) -> IrResult<PeConfig> {
    let spec = module
        .find_parser(parser_name)
        .ok_or_else(|| IrError::UnknownParser(parser_name.to_string()))?;

    let input_tree = scalarize(resolve_strings(build_tree(module, &spec.input, &spec.name)?));
    let output_tree = scalarize(resolve_strings(build_tree(module, &spec.output, &spec.name)?));
    let input = compute_layout(&spec.input, &input_tree)?;
    let output = compute_layout(&spec.output, &output_tree)?;
    let transform = derive_transform(&spec.name, &input, &output, &spec.mapping)?;

    let chunk_bytes = spec.chunk_kib * 1024;
    if input.tuple_bytes() > u64::from(chunk_bytes) || output.tuple_bytes() > u64::from(chunk_bytes)
    {
        return Err(IrError::TupleLargerThanChunk {
            parser: spec.name.clone(),
            tuple_bytes: input.tuple_bytes().max(output.tuple_bytes()),
            chunk_bytes: u64::from(chunk_bytes),
        });
    }

    let operators = build_operator_set(&spec.name, spec.operators.as_deref(), custom_ops)?;
    let mut aggregates = Vec::new();
    if let Some(names) = &spec.aggregates {
        for n in names {
            let op = AggOp::from_name(n).ok_or_else(|| IrError::UnknownOperator {
                parser: spec.name.clone(),
                name: format!("{n} (aggregate; expected count, sum, min or max)"),
            })?;
            aggregates.push(op);
        }
    }

    Ok(PeConfig {
        name: spec.name.clone(),
        input,
        output,
        transform,
        stages: spec.stages,
        operators,
        aggregates,
        chunk_bytes,
    })
}

/// Build the operator set: `nop` is always included at code 0; requested
/// operators (or the full standard set by default) follow in a stable
/// encoding order; custom names must appear in `custom_ops`.
fn build_operator_set(
    parser: &str,
    requested: Option<&[String]>,
    custom_ops: &[&str],
) -> IrResult<Vec<OpSpec>> {
    let mut out = vec![OpSpec { name: "nop".into(), code: 0, op: Some(CmpOp::Nop) }];
    let names: Vec<String> = match requested {
        Some(list) => list.to_vec(),
        None => CmpOp::STANDARD
            .iter()
            .filter(|(op, _)| *op != CmpOp::Nop)
            .map(|(_, n)| n.to_string())
            .collect(),
    };
    for name in names {
        if name == "nop" {
            continue; // already present at code 0
        }
        let code = out.len() as u32;
        match CmpOp::from_name(&name) {
            Some(op) => out.push(OpSpec { name, code, op: Some(op) }),
            None if custom_ops.contains(&name.as_str()) => {
                out.push(OpSpec { name, code, op: None });
            }
            None => {
                return Err(IrError::UnknownOperator { parser: parser.into(), name });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_spec::parse;

    const FIG4: &str = "
        /* @autogen define parser Point3DTo2D with
           chunksize = 32, input = Point3D, output = Point2D,
           mapping = { output.x = input.y, output.y = input.z } */
        typedef struct { uint32_t x, y, z; } Point3D;
        typedef struct { uint32_t x, y; } Point2D;
    ";

    #[test]
    fn elaborates_paper_fig4() {
        let m = parse(FIG4).unwrap();
        let cfg = elaborate(&m, "Point3DTo2D").unwrap();
        assert_eq!(cfg.name, "Point3DTo2D");
        assert_eq!(cfg.chunk_bytes, 32 * 1024);
        assert_eq!(cfg.input.tuple_bits, 96);
        assert_eq!(cfg.output.tuple_bits, 64);
        assert_eq!(cfg.stages, 1);
        assert_eq!(cfg.tuples_per_chunk(), 32 * 1024 / 12);
        // Standard set: nop + 6 comparisons.
        assert_eq!(cfg.operators.len(), 7);
        assert_eq!(cfg.nop_code(), 0);
    }

    #[test]
    fn unknown_parser_is_an_error() {
        let m = parse(FIG4).unwrap();
        assert!(matches!(elaborate(&m, "nope"), Err(IrError::UnknownParser(_))));
    }

    #[test]
    fn elaborate_all_returns_each_parser() {
        let m = parse(FIG4).unwrap();
        assert_eq!(elaborate_all(&m).unwrap().len(), 1);
    }

    #[test]
    fn custom_operator_requires_registration() {
        let src = "
            /* @autogen define parser F with input = A, output = A,
               operators = { eq, popcnt_ge } */
            typedef struct { uint32_t x; } A;
        ";
        let m = parse(src).unwrap();
        assert!(matches!(elaborate(&m, "F"), Err(IrError::UnknownOperator { .. })));
        let cfg = elaborate_with_custom_ops(&m, "F", &["popcnt_ge"]).unwrap();
        assert_eq!(cfg.operators.len(), 3); // nop, eq, popcnt_ge
        let custom = cfg.operators.last().unwrap();
        assert_eq!(custom.name, "popcnt_ge");
        assert_eq!(custom.op, None);
        assert_eq!(custom.code, 2);
    }

    #[test]
    fn nop_always_code_zero_even_if_requested_late() {
        let src = "
            /* @autogen define parser F with input = A, output = A,
               operators = { eq, nop, ne } */
            typedef struct { uint32_t x; } A;
        ";
        let m = parse(src).unwrap();
        let cfg = elaborate(&m, "F").unwrap();
        assert_eq!(cfg.op_code("nop"), Some(0));
        assert_eq!(cfg.op_code("eq"), Some(1));
        assert_eq!(cfg.op_code("ne"), Some(2));
    }

    #[test]
    fn tuple_larger_than_chunk_rejected() {
        let src = "
            /* @autogen define parser F with chunksize = 1, input = A, output = A */
            typedef struct { uint8_t big[2048]; } A;
        ";
        let m = parse(src).unwrap();
        assert!(matches!(elaborate(&m, "F"), Err(IrError::TupleLargerThanChunk { .. })));
    }

    // ---- CmpOp semantics ----

    #[test]
    fn unsigned_compare_semantics() {
        use PrimTy::U32;
        assert!(CmpOp::Eq.eval(U32, 5, 5));
        assert!(CmpOp::Ne.eval(U32, 5, 6));
        assert!(CmpOp::Gt.eval(U32, 6, 5));
        assert!(!CmpOp::Gt.eval(U32, 5, 5));
        assert!(CmpOp::Ge.eval(U32, 5, 5));
        assert!(CmpOp::Lt.eval(U32, 4, 5));
        assert!(CmpOp::Le.eval(U32, 5, 5));
        assert!(CmpOp::Nop.eval(U32, 0, u64::MAX));
    }

    #[test]
    fn signed_compare_uses_twos_complement() {
        use PrimTy::I32;
        let minus_one = (-1i32) as u32 as u64;
        assert!(CmpOp::Lt.eval(I32, minus_one, 0));
        assert!(CmpOp::Gt.eval(I32, 0, minus_one));
        // Unsigned interpretation would invert this.
        assert!(CmpOp::Gt.eval(PrimTy::U32, minus_one, 0));
    }

    #[test]
    fn narrow_signed_types_sign_extend_from_their_width() {
        use PrimTy::I8;
        let minus_two = (-2i8) as u8 as u64; // 0xFE, upper bits zero
        assert!(CmpOp::Lt.eval(I8, minus_two, 1));
        assert!(CmpOp::Le.eval(I8, minus_two, (-2i8) as u8 as u64));
    }

    #[test]
    fn float_compare_semantics() {
        use PrimTy::{F32, F64};
        let a = (1.5f32).to_bits() as u64;
        let b = (2.5f32).to_bits() as u64;
        assert!(CmpOp::Lt.eval(F32, a, b));
        assert!(CmpOp::Ne.eval(F32, a, b));
        let x = (9.25f64).to_bits();
        assert!(CmpOp::Eq.eval(F64, x, x));
        // Negative zero equals positive zero (IEEE-754).
        assert!(CmpOp::Eq.eval(F64, (-0.0f64).to_bits(), (0.0f64).to_bits()));
    }

    #[test]
    fn nan_satisfies_only_ne_and_nop() {
        use PrimTy::F32;
        let nan = f32::NAN.to_bits() as u64;
        let one = 1.0f32.to_bits() as u64;
        for op in [CmpOp::Eq, CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le] {
            assert!(!op.eval(F32, nan, one), "{op:?} must fail on NaN");
            assert!(!op.eval(F32, one, nan), "{op:?} must fail on NaN");
        }
        assert!(CmpOp::Ne.eval(F32, nan, one));
        assert!(CmpOp::Ne.eval(F32, nan, nan));
        assert!(CmpOp::Nop.eval(F32, nan, nan));
    }

    #[test]
    fn op_name_round_trip() {
        for (op, name) in CmpOp::STANDARD {
            assert_eq!(CmpOp::from_name(name), Some(op));
            assert_eq!(op.name(), name);
        }
        assert_eq!(CmpOp::from_name("xor"), None);
    }
}
