//! Resolved type trees.
//!
//! The contextual analysis operates on trees whose leaves are primitive
//! types and whose inner nodes are structs or arrays (paper, Sec. IV-B).
//! [`build_tree`] resolves named struct references from the AST into such a
//! tree, rejecting recursive definitions.

use crate::error::{IrError, IrResult};
use ndp_spec::{PrimTy, SpecModule, StructDef, TypeExpr};

/// A node of the resolved type tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeNode {
    /// A primitive scalar leaf.
    Prim(PrimTy),
    /// A struct with named children, in declaration order.
    Struct(Vec<(String, TypeNode)>),
    /// A fixed-length array.
    Array(Box<TypeNode>, usize),
    /// A `@string`-annotated byte array, not yet split into prefix/postfix
    /// (the `resolve_strings` pass removes this variant).
    StrArray {
        /// Prefix length in bytes (1, 2, 4 or 8).
        prefix_bytes: u32,
        /// Total array length in bytes (prefix + postfix).
        total_bytes: usize,
    },
    /// An opaque string postfix produced by `resolve_strings`: carried
    /// through the datapath but never evaluated by predicates.
    Postfix {
        /// Postfix length in bytes.
        bytes: usize,
    },
}

impl TypeNode {
    /// Total packed width of this subtree in bits (the wire format is the
    /// packed little-endian concatenation of all leaves; see crate docs).
    pub fn packed_bits(&self) -> u64 {
        match self {
            TypeNode::Prim(p) => u64::from(p.bits()),
            TypeNode::Struct(fields) => fields.iter().map(|(_, n)| n.packed_bits()).sum(),
            TypeNode::Array(elem, n) => elem.packed_bits() * (*n as u64),
            TypeNode::StrArray { total_bytes, .. } => *total_bytes as u64 * 8,
            TypeNode::Postfix { bytes } => *bytes as u64 * 8,
        }
    }

    /// True if the subtree still contains an [`TypeNode::Array`].
    pub fn contains_array(&self) -> bool {
        match self {
            TypeNode::Prim(_) | TypeNode::StrArray { .. } | TypeNode::Postfix { .. } => false,
            TypeNode::Array(..) => true,
            TypeNode::Struct(fields) => fields.iter().any(|(_, n)| n.contains_array()),
        }
    }

    /// True if the subtree still contains a [`TypeNode::StrArray`].
    pub fn contains_str_array(&self) -> bool {
        match self {
            TypeNode::Prim(_) | TypeNode::Postfix { .. } => false,
            TypeNode::StrArray { .. } => true,
            TypeNode::Array(elem, _) => elem.contains_str_array(),
            TypeNode::Struct(fields) => fields.iter().any(|(_, n)| n.contains_str_array()),
        }
    }
}

/// Resolve the struct named `name` from `module` into a [`TypeNode`] tree.
///
/// Named struct references are inlined; cycles are reported as
/// [`IrError::RecursiveType`].
pub fn build_tree(module: &SpecModule, name: &str, parser: &str) -> IrResult<TypeNode> {
    let def = module
        .find_struct(name)
        .ok_or_else(|| IrError::UnknownStruct { parser: parser.into(), name: name.into() })?;
    let mut stack = vec![name.to_string()];
    build_struct(module, def, parser, &mut stack)
}

fn build_struct(
    module: &SpecModule,
    def: &StructDef,
    parser: &str,
    stack: &mut Vec<String>,
) -> IrResult<TypeNode> {
    let mut fields = Vec::with_capacity(def.fields.len());
    for f in &def.fields {
        let base = match (&f.ty, f.string_prefix) {
            (TypeExpr::Prim(PrimTy::U8), Some(prefix)) => {
                // Validated by the parser: @string is only legal on a 1-D
                // uint8_t array, so dims has exactly one entry.
                let total = f.dims[0];
                if (prefix as usize) >= total {
                    // A prefix consuming the whole array degenerates to a
                    // plain integer field; model it as such.
                    TypeNode::StrArray { prefix_bytes: prefix, total_bytes: total }
                } else {
                    TypeNode::StrArray { prefix_bytes: prefix, total_bytes: total }
                }
            }
            (TypeExpr::Prim(p), None) => wrap_dims(TypeNode::Prim(*p), &f.dims),
            (TypeExpr::Named(inner_name), None) => {
                if stack.contains(inner_name) {
                    let mut path = stack.clone();
                    path.push(inner_name.clone());
                    return Err(IrError::RecursiveType { path });
                }
                let inner = module.find_struct(inner_name).ok_or_else(|| {
                    IrError::UnknownStruct { parser: parser.into(), name: inner_name.clone() }
                })?;
                stack.push(inner_name.clone());
                let node = build_struct(module, inner, parser, stack)?;
                stack.pop();
                wrap_dims(node, &f.dims)
            }
            (TypeExpr::Named(_), Some(_)) | (TypeExpr::Prim(_), Some(_)) => {
                // The parser guarantees @string only attaches to uint8_t
                // arrays; reaching this arm would be a frontend bug.
                unreachable!("@string on non-byte-array survived parsing")
            }
        };
        fields.push((f.name.clone(), base));
    }
    Ok(TypeNode::Struct(fields))
}

/// Apply array dimensions, outermost first: `u32 m[2][3]` becomes
/// `Array(Array(Prim, 3), 2)`.
fn wrap_dims(node: TypeNode, dims: &[usize]) -> TypeNode {
    dims.iter().rev().fold(node, |acc, &n| TypeNode::Array(Box::new(acc), n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_spec::parse;

    fn tree(src: &str, name: &str) -> IrResult<TypeNode> {
        let module = parse(src).unwrap();
        build_tree(&module, name, "test")
    }

    #[test]
    fn flat_struct_builds() {
        let t = tree("typedef struct { uint32_t x, y; } P;", "P").unwrap();
        assert_eq!(
            t,
            TypeNode::Struct(vec![
                ("x".into(), TypeNode::Prim(PrimTy::U32)),
                ("y".into(), TypeNode::Prim(PrimTy::U32)),
            ])
        );
        assert_eq!(t.packed_bits(), 64);
    }

    #[test]
    fn nested_struct_is_inlined() {
        let src = "
            typedef struct { uint32_t x, y; } Inner;
            typedef struct { Inner a; uint64_t id; } Outer;
        ";
        let t = tree(src, "Outer").unwrap();
        match &t {
            TypeNode::Struct(fields) => {
                assert!(matches!(&fields[0].1, TypeNode::Struct(inner) if inner.len() == 2));
                assert_eq!(fields[1].1, TypeNode::Prim(PrimTy::U64));
            }
            other => panic!("expected struct, got {other:?}"),
        }
        assert_eq!(t.packed_bits(), 128);
    }

    #[test]
    fn multi_dim_array_nests_outermost_first() {
        let t = tree("typedef struct { uint16_t m[2][3]; } P;", "P").unwrap();
        let TypeNode::Struct(fields) = &t else { panic!() };
        match &fields[0].1 {
            TypeNode::Array(inner, 2) => {
                assert!(matches!(&**inner, TypeNode::Array(_, 3)));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(t.packed_bits(), 2 * 3 * 16);
        assert!(t.contains_array());
    }

    #[test]
    fn string_array_survives_as_str_array_node() {
        let src = "typedef struct { /* @string(prefix = 4) */ uint8_t s[32]; } P;";
        let t = tree(src, "P").unwrap();
        let TypeNode::Struct(fields) = &t else { panic!() };
        assert_eq!(fields[0].1, TypeNode::StrArray { prefix_bytes: 4, total_bytes: 32 });
        assert!(t.contains_str_array());
        assert_eq!(t.packed_bits(), 256);
    }

    #[test]
    fn unknown_struct_reference_is_an_error() {
        let err = tree("typedef struct { Missing m; } P;", "P").unwrap_err();
        assert!(matches!(err, IrError::UnknownStruct { .. }));
    }

    #[test]
    fn unknown_root_struct_is_an_error() {
        let err = tree("typedef struct { uint8_t b; } P;", "Q").unwrap_err();
        assert!(matches!(err, IrError::UnknownStruct { ref name, .. } if name == "Q"));
    }

    #[test]
    fn array_of_structs_resolves() {
        let src = "
            typedef struct { uint32_t x, y; } Pt;
            typedef struct { Pt pts[4]; } Poly;
        ";
        let t = tree(src, "Poly").unwrap();
        assert_eq!(t.packed_bits(), 4 * 64);
    }

    #[test]
    fn self_recursive_struct_is_rejected() {
        let err = tree("typedef struct { P inner; } P;", "P").unwrap_err();
        assert!(matches!(err, IrError::RecursiveType { .. }));
    }

    #[test]
    fn mutually_recursive_structs_are_rejected() {
        let src = "
            typedef struct { B b; } A;
            typedef struct { A a; } B;
        ";
        let err = tree(src, "B").unwrap_err();
        match err {
            IrError::RecursiveType { path } => assert!(path.len() >= 3),
            other => panic!("expected RecursiveType, got {other:?}"),
        }
    }
}
