//! Errors produced during contextual analysis.

use std::fmt;

/// Result alias for IR-level operations.
pub type IrResult<T> = Result<T, IrError>;

/// Semantic errors discovered while elaborating a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A parser annotation references a struct that was never defined.
    UnknownStruct { parser: String, name: String },
    /// No parser with this name exists in the module.
    UnknownParser(String),
    /// Struct definitions reference each other cyclically.
    RecursiveType { path: Vec<String> },
    /// An output field could not be matched to any input field and no user
    /// mapping was given (the paper's case 3 requires annotations).
    UnmappedOutputField { parser: String, field: String },
    /// A mapping entry references a field path that does not exist.
    UnknownFieldPath { parser: String, path: String, side: &'static str },
    /// A mapping pairs fields of different widths.
    WidthMismatch { parser: String, output: String, input: String, out_bits: u32, in_bits: u32 },
    /// Two mapping entries target the same output field.
    DuplicateMapping { parser: String, field: String },
    /// A mapping entry targets an opaque string postfix.
    MappingTargetsPostfix { parser: String, field: String },
    /// The tuple does not fit the processing block.
    TupleLargerThanChunk { parser: String, tuple_bytes: u64, chunk_bytes: u64 },
    /// An operator name in `operators = {...}` is not a standard operator
    /// and was not registered as a custom operator.
    UnknownOperator { parser: String, name: String },
    /// A struct has no relevant (filterable) field at all.
    NoRelevantFields { strct: String },
    /// The configuration requests a capability the hand-crafted baseline
    /// architecture of [1] does not provide.
    UnsupportedByBaseline { parser: String, reason: String },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownStruct { parser, name } => {
                write!(f, "parser `{parser}` references unknown struct `{name}`")
            }
            IrError::UnknownParser(name) => write!(f, "no parser named `{name}` in module"),
            IrError::RecursiveType { path } => {
                write!(f, "recursive struct definition: {}", path.join(" -> "))
            }
            IrError::UnmappedOutputField { parser, field } => write!(
                f,
                "parser `{parser}`: output field `{field}` has no matching input field; \
                 add a mapping annotation (paper case 3)"
            ),
            IrError::UnknownFieldPath { parser, path, side } => {
                write!(f, "parser `{parser}`: unknown {side} field path `{path}`")
            }
            IrError::WidthMismatch { parser, output, input, out_bits, in_bits } => write!(
                f,
                "parser `{parser}`: mapping `{output}` ({out_bits} bit) = `{input}` \
                 ({in_bits} bit) pairs fields of different widths"
            ),
            IrError::DuplicateMapping { parser, field } => {
                write!(f, "parser `{parser}`: output field `{field}` mapped twice")
            }
            IrError::MappingTargetsPostfix { parser, field } => write!(
                f,
                "parser `{parser}`: `{field}` is an opaque string postfix and cannot be mapped"
            ),
            IrError::TupleLargerThanChunk { parser, tuple_bytes, chunk_bytes } => write!(
                f,
                "parser `{parser}`: tuple of {tuple_bytes} bytes exceeds the {chunk_bytes}-byte \
                 processing block"
            ),
            IrError::UnknownOperator { parser, name } => write!(
                f,
                "parser `{parser}`: `{name}` is neither a standard comparator operator \
                 (ne, eq, gt, ge, lt, le, nop) nor a registered custom operator"
            ),
            IrError::NoRelevantFields { strct } => {
                write!(f, "struct `{strct}` has no filterable field (only string postfixes)")
            }
            IrError::UnsupportedByBaseline { parser, reason } => {
                write!(f, "parser `{parser}`: {reason} is not supported by the [1] baseline")
            }
        }
    }
}

impl std::error::Error for IrError {}
