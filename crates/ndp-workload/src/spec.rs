//! The data-format specification shared by the KV-store and the
//! accelerator generator.

/// Parser name for the paper-table PE.
pub const PAPER_PE: &str = "PaperPe";
/// Parser name for the reference-table PE.
pub const REF_PE: &str = "RefPe";

/// The C-style specification of both evaluation tables, as a database
/// engineer would write it (paper, Fig. 4 syntax). `PaperPe` filters and
/// passes through 80-byte paper records; `RefPe` handles 20-byte
/// reference (edge) records.
pub const PAPER_REF_SPEC: &str = "
/* @autogen define parser PaperPe with
   chunksize = 32, input = Paper, output = Paper */
/* @autogen define parser RefPe with
   chunksize = 32, input = Ref, output = Ref */

typedef struct {
    uint64_t id;        /* publication id (the KV key)           */
    uint32_t year;      /* publication year                       */
    uint32_t venue;     /* journal / conference id                */
    uint32_t n_cits;    /* citation count                         */
    uint32_t n_refs;    /* outgoing reference count               */
    /* @string(prefix = 8) */ uint8_t title[56];
} Paper;

typedef struct {
    uint64_t src;       /* citing paper id (the KV key)           */
    uint64_t dst;       /* cited paper id                         */
    uint32_t year;      /* year the citation was made             */
} Ref;
";

/// Comparator lane indices of the `Paper` layout (id, year, venue,
/// n_cits, n_refs, title.prefix).
pub mod paper_lanes {
    pub const ID: u32 = 0;
    pub const YEAR: u32 = 1;
    pub const VENUE: u32 = 2;
    pub const N_CITS: u32 = 3;
    pub const N_REFS: u32 = 4;
    pub const TITLE_PREFIX: u32 = 5;
}

/// Comparator lane indices of the `Ref` layout.
pub mod ref_lanes {
    pub const SRC: u32 = 0;
    pub const DST: u32 = 1;
    pub const YEAR: u32 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_elaborates() {
        let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
        let paper = ndp_ir::elaborate(&m, PAPER_PE).unwrap();
        let r#ref = ndp_ir::elaborate(&m, REF_PE).unwrap();
        assert_eq!(paper.input.tuple_bytes(), 80);
        assert_eq!(r#ref.input.tuple_bytes(), 20);
        assert_eq!(paper.input.lanes, 6);
        assert_eq!(r#ref.input.lanes, 3);
        assert_eq!(paper.input.lane_bits, 64);
    }

    #[test]
    fn lane_constants_match_elaborated_layouts() {
        let m = ndp_spec::parse(PAPER_REF_SPEC).unwrap();
        let paper = ndp_ir::elaborate(&m, PAPER_PE).unwrap();
        let lane_of = |path: &str| paper.input.field(path).unwrap().lane.unwrap();
        assert_eq!(lane_of("id"), paper_lanes::ID);
        assert_eq!(lane_of("year"), paper_lanes::YEAR);
        assert_eq!(lane_of("venue"), paper_lanes::VENUE);
        assert_eq!(lane_of("n_cits"), paper_lanes::N_CITS);
        assert_eq!(lane_of("n_refs"), paper_lanes::N_REFS);
        assert_eq!(lane_of("title.prefix"), paper_lanes::TITLE_PREFIX);

        let r#ref = ndp_ir::elaborate(&m, REF_PE).unwrap();
        let rlane = |path: &str| r#ref.input.field(path).unwrap().lane.unwrap();
        assert_eq!(rlane("src"), ref_lanes::SRC);
        assert_eq!(rlane("dst"), ref_lanes::DST);
        assert_eq!(rlane("year"), ref_lanes::YEAR);
    }
}
