//! The publication-reference-graph workload of the paper's evaluation.
//!
//! "The nodes of the graph are papers published in journals and
//! conferences. The edges of the graph are references between those
//! papers. Overall, the dataset is comprised of 3,775,161 Paper-Entries
//! and 40,128,663 references between them." (paper, Sec. V)
//!
//! The original dataset is not public, so this crate generates a seeded
//! synthetic graph with the same cardinalities and record shapes
//! (see DESIGN.md for the substitution argument): 80-byte [`Paper`]
//! records (with an 8-byte string-prefixed title) and 20-byte [`Ref`]
//! records, both defined by the same `@autogen` specification
//! ([`PAPER_REF_SPEC`]) that drives PE generation — the whole point of
//! the framework is that one source describes both the data and the
//! hardware.
//!
//! Generators are *streaming* and deterministic: record `i` depends only
//! on `(seed, i)`, so multi-gigabyte datasets are produced without
//! materialization and any sub-range can be regenerated for verification.

pub mod pubgraph;
pub mod rng;
pub mod spec;

pub use pubgraph::{Paper, PaperGen, PubGraphConfig, Ref, RefGen};
pub use rng::SplitMix64;
pub use spec::{PAPER_PE, PAPER_REF_SPEC, REF_PE};
