//! Self-contained deterministic PRNG (SplitMix64).
//!
//! The repository builds in hermetic environments with no crates.io
//! access, so workload generation and the randomized test suites use
//! this small generator instead of an external `rand` dependency.
//! SplitMix64 passes BigCrush, is trivially seedable (every 64-bit seed
//! is valid and decorrelated), and — crucial for the streaming
//! generators — lets record `i` derive its own independent stream from
//! `(seed, stream, i)` without sequential state.

/// SplitMix64 generator (Steele, Lea & Flood; public-domain algorithm).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from any 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Independent stream for record `index` of stream `stream`: the
    /// three inputs are mixed so neighbouring indices are decorrelated.
    pub fn for_record(seed: u64, stream: u64, index: u64) -> Self {
        let z = seed
            ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        Self::new(mix(z))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `0..bound` (`bound > 0`). Uses 128-bit multiply-shift
    /// (Lemire); bias is < 2^-64, irrelevant for workloads and tests.
    pub fn gen_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform in `0..bound` as `u32`.
    pub fn gen_u32(&mut self, bound: u32) -> u32 {
        self.gen_u64(u64::from(bound)) as u32
    }

    /// Uniform in `0..bound` as `usize`.
    pub fn gen_usize(&mut self, bound: usize) -> usize {
        self.gen_u64(bound as u64) as usize
    }

    /// Uniform in `lo..hi` (`hi > lo`).
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.gen_u64(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 random bits.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Fill a byte slice with random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// The SplitMix64 finalizer: a bijective avalanche mix of one word.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567 from the published algorithm.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(r.gen_u64(17) < 17);
            let f = r.f64_unit();
            assert!((0.0..1.0).contains(&f));
            let v = r.gen_range_u64(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn record_streams_are_decorrelated() {
        let a = SplitMix64::for_record(1, 1, 10).next_u64();
        let b = SplitMix64::for_record(1, 1, 11).next_u64();
        let c = SplitMix64::for_record(1, 2, 10).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
