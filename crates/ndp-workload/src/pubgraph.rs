//! Seeded streaming generators for the publication graph.

use crate::rng::SplitMix64;

/// Full-size cardinalities from the paper's evaluation.
pub const FULL_PAPERS: u64 = 3_775_161;
/// Full-size reference (edge) count.
pub const FULL_REFS: u64 = 40_128_663;

/// Packed size of a [`Paper`] record.
pub const PAPER_BYTES: usize = 80;
/// Packed size of a [`Ref`] record.
pub const REF_BYTES: usize = 20;

/// A publication-graph node (matches the `Paper` struct of
/// [`crate::spec::PAPER_REF_SPEC`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Paper {
    pub id: u64,
    pub year: u32,
    pub venue: u32,
    pub n_cits: u32,
    pub n_refs: u32,
    /// 56-byte title; the first 8 bytes are the filterable prefix.
    pub title: [u8; 56],
}

impl Paper {
    /// Encode to the packed wire layout, appending to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.year.to_le_bytes());
        out.extend_from_slice(&self.venue.to_le_bytes());
        out.extend_from_slice(&self.n_cits.to_le_bytes());
        out.extend_from_slice(&self.n_refs.to_le_bytes());
        out.extend_from_slice(&self.title);
    }

    /// Decode from packed bytes.
    pub fn decode(bytes: &[u8]) -> Self {
        assert!(bytes.len() >= PAPER_BYTES);
        let mut title = [0u8; 56];
        title.copy_from_slice(&bytes[24..80]);
        Self {
            id: u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
            year: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            venue: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
            n_cits: u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
            n_refs: u32::from_le_bytes(bytes[20..24].try_into().unwrap()),
            title,
        }
    }
}

/// A reference edge (matches the `Ref` struct of the specification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ref {
    pub src: u64,
    pub dst: u64,
    pub year: u32,
}

impl Ref {
    /// Encode to the packed wire layout, appending to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        out.extend_from_slice(&self.year.to_le_bytes());
    }

    /// Decode from packed bytes.
    pub fn decode(bytes: &[u8]) -> Self {
        assert!(bytes.len() >= REF_BYTES);
        Self {
            src: u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
            dst: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            year: u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
        }
    }
}

/// Dataset scale and seed.
#[derive(Debug, Clone, Copy)]
pub struct PubGraphConfig {
    pub papers: u64,
    pub refs: u64,
    pub seed: u64,
}

impl PubGraphConfig {
    /// The paper's full-size dataset (≈1.10 GB of records).
    pub fn full() -> Self {
        Self { papers: FULL_PAPERS, refs: FULL_REFS, seed: 0x6e4b_5644 }
    }

    /// A dataset scaled by `factor` (e.g. `1.0/64.0` for unit tests),
    /// preserving the papers:refs ratio.
    pub fn scaled(factor: f64) -> Self {
        let full = Self::full();
        Self {
            papers: ((full.papers as f64 * factor) as u64).max(1),
            refs: ((full.refs as f64 * factor) as u64).max(1),
            seed: full.seed,
        }
    }

    /// Total payload bytes of the dataset.
    pub fn total_bytes(&self) -> u64 {
        self.papers * PAPER_BYTES as u64 + self.refs * REF_BYTES as u64
    }
}

/// Deterministic per-index RNG: record `i` depends only on `(seed, i)`.
fn rng_for(seed: u64, stream: u64, index: u64) -> SplitMix64 {
    SplitMix64::for_record(seed, stream, index)
}

/// Streaming paper generator: ids are sequential (1-based), so records
/// come out in key order, ready for sorted bulk loading.
pub struct PaperGen {
    cfg: PubGraphConfig,
    next: u64,
}

impl PaperGen {
    /// Generate all papers of `cfg`.
    pub fn new(cfg: PubGraphConfig) -> Self {
        Self { cfg, next: 0 }
    }

    /// The `i`-th paper (0-based), independent of iteration state.
    pub fn paper_at(cfg: &PubGraphConfig, i: u64) -> Paper {
        let mut rng = rng_for(cfg.seed, 1, i);
        let id = i + 1;
        let year = 1950 + (rng.f64_unit().powi(2) * 71.0) as u32; // skewed to recent
        let venue = rng.gen_u32(5000);
        let n_cits = rng.gen_u32(2000);
        let n_refs = (cfg.refs / cfg.papers.max(1)) as u32 + rng.gen_u32(8);
        let mut title = [0u8; 56];
        // Readable synthetic titles: "paperNNNNNNNN: <random words>".
        let head = format!("p{id:07}: study of topic {:04}", rng.gen_u32(10_000));
        let n = head.len().min(56);
        title[..n].copy_from_slice(&head.as_bytes()[..n]);
        Paper { id, year, venue, n_cits, n_refs, title }
    }
}

impl Iterator for PaperGen {
    type Item = Paper;

    fn next(&mut self) -> Option<Paper> {
        if self.next >= self.cfg.papers {
            return None;
        }
        let p = Self::paper_at(&self.cfg, self.next);
        self.next += 1;
        Some(p)
    }
}

/// Streaming reference generator, ordered by `(src, dst)` — sorted by
/// the composite key for bulk loading. Out-degrees are assigned
/// deterministically; destinations are skewed toward low ids (old,
/// highly-cited papers), giving the power-law flavour of citation graphs.
pub struct RefGen {
    cfg: PubGraphConfig,
    emitted: u64,
    src_index: u64,
    within: u64,
    degree: u64,
}

impl RefGen {
    /// Generate all references of `cfg`.
    pub fn new(cfg: PubGraphConfig) -> Self {
        let mut g = Self { cfg, emitted: 0, src_index: 0, within: 0, degree: 0 };
        g.degree = g.degree_of(0);
        g
    }

    /// Deterministic out-degree of source paper `i`, averaging refs/papers.
    fn degree_of(&self, i: u64) -> u64 {
        if i + 1 >= self.cfg.papers {
            // The last source absorbs the remainder so totals are exact.
            return self.cfg.refs.saturating_sub(self.average() * (self.cfg.papers - 1));
        }
        self.average()
    }

    fn average(&self) -> u64 {
        self.cfg.refs / self.cfg.papers.max(1)
    }
}

impl Iterator for RefGen {
    type Item = Ref;

    fn next(&mut self) -> Option<Ref> {
        if self.emitted >= self.cfg.refs {
            return None;
        }
        while self.within >= self.degree {
            self.src_index += 1;
            if self.src_index >= self.cfg.papers {
                return None;
            }
            self.within = 0;
            self.degree = self.degree_of(self.src_index);
        }
        let mut rng = rng_for(self.cfg.seed, 2, self.src_index * 1_000_003 + self.within);
        let src = self.src_index + 1;
        // Skew destinations toward low ids; sort within a source by
        // generating an increasing sequence.
        let dst_base = (rng.f64_unit().powi(3) * self.cfg.papers as f64) as u64 + 1;
        let dst = dst_base.min(self.cfg.papers);
        let year = 1950 + rng.gen_u32(71);
        self.within += 1;
        self.emitted += 1;
        Some(Ref { src, dst, year })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PubGraphConfig {
        PubGraphConfig { papers: 1000, refs: 10_500, seed: 42 }
    }

    #[test]
    fn full_config_matches_paper_cardinalities() {
        let f = PubGraphConfig::full();
        assert_eq!(f.papers, 3_775_161);
        assert_eq!(f.refs, 40_128_663);
        assert_eq!(f.total_bytes(), 1_104_586_140);
    }

    #[test]
    fn paper_encode_decode_round_trip() {
        let cfg = small();
        for i in [0, 1, 99, 999] {
            let p = PaperGen::paper_at(&cfg, i);
            let mut bytes = Vec::new();
            p.encode_into(&mut bytes);
            assert_eq!(bytes.len(), PAPER_BYTES);
            assert_eq!(Paper::decode(&bytes), p);
        }
    }

    #[test]
    fn ref_encode_decode_round_trip() {
        let r = Ref { src: 17, dst: 3, year: 1999 };
        let mut bytes = Vec::new();
        r.encode_into(&mut bytes);
        assert_eq!(bytes.len(), REF_BYTES);
        assert_eq!(Ref::decode(&bytes), r);
    }

    #[test]
    fn generation_is_deterministic_and_stateless() {
        let cfg = small();
        let a: Vec<Paper> = PaperGen::new(cfg).collect();
        let b: Vec<Paper> = PaperGen::new(cfg).collect();
        assert_eq!(a, b);
        assert_eq!(PaperGen::paper_at(&cfg, 500), a[500]);
    }

    #[test]
    fn papers_come_out_in_key_order() {
        let ids: Vec<u64> = PaperGen::new(small()).map(|p| p.id).collect();
        assert_eq!(ids.len(), 1000);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids[0], 1);
    }

    #[test]
    fn refs_total_is_exact_and_src_sorted() {
        let refs: Vec<Ref> = RefGen::new(small()).collect();
        assert_eq!(refs.len(), 10_500);
        assert!(refs.windows(2).all(|w| w[0].src <= w[1].src));
        // All sources and destinations are valid paper ids.
        assert!(refs.iter().all(|r| (1..=1000).contains(&r.src)));
        assert!(refs.iter().all(|r| (1..=1000).contains(&r.dst)));
    }

    #[test]
    fn scaled_preserves_ratio() {
        let s = PubGraphConfig::scaled(1.0 / 64.0);
        let ratio_full = FULL_REFS as f64 / FULL_PAPERS as f64;
        let ratio_scaled = s.refs as f64 / s.papers as f64;
        assert!((ratio_full - ratio_scaled).abs() < 0.01);
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = PaperGen::paper_at(&PubGraphConfig { seed: 1, ..small() }, 7);
        let b = PaperGen::paper_at(&PubGraphConfig { seed: 2, ..small() }, 7);
        assert_eq!(a.id, b.id, "ids are structural");
        assert_ne!((a.year, a.venue, a.n_cits), (b.year, b.venue, b.n_cits));
    }

    #[test]
    fn years_are_in_plausible_range() {
        for p in PaperGen::new(small()) {
            assert!((1950..=2021).contains(&p.year));
        }
    }

    #[test]
    fn titles_carry_readable_prefix() {
        let p = PaperGen::paper_at(&small(), 3);
        assert!(p.title.starts_with(b"p0000004"));
    }
}
