//! Differential property suite for the planner/engine layer.
//!
//! Contract: a [`PhysicalPlan`] only decides *where* work runs —
//! software ARM walk, hardware PEs, hybrid pushdown split, or N
//! parallel PE job streams — never *what* it computes. Every plan for
//! the same logical op must return byte-identical results, equal to
//!
//! 1. an independent `BTreeMap` model of the table (last write wins,
//!    key order), and
//! 2. the legacy serial single-PE dispatch (`parallel_pes = 0`),
//!
//! across seeded datasets, overwrite churn, and injected fault weather
//! (transient reads, ECC degradation, PE hangs → HW→SW degradation).

use std::collections::BTreeMap;

use cosmos_sim::faults::FaultPlan;
use ndp_ir::AggOp;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, ref_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{PaperGen, PubGraphConfig, RefGen};
use nkv::{Backend, ExecMode, LogicalOp, NkvDb, PlanOutcome, TableConfig};

const TABLE: &str = "papers";

/// The BTreeMap oracle: key → encoded record, last write wins.
type Model = BTreeMap<u64, Vec<u8>>;

/// Build a bulk-loaded papers table (4 PEs, so streams 1..=4 are all
/// legal) plus its model, then overwrite ~10 % of the keys through the
/// serial PUT path so reconciliation has real work to do.
fn seeded_db(seed: u64, n_records: u64) -> (NkvDb, Model, PubGraphConfig) {
    let module = ndp_spec::parse(PAPER_REF_SPEC).expect("reference spec parses");
    let pe = ndp_ir::elaborate(&module, PAPER_PE).expect("paper PE elaborates");
    let mut db = NkvDb::default_db();
    let mut cfg = TableConfig::new(pe);
    cfg.n_pes = 4;
    db.create_table(TABLE, cfg).expect("table");

    let mut wl = PubGraphConfig::scaled(1.0 / 4096.0);
    wl.papers = n_records;
    let mut model = Model::new();
    let records = (0..wl.papers).map(|i| {
        let mut rec = Vec::with_capacity(80);
        PaperGen::paper_at(&wl, i).encode_into(&mut rec);
        rec
    });
    db.bulk_load(TABLE, records.clone()).expect("bulk load");
    for rec in records {
        model.insert(u64::from_le_bytes(rec[..8].try_into().unwrap()), rec);
    }

    // Overwrites: bump n_cits on every (seed+10)-th paper. The same
    // mutation lands in the model, so both stay in lockstep.
    for i in (seed % 7..wl.papers).step_by(seed as usize + 10) {
        let mut p = PaperGen::paper_at(&wl, i);
        p.n_cits = p.n_cits.wrapping_add(1_000);
        let mut rec = Vec::with_capacity(80);
        p.encode_into(&mut rec);
        model.insert(p.id, rec.clone());
        db.put(TABLE, rec).expect("put");
    }
    (db, model, wl)
}

fn lane_val(rec: &[u8], lane: u32) -> u64 {
    let u32_at = |off: usize| u64::from(u32::from_le_bytes(rec[off..off + 4].try_into().unwrap()));
    match lane {
        l if l == paper_lanes::ID => u64::from_le_bytes(rec[..8].try_into().unwrap()),
        l if l == paper_lanes::YEAR => u32_at(8),
        l if l == paper_lanes::VENUE => u32_at(12),
        l if l == paper_lanes::N_CITS => u32_at(16),
        l if l == paper_lanes::N_REFS => u32_at(20),
        _ => panic!("model does not know lane {lane}"),
    }
}

fn passes(rec: &[u8], rules: &[FilterRule]) -> bool {
    rules.iter().all(|r| {
        let v = lane_val(rec, r.lane);
        match r.op_code {
            1 => v != r.value,
            2 => v == r.value,
            4 => v >= r.value,
            5 => v < r.value,
            other => panic!("model does not know op code {other}"),
        }
    })
}

/// Concatenated matching records in key order — what a scan must return
/// (after key-sorting: the device emits memtable records and block
/// records in scan order, not key order).
fn model_scan(model: &Model, rules: &[FilterRule]) -> (Vec<u8>, u64) {
    let mut out = Vec::new();
    let mut count = 0;
    for rec in model.values() {
        if passes(rec, rules) {
            out.extend_from_slice(rec);
            count += 1;
        }
    }
    (out, count)
}

/// Key-sort a scan's raw output so it can be compared to the BTreeMap
/// model. Raw (unsorted) bytes are still compared *across plans*, which
/// pins the deterministic merge order itself.
fn key_sorted(records: &[u8]) -> Vec<u8> {
    let mut recs: Vec<&[u8]> = records.chunks_exact(80).collect();
    assert_eq!(recs.len() * 80, records.len(), "whole records only");
    recs.sort_by_key(|r| u64::from_le_bytes(r[..8].try_into().unwrap()));
    recs.concat()
}

/// Run one rule chain through every plan the table supports and demand
/// byte-identical results everywhere. `hw_legal` is false for chains
/// longer than the PE's stage count (hardware rejects those; hybrid
/// splits them).
fn check_scan_plans(db: &mut NkvDb, model: &Model, rules: &[FilterRule], hw_legal: bool) {
    let (want, want_count) = model_scan(model, rules);

    let sw = db.scan(TABLE, rules, ExecMode::Software).expect("software scan");
    assert_eq!(key_sorted(&sw.records), want, "software scan vs model");
    assert_eq!(sw.count, want_count);

    let op = LogicalOp::Scan { rules: rules.to_vec() };
    match db.execute(TABLE, &op, Backend::Hybrid).expect("hybrid scan") {
        PlanOutcome::Records { records, count, .. } => {
            assert_eq!(records, sw.records, "hybrid scan vs software, raw merge order");
            assert_eq!(count, want_count);
        }
        other => panic!("scan must produce records, got {other:?}"),
    }

    if !hw_legal {
        assert!(db.scan(TABLE, rules, ExecMode::Hardware).is_err(), "hardware must reject");
        return;
    }
    // Legacy serial dispatch first, then every parallel stream count.
    for streams in [0usize, 1, 2, 3, 4] {
        db.set_parallel_pes(TABLE, streams).expect("4 PEs configured");
        let hw = db.scan(TABLE, rules, ExecMode::Hardware).expect("hardware scan");
        assert_eq!(hw.records, sw.records, "hardware ({streams} streams) vs software, raw order");
        assert_eq!(hw.count, want_count, "{streams} streams");
        let stats = db.parallel_scan_stats(TABLE).expect("table exists");
        match streams {
            0 => {} // serial dispatch leaves whatever ran before; not asserted
            n => {
                let s = stats.expect("parallel dispatch records stats");
                assert_eq!(s.workers, n);
                assert_eq!(s.blocks_per_worker.len(), n);
            }
        }
    }
    db.set_parallel_pes(TABLE, 0).expect("reset");
}

fn year_rule(value: u64) -> FilterRule {
    FilterRule { lane: paper_lanes::YEAR, op_code: 4, value }
}

#[test]
fn every_plan_matches_the_model_on_clean_hardware() {
    for seed in [0u64, 3] {
        let (mut db, model, _) = seeded_db(seed, 9_000 + seed * 2_000);
        check_scan_plans(&mut db, &model, &[], true);
        check_scan_plans(&mut db, &model, &[year_rule(2010)], true);
        check_scan_plans(
            &mut db,
            &model,
            &[FilterRule { lane: paper_lanes::ID, op_code: 5, value: 500_000 }],
            true,
        );
        // Two rules exceed the paper-PE's single filtering stage:
        // hardware rejects, hybrid pushes one and post-filters one.
        check_scan_plans(
            &mut db,
            &model,
            &[year_rule(2000), FilterRule { lane: paper_lanes::VENUE, op_code: 1, value: 3 }],
            false,
        );
    }
}

#[test]
fn every_plan_matches_the_model_under_fault_weather() {
    for (seed, plan) in [
        (1u64, FaultPlan { seed: 11, transient_read_p: 0.01, ..FaultPlan::default() }),
        // Mild ECC degradation + occasional PE hangs. The sweep runs
        // many scans back to back, so the correctable rate must stay
        // low enough that pages survive until the read-repair below.
        (2, FaultPlan { seed: 12, correctable_p: 0.04, pe_hang_p: 0.10, ..FaultPlan::default() }),
        // Every PE hangs: the watchdog retires them and the whole scan
        // degrades to the ARM — results must still be identical.
        (3, FaultPlan { seed: 13, pe_hang_p: 1.0, ..FaultPlan::default() }),
    ] {
        let (mut db, model, _) = seeded_db(seed, 8_000);
        db.platform_mut().install_faults(&plan);
        check_scan_plans(&mut db, &model, &[year_rule(2005)], true);
        // Heal and re-check: the healthy device agrees with the model
        // it agreed with while degraded.
        db.platform_mut().clear_faults();
        db.read_repair(1).expect("relocate degraded pages");
        db.reset_pes(TABLE).expect("reset PEs");
        check_scan_plans(&mut db, &model, &[year_rule(2005)], true);
    }
}

#[test]
fn gets_match_the_model_on_every_backend() {
    let (mut db, model, wl) = seeded_db(4, 7_000);
    let mut keys: Vec<u64> =
        (0..8).map(|i| PaperGen::paper_at(&wl, i * (wl.papers / 8)).id).collect();
    keys.push(u64::MAX); // guaranteed miss
    for key in keys {
        let want = model.get(&key).cloned();
        let (sw, _) = db.get(TABLE, key, ExecMode::Software).expect("sw get");
        let (hw, _) = db.get(TABLE, key, ExecMode::Hardware).expect("hw get");
        assert_eq!(sw, want, "software GET {key} vs model");
        assert_eq!(hw, want, "hardware GET {key} vs model");
        for backend in [Backend::Software, Backend::Hardware, Backend::Hybrid] {
            match db.execute(TABLE, &LogicalOp::Get { key }, backend).expect("planned get") {
                PlanOutcome::Point { record, .. } => {
                    assert_eq!(record, want, "planned GET {key} on {backend:?}")
                }
                other => panic!("GET must produce a point outcome, got {other:?}"),
            }
        }
    }
}

#[test]
fn range_scan_plans_match_the_model() {
    let (mut db, model, wl) = seeded_db(5, 7_000);
    let lo = PaperGen::paper_at(&wl, wl.papers / 4).id;
    let hi = PaperGen::paper_at(&wl, 3 * wl.papers / 4).id;
    let want: Vec<u8> = model.range(lo..hi).flat_map(|(_, rec)| rec.iter().copied()).collect();
    // The paper-PE has one stage, so the 2-rule range chain runs as a
    // software plan or a hybrid split — not pure hardware.
    let op = LogicalOp::RangeScan { lo, hi };
    for backend in [Backend::Software, Backend::Hybrid] {
        match db.execute(TABLE, &op, backend).expect("range scan") {
            PlanOutcome::Records { records, .. } => {
                assert_eq!(key_sorted(&records), want, "range scan on {backend:?} vs model")
            }
            other => panic!("range scan must produce records, got {other:?}"),
        }
    }
    assert!(db.execute(TABLE, &op, Backend::Hardware).is_err(), "2 rules > 1 stage");
}

#[test]
fn aggregate_plans_match_the_model_and_each_other() {
    // The paper tables' PEs carry no aggregate units; build the
    // aggregate-capable ref parser (count/sum/min/max) like the A3
    // ablation does.
    let module = ndp_spec::parse(
        "/* @autogen define parser RefAgg with chunksize = 32,
            input = Ref, output = Ref, aggregate = { count, sum, min, max } */
         typedef struct { uint64_t src; uint64_t dst; uint32_t year; } Ref;",
    )
    .expect("aggregate spec parses");
    let pe = ndp_ir::elaborate(&module, "RefAgg").expect("RefAgg elaborates");
    let mut db = NkvDb::default_db();
    let mut cfg = TableConfig::new(pe);
    cfg.n_pes = 4;
    cfg.unique_keys = false;
    db.create_table("refs", cfg).expect("refs table");

    let mut wl = PubGraphConfig::scaled(1.0 / 4096.0);
    wl.refs = 15_000;
    let rows: Vec<Vec<u8>> = RefGen::new(wl)
        .take(wl.refs as usize)
        .map(|r| {
            let mut rec = Vec::with_capacity(20);
            r.encode_into(&mut rec);
            rec
        })
        .collect();
    db.bulk_load("refs", rows.iter().cloned()).expect("bulk load");

    let rules = [FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 2000 }];
    let year_of = |rec: &Vec<u8>| u64::from(u32::from_le_bytes(rec[16..20].try_into().unwrap()));
    let matched: Vec<u64> = rows.iter().filter(|r| year_of(r) >= 2000).map(year_of).collect();
    assert!(!matched.is_empty(), "the dataset must exercise the reduction");

    for (agg, lane, want) in [
        (AggOp::Count, ref_lanes::YEAR, matched.len() as u64),
        (AggOp::Sum, ref_lanes::YEAR, matched.iter().fold(0u64, |a, v| a.wrapping_add(*v))),
        (AggOp::Min, ref_lanes::YEAR, *matched.iter().min().unwrap()),
        (AggOp::Max, ref_lanes::YEAR, *matched.iter().max().unwrap()),
    ] {
        let (sw, sw_any, _) =
            db.scan_aggregate("refs", &rules, agg, lane, ExecMode::Software).expect("sw agg");
        let (hw, hw_any, _) =
            db.scan_aggregate("refs", &rules, agg, lane, ExecMode::Hardware).expect("hw agg");
        assert_eq!(sw, want, "software {agg:?} vs model");
        assert_eq!(hw, want, "hardware {agg:?} vs model");
        assert!(sw_any && hw_any);
        let op = LogicalOp::ScanAggregate { rules: rules.to_vec(), agg, lane };
        match db.execute("refs", &op, Backend::Hardware).expect("planned agg") {
            PlanOutcome::Aggregate { value, any, .. } => {
                assert_eq!(value, want, "planned {agg:?} vs model");
                assert!(any);
            }
            other => panic!("aggregate must produce an aggregate outcome, got {other:?}"),
        }
    }
}
