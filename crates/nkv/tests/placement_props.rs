//! Property tests for physical page placement (`nkv::placement`).
//!
//! The paper's placement rules (Sec. III-B) hold for *every* geometry
//! and allocation sequence, not just the default one, so this suite
//! drives seeded random geometries and random (level, block-size)
//! sequences and asserts the three invariants the executor relies on:
//!
//! 1. consecutive blocks of one level class land on distinct channels
//!    (parallel scans),
//! 2. the pages of one block stripe across the LUNs of a *single*
//!    channel (overlapped tR within a block),
//! 3. hot (C0/C1) and cold (C2+) level classes never share a LUN
//!    partition (compaction cannot park the hot path),
//!
//! plus the bookkeeping ground truth that no physical page is ever
//! handed out twice.

use cosmos_sim::FlashConfig;
use ndp_workload::SplitMix64;
use nkv::placement::PageAllocator;
use std::collections::HashSet;

fn geometry(rng: &mut SplitMix64) -> FlashConfig {
    FlashConfig {
        channels: 1 + rng.gen_u64(8) as u16,
        luns_per_channel: 1 + rng.gen_u64(8) as u16,
        pages_per_lun: 16 + rng.gen_u64(48) as u32,
        ..FlashConfig::default()
    }
}

#[test]
fn blocks_stripe_one_channel_and_rotate_channels() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::for_record(seed, 0, 0);
        let cfg = geometry(&mut rng);
        let mut alloc = PageAllocator::new(&cfg);
        let mut prev_channel: [Option<u16>; 2] = [None, None];
        // Shadow per-LUN fill, to know when every channel could still
        // host a block (only then is rotation guaranteed — near
        // exhaustion the allocator rightly falls back to any channel
        // with space).
        let mut used = vec![0u32; usize::from(cfg.channels) * usize::from(cfg.luns_per_channel)];
        for step in 0..96 {
            let level = rng.gen_u64(4) as usize;
            let class = usize::from(level > 1);
            let n = 1 + rng.gen_u64(8) as usize;
            let Some(pages) = alloc.alloc_block(level, n) else { break };
            assert_eq!(pages.len(), n, "seed {seed} step {step}");

            // (2) one channel per block, pages striped over its LUNs.
            let channel = pages[0].channel;
            assert!(
                pages.iter().all(|p| p.channel == channel),
                "seed {seed} step {step}: block spans channels: {pages:?}"
            );
            // Hot levels stripe the lower half of the channel's LUNs,
            // cold levels the (possibly larger) upper half; a single
            // LUN cannot be partitioned.
            let half = (cfg.luns_per_channel / 2).max(1);
            let class_luns = u64::from(if class == 1 && cfg.luns_per_channel >= 2 {
                cfg.luns_per_channel - half
            } else {
                half
            });
            let distinct: HashSet<u16> = pages.iter().map(|p| p.lun).collect();
            assert_eq!(
                distinct.len() as u64,
                (n as u64).min(class_luns),
                "seed {seed} step {step}: pages must stripe the class's LUNs: {pages:?}"
            );

            // (1) consecutive blocks of a class rotate channels while
            // every channel could still host the block (with one
            // channel there is nothing to rotate; once a partition LUN
            // fills, the allocator rightly falls back across channels).
            let lun_lo = if class == 1 && cfg.luns_per_channel >= 2 { half } else { 0 };
            let roomy = (0..cfg.channels).all(|c| {
                (lun_lo..lun_lo + class_luns as u16).all(|l| {
                    let slot = usize::from(c) * usize::from(cfg.luns_per_channel) + usize::from(l);
                    used[slot] + n as u32 <= cfg.pages_per_lun
                })
            });
            if cfg.channels > 1 && roomy {
                if let Some(prev) = prev_channel[class] {
                    assert_ne!(
                        prev, channel,
                        "seed {seed} step {step}: consecutive class-{class} blocks share \
                         channel {channel}"
                    );
                }
            }
            prev_channel[class] = Some(channel);
            for p in &pages {
                used[usize::from(p.channel) * usize::from(cfg.luns_per_channel)
                    + usize::from(p.lun)] += 1;
            }
        }
    }
}

#[test]
fn hot_and_cold_classes_never_share_a_lun_partition() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::for_record(seed, 1, 0);
        let cfg = geometry(&mut rng);
        if cfg.luns_per_channel < 2 {
            continue; // a single LUN cannot be partitioned
        }
        let mut alloc = PageAllocator::new(&cfg);
        let mut hot_luns: HashSet<u16> = HashSet::new();
        let mut cold_luns: HashSet<u16> = HashSet::new();
        loop {
            let level = rng.gen_u64(6) as usize;
            let n = 1 + rng.gen_u64(6) as usize;
            let Some(pages) = alloc.alloc_block(level, n) else { break };
            let luns = pages.iter().map(|p| p.lun);
            if level > 1 {
                cold_luns.extend(luns);
            } else {
                hot_luns.extend(luns);
            }
        }
        assert!(!hot_luns.is_empty() && !cold_luns.is_empty(), "seed {seed}: degenerate run");
        assert!(
            hot_luns.is_disjoint(&cold_luns),
            "seed {seed}: hot {hot_luns:?} and cold {cold_luns:?} share LUNs"
        );
    }
}

#[test]
fn no_page_is_ever_allocated_twice() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::for_record(seed, 2, 0);
        let cfg = geometry(&mut rng);
        let mut alloc = PageAllocator::new(&cfg);
        let mut seen = HashSet::new();
        let mut exhausted = [false; 2];
        while !(exhausted[0] && exhausted[1]) {
            let level = rng.gen_u64(6) as usize;
            let n = 1 + rng.gen_u64(6) as usize;
            match alloc.alloc_block(level, n) {
                Some(pages) => {
                    for p in pages {
                        assert!(
                            p.channel < cfg.channels
                                && p.lun < cfg.luns_per_channel
                                && p.page < cfg.pages_per_lun,
                            "seed {seed}: out-of-geometry page {p:?}"
                        );
                        assert!(seen.insert(p), "seed {seed}: page {p:?} allocated twice");
                    }
                }
                None => exhausted[usize::from(level > 1)] = true,
            }
        }
        assert!(!seen.is_empty(), "seed {seed}: nothing allocated");
    }
}
