//! Determinism and correctness tests for the NVMe queue engine
//! (`nkv::queue`).
//!
//! Three contracts:
//!
//! 1. a queued run is a pure function of (database state, scripts,
//!    config): identical inputs reproduce identical completion orders,
//!    timestamps, payloads and queue counters;
//! 2. a single client at depth 1 degenerates to the serial path —
//!    per-command device execution times equal the serial API's
//!    `SimReport` times and payloads match byte-for-byte (the queue
//!    envelope only adds doorbell/SQE/CQE accounting around them);
//! 3. commands of different clients genuinely overlap: completions may
//!    come back out of submission order when a short GET slips past a
//!    long streaming SCAN.
//!
//! The `#[ignore]`d campaign widens contract 1 over seeded random
//! script sets; `scripts/check.sh` opts in via
//! `CHECK_SLOW=1` → `cargo test -q -- --include-ignored`.

use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{PaperGen, PubGraphConfig, SplitMix64};
use nkv::{ClientScript, ExecMode, NkvDb, Priority, QueueRunConfig, QueuedOp, TableConfig};

const TABLE: &str = "papers";
/// ~1 MB of records → a whole-table SCAN streams ~30 blocks (several
/// milliseconds) while a point GET touches one block (~1 ms), so the
/// overtaking test has real headroom.
const N_RECORDS: u64 = 12_000;

/// A small bulk-loaded device, identical on every call.
fn make_db() -> (NkvDb, PubGraphConfig) {
    let module = ndp_spec::parse(PAPER_REF_SPEC).expect("reference spec parses");
    let pe = ndp_ir::elaborate(&module, PAPER_PE).expect("paper PE elaborates");
    let mut db = NkvDb::default_db();
    db.create_table(TABLE, TableConfig::new(pe)).expect("table");
    let mut cfg = PubGraphConfig::scaled(1.0 / 4096.0);
    cfg.papers = N_RECORDS;
    let records = (0..cfg.papers).map(|i| {
        let mut rec = Vec::with_capacity(80);
        PaperGen::paper_at(&cfg, i).encode_into(&mut rec);
        rec
    });
    db.bulk_load(TABLE, records).expect("bulk load");
    (db, cfg)
}

/// Seeded mixed GET/PUT/SCAN script.
fn script(cfg: &PubGraphConfig, seed: u64, client: u32, ops: u32) -> ClientScript {
    let mut rng = SplitMix64::for_record(seed, u64::from(client), 0);
    let mut s = ClientScript::default();
    for _ in 0..ops {
        let roll = rng.gen_u32(10);
        let idx = rng.gen_u64(cfg.papers);
        s.ops.push(if roll < 8 {
            QueuedOp::Get { key: PaperGen::paper_at(cfg, idx).id }
        } else if roll < 9 {
            let mut rec = Vec::with_capacity(80);
            PaperGen::paper_at(cfg, idx).encode_into(&mut rec);
            QueuedOp::Put { record: rec }
        } else {
            QueuedOp::Scan {
                rules: vec![ndp_pe::oracle::FilterRule {
                    lane: paper_lanes::YEAR,
                    op_code: 4,
                    value: 2010,
                }],
            }
        });
    }
    s
}

#[test]
fn same_seed_same_database_same_run() {
    let run = || {
        let (mut db, cfg) = make_db();
        let scripts: Vec<ClientScript> = (0..4).map(|c| script(&cfg, 99, c, 12)).collect();
        db.run_queued(TABLE, &scripts, &QueueRunConfig { depth: 3, ..Default::default() })
            .expect("queued run")
    };
    let a = run();
    let b = run();
    // Whole-report equality: completion order, every timestamp, every
    // payload byte, the latency histogram and the queue counters.
    assert_eq!(a, b);
    assert_eq!(a.ops(), 4 * 12);
    assert_eq!(a.queue.submitted, a.queue.completed);
    assert_eq!(a.queue.submitted, a.ops());
}

#[test]
fn depth_one_single_client_equals_the_serial_path() {
    let (mut serial_db, cfg) = make_db();
    let (mut queued_db, _) = make_db();

    let keys: Vec<u64> =
        (0..10).map(|i| PaperGen::paper_at(&cfg, i * (cfg.papers / 10)).id).collect();

    // Serial reference: one GET at a time through the public API.
    let mut serial: Vec<(Option<Vec<u8>>, u64)> = Vec::new();
    for &k in &keys {
        let (rec, report) = serial_db.get(TABLE, k, ExecMode::Hardware).expect("serial GET");
        serial.push((rec, report.sim_ns));
    }

    // Queued: the same keys as one client's script at depth 1.
    let scripts = vec![ClientScript {
        ops: keys.iter().map(|&key| QueuedOp::Get { key }).collect(),
        ..Default::default()
    }];
    let report = queued_db
        .run_queued(TABLE, &scripts, &QueueRunConfig { depth: 1, ..Default::default() })
        .expect("queued run");

    assert_eq!(report.ops() as usize, keys.len());
    // Depth 1 completes strictly in submission order.
    let order: Vec<u32> = report.completions.iter().map(|c| c.seq).collect();
    assert_eq!(order, (0..keys.len() as u32).collect::<Vec<_>>());
    for (c, (rec, sim_ns)) in report.completions.iter().zip(&serial) {
        assert_eq!(
            c.exec_ns, *sim_ns,
            "device-side execution time of command {} must equal the serial path",
            c.seq
        );
        let expect = rec.clone().unwrap_or_default();
        assert_eq!(c.payload, expect, "payload of command {} drifted", c.seq);
    }
}

#[test]
fn memtable_puts_overtake_a_streaming_scan() {
    let (mut db, cfg) = make_db();
    // Client 0 issues one whole-table SCAN, which saturates every flash
    // channel for several milliseconds (a GET issued meanwhile rightly
    // queues behind its flash reservations). Client 1 issues PUTs that
    // the memtable absorbs without touching flash — each one both
    // submits *after* the SCAN and completes *before* it: the
    // out-of-order witness on genuinely disjoint resources.
    let mut rec = Vec::with_capacity(80);
    PaperGen::paper_at(&cfg, 3).encode_into(&mut rec);
    let scripts = vec![
        ClientScript {
            ops: vec![QueuedOp::Scan {
                rules: vec![ndp_pe::oracle::FilterRule {
                    lane: paper_lanes::YEAR,
                    op_code: 4,
                    value: 0,
                }],
            }],
            ..Default::default()
        },
        ClientScript {
            ops: (0..6).map(|_| QueuedOp::Put { record: rec.clone() }).collect(),
            ..Default::default()
        },
    ];
    let report = db
        .run_queued(TABLE, &scripts, &QueueRunConfig { depth: 1, ..Default::default() })
        .expect("queued run");
    let scan = report.completions.iter().find(|c| c.client == 0).expect("scan completed");
    let overtakers = report
        .completions
        .iter()
        .filter(|c| {
            c.client == 1 && c.submit_ns > scan.submit_ns && c.complete_ns < scan.complete_ns
        })
        .count();
    assert!(
        overtakers >= 4,
        "later-submitted PUTs should complete before the SCAN; completion order: {:?}",
        report.completion_order()
    );
    // The merged completion stream is ordered by completion time.
    let times: Vec<u64> = report.completions.iter().map(|c| c.complete_ns).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "completions must be time-sorted");
}

/// Wide determinism campaign: many seeds, client counts and depths.
/// Slow (builds two devices per case) — opted into by
/// `CHECK_SLOW=1 scripts/check.sh` via `--include-ignored`.
#[test]
#[ignore = "slow determinism campaign; run with --include-ignored"]
fn determinism_campaign_across_seeds() {
    for seed in 0..6u64 {
        let clients = 1 + (seed % 4) as u32;
        let depth = 1 + (seed % 3) as u32;
        let run = || {
            let (mut db, cfg) = make_db();
            let scripts: Vec<ClientScript> =
                (0..clients).map(|c| script(&cfg, seed, c, 10)).collect();
            db.run_queued(TABLE, &scripts, &QueueRunConfig { depth, ..Default::default() })
                .expect("queued run")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seed {seed}: queued runs must be reproducible");
        assert_eq!(a.ops(), u64::from(clients) * 10, "seed {seed}");
        assert_eq!(a.queue.submitted, a.ops(), "seed {seed}");
        assert_eq!(a.queue.completed, a.ops(), "seed {seed}");
        // Submit times per client never decrease (closed-loop windows).
        for c in 0..clients {
            let submits: Vec<u64> =
                a.completions.iter().filter(|r| r.client == c).map(|r| r.submit_ns).collect();
            let mut sorted = submits.clone();
            sorted.sort_unstable();
            assert_eq!(submits.len() as u64, 10, "seed {seed} client {c}");
            let _ = sorted;
        }
    }
}

/// Contract 4 (batched invocation): folding adjacent queued GETs into
/// key-list batches is a pure scheduling transform. For every batch
/// size, against the batch-1 run of identical scripts on an identical
/// device:
///
/// - per-(client, seq) payloads are byte-identical;
/// - batch assembly preserves per-client order: the members of each
///   folded batch (records sharing a client and submit time) are
///   contiguous seqs whose CQEs post in seq order, so their completion
///   timestamps are monotone;
/// - the completion stream stays time-sorted;
/// - the op count and queue submitted/completed counters are unchanged,
///   while each batch of n saves `2(n-1)` doorbell MMIOs.
///
/// Completion times are *not* globally seq-monotone per client — with
/// depth 8 a cheap GET legitimately overtakes an in-flight SCAN on the
/// legacy path too — so the ordering contract is scoped to batches.
#[test]
fn batching_preserves_per_client_order_and_payloads() {
    let run = |batch: u32| {
        let (mut db, cfg) = make_db();
        // GET-heavy scripts with occasional PUT/SCAN fold-breakers.
        let scripts: Vec<ClientScript> = (0..3).map(|c| script(&cfg, 23, c, 16)).collect();
        db.run_queued(TABLE, &scripts, &QueueRunConfig { depth: 8, batch, ..Default::default() })
            .expect("queued run")
    };
    let base = run(1);
    assert_eq!(base.queue.coalesced_doorbells, 0, "batch 1 must be the legacy path");
    for batch in [2u32, 4, 8, 16] {
        let b = run(batch);
        assert_eq!(b.ops(), base.ops(), "batch {batch}");
        assert_eq!(b.queue.submitted, base.queue.submitted, "batch {batch}");
        assert_eq!(b.queue.completed, base.queue.completed, "batch {batch}");

        let key = |r: &nkv::CommandRecord| (r.client, r.seq);
        let mut base_sorted: Vec<_> =
            base.completions.iter().map(|r| (key(r), r.payload.clone())).collect();
        let mut b_sorted: Vec<_> =
            b.completions.iter().map(|r| (key(r), r.payload.clone())).collect();
        base_sorted.sort();
        b_sorted.sort();
        assert_eq!(b_sorted, base_sorted, "batch {batch}: payloads diverged from batch 1");

        // Group the run's records into batches by (client, submit_ns,
        // fetch_ns): a fold shares one submit and one SQE-burst fetch,
        // while separate commands — even ones admitted on the same
        // nanosecond — serialize through the NVMe link and land on
        // distinct fetch times.
        let mut groups: std::collections::BTreeMap<(u32, u64, u64), Vec<&nkv::CommandRecord>> =
            std::collections::BTreeMap::new();
        for r in &b.completions {
            groups.entry((r.client, r.submit_ns, r.fetch_ns)).or_default().push(r);
        }
        let mut folded = 0usize;
        for ((client, _, _), mut members) in groups {
            members.sort_by_key(|r| r.seq);
            if members.len() < 2 {
                continue;
            }
            folded += 1;
            assert!(
                members.len() <= batch as usize,
                "batch {batch} client {client}: fold exceeded the configured width"
            );
            assert!(
                members.windows(2).all(|w| w[1].seq == w[0].seq + 1),
                "batch {batch} client {client}: a fold must take contiguous seqs"
            );
            assert!(
                members.windows(2).all(|w| w[0].complete_ns <= w[1].complete_ns),
                "batch {batch} client {client}: CQEs within a batch post in seq order"
            );
            assert!(
                members.iter().all(|r| r.kind == nkv::OpKind::Get),
                "batch {batch} client {client}: only GETs fold"
            );
        }
        assert!(folded > 0, "batch {batch}: GET-heavy scripts must actually fold");

        // The merged stream stays time-sorted.
        let times: Vec<u64> = b.completions.iter().map(|r| r.complete_ns).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "batch {batch}");

        assert!(b.queue.coalesced_doorbells > 0, "batch {batch}: folding must coalesce doorbells");
    }
}

/// Batched runs are as reproducible as unbatched ones: same seed, same
/// database, same whole-report bytes.
#[test]
fn batched_runs_are_deterministic() {
    let run = || {
        let (mut db, cfg) = make_db();
        let scripts: Vec<ClientScript> = (0..2).map(|c| script(&cfg, 7, c, 12)).collect();
        db.run_queued(TABLE, &scripts, &QueueRunConfig { depth: 8, batch: 8, ..Default::default() })
            .expect("queued run")
    };
    assert_eq!(run(), run());
}

/// Regression pin for the fold's bounds handling (the batched-GET
/// audit): the fold walks `scripts[client].ops[seq + 1..]` guided by
/// heap entries, so every degenerate shape — a batch wider than the
/// depth window, wider than the script itself, scripts of one op,
/// scripts whose keys repeat inside a would-be batch — must terminate
/// the fold cleanly instead of indexing out of bounds or stalling, and
/// must still return the batch-1 bytes.
#[test]
fn fold_stops_cleanly_at_every_window_and_script_boundary() {
    let mut cfg = PubGraphConfig::scaled(1.0 / 4096.0);
    cfg.papers = N_RECORDS;
    let mut put_rec = Vec::with_capacity(80);
    PaperGen::paper_at(&cfg, 3).encode_into(&mut put_rec);
    let shapes: &[(&str, u32, Vec<Vec<QueuedOp>>)] = &[
        (
            "batch wider than depth",
            64,
            vec![(0..12).map(|i| QueuedOp::Get { key: 1 + i }).collect()],
        ),
        (
            "batch wider than script",
            64,
            vec![(0..3).map(|i| QueuedOp::Get { key: 1 + i }).collect()],
        ),
        ("single-op script", 16, vec![vec![QueuedOp::Get { key: 5 }]]),
        (
            "duplicate keys inside the window",
            16,
            vec![vec![
                QueuedOp::Get { key: 7 },
                QueuedOp::Get { key: 7 },
                QueuedOp::Get { key: 7 },
                QueuedOp::Get { key: 9 },
            ]],
        ),
        (
            "fold broken by a trailing PUT at the script edge",
            16,
            vec![vec![
                QueuedOp::Get { key: 3 },
                QueuedOp::Get { key: 4 },
                QueuedOp::Put { record: put_rec.clone() },
            ]],
        ),
    ];
    for (name, batch, ops) in shapes {
        let run = |b: u32| {
            let (mut db, _) = make_db();
            let scripts: Vec<ClientScript> =
                ops.iter().map(|o| ClientScript { ops: o.clone(), ..Default::default() }).collect();
            db.run_queued(
                TABLE,
                &scripts,
                &QueueRunConfig { depth: 4, batch: b, ..Default::default() },
            )
            .expect(name)
        };
        let base = run(1);
        let b = run(*batch);
        assert_eq!(b.ops(), base.ops(), "{name}");
        let project = |r: &nkv::QueueRunReport| {
            let mut v: Vec<_> =
                r.completions.iter().map(|c| (c.client, c.seq, c.payload.clone())).collect();
            v.sort();
            v
        };
        assert_eq!(project(&b), project(&base), "{name}: bytes diverged");
    }
}

/// A fold wider than the key-list descriptor's 510-key capacity must
/// split into multiple descriptors instead of being rejected (or
/// overflowing the DMA region), and the split must be invisible in the
/// result bytes. 600 adjacent GETs at `batch = 600` fold into one
/// 510-key descriptor plus one 90-key remainder — distinguishable by
/// their SQE-burst fetch times — and match the batch-1 run exactly.
#[test]
fn oversized_folds_split_into_capacity_sized_descriptors() {
    let n_keys = 600u32;
    let run = |batch: u32| {
        let (mut db, cfg) = make_db();
        let step = cfg.papers / u64::from(n_keys);
        let scripts = vec![ClientScript {
            ops: (0..n_keys)
                .map(|i| QueuedOp::Get { key: PaperGen::paper_at(&cfg, u64::from(i) * step).id })
                .collect(),
            ..Default::default()
        }];
        db.run_queued(
            TABLE,
            &scripts,
            &QueueRunConfig { depth: n_keys, batch, ..Default::default() },
        )
        .expect("oversized batch run")
    };
    let base = run(1);
    let split = run(n_keys);
    assert_eq!(split.ops(), u64::from(n_keys));
    assert_eq!(split.ops(), base.ops());

    let project = |r: &nkv::QueueRunReport| {
        let mut v: Vec<_> =
            r.completions.iter().map(|c| (c.client, c.seq, c.payload.clone())).collect();
        v.sort();
        v
    };
    assert_eq!(project(&split), project(&base), "splitting changed result bytes");

    // Descriptors share one fetch time; the capacity clamp must yield
    // exactly ceil(600 / 510) = 2 of them, the first full.
    let mut groups: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    for r in &split.completions {
        *groups.entry(r.fetch_ns).or_default() += 1;
    }
    let sizes: Vec<usize> = groups.values().copied().collect();
    assert_eq!(
        sizes,
        vec![
            cosmos_sim::KeyListDescriptor::MAX_KEYS,
            600 - cosmos_sim::KeyListDescriptor::MAX_KEYS
        ],
        "600 adjacent GETs must split at the 510-key descriptor capacity"
    );
}

/// The QoS scheduler's contract: a latency-sensitive client marked
/// [`Priority::High`] overtakes bulk scan floods at every dispatch tie,
/// without changing a single result byte — priority is a scheduling
/// transform, exactly like batching.
///
/// Three `Bulk` clients flood the device with whole-table scans while
/// the last client issues a handful of point GETs. Under the default
/// all-`Normal` run the dispatch tie at t=0 breaks by client id, so the
/// GETs queue behind nine scans' flash reservations; under QoS they
/// dispatch first. Worst-case GET latency (p99 of a 4-op client) must
/// improve by a wide margin, and both runs must stay deterministic.
#[test]
fn high_priority_gets_overtake_bulk_scan_floods() {
    let scan = || QueuedOp::Scan {
        rules: vec![ndp_pe::oracle::FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 0 }],
    };
    let run = |qos: bool| {
        let (mut db, cfg) = make_db();
        let mut scripts: Vec<ClientScript> = (0..3)
            .map(|_| ClientScript {
                ops: vec![scan(), scan(), scan()],
                priority: if qos { Priority::Bulk } else { Priority::Normal },
            })
            .collect();
        let step = cfg.papers / 4;
        scripts.push(ClientScript {
            ops: (0..4)
                .map(|i| QueuedOp::Get { key: PaperGen::paper_at(&cfg, i * step).id })
                .collect(),
            priority: if qos { Priority::High } else { Priority::Normal },
        });
        db.run_queued(TABLE, &scripts, &QueueRunConfig { depth: 4, ..Default::default() })
            .expect("qos run")
    };
    let fifo = run(false);
    let qos = run(true);
    assert_eq!(run(true), qos, "QoS runs must be reproducible");

    // Scheduling only: the merged result bytes are unchanged.
    let project = |r: &nkv::QueueRunReport| {
        let mut v: Vec<_> =
            r.completions.iter().map(|c| (c.client, c.seq, c.payload.clone())).collect();
        v.sort();
        v
    };
    assert_eq!(project(&qos), project(&fifo), "priorities changed result bytes");

    let worst_get = |r: &nkv::QueueRunReport| {
        r.completions
            .iter()
            .filter(|c| c.client == 3)
            .map(|c| c.complete_ns - c.submit_ns)
            .max()
            .expect("GET client completed")
    };
    let (fifo_p99, qos_p99) = (worst_get(&fifo), worst_get(&qos));
    assert!(
        qos_p99 * 2 < fifo_p99,
        "high-priority GETs should at least halve their worst-case latency \
         under a scan flood: fifo {fifo_p99} ns vs qos {qos_p99} ns"
    );
    // Within the High client, per-client FIFO order still holds at the
    // dispatch tie: its GETs fetch in seq order.
    let mut fetches: Vec<(u64, u32)> =
        qos.completions.iter().filter(|c| c.client == 3).map(|c| (c.fetch_ns, c.seq)).collect();
    fetches.sort_unstable();
    let seqs: Vec<u32> = fetches.iter().map(|&(_, s)| s).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3], "per-client FIFO order must survive QoS dispatch");
}
