//! Determinism and correctness tests for the NVMe queue engine
//! (`nkv::queue`).
//!
//! Three contracts:
//!
//! 1. a queued run is a pure function of (database state, scripts,
//!    config): identical inputs reproduce identical completion orders,
//!    timestamps, payloads and queue counters;
//! 2. a single client at depth 1 degenerates to the serial path —
//!    per-command device execution times equal the serial API's
//!    `SimReport` times and payloads match byte-for-byte (the queue
//!    envelope only adds doorbell/SQE/CQE accounting around them);
//! 3. commands of different clients genuinely overlap: completions may
//!    come back out of submission order when a short GET slips past a
//!    long streaming SCAN.
//!
//! The `#[ignore]`d campaign widens contract 1 over seeded random
//! script sets; `scripts/check.sh` opts in via
//! `CHECK_SLOW=1` → `cargo test -q -- --include-ignored`.

use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{PaperGen, PubGraphConfig, SplitMix64};
use nkv::{ClientScript, ExecMode, NkvDb, QueueRunConfig, QueuedOp, TableConfig};

const TABLE: &str = "papers";
/// ~1 MB of records → a whole-table SCAN streams ~30 blocks (several
/// milliseconds) while a point GET touches one block (~1 ms), so the
/// overtaking test has real headroom.
const N_RECORDS: u64 = 12_000;

/// A small bulk-loaded device, identical on every call.
fn make_db() -> (NkvDb, PubGraphConfig) {
    let module = ndp_spec::parse(PAPER_REF_SPEC).expect("reference spec parses");
    let pe = ndp_ir::elaborate(&module, PAPER_PE).expect("paper PE elaborates");
    let mut db = NkvDb::default_db();
    db.create_table(TABLE, TableConfig::new(pe)).expect("table");
    let mut cfg = PubGraphConfig::scaled(1.0 / 4096.0);
    cfg.papers = N_RECORDS;
    let records = (0..cfg.papers).map(|i| {
        let mut rec = Vec::with_capacity(80);
        PaperGen::paper_at(&cfg, i).encode_into(&mut rec);
        rec
    });
    db.bulk_load(TABLE, records).expect("bulk load");
    (db, cfg)
}

/// Seeded mixed GET/PUT/SCAN script.
fn script(cfg: &PubGraphConfig, seed: u64, client: u32, ops: u32) -> ClientScript {
    let mut rng = SplitMix64::for_record(seed, u64::from(client), 0);
    let mut s = ClientScript::default();
    for _ in 0..ops {
        let roll = rng.gen_u32(10);
        let idx = rng.gen_u64(cfg.papers);
        s.ops.push(if roll < 8 {
            QueuedOp::Get { key: PaperGen::paper_at(cfg, idx).id }
        } else if roll < 9 {
            let mut rec = Vec::with_capacity(80);
            PaperGen::paper_at(cfg, idx).encode_into(&mut rec);
            QueuedOp::Put { record: rec }
        } else {
            QueuedOp::Scan {
                rules: vec![ndp_pe::oracle::FilterRule {
                    lane: paper_lanes::YEAR,
                    op_code: 4,
                    value: 2010,
                }],
            }
        });
    }
    s
}

#[test]
fn same_seed_same_database_same_run() {
    let run = || {
        let (mut db, cfg) = make_db();
        let scripts: Vec<ClientScript> = (0..4).map(|c| script(&cfg, 99, c, 12)).collect();
        db.run_queued(TABLE, &scripts, &QueueRunConfig { depth: 3, ..Default::default() })
            .expect("queued run")
    };
    let a = run();
    let b = run();
    // Whole-report equality: completion order, every timestamp, every
    // payload byte, the latency histogram and the queue counters.
    assert_eq!(a, b);
    assert_eq!(a.ops(), 4 * 12);
    assert_eq!(a.queue.submitted, a.queue.completed);
    assert_eq!(a.queue.submitted, a.ops());
}

#[test]
fn depth_one_single_client_equals_the_serial_path() {
    let (mut serial_db, cfg) = make_db();
    let (mut queued_db, _) = make_db();

    let keys: Vec<u64> =
        (0..10).map(|i| PaperGen::paper_at(&cfg, i * (cfg.papers / 10)).id).collect();

    // Serial reference: one GET at a time through the public API.
    let mut serial: Vec<(Option<Vec<u8>>, u64)> = Vec::new();
    for &k in &keys {
        let (rec, report) = serial_db.get(TABLE, k, ExecMode::Hardware).expect("serial GET");
        serial.push((rec, report.sim_ns));
    }

    // Queued: the same keys as one client's script at depth 1.
    let scripts =
        vec![ClientScript { ops: keys.iter().map(|&key| QueuedOp::Get { key }).collect() }];
    let report = queued_db
        .run_queued(TABLE, &scripts, &QueueRunConfig { depth: 1, ..Default::default() })
        .expect("queued run");

    assert_eq!(report.ops() as usize, keys.len());
    // Depth 1 completes strictly in submission order.
    let order: Vec<u32> = report.completions.iter().map(|c| c.seq).collect();
    assert_eq!(order, (0..keys.len() as u32).collect::<Vec<_>>());
    for (c, (rec, sim_ns)) in report.completions.iter().zip(&serial) {
        assert_eq!(
            c.exec_ns, *sim_ns,
            "device-side execution time of command {} must equal the serial path",
            c.seq
        );
        let expect = rec.clone().unwrap_or_default();
        assert_eq!(c.payload, expect, "payload of command {} drifted", c.seq);
    }
}

#[test]
fn memtable_puts_overtake_a_streaming_scan() {
    let (mut db, cfg) = make_db();
    // Client 0 issues one whole-table SCAN, which saturates every flash
    // channel for several milliseconds (a GET issued meanwhile rightly
    // queues behind its flash reservations). Client 1 issues PUTs that
    // the memtable absorbs without touching flash — each one both
    // submits *after* the SCAN and completes *before* it: the
    // out-of-order witness on genuinely disjoint resources.
    let mut rec = Vec::with_capacity(80);
    PaperGen::paper_at(&cfg, 3).encode_into(&mut rec);
    let scripts = vec![
        ClientScript {
            ops: vec![QueuedOp::Scan {
                rules: vec![ndp_pe::oracle::FilterRule {
                    lane: paper_lanes::YEAR,
                    op_code: 4,
                    value: 0,
                }],
            }],
        },
        ClientScript { ops: (0..6).map(|_| QueuedOp::Put { record: rec.clone() }).collect() },
    ];
    let report = db
        .run_queued(TABLE, &scripts, &QueueRunConfig { depth: 1, ..Default::default() })
        .expect("queued run");
    let scan = report.completions.iter().find(|c| c.client == 0).expect("scan completed");
    let overtakers = report
        .completions
        .iter()
        .filter(|c| {
            c.client == 1 && c.submit_ns > scan.submit_ns && c.complete_ns < scan.complete_ns
        })
        .count();
    assert!(
        overtakers >= 4,
        "later-submitted PUTs should complete before the SCAN; completion order: {:?}",
        report.completion_order()
    );
    // The merged completion stream is ordered by completion time.
    let times: Vec<u64> = report.completions.iter().map(|c| c.complete_ns).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "completions must be time-sorted");
}

/// Wide determinism campaign: many seeds, client counts and depths.
/// Slow (builds two devices per case) — opted into by
/// `CHECK_SLOW=1 scripts/check.sh` via `--include-ignored`.
#[test]
#[ignore = "slow determinism campaign; run with --include-ignored"]
fn determinism_campaign_across_seeds() {
    for seed in 0..6u64 {
        let clients = 1 + (seed % 4) as u32;
        let depth = 1 + (seed % 3) as u32;
        let run = || {
            let (mut db, cfg) = make_db();
            let scripts: Vec<ClientScript> =
                (0..clients).map(|c| script(&cfg, seed, c, 10)).collect();
            db.run_queued(TABLE, &scripts, &QueueRunConfig { depth, ..Default::default() })
                .expect("queued run")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seed {seed}: queued runs must be reproducible");
        assert_eq!(a.ops(), u64::from(clients) * 10, "seed {seed}");
        assert_eq!(a.queue.submitted, a.ops(), "seed {seed}");
        assert_eq!(a.queue.completed, a.ops(), "seed {seed}");
        // Submit times per client never decrease (closed-loop windows).
        for c in 0..clients {
            let submits: Vec<u64> =
                a.completions.iter().filter(|r| r.client == c).map(|r| r.submit_ns).collect();
            let mut sorted = submits.clone();
            sorted.sort_unstable();
            assert_eq!(submits.len() as u64, 10, "seed {seed} client {c}");
            let _ = sorted;
        }
    }
}
