//! Differential suite for the device-DRAM block cache.
//!
//! Contract: the cache changes *when* bytes arrive (a DRAM-port burst
//! instead of a flash read), never *which* bytes. Every backend —
//! software ARM walk, hardware PEs (serial and parallel dispatch), and
//! the hybrid pushdown split — must return byte-identical results with
//! the cache on and off, across clean and injected-fault weather and
//! under interleaved PUT/flush/compaction churn. Fault RNG draws
//! legitimately differ between the cached and uncached runs (a hit
//! skips the flash read that would have rolled the fault), so the suite
//! compares result *bytes*, never health counters or timings.

use cosmos_sim::faults::FaultPlan;
use ndp_ir::AggOp;
use ndp_pe::oracle::FilterRule;
use ndp_workload::spec::{paper_lanes, ref_lanes, PAPER_PE, PAPER_REF_SPEC};
use ndp_workload::{PaperGen, PubGraphConfig, RefGen};
use nkv::{Backend, ExecMode, LogicalOp, NkvDb, PlanOutcome, TableConfig};

const TABLE: &str = "papers";
/// The default device budget the acceptance gate measures at.
const CACHE_BUDGET: usize = 8 << 20;

/// The three weathers every comparison runs under.
fn weathers() -> Vec<(&'static str, Option<FaultPlan>)> {
    vec![
        ("clean", None),
        (
            "transient-read-faults",
            Some(FaultPlan { seed: 11, transient_read_p: 0.01, ..FaultPlan::default() }),
        ),
        ("pe-hang-storm", Some(FaultPlan { seed: 13, pe_hang_p: 1.0, ..FaultPlan::default() })),
    ]
}

/// A bulk-loaded papers table (4 PEs) with ~10 % PUT churn on top, the
/// cache optionally enabled before any data lands.
fn seeded_db(n_records: u64, cache: bool) -> (NkvDb, PubGraphConfig) {
    let module = ndp_spec::parse(PAPER_REF_SPEC).expect("reference spec parses");
    let pe = ndp_ir::elaborate(&module, PAPER_PE).expect("paper PE elaborates");
    let mut db = NkvDb::default_db();
    if cache {
        db.enable_cache(CACHE_BUDGET);
    }
    let mut cfg = TableConfig::new(pe);
    cfg.n_pes = 4;
    db.create_table(TABLE, cfg).expect("table");
    let mut wl = PubGraphConfig::scaled(1.0 / 4096.0);
    wl.papers = n_records;
    db.bulk_load(
        TABLE,
        (0..wl.papers).map(|i| {
            let mut rec = Vec::with_capacity(80);
            PaperGen::paper_at(&wl, i).encode_into(&mut rec);
            rec
        }),
    )
    .expect("bulk load");
    for i in (0..wl.papers).step_by(11) {
        let mut p = PaperGen::paper_at(&wl, i);
        p.n_cits = p.n_cits.wrapping_add(1_000);
        let mut rec = Vec::with_capacity(80);
        p.encode_into(&mut rec);
        db.put(TABLE, rec).expect("put");
    }
    (db, wl)
}

fn year_rule(value: u64) -> FilterRule {
    FilterRule { lane: paper_lanes::YEAR, op_code: 4, value }
}

/// Run the whole read mix — SCAN on every backend (serial + parallel
/// dispatch), RANGE_SCAN (hybrid split), GETs — twice (cold + warm) and
/// return the concatenated result bytes.
fn read_mix(db: &mut NkvDb, wl: &PubGraphConfig) -> Vec<u8> {
    let mut out = Vec::new();
    let rules = [year_rule(2005)];
    for _round in 0..2 {
        let sw = db.scan(TABLE, &rules, ExecMode::Software).expect("sw scan");
        out.extend_from_slice(&sw.records);
        for streams in [0usize, 2] {
            db.set_parallel_pes(TABLE, streams).expect("4 PEs configured");
            let hw = db.scan(TABLE, &rules, ExecMode::Hardware).expect("hw scan");
            out.extend_from_slice(&hw.records);
        }
        db.set_parallel_pes(TABLE, 0).expect("reset");
        let op = LogicalOp::Scan { rules: rules.to_vec() };
        match db.execute(TABLE, &op, Backend::Hybrid).expect("hybrid scan") {
            PlanOutcome::Records { records, .. } => out.extend_from_slice(&records),
            other => panic!("scan must produce records, got {other:?}"),
        }
        let lo = PaperGen::paper_at(wl, wl.papers / 4).id;
        let hi = PaperGen::paper_at(wl, 3 * wl.papers / 4).id;
        match db.execute(TABLE, &LogicalOp::RangeScan { lo, hi }, Backend::Hybrid).expect("range") {
            PlanOutcome::Records { records, .. } => out.extend_from_slice(&records),
            other => panic!("range scan must produce records, got {other:?}"),
        }
        for i in [0, wl.papers / 3, wl.papers - 1] {
            let key = PaperGen::paper_at(wl, i).id;
            for mode in [ExecMode::Software, ExecMode::Hardware] {
                let (rec, _) = db.get(TABLE, key, mode).expect("get");
                out.extend_from_slice(&rec.expect("loaded key must be found"));
            }
        }
    }
    out
}

#[test]
fn read_mix_is_byte_identical_with_and_without_cache_across_weathers() {
    for (name, plan) in weathers() {
        let (mut plain, wl) = seeded_db(8_000, false);
        let (mut cached, _) = seeded_db(8_000, true);
        if let Some(p) = &plan {
            plain.platform_mut().install_faults(p);
            cached.platform_mut().install_faults(p);
        }
        let a = read_mix(&mut plain, &wl);
        let b = read_mix(&mut cached, &wl);
        assert_eq!(a, b, "cached read mix must be byte-identical under {name}");
        assert_eq!(plain.cache_stats(), None, "cache default-off");
        let s = cached.cache_stats().expect("cache enabled");
        assert_eq!(s.hits + s.misses, s.lookups, "counter conservation under {name}: {s:?}");
        assert!(s.hits > 0, "the warm round must hit under {name}: {s:?}");
        assert!(s.insertions > 0, "misses must admit under {name}: {s:?}");
    }
}

#[test]
fn warm_repeated_scans_reach_the_acceptance_hit_rate() {
    let (mut db, _) = seeded_db(8_000, true);
    let rules = [year_rule(2000)];
    let mut first = None;
    for _ in 0..4 {
        let s = db.scan(TABLE, &rules, ExecMode::Hardware).expect("hw scan");
        let first = first.get_or_insert_with(|| s.records.clone());
        assert_eq!(&s.records, first, "every repetition returns the same bytes");
    }
    let s = db.cache_stats().expect("cache enabled");
    assert!(s.hit_rate() >= 0.5, "repeated scans at the default budget must hit >= 50%: {s:?}");
}

#[test]
fn interleaved_puts_compactions_and_scans_stay_coherent() {
    // Tiny memtable + low C1 limit: the PUT stream below forces flushes
    // and multi-level compactions *between* scans, so the cache sees
    // constant SST retirement while it is being repopulated.
    let build = |cache: bool| {
        let module = ndp_spec::parse(PAPER_REF_SPEC).expect("reference spec parses");
        let pe = ndp_ir::elaborate(&module, PAPER_PE).expect("paper PE elaborates");
        let mut db = NkvDb::default_db();
        if cache {
            db.enable_cache(CACHE_BUDGET);
        }
        let mut cfg = TableConfig::new(pe);
        cfg.n_pes = 2;
        cfg.lsm.memtable_bytes = 8 * 1024;
        cfg.lsm.c1_sst_limit = 2;
        db.create_table(TABLE, cfg).expect("table");
        db
    };
    let mut plain = build(false);
    let mut cached = build(true);
    let wl = PubGraphConfig { papers: 1_500, refs: 1_500, seed: 29 };
    let rules = [year_rule(1900)]; // matches everything: full coherence check
    let mut written = 0u64;
    for (i, p) in PaperGen::new(wl).enumerate() {
        let mut rec = Vec::with_capacity(80);
        p.encode_into(&mut rec);
        plain.put(TABLE, rec.clone()).expect("plain put");
        cached.put(TABLE, rec).expect("cached put");
        written += 1;
        if i % 250 == 249 {
            let mode = if i % 500 == 499 { ExecMode::Hardware } else { ExecMode::Software };
            let a = plain.scan(TABLE, &rules, mode).expect("plain scan");
            let b = cached.scan(TABLE, &rules, mode).expect("cached scan");
            assert_eq!(a.records, b.records, "scan after {written} puts");
            assert_eq!(b.count, written, "no stale or lost records after {written} puts");
        }
    }
    let s = cached.cache_stats().expect("cache enabled");
    assert!(s.invalidations > 0, "compaction churn must invalidate cached blocks: {s:?}");
    assert_eq!(s.hits + s.misses, s.lookups, "counter conservation: {s:?}");
}

#[test]
fn aggregates_are_identical_with_and_without_cache() {
    let module = ndp_spec::parse(
        "/* @autogen define parser RefAgg with chunksize = 32,
            input = Ref, output = Ref, aggregate = { count, sum, min, max } */
         typedef struct { uint64_t src; uint64_t dst; uint32_t year; } Ref;",
    )
    .expect("aggregate spec parses");
    let pe = ndp_ir::elaborate(&module, "RefAgg").expect("RefAgg elaborates");
    let build = |cache: bool| {
        let mut db = NkvDb::default_db();
        if cache {
            db.enable_cache(CACHE_BUDGET);
        }
        let mut cfg = TableConfig::new(pe.clone());
        cfg.n_pes = 2;
        cfg.unique_keys = false;
        db.create_table("refs", cfg).expect("refs table");
        let mut wl = PubGraphConfig::scaled(1.0 / 4096.0);
        wl.refs = 12_000;
        db.bulk_load(
            "refs",
            RefGen::new(wl).take(wl.refs as usize).map(|r| {
                let mut rec = Vec::with_capacity(20);
                r.encode_into(&mut rec);
                rec
            }),
        )
        .expect("bulk load");
        db
    };
    let mut plain = build(false);
    let mut cached = build(true);
    let rules = [FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 2000 }];
    for agg in [AggOp::Count, AggOp::Sum, AggOp::Min, AggOp::Max] {
        for mode in [ExecMode::Software, ExecMode::Hardware] {
            for _round in 0..2 {
                let a = plain.scan_aggregate("refs", &rules, agg, ref_lanes::YEAR, mode);
                let b = cached.scan_aggregate("refs", &rules, agg, ref_lanes::YEAR, mode);
                let (av, aa, _) = a.expect("plain aggregate");
                let (bv, ba, _) = b.expect("cached aggregate");
                assert_eq!((av, aa), (bv, ba), "{agg:?} on {mode:?}");
            }
        }
    }
    let s = cached.cache_stats().expect("cache enabled");
    assert!(s.hits > 0, "repeated aggregate scans must hit: {s:?}");
    assert_eq!(s.hits + s.misses, s.lookups, "counter conservation: {s:?}");
}

#[test]
fn hostile_pe_hang_storm_degrades_gracefully_on_every_path() {
    // Regression for the watchdog claim path: a fault plan that hangs
    // every PE while blocks keep arriving used to be able to abort via
    // `expect` when no PE was selectable. It must degrade HW -> SW and
    // keep returning correct bytes — cached and uncached alike.
    for cache in [false, true] {
        let (mut db, wl) = seeded_db(4_000, cache);
        db.platform_mut().install_faults(&FaultPlan {
            seed: 41,
            pe_hang_p: 1.0,
            ..FaultPlan::default()
        });
        let want = db.scan(TABLE, &[year_rule(1900)], ExecMode::Software).expect("sw scan");
        // Serial and parallel hardware dispatch: every PE hangs on its
        // first claim, is retired, and the scans finish on the ARM.
        for streams in [0usize, 2, 4] {
            db.set_parallel_pes(TABLE, streams).expect("4 PEs configured");
            let hw = db.scan(TABLE, &[year_rule(1900)], ExecMode::Hardware).expect("degraded scan");
            assert_eq!(hw.records, want.records, "{streams} streams, cache={cache}");
        }
        let key = PaperGen::paper_at(&wl, wl.papers / 2).id;
        let (rec, _) = db.get(TABLE, key, ExecMode::Hardware).expect("degraded get");
        assert!(rec.is_some(), "degraded GET still finds the key");
        let health = db.table_health(TABLE).expect("table exists");
        assert!(health.watchdog_trips > 0, "the storm must trip the watchdog");
        assert!(health.sw_fallback_blocks > 0, "blocks must degrade to software");
    }
}
