//! The hybrid NDP execution facade.
//!
//! "For both operations the execution is implemented in a hybrid way,
//! where the software executes a very general algorithm and exploits the
//! hardware whenever datablocks have to be filtered or transformed"
//! (paper, Sec. V). This module holds the *state* of that firmware
//! algorithm — [`TableExec`], the per-table executor with its PEs,
//! drivers, fault policy and health counters — plus the legacy
//! free-function entry points ([`scan`], [`scan_aggregate`], [`get`]).
//!
//! The execution loops themselves live in [`crate::engine`], driven by
//! an explicit [`crate::plan::PhysicalPlan`]; the functions here lower
//! the legacy `(rules, mode)` calling convention into a plan and
//! delegate. `ExecMode::Software` runs the shared byte-level oracle on
//! the ARM core; `ExecMode::Hardware` stages blocks in DRAM and
//! dispatches them to the PEs through the *generated driver*
//! (`ndp-swgen`), in either fidelity (`cycle_accurate` tick-level model
//! or the validated analytic fast path).
//!
//! # Resilience
//!
//! The executor runs *below* the host's error-handling stack, so it owns
//! the device-side fault policy ([`ResilienceConfig`]):
//!
//! * **retry with backoff** — transient page-read failures are retried a
//!   bounded number of times, each attempt delayed by an exponentially
//!   growing amount of *simulated* time; exhaustion surfaces as the typed
//!   [`NkvError::RetriesExhausted`](crate::error::NkvError::RetriesExhausted);
//! * **watchdog + HW→SW degradation** — if a PE never raises DONE, the
//!   firmware's DONE poll times out after `watchdog_ns`, the PE is marked
//!   failed for the rest of the session, and the block is re-processed by
//!   the ARM software oracle (results stay identical, only time is lost).
//!   With `hw_fallback_to_sw` disabled the op fails with
//!   [`NkvError::PeTimeout`](crate::error::NkvError::PeTimeout) instead;
//! * **health accounting** — every retry, watchdog trip and fallback is
//!   counted in [`HealthCounters`], surfaced device-wide through
//!   `NkvDb::health_report`.

use crate::engine::ParallelScanStats;
use crate::error::NkvResult;
use crate::lsm::LsmTree;
use crate::plan::{PhysicalPlan, PlanCaps};
use cosmos_sim::{timing, CosmosPlatform, Server, SimNs};
use ndp_pe::oracle::{BlockProcessor, FilterRule, OpTable};
use ndp_pe::{MemBus, PeDevice};
use ndp_swgen::{DriverProfile, PeDriver};

/// Where filtering runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// ARM software NDP (the paper's "SW" bars).
    Software,
    /// FPGA PEs through the generated interface (the "HW" bars).
    Hardware,
}

/// Simulated-time and traffic report of one operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Simulated duration of the operation in nanoseconds.
    pub sim_ns: SimNs,
    /// Data blocks read from flash.
    pub blocks: u64,
    /// Bytes of table data scanned.
    pub bytes_scanned: u64,
    /// Result payload bytes.
    pub result_bytes: u64,
    /// Tuples inspected / passed.
    pub tuples_in: u64,
    pub tuples_out: u64,
    /// PE control-register traffic.
    pub reg_writes: u64,
    pub reg_reads: u64,
    /// Extra block reads spent confirming bloom-filter hits during the
    /// scan shadow check.
    pub shadow_confirm_reads: u64,
}

/// Memory-bus adapter exposing the platform DRAM to PE devices.
pub struct DramBus<'a>(pub &'a mut cosmos_sim::Dram);

impl MemBus for DramBus<'_> {
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        self.0.read(addr, buf);
    }

    fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        self.0.write(addr, data);
    }
}

/// Device-side fault policy of one table's executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Retries after the first failed block read (0 = fail fast).
    pub max_read_retries: u32,
    /// Backoff before retry `n` is `backoff_base_ns << (n - 1)`
    /// (simulated time; the firmware busy-waits the flash controller).
    pub backoff_base_ns: SimNs,
    /// How long the firmware polls a PE's DONE flag before declaring it
    /// hung. Charged in full on every watchdog trip.
    pub watchdog_ns: SimNs,
    /// Degrade a hung PE's work to the ARM software oracle (results stay
    /// identical) instead of failing the operation with
    /// [`NkvError::PeTimeout`](crate::error::NkvError::PeTimeout).
    pub hw_fallback_to_sw: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_read_retries: 3,
            backoff_base_ns: 50_000,
            watchdog_ns: 1_000_000,
            hw_fallback_to_sw: true,
        }
    }
}

/// Error/degradation counters of one table's executor (monotonic since
/// table creation; see `NkvDb::health_report` for the device-wide view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Block/page reads that were retried after a transient failure.
    pub read_retries: u64,
    /// Simulated time spent in retry backoff.
    pub retry_backoff_ns: SimNs,
    /// Reads abandoned after exhausting the retry budget.
    pub reads_failed: u64,
    /// Watchdog timeouts on a PE DONE poll (one per hang observed).
    pub watchdog_trips: u64,
    /// Blocks processed by the ARM oracle because no healthy PE was
    /// available (includes the block of each watchdog trip).
    pub sw_fallback_blocks: u64,
}

/// Execution state for one table's PEs.
pub struct TableExec {
    /// The table's precompiled functional semantics.
    pub processor: BlockProcessor,
    /// Operator dispatch table.
    pub ops: OpTable,
    /// PE drivers (one per attached PE; blocks round-robin over them).
    pub drivers: Vec<PeDriver<Box<dyn PeDevice>>>,
    /// Per-PE timing servers (a PE can only process one block at a time).
    pub pe_servers: Vec<Server>,
    /// Register protocol in use.
    pub profile: DriverProfile,
    /// Filtering stages the PEs provide.
    pub stages: u32,
    /// Drive the tick-level PE model instead of the fast path.
    pub cycle_accurate: bool,
    /// Full-block payload size (whole records per 32 KiB block).
    pub full_block_payload: u32,
    /// Chunk (block) size in bytes.
    pub chunk_bytes: u32,
    /// Run the post-filter shadow check. Disabled for multi-record-key
    /// (duplicate-key) tables, where a key match in a newer component
    /// does not imply version shadowing.
    pub reconcile: bool,
    /// Aggregation reductions the attached PEs were generated with.
    pub aggregates: Vec<ndp_ir::AggOp>,
    /// Fault policy (retry budget, watchdog, degradation switch).
    pub resilience: ResilienceConfig,
    /// Error/degradation counters since table creation.
    pub health: HealthCounters,
    /// PEs declared hung by the watchdog (skipped until
    /// [`TableExec::reset_failed_pes`]).
    pub pe_failed: Vec<bool>,
    /// Parallel PE job streams a hardware scan fans out to (0 = the
    /// legacy serial dispatch; see `crate::plan`).
    pub parallel_pes: usize,
    /// Statistics of the most recent parallel scan phase (None after a
    /// serial scan).
    pub last_parallel_scan: Option<ParallelScanStats>,
}

impl TableExec {
    /// Bring watchdog-failed PEs back into rotation (a device reset /
    /// PL reconfiguration in the real system).
    pub fn reset_failed_pes(&mut self) {
        self.pe_failed.iter_mut().for_each(|f| *f = false);
    }

    /// Number of PEs currently marked failed.
    pub fn failed_pes(&self) -> usize {
        self.pe_failed.iter().filter(|&&f| f).count()
    }

    /// Planner-visible capabilities of this table's executor.
    pub fn caps(&self) -> PlanCaps {
        PlanCaps {
            stages: self.stages,
            lanes: self.processor.lanes(),
            n_pes: self.pe_servers.len(),
            parallel_pes: self.parallel_pes,
            aggregates: self.aggregates.clone(),
            identity_transform: self.processor.identity_transform(),
        }
    }

    pub(crate) fn cfg_io(&self, first_block: bool, rules: usize) -> (u64, u64) {
        // Mirrors the PeDriver protocol: rule registers are written once
        // per scan (cached), addresses/len/start per block.
        let per_rule = match self.profile {
            DriverProfile::Generated => 4,
            DriverProfile::Baseline => 3,
        };
        let nop_fills = (self.stages as usize).saturating_sub(rules) as u64;
        let rule_writes = if first_block { per_rule * rules as u64 + nop_fills } else { 0 };
        match self.profile {
            DriverProfile::Generated => {
                (rule_writes + timing::OURS_CFG_WRITES, timing::OURS_CFG_READS)
            }
            DriverProfile::Baseline => {
                (rule_writes + timing::BASE_CFG_WRITES, timing::BASE_CFG_READS)
            }
        }
    }
}

/// Full-table SCAN with a filter-rule chain.
///
/// Lowers the legacy `(rules, mode)` convention into a physical plan
/// (all predicates pushed, `TableExec::parallel_pes` job streams) and
/// runs it on the engine. Returns the matched (and reconciled) records
/// plus the report. `now` is the operation start time on the platform
/// clock.
pub fn scan(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    rules: &[FilterRule],
    mode: ExecMode,
    now: SimNs,
) -> NkvResult<(Vec<u8>, SimReport)> {
    let plan = PhysicalPlan::legacy_scan(rules, mode, exec.parallel_pes);
    crate::engine::run_scan(platform, lsm, exec, &plan, now)
}

/// Aggregate SCAN: compute one reduction over every record matching the
/// predicate chain, entirely on the device — only the 64-bit accumulator
/// crosses the NVMe link (the paper's outlook on compute-intensive NDP
/// realized: results "much smaller in size than the input data").
///
/// Assumes single-version data (bulk-loaded/compacted tables): a running
/// reduction cannot be reconciled against shadowed versions after the
/// fact, so the caller is responsible for compacting first (checked only
/// by convention; the unit tests cover the supported shape).
#[allow(clippy::too_many_arguments)] // the legacy signature, kept verbatim
pub fn scan_aggregate(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    rules: &[FilterRule],
    agg: ndp_ir::AggOp,
    lane: u32,
    mode: ExecMode,
    now: SimNs,
) -> NkvResult<(u64, bool, SimReport)> {
    let plan = PhysicalPlan::legacy_scan_aggregate(rules, agg, lane, mode);
    crate::engine::run_scan_aggregate(platform, lsm, exec, &plan, now)
}

/// Point lookup (GET).
pub fn get(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    key: u64,
    mode: ExecMode,
    now: SimNs,
) -> NkvResult<(Option<Vec<u8>>, SimReport)> {
    let plan = PhysicalPlan::legacy_get(key, mode);
    crate::engine::run_get(platform, lsm, exec, &plan, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsm::LsmConfig;
    use crate::placement::PageAllocator;
    use cosmos_sim::dram::DramClient;
    use cosmos_sim::CosmosConfig;
    use ndp_ir::elaborate;
    use ndp_pe::{BaselinePe, PeSim};
    use ndp_spec::parse;
    use ndp_workload::spec::{ref_lanes, PAPER_REF_SPEC, REF_PE};
    use ndp_workload::{PubGraphConfig, Ref, RefGen};

    fn make_exec(n_pes: usize, baseline: bool, cycle_accurate: bool) -> TableExec {
        let m = parse(PAPER_REF_SPEC).unwrap();
        let cfg = elaborate(&m, REF_PE).unwrap();
        let processor = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let full_block_payload = (cfg.chunk_bytes / 20) * 20;
        let mut drivers: Vec<PeDriver<Box<dyn PeDevice>>> = Vec::new();
        for _ in 0..n_pes {
            let dev: Box<dyn PeDevice> = if baseline {
                Box::new(BaselinePe::new(cfg.clone()).unwrap())
            } else {
                Box::new(PeSim::new(cfg.clone()))
            };
            drivers.push(PeDriver::new(
                dev,
                if baseline { DriverProfile::Baseline } else { DriverProfile::Generated },
            ));
        }
        TableExec {
            processor,
            ops,
            drivers,
            pe_servers: vec![Server::new(); n_pes],
            profile: if baseline { DriverProfile::Baseline } else { DriverProfile::Generated },
            stages: cfg.stages,
            cycle_accurate,
            full_block_payload,
            chunk_bytes: cfg.chunk_bytes,
            reconcile: true,
            aggregates: cfg.aggregates.clone(),
            resilience: ResilienceConfig::default(),
            health: HealthCounters::default(),
            pe_failed: vec![false; n_pes],
            parallel_pes: 0,
            last_parallel_scan: None,
        }
    }

    /// Load refs with unique `src` fields (the record key must be its
    /// first 8 bytes); returns the tree and the load-completion time.
    fn loaded_lsm(
        platform: &mut CosmosPlatform,
        alloc: &mut PageAllocator,
        n_refs: u64,
    ) -> (LsmTree, u64) {
        let mut lsm = LsmTree::new("refs", 20, LsmConfig::default(), 3);
        let cfg = PubGraphConfig { papers: n_refs / 10 + 1, refs: n_refs, seed: 11 };
        let mut buf = Vec::new();
        let mut done = 0u64;
        for (i, mut r) in RefGen::new(cfg).enumerate() {
            r.src = i as u64 + 1; // unique key in the record's first field
            buf.clear();
            r.encode_into(&mut buf);
            lsm.put(r.src, buf.clone());
            if lsm.should_flush() {
                done = done.max(lsm.flush(&mut platform.flash, alloc, 0).unwrap());
            }
        }
        done = done.max(lsm.flush(&mut platform.flash, alloc, 0).unwrap());
        (lsm, done)
    }

    fn scan_year_rules(exec: &TableExec, year: u64) -> Vec<FilterRule> {
        let _ = exec;
        vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4 /* ge */, value: year }]
    }

    #[test]
    fn sw_and_hw_scans_return_identical_results() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 5_000);
        let mut exec = make_exec(2, false, false);
        let rules = scan_year_rules(&exec, 2000);

        let (sw, rep_sw) =
            scan(&mut platform, &lsm, &mut exec, &rules, ExecMode::Software, t0).unwrap();
        let (hw, rep_hw) =
            scan(&mut platform, &lsm, &mut exec, &rules, ExecMode::Hardware, t0 + rep_sw.sim_ns)
                .unwrap();
        assert_eq!(sw, hw);
        assert!(!sw.is_empty());
        assert_eq!(rep_sw.tuples_out, rep_hw.tuples_out);
        // Every result record satisfies the predicate.
        for rec in sw.chunks_exact(20) {
            assert!(Ref::decode(rec).year >= 2000);
        }
    }

    #[test]
    fn hw_scan_is_faster_than_sw_scan() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 20_000);
        let mut exec = make_exec(4, false, false);
        let rules = scan_year_rules(&exec, 1990);

        let mut p1 = CosmosPlatform::new(CosmosConfig::default());
        p1.flash = platform.flash.clone();
        let (_, sw) = scan(&mut p1, &lsm, &mut exec, &rules, ExecMode::Software, t0).unwrap();
        let mut p2 = CosmosPlatform::new(CosmosConfig::default());
        p2.flash = platform.flash.clone();
        let (_, hw) = scan(&mut p2, &lsm, &mut exec, &rules, ExecMode::Hardware, t0).unwrap();
        assert!(hw.sim_ns < sw.sim_ns, "HW {} ns should beat SW {} ns", hw.sim_ns, sw.sim_ns);
    }

    #[test]
    fn cycle_accurate_and_fast_hw_agree() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 3_000);
        let rules = vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 1995 }];

        let mut fast = make_exec(2, false, false);
        let mut acc = make_exec(2, false, true);
        let mut p1 = CosmosPlatform::new(CosmosConfig::default());
        p1.flash = platform.flash.clone();
        let (r_fast, rep_fast) =
            scan(&mut p1, &lsm, &mut fast, &rules, ExecMode::Hardware, t0).unwrap();
        let mut p2 = CosmosPlatform::new(CosmosConfig::default());
        p2.flash = platform.flash.clone();
        let (r_acc, rep_acc) =
            scan(&mut p2, &lsm, &mut acc, &rules, ExecMode::Hardware, t0).unwrap();

        assert_eq!(r_fast, r_acc, "functional results must be identical");
        assert_eq!(rep_fast.tuples_in, rep_acc.tuples_in);
        assert_eq!(rep_fast.tuples_out, rep_acc.tuples_out);
        assert_eq!(rep_fast.reg_writes, rep_acc.reg_writes);
        assert_eq!(rep_fast.reg_reads, rep_acc.reg_reads);
        let dt = rep_fast.sim_ns.abs_diff(rep_acc.sim_ns) as f64;
        assert!(
            dt / (rep_acc.sim_ns as f64) < 0.05,
            "fast {} vs accurate {}",
            rep_fast.sim_ns,
            rep_acc.sim_ns
        );
    }

    #[test]
    fn baseline_hw_matches_generated_results_with_more_write_traffic() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 8_000);
        let rules = vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 2000 }];

        let mut ours = make_exec(2, false, false);
        let mut base = make_exec(2, true, false);
        let mut p1 = CosmosPlatform::new(CosmosConfig::default());
        p1.flash = platform.flash.clone();
        let (r1, _) = scan(&mut p1, &lsm, &mut ours, &rules, ExecMode::Hardware, t0).unwrap();
        let pe_store_ours = p1.dram.traffic_of(DramClient::PeStore);
        let mut p2 = CosmosPlatform::new(CosmosConfig::default());
        p2.flash = platform.flash.clone();
        let (r2, _) = scan(&mut p2, &lsm, &mut base, &rules, ExecMode::Hardware, t0).unwrap();
        let pe_store_base = p2.dram.traffic_of(DramClient::PeStore);

        assert_eq!(r1, r2);
        assert!(
            pe_store_base > pe_store_ours,
            "fixed 32 KiB write-back must cause more DRAM traffic \
             ({pe_store_base} vs {pe_store_ours})"
        );
    }

    #[test]
    fn scan_reconciles_shadowed_versions() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let mut lsm = LsmTree::new("refs", 20, LsmConfig::default(), 3);
        // Old version of key 100 matches the predicate... (the record's
        // first field IS the key, per the nKV record model)
        let old = Ref { src: 100, dst: 1, year: 2010 };
        let mut buf = Vec::new();
        old.encode_into(&mut buf);
        lsm.put(old.src, buf.clone());
        lsm.flush(&mut platform.flash, &mut alloc, 0).unwrap();
        // ... the newer version does NOT match.
        let newer = Ref { src: 100, dst: 1, year: 1960 };
        buf.clear();
        newer.encode_into(&mut buf);
        lsm.put(newer.src, buf.clone());
        lsm.flush(&mut platform.flash, &mut alloc, 0).unwrap();
        // And key 200's newest version matches.
        let live = Ref { src: 200, dst: 2, year: 2015 };
        buf.clear();
        live.encode_into(&mut buf);
        lsm.put(live.src, buf.clone());
        lsm.flush(&mut platform.flash, &mut alloc, 0).unwrap();

        let mut exec = make_exec(1, false, false);
        let rules = vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 2000 }];
        let (res, rep) =
            scan(&mut platform, &lsm, &mut exec, &rules, ExecMode::Software, 0).unwrap();
        // Only key 200's record: key 100's matching version is shadowed.
        assert_eq!(res.len(), 20);
        assert_eq!(Ref::decode(&res).year, 2015);
        assert_eq!(rep.tuples_out, 1);
        assert!(rep.shadow_confirm_reads > 0, "bloom hit on key 100 must be confirmed");
    }

    #[test]
    fn scan_includes_memtable_and_respects_its_tombstones() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let mut lsm = LsmTree::new("refs", 20, LsmConfig::default(), 3);
        let mut buf = Vec::new();
        Ref { src: 1, dst: 9, year: 2005 }.encode_into(&mut buf);
        lsm.put(1, buf.clone());
        lsm.flush(&mut platform.flash, &mut alloc, 0).unwrap();
        // Unflushed matching record in the memtable...
        buf.clear();
        Ref { src: 2, dst: 9, year: 2012 }.encode_into(&mut buf);
        lsm.put(2, buf.clone());
        // ... and delete the flushed one.
        lsm.delete(1);

        let mut exec = make_exec(1, false, false);
        let rules = vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 2000 }];
        let (res, _) = scan(&mut platform, &lsm, &mut exec, &rules, ExecMode::Software, 0).unwrap();
        assert_eq!(res.len(), 20);
        assert_eq!(Ref::decode(&res).year, 2012);
    }

    #[test]
    fn get_finds_and_misses_in_both_modes() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 5_000);
        let mut exec = make_exec(1, false, false);
        // Pick an existing key from the data.
        let sst = &lsm.all_ssts()[0];
        let key = sst.blocks[0].first_key;
        let (sw, rep_sw) =
            get(&mut platform, &lsm, &mut exec, key, ExecMode::Software, t0).unwrap();
        let (hw, rep_hw) =
            get(&mut platform, &lsm, &mut exec, key, ExecMode::Hardware, t0 + rep_sw.sim_ns)
                .unwrap();
        assert!(sw.is_some());
        assert_eq!(sw, hw);
        assert!(rep_sw.sim_ns > 0 && rep_hw.sim_ns > 0);

        let (miss, _) =
            get(&mut platform, &lsm, &mut exec, u64::MAX - 1, ExecMode::Software, t0).unwrap();
        assert_eq!(miss, None);
    }

    #[test]
    fn get_hw_does_not_profit_over_sw() {
        // Fig. 7(a): configuration overhead eats the PE's advantage.
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 20_000);
        let sst = &lsm.all_ssts()[0];
        let key = sst.blocks[1].first_key;

        let mut exec = make_exec(1, false, false);
        let mut p1 = CosmosPlatform::new(CosmosConfig::default());
        p1.flash = platform.flash.clone();
        let (_, sw) = get(&mut p1, &lsm, &mut exec, key, ExecMode::Software, t0).unwrap();
        let mut p2 = CosmosPlatform::new(CosmosConfig::default());
        p2.flash = platform.flash.clone();
        let (_, hw) = get(&mut p2, &lsm, &mut exec, key, ExecMode::Hardware, t0).unwrap();
        let ratio = hw.sim_ns as f64 / sw.sim_ns as f64;
        assert!(
            (0.8..1.5).contains(&ratio),
            "GET HW/SW ratio {ratio:.2} should be near 1 (no real benefit)"
        );
    }

    #[test]
    fn firmware_era_adds_op_overhead() {
        let mut loaded = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(loaded.flash.config());
        let (lsm, t0) = loaded_lsm(&mut loaded, &mut alloc, 5_000);
        let mut original = CosmosPlatform::new(CosmosConfig {
            firmware: cosmos_sim::FirmwareEra::Original,
            ..CosmosConfig::default()
        });
        original.flash = loaded.flash.clone();
        let mut updated = CosmosPlatform::new(CosmosConfig::default());
        updated.flash = loaded.flash.clone();
        let sst = &lsm.all_ssts()[0];
        let key = sst.blocks[0].first_key;
        let mut exec = make_exec(1, false, false);
        let (_, rep_orig) =
            get(&mut original, &lsm, &mut exec, key, ExecMode::Software, t0).unwrap();
        let (_, rep_upd) = get(&mut updated, &lsm, &mut exec, key, ExecMode::Software, t0).unwrap();
        assert_eq!(
            rep_upd.sim_ns - rep_orig.sim_ns,
            timing::FIRMWARE_OP_OVERHEAD_NS,
            "updated firmware charges exactly the per-op overhead"
        );
    }

    #[test]
    fn parallel_scan_matches_serial_scan_exactly() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 20_000);
        let rules = vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 1990 }];

        let mut serial = make_exec(4, false, false);
        let mut p1 = CosmosPlatform::new(CosmosConfig::default());
        p1.flash = platform.flash.clone();
        let (r_serial, rep_serial) =
            scan(&mut p1, &lsm, &mut serial, &rules, ExecMode::Hardware, t0).unwrap();
        assert!(serial.last_parallel_scan.is_none());

        let mut par = make_exec(4, false, false);
        par.parallel_pes = 4;
        let mut p2 = CosmosPlatform::new(CosmosConfig::default());
        p2.flash = platform.flash.clone();
        let (r_par, rep_par) =
            scan(&mut p2, &lsm, &mut par, &rules, ExecMode::Hardware, t0).unwrap();

        assert_eq!(r_serial, r_par, "merge order must reproduce the serial result bytes");
        assert_eq!(rep_serial.tuples_out, rep_par.tuples_out);
        assert_eq!(rep_serial.blocks, rep_par.blocks);
        let stats = par.last_parallel_scan.as_ref().expect("parallel stats recorded");
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.blocks_per_worker.iter().sum::<u64>(), rep_par.blocks);
        assert_eq!(stats.job_latency.count(), rep_par.blocks);
    }

    #[test]
    fn parallel_scan_with_more_workers_is_faster() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 20_000);
        let rules = vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 1990 }];

        let mut one = make_exec(4, false, false);
        one.parallel_pes = 1;
        let mut p1 = CosmosPlatform::new(CosmosConfig::default());
        p1.flash = platform.flash.clone();
        let (r1, rep1) = scan(&mut p1, &lsm, &mut one, &rules, ExecMode::Hardware, t0).unwrap();

        let mut four = make_exec(4, false, false);
        four.parallel_pes = 4;
        let mut p4 = CosmosPlatform::new(CosmosConfig::default());
        p4.flash = platform.flash.clone();
        let (r4, rep4) = scan(&mut p4, &lsm, &mut four, &rules, ExecMode::Hardware, t0).unwrap();

        assert_eq!(r1, r4);
        assert!(
            (rep4.sim_ns as f64) < 0.8 * rep1.sim_ns as f64,
            "4 streams ({} ns) should clearly beat 1 stream ({} ns)",
            rep4.sim_ns,
            rep1.sim_ns
        );
    }
}
